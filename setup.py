"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments whose
setuptools predates PEP 660 editable wheels (and where the ``wheel`` package
is unavailable): pip falls back to the legacy ``setup.py develop`` path.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
