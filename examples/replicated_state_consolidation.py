#!/usr/bin/env python3
"""Replicated-state consolidation under ongoing corruption.

The paper's introduction motivates stabilizing consensus with "the
consolidation of replicated states or information": a fleet of replicas holds
versions of a state (here: integer snapshot ids), most replicas are current,
a minority are stale, and a bounded attacker keeps flipping a few replicas
every round.  A good consolidation rule must (a) converge to one of the
*existing* snapshot ids (never invent one), (b) do so in a logarithmic number
of gossip rounds, and (c) settle on the version the healthy majority holds —
not on whatever a single corrupted replica keeps advertising.

This example compares three consolidation rules on that workload:

* the **median rule** (the paper's contribution): sticks with the majority
  snapshot, absorbing the attacker's writes;
* the **minimum rule** ("repair to the oldest common version"): is hijacked —
  the stale snapshot advertised by a few corrupted replicas spreads to the
  whole fleet, exactly the Section 1.1 counterexample;
* the **mean rule** (average the ids): agrees on a snapshot id that no
  replica ever held, which is useless for state consolidation.

Run:  python examples/replicated_state_consolidation.py
"""

from __future__ import annotations

import numpy as np

import repro

# Sparse snapshot ids as they would come out of a content-addressed store:
# arbitrary integers, not consecutive.  The last one is the current version,
# the first one is an ancient stale version still sitting on a few replicas.
SNAPSHOT_IDS = np.array([1047, 2311, 4099, 5608, 7919, 9973], dtype=np.int64)
STALE_ID = int(SNAPSHOT_IDS[0])
CURRENT_ID = int(SNAPSHOT_IDS[-1])


def build_fleet(n: int, bias: float, stale_replicas: int,
                rng: np.random.Generator) -> repro.Configuration:
    """Most replicas on the current snapshot, the rest scattered, a few stale."""
    mid_ids = SNAPSHOT_IDS[1:-1]
    values = rng.choice(mid_ids, size=n).astype(np.int64)
    on_current = rng.random(n) < bias
    values[on_current] = CURRENT_ID
    values[:stale_replicas] = STALE_ID
    return repro.Configuration.from_values(values)


def consolidate(rule: repro.Rule, initial: repro.Configuration,
                adversary_budget: int, seed: int) -> repro.SimulationResult:
    """Run one consolidation under an attacker that keeps restoring the stale id."""
    adversary = repro.RevivingAdversary(budget=adversary_budget, delay=10,
                                        target_value=STALE_ID)
    return repro.simulate(initial, rule=rule, adversary=adversary, seed=seed,
                          max_rounds=400, run_to_horizon=True)


def main() -> None:
    n = 2048                      # replicas
    bias = 0.55                   # fraction of replicas already on the current snapshot
    stale_replicas = 3            # replicas still holding the ancient snapshot
    adversary_budget = 4          # replicas the attacker can rewrite per round
    seed = 11

    rng = np.random.default_rng(seed)
    initial = build_fleet(n, bias, stale_replicas, rng)

    print(f"fleet of {n} replicas, snapshot ids present: {initial.support.tolist()}")
    print(f"current snapshot {CURRENT_ID}: {initial.count_value(CURRENT_ID) / n:.2%} of the fleet")
    print(f"stale snapshot   {STALE_ID}: {initial.count_value(STALE_ID)} replicas")
    print(f"attacker rewrites up to {adversary_budget} replicas/round back to {STALE_ID}\n")

    rules = {
        "median rule (paper)": repro.MedianRule(),
        "minimum rule": repro.MinimumRule(),
        "mean rule": repro.MeanRule(),
    }

    print(f"{'rule':22s} {'agreed id':>10s} {'agreement':>10s} {'real id?':>9s} "
          f"{'current?':>9s}")
    for label, rule in rules.items():
        result = consolidate(rule, initial, adversary_budget, seed)
        final = result.final
        winner = final.majority_value()
        agreement = final.agreement_fraction()
        is_real = winner in set(SNAPSHOT_IDS.tolist())
        is_current = winner == CURRENT_ID
        print(f"{label:22s} {winner:10d} {agreement:10.2%} {str(is_real):>9s} "
              f"{str(is_current):>9s}")

    print(
        "\nReading the table:\n"
        f"  * the median rule keeps the fleet on the current snapshot {CURRENT_ID} with all\n"
        "    but O(T) replicas agreeing — an almost stable consensus;\n"
        f"  * the minimum rule is hijacked by the stale snapshot {STALE_ID} that a handful of\n"
        "    corrupted replicas keep advertising (the Section 1.1 counterexample);\n"
        "  * the mean rule settles on a snapshot id no replica ever held."
    )


if __name__ == "__main__":
    main()
