#!/usr/bin/env python3
"""Self-stabilizing clock/epoch agreement in an anonymous sensor swarm.

A swarm of anonymous sensors must agree on a common epoch counter (an
integer) so their duty cycles line up.  Sensors cannot carry identities
(they are interchangeable and cheap), radio contention limits each node to a
couple of exchanges per round, and a handful of nodes are flaky: they reboot
into arbitrary epochs or are actively spoofed.  This is exactly the paper's
model — anonymous complete network, O(log n) contacts per round, T-bounded
adversary — so the median rule applies off the shelf.

The example demonstrates:

* agreement from a *completely arbitrary* starting state (self-stabilization:
  every sensor boots with its own epoch guess);
* resilience to a switching adversary that keeps flipping a few sensors
  between the extreme epochs;
* how the time to agreement scales as the swarm grows (log-like), using the
  experiment harness and a scaling fit.

Run:  python examples/sensor_clock_sync.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.statistics import fit_scaling
from repro.engine.batch import run_batch


def agreement_demo() -> None:
    n = 4096
    seed = 23
    rng = np.random.default_rng(seed)

    # every sensor boots with an arbitrary epoch guess in [0, 10^6)
    epochs = rng.integers(0, 1_000_000, size=n)
    initial = repro.Configuration.from_values(epochs)

    budget = max(1, int(0.2 * np.sqrt(n)))
    adversary = repro.SwitchingAdversary(budget=budget)
    result = repro.simulate(initial, adversary=adversary, seed=seed, max_rounds=800)

    print(f"--- swarm of {n} sensors, arbitrary boot epochs, "
          f"switching adversary (T={budget}) ---")
    print(f"almost-stable agreement reached : {result.reached_almost_stable}")
    print(f"round of stabilization          : {result.almost_stable_round}")
    print(f"agreed epoch                    : {result.winning_value} "
          f"(one of the boot epochs: "
          f"{result.winning_value in set(initial.values.tolist())})")
    print(f"sensors in agreement            : {result.final_agreement_fraction:.3%}\n")


def scaling_demo() -> None:
    print("--- time to agreement vs swarm size (no adversary, 10 runs per size) ---")
    sizes = [256, 512, 1024, 2048, 4096]
    means = []
    for n in sizes:
        def boot(rng: np.random.Generator) -> repro.Configuration:
            return repro.Configuration.from_values(rng.integers(0, 1_000_000, size=n))

        batch = run_batch(boot, num_runs=10, seed=1000 + n)
        means.append(batch.mean_rounds)
        print(f"  n={n:5d}   mean rounds to consensus = {batch.mean_rounds:6.2f}   "
              f"rounds / log2(n) = {batch.mean_rounds / np.log2(n):.2f}")

    fit = fit_scaling(sizes, [2] * len(sizes), means, "log_n")
    print(f"\nfit: rounds ≈ {fit.slope:.2f} · log2(n) + {fit.intercept:.2f} "
          f"(R² = {fit.r_squared:.3f})")
    print("doubling the swarm adds a roughly constant number of gossip rounds —\n"
        "the O(log n) behaviour of Theorem 1.")


def main() -> None:
    agreement_demo()
    scaling_demo()


if __name__ == "__main__":
    main()
