#!/usr/bin/env python3
"""Quickstart: run the median rule once, with and without an adversary.

This script is the five-minute tour of the library:

1. build an initial configuration (every process proposes its own value),
2. run the median rule with the vectorized engine and watch it converge in
   O(log n) rounds,
3. run the same protocol through the agent-level message-passing simulator
   (explicit requests/responses, per-round contact caps) and compare,
4. turn on a sqrt(n)-bounded balancing adversary and observe an *almost*
   stable consensus: all but O(T) processes agree, and stay agreed.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.network import NetworkSimulator


def main() -> None:
    n = 1024
    seed = 7

    # ------------------------------------------------------------------ #
    # 1. worst-case initial state: every process proposes a distinct value
    # ------------------------------------------------------------------ #
    initial = repro.Configuration.all_distinct(n)
    print(f"n = {n} processes, {initial.num_values} distinct initial values")

    # ------------------------------------------------------------------ #
    # 2. vectorized engine, no adversary
    # ------------------------------------------------------------------ #
    result = repro.simulate(initial, rule=repro.MedianRule(), seed=seed)
    print("\n--- median rule, no adversary (vectorized engine) ---")
    print(f"consensus reached : {result.reached_consensus}")
    print(f"consensus round   : {result.consensus_round}  "
          f"(log2(n) = {np.log2(n):.1f})")
    print(f"winning value     : {result.winning_value}")
    support = result.trajectory.support_series()
    print(f"distinct values over time: {support[:10].tolist()} ... {support[-3:].tolist()}")

    # ------------------------------------------------------------------ #
    # 3. the same protocol through the message-passing simulator
    # ------------------------------------------------------------------ #
    sim = NetworkSimulator(repro.Configuration.all_distinct(256), seed=seed)
    net_result = sim.run()
    print("\n--- median rule on the agent-level message-passing substrate (n=256) ---")
    print(f"consensus round   : {net_result.consensus_round}")
    print(f"messages sent     : {net_result.meta['messages']['total_messages']}")
    print(f"requests dropped  : {net_result.meta['messages']['requests_dropped']} "
          f"(per-round cap = Theta(log n))")

    # ------------------------------------------------------------------ #
    # 4. a sqrt(n)-bounded adversary trying to keep two camps balanced
    # ------------------------------------------------------------------ #
    budget = max(1, int(0.25 * np.sqrt(n)))
    adversary = repro.BalancingAdversary(budget=budget)
    balanced = repro.Configuration.two_bins(n, minority=n // 2)
    adv_result = repro.simulate(balanced, adversary=adversary, seed=seed, max_rounds=800)
    print(f"\n--- median rule vs balancing adversary (T = {budget}) ---")
    print(f"almost-stable consensus reached : {adv_result.reached_almost_stable}")
    print(f"stabilization round             : {adv_result.almost_stable_round}")
    print(f"final agreement                 : {adv_result.final_agreement_fraction:.4f} "
          f"(paper guarantees all but O(T) of n)")
    print(f"adversary writes used           : {adversary.ledger.total} "
          f"(budget respected: {adversary.ledger.verify()})")


if __name__ == "__main__":
    main()
