#!/usr/bin/env python3
"""Adversary gallery: how the median rule fares against every attack strategy.

The paper proves the median rule withstands *any* T-bounded adversary with
T ≤ √n.  This example makes that concrete: it pits the rule against every
strategy shipped in :mod:`repro.adversary.strategies` — balancing, reviving,
hiding, switching, random noise, targeted-median and sticky Byzantine nodes —
from the hardest initial state (two perfectly balanced camps), and reports
the stabilization round and the residual disagreement for each.

It also shows the flip side: what happens when the adversary is allowed to
exceed the √n budget (the tightness discussion after Theorem 2).

Run:  python examples/adversary_gallery.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.adversary.strategies import ADVERSARY_REGISTRY, make_adversary


def face_off(n: int, strategy: str, budget: int, seed: int, horizon: int = 1000):
    """Run the median rule against one adversary strategy from the balanced state."""
    initial = repro.Configuration.two_bins(n, minority=n // 2)
    adversary = make_adversary(strategy, budget=budget)
    result = repro.simulate(initial, adversary=adversary, seed=seed, max_rounds=horizon)
    return result, adversary


def main() -> None:
    n = 2048
    budget = max(1, int(0.25 * np.sqrt(n)))
    seed = 31

    print(f"median rule, n={n}, balanced two-camp start, adversary budget T={budget}\n")
    print(f"{'strategy':18s} {'stabilized':>10s} {'round':>7s} {'agreement':>10s} "
          f"{'adversary writes':>17s}")

    for strategy in sorted(ADVERSARY_REGISTRY):
        if strategy == "null":
            continue
        result, adversary = face_off(n, strategy, budget, seed)
        round_s = str(result.almost_stable_round) if result.reached_almost_stable else "-"
        print(f"{strategy:18s} {str(result.reached_almost_stable):>10s} {round_s:>7s} "
              f"{result.final_agreement_fraction:10.3%} {adversary.ledger.total:17d}")

    print("\nEvery T <= sqrt(n) strategy is absorbed: the system reaches a state where all")
    print("but O(T) processes agree and keeps renewing that agreement every round.\n")

    print("--- exceeding the budget: balancing adversary with T = c*sqrt(n) ---")
    horizon = 600
    for c in (0.25, 0.5, 1.0, 4.0):
        big_budget = int(c * np.sqrt(n))
        result, _ = face_off(n, "balancing", big_budget, seed, horizon=horizon)
        status = (f"stabilized at round {result.almost_stable_round}"
                  if result.reached_almost_stable
                  else f"NOT stabilized within {horizon} rounds "
                       f"(agreement {result.final_agreement_fraction:.2%})")
        print(f"  T = {big_budget:4d} (c={c:4.2f}):  {status}")
    print("\nAs c grows past ~1 the balancing adversary can hold the two camps level for a")
    print("very long time — the sqrt(n) bound of Theorems 2/3 is essentially tight.")


if __name__ == "__main__":
    main()
