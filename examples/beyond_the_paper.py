#!/usr/bin/env python3
"""Beyond the paper: higher dimensions, asynchrony and sparse networks.

The paper's conclusion lists two open directions — a time bound for *higher
dimensions* and a study of the protocol's *robustness*.  This example uses
the library's extension modules to explore both empirically:

1. **vector-valued consensus** — agree on a whole configuration vector
   (e.g. a set of d replicated registers) with the coordinate-wise median
   rule and with the value-preserving Tukey-style variant;
2. **asynchronous execution** — processes activated one at a time instead of
   in lock-step rounds, including an adversarial activation order;
3. **sparse communication graphs** — the median rule when each node can only
   sample its neighbours on a torus or a random regular graph;
4. **the mean-field skeleton** — the deterministic recursion that predicts
   which value wins and roughly how long it takes.

Run:  python examples/beyond_the_paper.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.meanfield import iterate_fractions, predict_convergence_rounds
from repro.core.multidim import (
    CoordinatewiseMedianRule,
    TukeyMedianRule,
    VectorConfiguration,
    simulate_vector,
)
from repro.engine.asynchronous import ACTIVATION_ORDERS, simulate_asynchronous
from repro.io.plots import sparkline
from repro.network import NetworkSimulator, random_regular_topology, torus_topology


def higher_dimensions() -> None:
    print("=== 1. vector-valued consensus (d = 3 registers per process) ===")
    rng = np.random.default_rng(5)
    vc = VectorConfiguration.random(n=512, d=3, low=0, high=1_000_000, rng=rng)
    for rule, label in ((CoordinatewiseMedianRule(), "coordinate-wise median"),
                        (TukeyMedianRule(), "Tukey (value-preserving) median")):
        result = simulate_vector(vc, rule=rule, seed=1, max_rounds=4000)
        initial = vc.contains_vector(result.final_vector)
        print(f"  {label:32s} consensus in {result.consensus_round:4d} rounds; "
              f"agreed vector was an initial vector: {initial}")
    print("  -> coordinates converge in O(log n) rounds either way; only the Tukey\n"
          "     variant guarantees the agreed vector was actually proposed by someone.\n")


def asynchrony() -> None:
    print("=== 2. asynchronous activation (n = 1024, all-distinct start) ===")
    init = repro.Configuration.all_distinct(1024)
    sync = repro.simulate(init, seed=2)
    print(f"  synchronous rounds            : {sync.consensus_round}")
    for order in ACTIVATION_ORDERS:
        res = simulate_asynchronous(init, order=order, seed=2, max_sweeps=2000)
        print(f"  asynchronous sweeps ({order:16s}): {res.consensus_sweep}")
    print("  -> one sweep (n activations) does the work of roughly one synchronous round,\n"
          "     even when the scheduler orders activations adversarially.\n")


def sparse_networks() -> None:
    print("=== 3. sparse communication graphs (two-value start, 1/3 vs 2/3) ===")
    side = 16
    n = side * side
    init = repro.Configuration.two_bins(n, minority=n // 3)
    for label, topo in (
        ("complete graph", None),
        ("random 8-regular graph", random_regular_topology(n, 8, seed=3)),
        (f"{side}x{side} torus", torus_topology(side)),
    ):
        sim = NetworkSimulator(init, topology=topo, seed=4)
        res = sim.run(max_rounds=800)
        print(f"  {label:24s} rounds to consensus: {res.consensus_round}")
    print("  -> expander-like graphs behave like the complete graph; low-degree lattices\n"
          "     still converge but pay for their diameter.\n")


def mean_field() -> None:
    print("=== 4. the mean-field skeleton ===")
    fractions = [0.15, 0.2, 0.3, 0.35]
    traj = iterate_fractions(fractions)
    winner_series = [p[traj.winner()] for p in traj.fractions]
    print(f"  initial bin masses          : {fractions}")
    print(f"  winning bin (mean field)    : {traj.winner()}")
    print(f"  winner's mass per round     : {sparkline(winner_series)}  "
          f"({winner_series[0]:.2f} -> {winner_series[-1]:.2f})")
    print(f"  predicted rounds (n = 4096) : "
          f"{predict_convergence_rounds(fractions, 4096):.0f}")
    sim = repro.simulate(
        repro.Configuration.from_values(np.repeat(np.arange(4), (np.array(fractions) * 4096).astype(int))),
        seed=6)
    print(f"  simulated rounds (n = 4096) : {sim.consensus_round}, winner {sim.winning_value}")


def main() -> None:
    higher_dimensions()
    asynchrony()
    sparse_networks()
    mean_field()


if __name__ == "__main__":
    main()
