"""Tests for repro.experiments.config and repro.experiments.results."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.results import CellResult, ExperimentReport


def _config(name: str = "cell", n: int = 64, **kwargs) -> ExperimentConfig:
    defaults = dict(name=name, workload="all-distinct", workload_params={"n": n})
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def _cell_result(name: str = "cell", n: int = 64, mean: float = 10.0) -> CellResult:
    return CellResult(
        config=_config(name, n),
        num_runs=5,
        convergence_fraction=1.0,
        mean_rounds=mean,
        median_rounds=mean,
        p90_rounds=mean + 2,
        max_rounds=mean + 4,
        rounds=[mean - 1, mean, mean + 1],
    )


class TestExperimentConfig:
    def test_requires_n(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", workload="all-distinct", workload_params={})

    def test_requires_positive_runs(self):
        with pytest.raises(ValueError):
            _config(num_runs=0)

    def test_requires_nonnegative_budget(self):
        with pytest.raises(ValueError):
            _config(adversary_budget=-1)

    def test_n_property(self):
        assert _config(n=256).n == 256

    def test_m_property_explicit(self):
        cfg = ExperimentConfig(name="x", workload="uniform-random",
                               workload_params={"n": 100, "m": 7})
        assert cfg.m == 7

    def test_m_property_all_distinct(self):
        assert _config(n=50).m == 50

    def test_m_property_two_bins(self):
        cfg = ExperimentConfig(name="x", workload="two-bins",
                               workload_params={"n": 100, "minority": 40})
        assert cfg.m == 2

    def test_roundtrip_dict(self):
        cfg = _config(adversary="balancing", adversary_budget=4,
                      adversary_params={"timing": None} if False else {})
        again = ExperimentConfig.from_dict(cfg.to_dict())
        assert again == cfg


class TestSweepConfig:
    def test_add_and_iterate(self):
        sweep = SweepConfig(name="s")
        sweep.add(_config("a"))
        sweep.add(_config("b"))
        assert len(sweep) == 2
        assert [c.name for c in sweep] == ["a", "b"]

    def test_roundtrip_dict(self):
        sweep = SweepConfig(name="s", description="d", cells=[_config("a"), _config("b")])
        again = SweepConfig.from_dict(sweep.to_dict())
        assert again.name == "s" and again.description == "d"
        assert [c.name for c in again.cells] == ["a", "b"]


class TestCellResult:
    def test_flat_row_fields(self):
        row = _cell_result().flat_row()
        for key in ("cell", "workload", "n", "m", "rule", "adversary", "T", "runs",
                    "converged_frac", "mean_rounds"):
            assert key in row

    def test_flat_row_handles_nan(self):
        res = _cell_result()
        res.mean_rounds = float("nan")
        assert res.flat_row()["mean_rounds"] == ""

    def test_roundtrip_dict(self):
        res = _cell_result()
        again = CellResult.from_dict(res.to_dict())
        assert again.mean_rounds == res.mean_rounds
        assert again.config == res.config
        assert again.rounds == res.rounds


class TestExperimentReport:
    def test_add_and_len(self):
        report = ExperimentReport(name="r")
        report.add(_cell_result("a"))
        assert len(report) == 1

    def test_json_roundtrip(self, tmp_path):
        report = ExperimentReport(name="r", description="desc",
                                  cells=[_cell_result("a"), _cell_result("b", mean=20.0)],
                                  meta={"scale": 1.0})
        path = report.save_json(tmp_path / "report.json")
        loaded = ExperimentReport.load_json(path)
        assert loaded.name == "r"
        assert len(loaded) == 2
        assert loaded.cells[1].mean_rounds == 20.0
        assert loaded.meta == {"scale": 1.0}

    def test_json_output_is_plain_types(self, tmp_path):
        report = ExperimentReport(name="r", cells=[_cell_result()])
        # inject numpy scalars to confirm they are converted
        report.cells[0].extra["np_value"] = np.float64(3.5)
        path = report.save_json(tmp_path / "np.json")
        data = json.loads(path.read_text())
        assert data["cells"][0]["extra"]["np_value"] == 3.5

    def test_csv_output(self, tmp_path):
        report = ExperimentReport(name="r", cells=[_cell_result("a"), _cell_result("b")])
        path = report.save_csv(tmp_path / "report.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3            # header + 2 rows
        assert lines[0].startswith("cell,")

    def test_empty_csv(self, tmp_path):
        report = ExperimentReport(name="empty")
        path = report.save_csv(tmp_path / "empty.csv")
        assert path.read_text() == ""
