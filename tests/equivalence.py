"""Reusable statistical-equivalence harness for engine certification.

Every fast engine in this library (occupancy, occupancy-fused) claims to be
*equal in law* to the reference vectorized engine — not sample-path equal for
a shared seed, since the substrates consume randomness differently.  This
module is the single place where that claim is turned into assertions, so
every current and future kernel is pinned by the same machinery instead of
hand-rolled per-test comparisons:

* **Paired-run distribution checks** over convergence rounds
  (:func:`collect_convergence_rounds` + :func:`assert_means_close`,
  :func:`assert_variances_close`, :func:`assert_ks_close`): ≥200 independent
  runs per engine with fixed seed roots; means agree within a 6-sigma Welch
  tolerance, variances within the sampling tolerance of a ~200-run estimate,
  and the full empirical CDFs within a two-sample Kolmogorov–Smirnov bound
  (ties from the integer-valued rounds only make the bound conservative).

* **Trajectory checks** (:func:`collect_minority_trajectories`): the mean
  minority-count series round by round over a fixed horizon, Welch-compared
  per round — this catches kernels that reach the right fixed point through
  the wrong dynamics.

* **One-round exact-flow checks**
  (:func:`one_round_occupancy_sampler` + :func:`assert_one_round_flows_match`):
  the full distribution over complete next-round occupancy outcomes at tiny n,
  compared by L1 (= 2·TV) distance against the sampling noise of identical
  laws, E[L1] ≲ 0.8·sqrt(2K/trials) for K observed outcomes.  Adversaries run
  through the *real* engine entry points (``simulate`` /
  ``simulate_occupancy`` with a one-round horizon), so corruption placement
  and the victim-occupancy split-scatter are certified, not re-implemented.

Scenarios are declared once (:class:`EquivalenceScenario`: rule × adversary ×
geometry) and executed against any engine name, so a new kernel or a new
count-space adversary gets full certification by adding one scenario line.
Seeds are fixed throughout — the tests built on this harness are
deterministic, and the tolerances are sized so a correct implementation
passes with wide margin while an off-by-one in a transition CDF (e.g. using
``F_a`` where ``F_{a-1}`` belongs) fails immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.adversary.base import Adversary
from repro.core.rules import Rule
from repro.core.state import Configuration
from repro.engine.batch import run_batch_fused_occupancy
from repro.engine.occupancy import simulate_occupancy
from repro.engine.trajectory import RecordLevel
from repro.engine.vectorized import simulate
from repro.experiments.workloads import blocks_workload

__all__ = [
    "DEFAULT_RUNS",
    "SINGLE_RUN_ENGINES",
    "EquivalenceScenario",
    "collect_convergence_rounds",
    "collect_minority_trajectories",
    "assert_means_close",
    "assert_variances_close",
    "ks_statistic",
    "assert_ks_close",
    "assert_rounds_equivalent",
    "one_round_occupancy_sampler",
    "empirical_outcome_histogram",
    "l1_distance",
    "assert_one_round_flows_match",
]

#: Runs per engine per scenario for the paired-run distribution checks.
DEFAULT_RUNS = 200

#: Engines with a single-run entry point (the fused engine only exists as a
#: batch and is compared through :func:`collect_convergence_rounds`).
SINGLE_RUN_ENGINES = {"vectorized": simulate, "occupancy": simulate_occupancy}


@dataclass(frozen=True)
class EquivalenceScenario:
    """One rule × adversary × geometry cell of the certification grid.

    ``adversary_factory`` builds a *fresh* adversary per run (adversaries
    carry per-run state such as victim occupancies); ``None`` means no
    adversary.  The initial state is the deterministic ``blocks`` workload —
    the worst-case m-value state — unless ``initial_factory`` overrides it.
    """

    name: str
    n: int
    m: int
    rule_factory: Callable[[], Rule]
    adversary_factory: Optional[Callable[[], Adversary]] = None
    horizon: int = 400
    initial_factory: Optional[Callable[[], Configuration]] = None

    def initial(self) -> Configuration:
        if self.initial_factory is not None:
            return self.initial_factory()
        return blocks_workload(self.n, self.m)

    def make_adversary(self) -> Optional[Adversary]:
        return self.adversary_factory() if self.adversary_factory else None


# ---------------------------------------------------------------------- #
# sample collection
# ---------------------------------------------------------------------- #
def collect_convergence_rounds(engine: str, sc: EquivalenceScenario,
                               runs: int = DEFAULT_RUNS,
                               seed_base: int = 0) -> np.ndarray:
    """Convergence rounds of ``runs`` independent runs (NaN if not converged)."""
    if engine == "occupancy-fused":
        batch = run_batch_fused_occupancy(
            sc.initial(), runs, rule=sc.rule_factory(),
            adversary_factory=sc.adversary_factory,
            seed=seed_base, max_rounds=sc.horizon)
        assert batch.meta["budget_ledger_ok"] is True
        return np.asarray(batch.rounds, dtype=np.float64)
    simulate_fn = SINGLE_RUN_ENGINES[engine]
    init = sc.initial()
    out = np.full(runs, np.nan)
    for i in range(runs):
        res = simulate_fn(init, rule=sc.rule_factory(),
                          adversary=sc.make_adversary(),
                          seed=seed_base + i, max_rounds=sc.horizon,
                          record=RecordLevel.NONE)
        r = res.convergence_round()
        if r is not None:
            out[i] = r
    return out


def collect_minority_trajectories(engine: str, sc: EquivalenceScenario,
                                  runs: int = DEFAULT_RUNS,
                                  seed_base: int = 0,
                                  rounds: int = 12) -> np.ndarray:
    """``(runs, rounds+1)`` minority counts over a fixed horizon (single-run engines)."""
    simulate_fn = SINGLE_RUN_ENGINES[engine]
    init = sc.initial()
    out = np.empty((runs, rounds + 1))
    for i in range(runs):
        res = simulate_fn(init, rule=sc.rule_factory(),
                          adversary=sc.make_adversary(),
                          seed=seed_base + i, max_rounds=rounds,
                          run_to_horizon=True, record=RecordLevel.METRICS)
        out[i] = res.trajectory.minority_series()
    return out


# ---------------------------------------------------------------------- #
# distribution assertions
# ---------------------------------------------------------------------- #
def assert_means_close(a: np.ndarray, b: np.ndarray, label: str,
                       sigmas: float = 6.0, abs_slack: float = 0.75) -> None:
    """Welch-style two-sample check: |mean_a − mean_b| within ``sigmas`` SEs."""
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    assert a.size and b.size, f"{label}: an engine never converged"
    se = float(np.sqrt(np.var(a, ddof=1) / a.size + np.var(b, ddof=1) / b.size))
    diff = abs(float(np.mean(a)) - float(np.mean(b)))
    assert diff <= sigmas * se + abs_slack, (
        f"{label}: means {np.mean(a):.3f} vs {np.mean(b):.3f} "
        f"differ by {diff:.3f} > {sigmas}·SE + {abs_slack} = {sigmas * se + abs_slack:.3f}"
    )


def assert_variances_close(a: np.ndarray, b: np.ndarray, label: str,
                           factor: float = 2.5, abs_slack: float = 1.5) -> None:
    """Sample variances of ~200 draws agree within sampling tolerance."""
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    va, vb = float(np.var(a, ddof=1)), float(np.var(b, ddof=1))
    assert va <= factor * vb + abs_slack and vb <= factor * va + abs_slack, (
        f"{label}: variances {va:.3f} vs {vb:.3f} differ beyond "
        f"factor {factor} + {abs_slack}"
    )


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic sup|F_a − F_b| (NaNs dropped)."""
    a = np.sort(a[~np.isnan(a)])
    b = np.sort(b[~np.isnan(b)])
    grid = np.concatenate([a, b])
    fa = np.searchsorted(a, grid, side="right") / a.size
    fb = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(fa - fb)))


def assert_ks_close(a: np.ndarray, b: np.ndarray, label: str,
                    scale: float = 2.5, abs_slack: float = 0.02) -> None:
    """Full-CDF check: the KS statistic stays under the identical-law bound.

    For samples from the same law, ``P(D > c·sqrt((n_a+n_b)/(n_a·n_b)))`` is
    about ``2·exp(−2c²)`` — below 1e-5 at the default ``c = 2.5`` — and the
    integer-valued convergence rounds (heavy ties) only shrink D further, so
    the bound is conservative.
    """
    a_clean = a[~np.isnan(a)]
    b_clean = b[~np.isnan(b)]
    assert a_clean.size and b_clean.size, f"{label}: an engine never converged"
    d = ks_statistic(a, b)
    bound = scale * float(np.sqrt((a_clean.size + b_clean.size)
                                  / (a_clean.size * b_clean.size))) + abs_slack
    assert d <= bound, (
        f"{label}: KS statistic {d:.4f} exceeds identical-law bound {bound:.4f} "
        f"(n_a={a_clean.size}, n_b={b_clean.size})"
    )


def assert_rounds_equivalent(a: np.ndarray, b: np.ndarray, label: str,
                             max_nonconverged: float = 0.02) -> None:
    """The full paired-run bundle: convergence fraction + mean + variance + KS."""
    assert np.isnan(a).mean() <= max_nonconverged, f"{label}: engine A rarely converged"
    assert np.isnan(b).mean() <= max_nonconverged, f"{label}: engine B rarely converged"
    assert_means_close(a, b, f"{label} convergence round")
    assert_variances_close(a, b, f"{label} convergence round")
    assert_ks_close(a, b, f"{label} convergence round")


# ---------------------------------------------------------------------- #
# one-round exact-flow checks
# ---------------------------------------------------------------------- #
def one_round_occupancy_sampler(engine: str, sc: EquivalenceScenario,
                                seed: int) -> Callable[[], Tuple[int, ...]]:
    """A zero-argument sampler of the occupancy after exactly one engine round.

    Drives the real engine entry point (one-round horizon, fresh adversary
    per draw, one shared RNG stream) so corruption timing, budget
    enforcement, and the victim-occupancy split-scatter are all part of what
    gets certified.  The returned tuple counts every initial value of the
    scenario's configuration, in sorted value order.
    """
    simulate_fn = SINGLE_RUN_ENGINES[engine]
    init = sc.initial()
    support = np.unique(init.copy_values())
    rng = np.random.default_rng(seed)

    def draw() -> Tuple[int, ...]:
        res = simulate_fn(init, rule=sc.rule_factory(),
                          adversary=sc.make_adversary(), seed=rng,
                          max_rounds=1, run_to_horizon=True,
                          record=RecordLevel.NONE)
        final = res.final
        if isinstance(final, Configuration):
            values = final.copy_values()
            return tuple(int(np.sum(values == v)) for v in support)
        counts = np.zeros(support.shape[0], dtype=np.int64)
        idx = np.searchsorted(support, final.support)
        inside = (idx < support.shape[0])
        np.add.at(counts, idx[inside], final.counts[inside])
        return tuple(int(c) for c in counts)

    return draw


def empirical_outcome_histogram(sampler: Callable[[], Tuple[int, ...]],
                                trials: int) -> Dict[Tuple[int, ...], int]:
    """Histogram of ``trials`` draws over complete occupancy outcomes."""
    hist: Dict[Tuple[int, ...], int] = {}
    for _ in range(trials):
        key = sampler()
        hist[key] = hist.get(key, 0) + 1
    return hist


def l1_distance(hist_a: Dict[Tuple[int, ...], int],
                hist_b: Dict[Tuple[int, ...], int], trials: int) -> Tuple[float, int]:
    """L1 distance between two empirical outcome laws and the support size."""
    keys = set(hist_a) | set(hist_b)
    l1 = sum(abs(hist_a.get(k, 0) - hist_b.get(k, 0)) for k in keys) / trials
    return l1, len(keys)


def assert_one_round_flows_match(sc: EquivalenceScenario,
                                 engines: Tuple[str, str] = ("vectorized", "occupancy"),
                                 trials: int = 3000,
                                 seed_base: int = 0,
                                 label: Optional[str] = None) -> None:
    """One-round exact-flow check: the two engines' next-occupancy laws agree.

    Uses the L1 (= 2·TV) distance between the empirical outcome histograms
    with the identical-law noise scale E[L1] ≲ 0.8·sqrt(2K/trials).
    """
    label = label or sc.name
    hist_a = empirical_outcome_histogram(
        one_round_occupancy_sampler(engines[0], sc, seed_base), trials)
    hist_b = empirical_outcome_histogram(
        one_round_occupancy_sampler(engines[1], sc, seed_base + 1), trials)
    l1, k = l1_distance(hist_a, hist_b, trials)
    noise = 0.8 * float(np.sqrt(2 * k / trials))
    assert l1 < max(3 * noise, 0.05), (
        f"{label}: one-round {engines[0]} vs {engines[1]} laws differ — "
        f"L1 {l1:.4f} over {k} outcomes (noise scale {noise:.4f})"
    )
