"""Property tests for every occupancy outcome-matrix builder.

The occupancy engines are only as exact as their per-class outcome matrices,
so every builder — the median family (with/without replacement, any k), the
single-choice baselines (voter, minimum, maximum), and the majority family
(three-majority, two-choices-majority) — is pinned by the same four
properties:

* **stochasticity** — every occupied row is a probability vector;
* **support containment** — a preserve-values rule can only output values
  that are present, so occupied rows put zero mass on empty bins;
* **symmetry** — exchange-symmetric rules commute with any permutation of
  the bins, order-based rules with order reversal (and minimum ↔ maximum are
  each other's reversal duals); rule semantics are label-free under strictly
  monotone value relabelings, which is what makes a count-space kernel
  well-defined in the first place;
* **brute-force agreement** — at small n the exact outcome distribution of
  one process can be enumerated over all sample tuples straight from
  ``apply_single``; every matrix row must match it to ~1e-12.
"""

from __future__ import annotations

import itertools
from typing import Dict

import numpy as np
import pytest

from repro.core.baseline_rules import (
    MaximumRule,
    MinimumRule,
    TwoChoicesMajorityRule,
    TwoChoicesRule,
    VoterRule,
)
from repro.core.median_rule import (
    BestOfKMedianRule,
    MedianRule,
    MedianRuleWithoutReplacement,
)
from repro.core.rules import Rule
from repro.engine.occupancy import (
    occupancy_transition_matrix,
    occupancy_transition_matrix_batch,
    three_majority_outcome_matrix,
    two_choices_outcome_matrix,
)

RULES: Dict[str, Rule] = {
    "median": MedianRule(),
    "median-k3": BestOfKMedianRule(k=3),
    "median-k4": BestOfKMedianRule(k=4),
    "median-k5": BestOfKMedianRule(k=5),
    "median-noreplace": MedianRuleWithoutReplacement(),
    "voter": VoterRule(),
    "minimum": MinimumRule(),
    "maximum": MaximumRule(),
    "three-majority": TwoChoicesMajorityRule(),
    "two-choices-majority": TwoChoicesRule(),
}

#: Rules invariant under *any* bin permutation (no order structure at all).
EXCHANGE_SYMMETRIC = ("voter", "three-majority", "two-choices-majority")

#: Rules invariant under reversing the bin order (order-based but symmetric).
#: Median-of-an-even-pool rules (odd k: pool k+1) take the *lower* median and
#: are genuinely not reversal-symmetric, so only even-k members qualify.
REVERSAL_SYMMETRIC = ("median", "median-k4", "median-noreplace",
                      "voter", "three-majority", "two-choices-majority")

COUNTS = [
    np.array([5, 3, 2], dtype=np.int64),
    np.array([1, 0, 4, 7], dtype=np.int64),
    np.array([10], dtype=np.int64),
    np.array([0, 6, 0, 1, 3], dtype=np.int64),
    np.array([2, 2, 2, 2], dtype=np.int64),
]


def _rule_ids(d):
    return list(d)


# ---------------------------------------------------------------------- #
# stochasticity and support containment
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("rule_name", _rule_ids(RULES))
@pytest.mark.parametrize("counts", COUNTS, ids=lambda c: "c=" + "-".join(map(str, c)))
def test_occupied_rows_are_probability_vectors(rule_name, counts):
    Q = occupancy_transition_matrix(RULES[rule_name], counts)
    assert Q.shape == (counts.shape[0], counts.shape[0])
    assert np.all(Q >= 0.0) and np.all(Q <= 1.0 + 1e-12)
    occupied = counts > 0
    np.testing.assert_allclose(Q[occupied].sum(axis=1), 1.0, atol=1e-9)


@pytest.mark.parametrize("rule_name", _rule_ids(RULES))
@pytest.mark.parametrize("counts", [COUNTS[1], COUNTS[3]],
                         ids=lambda c: "c=" + "-".join(map(str, c)))
def test_support_containment_no_mass_on_empty_bins(rule_name, counts):
    """Preserve-values rules can only ever output a *present* value, so rows
    of occupied classes put exactly zero probability on empty bins."""
    Q = occupancy_transition_matrix(RULES[rule_name], counts)
    occupied = counts > 0
    empty = ~occupied
    assert np.all(Q[np.ix_(occupied, empty)] == 0.0), (
        f"{rule_name}: mass on an empty bin\n{Q}"
    )


# ---------------------------------------------------------------------- #
# symmetry
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("rule_name", EXCHANGE_SYMMETRIC)
def test_exchange_symmetric_rules_commute_with_permutations(rule_name):
    counts = np.array([6, 1, 4, 3], dtype=np.int64)
    rule = RULES[rule_name]
    Q = occupancy_transition_matrix(rule, counts)
    for perm in ([2, 0, 3, 1], [3, 2, 1, 0], [1, 0, 2, 3]):
        perm = np.array(perm)
        Qp = occupancy_transition_matrix(rule, counts[perm])
        np.testing.assert_allclose(Qp, Q[np.ix_(perm, perm)], atol=1e-12)


@pytest.mark.parametrize("rule_name", REVERSAL_SYMMETRIC)
def test_order_symmetric_rules_commute_with_reversal(rule_name):
    counts = np.array([6, 1, 4, 3], dtype=np.int64)
    rule = RULES[rule_name]
    Q = occupancy_transition_matrix(rule, counts)
    Qr = occupancy_transition_matrix(rule, counts[::-1].copy())
    np.testing.assert_allclose(Qr, Q[::-1, ::-1], atol=1e-12)


def test_minimum_maximum_are_reversal_duals():
    counts = np.array([6, 1, 4, 3], dtype=np.int64)
    Qmin = occupancy_transition_matrix(MinimumRule(), counts)
    Qmax = occupancy_transition_matrix(MaximumRule(), counts[::-1].copy())
    np.testing.assert_allclose(Qmax, Qmin[::-1, ::-1], atol=1e-12)


@pytest.mark.parametrize("rule_name", ["median", "three-majority",
                                       "two-choices-majority", "minimum"])
def test_rule_semantics_are_label_free(rule_name):
    """A strictly monotone relabeling of the values must not change the
    per-class outcome distribution — the property that makes the kernels
    (functions of counts alone) well-defined."""
    rule = RULES[rule_name]
    values = np.array([0, 0, 0, 1, 1, 2, 2, 2], dtype=np.int64)
    relabeled = np.array([10, 10, 10, 17, 17, 40, 40, 40], dtype=np.int64)
    for own_idx in (0, 3, 5):
        row = _brute_force_row(rule, values, own_idx)
        row_relabeled = _brute_force_row(rule, relabeled, own_idx)
        np.testing.assert_allclose(row, row_relabeled, atol=1e-12)


# ---------------------------------------------------------------------- #
# brute-force agreement at small n/m
# ---------------------------------------------------------------------- #
def _brute_force_row(rule: Rule, values: np.ndarray, own_idx: int) -> np.ndarray:
    """Exact outcome distribution of process ``own_idx`` over the value classes,
    enumerated over every possible sample tuple (uniform with replacement,
    matching the paper's contact model; ordered distinct pairs of others for
    the without-replacement rule; analytic 1/3 tie-break for 3-majority)."""
    n = values.shape[0]
    support = np.unique(values)
    index = {int(v): i for i, v in enumerate(support)}
    row = np.zeros(support.shape[0])
    rng = np.random.default_rng(0)  # never consulted by deterministic rules

    if isinstance(rule, TwoChoicesMajorityRule):
        w = 1.0 / n ** 3
        for trio in itertools.product(range(n), repeat=3):
            a, b, c = (int(values[t]) for t in trio)
            if a == b or a == c:
                row[index[a]] += w
            elif b == c:
                row[index[b]] += w
            else:
                for x in (a, b, c):
                    row[index[x]] += w / 3.0
        return row

    if isinstance(rule, MedianRuleWithoutReplacement):
        others = [j for j in range(n) if j != own_idx]
        w = 1.0 / (len(others) * (len(others) - 1))
        for j, l in itertools.permutations(others, 2):
            out = rule.apply_single(int(values[own_idx]),
                                    [int(values[j]), int(values[l])], rng)
            row[index[out]] += w
        return row

    k = rule.num_choices
    w = 1.0 / n ** k
    for tup in itertools.product(range(n), repeat=k):
        out = rule.apply_single(int(values[own_idx]),
                                [int(values[t]) for t in tup], rng)
        row[index[out]] += w
    return row


@pytest.mark.parametrize("rule_name", _rule_ids(RULES))
def test_matrix_rows_agree_with_brute_force_enumeration(rule_name):
    rule = RULES[rule_name]
    values = np.array([0, 0, 0, 1, 1, 2, 2, 2], dtype=np.int64)
    counts = np.array([3, 2, 3], dtype=np.int64)
    Q = occupancy_transition_matrix(rule, counts)
    for cls, own_idx in enumerate((0, 3, 5)):  # one representative per class
        brute = _brute_force_row(rule, values, own_idx)
        np.testing.assert_allclose(
            Q[cls], brute, atol=1e-12,
            err_msg=f"{rule_name}: row {cls} disagrees with enumeration")


@pytest.mark.parametrize("rule_name", _rule_ids(RULES))
def test_brute_force_agreement_with_empty_bins(rule_name):
    """Same enumeration, but the counts vector carries empty bins — the
    matrix must place the per-class rows at the right bin indices."""
    rule = RULES[rule_name]
    values = np.array([0, 0, 2, 2, 2, 5], dtype=np.int64)   # support {0, 2, 5}
    counts = np.array([2, 0, 3, 0, 0, 1], dtype=np.int64)   # bins 0..5
    Q = occupancy_transition_matrix(rule, counts)
    occupied = np.flatnonzero(counts)
    for cls, own_idx in zip(occupied, (0, 2, 5)):
        brute = _brute_force_row(rule, values, own_idx)
        np.testing.assert_allclose(
            Q[cls][occupied], brute, atol=1e-12,
            err_msg=f"{rule_name}: empty-bin row {cls} disagrees")


# ---------------------------------------------------------------------- #
# direct builder entry points and batching
# ---------------------------------------------------------------------- #
def test_three_majority_closed_form_matches_definition():
    """q_b = p_b (1 + p_b − Σ p²): rows identical (self does not vote) and
    exactly the at-least-two-of-three mass plus the uniform tie-break."""
    p = np.array([0.5, 0.3, 0.2])
    Q = three_majority_outcome_matrix(np.cumsum(p))
    assert np.allclose(Q, Q[0][None, :])  # own value irrelevant
    s2 = float(np.sum(p * p))
    expected = np.array([
        3 * pb ** 2 * (1 - pb) + pb ** 3 + pb * ((1 - pb) ** 2 - (s2 - pb ** 2))
        for pb in p
    ])
    np.testing.assert_allclose(Q[0], expected, atol=1e-12)
    np.testing.assert_allclose(Q[0], p * (1 + p - s2), atol=1e-12)


def test_two_choices_closed_form_matches_definition():
    p = np.array([0.5, 0.3, 0.2])
    Q = two_choices_outcome_matrix(np.cumsum(p))
    s2 = float(np.sum(p * p))
    for a in range(3):
        for b in range(3):
            expected = (1 - s2 + p[a] ** 2) if a == b else p[b] ** 2
            assert abs(Q[a, b] - expected) < 1e-12


@pytest.mark.parametrize("rule_name", ["three-majority", "two-choices-majority"])
def test_batched_majority_tensors_equal_stacked_singles(rule_name):
    rule = RULES[rule_name]
    rng = np.random.default_rng(7)
    counts = rng.multinomial(240, np.full(6, 1 / 6), size=12).astype(np.int64)
    Qb = occupancy_transition_matrix_batch(rule, counts)
    assert Qb.shape == (12, 6, 6)
    for i in range(counts.shape[0]):
        np.testing.assert_allclose(
            Qb[i], occupancy_transition_matrix(rule, counts[i]), atol=1e-12)


def test_consensus_is_absorbing_for_every_kernel():
    counts = np.array([0, 9, 0], dtype=np.int64)
    for name, rule in RULES.items():
        Q = occupancy_transition_matrix(rule, counts)
        assert Q[1, 1] == pytest.approx(1.0), f"{name}: consensus not absorbing"
