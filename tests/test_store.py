"""Tests for repro.store: hashing, ResultStore, CachedSweepRunner, artifacts."""

from __future__ import annotations

import json
import math

import pytest

import repro.store.backends as store_backends_mod
from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.results import CellResult, ExperimentReport
from repro.experiments.runner import run_sweep
from repro.store import (
    ArtifactRegistry,
    CachedSweepRunner,
    ResultStore,
    build_provenance,
    canonical_cell_dict,
    cell_key,
    run_sweep_cached,
)
from repro.store.store import STORE_SCHEMA_VERSION


def _config(name="cell", n=48, engine="vectorized", **kwargs) -> ExperimentConfig:
    defaults = dict(name=name, workload="all-distinct",
                    workload_params={"n": n}, num_runs=3, seed=11,
                    engine=engine)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def _sweep(ns=(32, 48), **kwargs) -> SweepConfig:
    sweep = SweepConfig(name="mini", description="store test sweep")
    for n in ns:
        sweep.add(_config(name=f"n={n}", n=n, **kwargs))
    return sweep


def _result(config: ExperimentConfig, mean=10.0) -> CellResult:
    return CellResult(config=config, num_runs=config.num_runs,
                      convergence_fraction=1.0, mean_rounds=mean,
                      median_rounds=mean, p90_rounds=mean + 1,
                      max_rounds=mean + 2, rounds=[mean] * config.num_runs)


class TestCellKey:
    def test_stable_across_dict_ordering(self):
        a = ExperimentConfig(name="x", workload="uniform-random",
                             workload_params={"n": 64, "m": 4},
                             rule_params={"k": 3, "j": 1}, num_runs=2, seed=1)
        b = ExperimentConfig(name="x", workload="uniform-random",
                             workload_params={"m": 4, "n": 64},
                             rule_params={"j": 1, "k": 3}, num_runs=2, seed=1)
        assert cell_key(a) == cell_key(b)

    def test_engine_independent(self):
        keys = {cell_key(_config(engine=e))
                for e in ("vectorized", "occupancy", "occupancy-fused")}
        assert len(keys) == 1

    def test_name_independent(self):
        assert cell_key(_config(name="a")) == cell_key(_config(name="renamed"))

    def test_zero_budget_adversary_normalized_to_null(self):
        armed = _config(adversary="balancing", adversary_budget=0)
        null = _config(adversary="null", adversary_budget=0)
        assert cell_key(armed) == cell_key(null)
        assert canonical_cell_dict(armed)["adversary"] == "null"

    def test_budget_matters(self):
        a = _config(adversary="balancing", adversary_budget=2)
        b = _config(adversary="balancing", adversary_budget=3)
        assert cell_key(a) != cell_key(b)

    def test_seed_and_runs_are_key_material(self):
        assert cell_key(_config(seed=1)) != cell_key(_config(seed=2))
        assert cell_key(_config(num_runs=3)) != cell_key(_config(num_runs=4))

    def test_key_excludes_only_name_and_engine(self):
        dropped = set(_config().to_dict()) - set(canonical_cell_dict(_config()))
        assert dropped == {"name", "engine"}


class TestResultStore:
    def test_put_get_contains(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = _config()
        assert not store.contains(cfg)
        key = store.put(cfg, _result(cfg), {"engine": "vectorized", "seed": 11})
        assert store.contains(cfg) and store.contains(key)
        record = store.get(cfg)
        assert record.key == key
        assert record.schema == STORE_SCHEMA_VERSION
        assert record.result.mean_rounds == 10.0
        assert record.provenance["engine"] == "vectorized"
        assert record.config["name"] == cfg.name

    def test_nonfinite_metrics_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = _config()
        res = _result(cfg)
        res.mean_rounds = float("nan")
        res.rounds = [3.0, float("inf")]
        store.put(cfg, res)
        # the payload must be strict JSON (no NaN/Infinity literals)
        payload = (store.cells_dir / f"{store.key_for(cfg)}.json").read_text()
        json.loads(payload, parse_constant=lambda _: pytest.fail("non-strict"))
        loaded = store.get(cfg).result
        assert math.isnan(loaded.mean_rounds)
        assert loaded.rounds == [3.0, float("inf")]

    def test_corrupted_entry_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = _config()
        key = store.put(cfg, _result(cfg))
        payload = store.cells_dir / f"{key}.json"
        payload.write_text("{ this is not json")
        assert store.get(cfg) is None            # miss, not an exception
        assert not payload.exists()              # moved aside ...
        assert (store.quarantine_dir / payload.name).exists()   # ... not lost
        assert not store.contains(cfg)           # stays a miss afterwards

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = _config()
        key = store.put(cfg, _result(cfg))
        payload = store.cells_dir / f"{key}.json"
        raw = json.loads(payload.read_text())
        raw["schema"] = STORE_SCHEMA_VERSION + 1
        payload.write_text(json.dumps(raw))
        assert store.get(cfg) is None
        assert not store.contains(cfg)
        assert payload.exists()                  # not quarantined, just stale

    def test_newer_result_schema_is_a_miss_not_corruption(self, tmp_path):
        # a record written by a future package version is intact data: it
        # must read as a miss and must never be destructively quarantined
        from repro.experiments.results import RESULT_SCHEMA_VERSION

        store = ResultStore(tmp_path / "store")
        cfg = _config()
        key = store.put(cfg, _result(cfg))
        payload = store.cells_dir / f"{key}.json"
        raw = json.loads(payload.read_text())
        raw["result"]["schema"] = RESULT_SCHEMA_VERSION + 1
        payload.write_text(json.dumps(raw))
        assert store.get(cfg) is None
        assert payload.exists()                  # still in cells/, untouched
        counts = store.gc()
        assert counts["quarantined"] == 0        # gc agrees: stale, not corrupt
        assert payload.exists()
        counts = store.gc(drop_schema_mismatch=True)
        assert counts["dropped"] == 1 and not payload.exists()

    def test_legacy_aggregate_pooled_record_is_stale_not_served(self, tmp_path):
        # records written by the pre-backend-unification pooled path carried
        # aggregate metrics only (extra {"parallel": true}, rounds []);
        # serving them as hits would make warm reports depend on which
        # backend populated the store — they must read as stale misses and
        # be recomputed in place, never quarantined as corruption
        store = ResultStore(tmp_path / "store")
        cfg = _config()
        key = store.put(cfg, _result(cfg))
        payload = store.cells_dir / f"{key}.json"
        raw = json.loads(payload.read_text())
        raw["result"]["rounds"] = []
        raw["result"]["extra"] = {"parallel": True}
        payload.write_text(json.dumps(raw))
        assert store.get(cfg) is None
        assert payload.exists()                  # stale, not damaged
        assert store.gc()["quarantined"] == 0
        runner = CachedSweepRunner(store)
        runner.run(_sweep(ns=(48,)))
        assert runner.last_stats.misses == 1     # recomputed once...
        assert store.get(cfg).result.rounds != []   # ...store upgraded
        # and drop-schema-mismatch clears legacy records without recompute
        payload.write_text(json.dumps(raw))
        assert store.gc(drop_schema_mismatch=True)["dropped"] == 1

    def test_gc_counts_and_index_rebuild(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for n in (32, 48):
            cfg = _config(name=f"n={n}", n=n)
            store.put(cfg, _result(cfg))
        bad = store.cells_dir / ("f" * 64 + ".json")
        bad.write_text("garbage")
        assert not store.index_path.exists()     # put() never writes the index
        counts = store.gc()
        assert counts == {"kept": 2, "quarantined": 1, "dropped": 0,
                          "orphan_sidecars": 0, "dangling_artifacts": 0}
        assert len(store.ls_rows()) == 2
        counts = store.gc(drop_quarantine=True)
        assert counts["dropped"] == 1

    def test_info(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = _config()
        store.put(cfg, _result(cfg))
        info = store.info()
        assert info["entries"] == 1 and info["payload_bytes"] > 0


class TestCachedSweepRunner:
    def test_partition_hits_and_misses(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sweep = _sweep(ns=(32, 48, 64))
        first = sweep.cells[0]
        store.put(first, _result(first))
        hits, misses = CachedSweepRunner(store).partition(sweep)
        assert set(hits) == {0} and misses == [1, 2]

    def test_rerun_forces_all_misses(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sweep = _sweep()
        for cell in sweep:
            store.put(cell, _result(cell))
        hits, misses = CachedSweepRunner(store, rerun=True).partition(sweep)
        assert not hits and misses == [0, 1]

    def test_warm_rerun_executes_zero_cells_and_report_equal(
            self, tmp_path, monkeypatch):
        """Acceptance: identical sweep vs populated store => 0 executions,
        report == cold-run report."""
        store = ResultStore(tmp_path / "store")
        runner = CachedSweepRunner(store)
        cold = runner.run(_sweep())
        assert runner.last_stats.misses == 2

        calls = []
        real_run_cell = store_backends_mod.run_cell
        monkeypatch.setattr(store_backends_mod, "run_cell",
                            lambda cell: calls.append(cell) or real_run_cell(cell))
        warm = runner.run(_sweep())
        assert calls == []                       # zero recomputation
        assert runner.last_stats.hits == 2 and runner.last_stats.misses == 0
        assert warm == cold                      # full dataclass equality

    def test_cross_engine_hit(self, tmp_path):
        """Engines are equal in distribution: a sweep retargeted to another
        engine must keep its cache hits."""
        store = ResultStore(tmp_path / "store")
        runner = CachedSweepRunner(store)
        runner.run(_sweep(engine="vectorized"))
        runner.run(_sweep(engine="occupancy"))
        assert runner.last_stats.hits == 2 and runner.last_stats.misses == 0

    def test_resume_after_interrupt(self, tmp_path, monkeypatch):
        """Acceptance: a sweep killed halfway resumes with only the
        unfinished cells executed, and the resumed report equals a cold run."""
        sweep = _sweep(ns=(32, 48, 64, 96))
        store = ResultStore(tmp_path / "store")
        runner = CachedSweepRunner(store)

        real_run_cell = store_backends_mod.run_cell
        executed = []

        def dying_run_cell(cell):
            if len(executed) == 2:
                raise KeyboardInterrupt("simulated mid-sweep kill")
            executed.append(cell.name)
            return real_run_cell(cell)

        monkeypatch.setattr(store_backends_mod, "run_cell", dying_run_cell)
        with pytest.raises(KeyboardInterrupt):
            runner.run(sweep)
        assert executed == ["n=32", "n=48"]      # first two cells persisted
        assert len(store) == 2

        def counting_run_cell(cell):
            executed.append(cell.name)
            return real_run_cell(cell)

        monkeypatch.setattr(store_backends_mod, "run_cell", counting_run_cell)
        resumed = runner.run(sweep)
        assert executed == ["n=32", "n=48", "n=64", "n=96"]   # no re-execution
        assert runner.last_stats.hits == 2 and runner.last_stats.misses == 2

        cold = CachedSweepRunner(ResultStore(tmp_path / "fresh")).run(sweep)
        assert resumed == cold

    def test_corrupted_entry_recomputed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CachedSweepRunner(store)
        runner.run(_sweep())
        key = store.keys()[0]
        (store.cells_dir / f"{key}.json").write_text("oops")
        runner.run(_sweep())
        assert runner.last_stats.misses == 1     # only the corrupted cell
        assert store.contains(key)               # re-persisted

    def test_matches_plain_run_sweep(self, tmp_path):
        report = run_sweep_cached(_sweep(), tmp_path / "store")
        plain = run_sweep(_sweep())
        for a, b in zip(report.cells, plain.cells):
            assert a.rounds == b.rounds
            assert a.mean_rounds == pytest.approx(b.mean_rounds)

    def test_pooled_execution_persists(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CachedSweepRunner(store)
        pooled = runner.run(_sweep(), max_workers=2)
        assert runner.last_stats.misses == 2 and len(store) == 2
        runner.run(_sweep(), max_workers=2)
        assert runner.last_stats.hits == 2
        serial = run_sweep(_sweep())
        for a, b in zip(pooled.cells, serial.cells):
            assert a.mean_rounds == pytest.approx(b.mean_rounds)

    def test_explicit_none_means_default_pool(self, tmp_path):
        # run_sweep's convention: max_workers=None requests the default-size
        # pool; it must not be silently coerced to serial execution
        report = run_sweep_cached(_sweep(), tmp_path / "store",
                                  max_workers=None)
        assert len(report) == 2
        assert len(ResultStore(tmp_path / "store")) == 2

    def test_pooled_results_persist_incrementally(self, tmp_path, monkeypatch):
        """Pooled misses are persisted one by one in completion order (the
        interrupt-resume property), not in a single post-barrier batch."""
        import repro.store.runner as mod

        store = ResultStore(tmp_path / "store")
        runner = CachedSweepRunner(store)
        sizes_at_persist = []
        real_persist = CachedSweepRunner._persist

        def tracking_persist(self, cell, result, elapsed):
            sizes_at_persist.append(len(self.store))
            return real_persist(self, cell, result, elapsed)

        monkeypatch.setattr(CachedSweepRunner, "_persist", tracking_persist)
        runner.run(_sweep(ns=(32, 48, 64)), max_workers=2)
        # each persist saw exactly the cells persisted before it: 0, 1, 2
        assert sizes_at_persist == [0, 1, 2]

    def test_provenance_records_resolved_engine(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        # all-distinct (m = n) resolves occupancy-fused back to vectorized
        CachedSweepRunner(store).run(_sweep(engine="occupancy-fused"))
        record = store.get(store.keys()[0])
        assert record.provenance["engine"] == "vectorized"
        assert record.provenance["elapsed_s"] > 0
        assert record.provenance["package_version"]

    def test_store_keys_in_report_meta(self, tmp_path):
        report = run_sweep_cached(_sweep(), tmp_path / "store")
        keys = report.meta["store"]["keys"]
        assert set(keys) == {"n=32", "n=48"}
        assert all(len(k) == 64 for k in keys.values())


class TestMajorityFamilyKeysAndReproducibility:
    """Cell-key stability and execution determinism for the widened
    rule × adversary support (majority-family kernels, victim-occupancy
    adversaries): keys stay engine-independent, pinned against drift, and a
    cell's results are bit-identical for the same seed whether it executes
    serially, fused, or through the process pool."""

    @staticmethod
    def _cell(rule="three-majority", adversary="sticky",
              engine="occupancy-fused", name=None) -> ExperimentConfig:
        return ExperimentConfig(
            name=name or f"{rule}+{adversary}", workload="blocks",
            workload_params={"n": 256, "m": 4}, rule=rule,
            adversary=adversary, adversary_budget=3, num_runs=4,
            max_rounds=400, seed=21, engine=engine)

    def test_keys_engine_independent_for_new_configs(self):
        for rule in ("three-majority", "two-choices-majority"):
            for adversary in ("sticky", "hiding"):
                keys = {cell_key(self._cell(rule, adversary, engine=e))
                        for e in ("vectorized", "occupancy", "occupancy-fused")}
                assert len(keys) == 1, (rule, adversary)

    def test_keys_distinct_across_rule_adversary_grid(self):
        cells = [self._cell(rule, adversary)
                 for rule in ("median", "three-majority", "two-choices-majority")
                 for adversary in ("balancing", "sticky", "hiding")]
        keys = {cell_key(c) for c in cells}
        assert len(keys) == len(cells)

    def test_golden_keys_pinned_against_drift(self):
        # canonical hashes are the store's address space: a silent
        # canonicalization change would orphan every stored cell, so the
        # new configs' keys are pinned verbatim
        golden = {
            ("three-majority", "sticky"):
                "cc174a77e1db23ce33a7b7e6d2f9a3f511d6afe79e74a634b22a8ee1315779ac",
            ("three-majority", "hiding"):
                "cb9c32b9f667c8326ccf77ad5b6de2e35acf732c6c8ba5516ff3411fc497e9f1",
            ("two-choices-majority", "sticky"):
                "50ea4a8245b7de626c6315dbef0c3548d4e11b863c578b4856612ad69d5b2ceb",
            ("two-choices-majority", "hiding"):
                "b7e87cebd5f6db27b289cfe4c4f27f1c1cec7458de63b21483fae330eecb0424",
        }
        for (rule, adversary), expected in golden.items():
            assert cell_key(self._cell(rule, adversary)) == expected

    @pytest.mark.parametrize("engine", ["occupancy", "occupancy-fused"])
    def test_run_cell_deterministic_per_engine(self, engine):
        from repro.experiments.runner import run_cell

        a = run_cell(self._cell(engine=engine))
        b = run_cell(self._cell(engine=engine))
        assert a.extra["engine"] == engine  # supported: no fallback happened
        assert a.rounds == b.rounds
        assert a.mean_rounds == b.mean_rounds

    def test_serial_and_pooled_sweeps_agree_bitwise(self):
        sweep = SweepConfig(name="majority-mini")
        for rule in ("three-majority", "two-choices-majority"):
            sweep.add(self._cell(rule, "sticky"))
        serial = run_sweep(sweep, max_workers=0)
        pooled = run_sweep(sweep, max_workers=2)
        for cs, cp in zip(serial.cells, pooled.cells):
            assert cs.config.name == cp.config.name
            assert cs.num_runs == cp.num_runs
            assert cs.mean_rounds == cp.mean_rounds
            assert cs.convergence_fraction == cp.convergence_fraction
            assert cs.extra["engine"] == cp.extra["engine"] == "occupancy-fused"

    def test_store_round_trip_for_new_configs(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = self._cell()
        store.put(cfg, _result(cfg))
        assert store.contains(cfg)
        # retargeting the engine keeps the cache hit (cross-engine key)
        from dataclasses import replace

        assert store.contains(replace(cfg, engine="vectorized"))


class TestKernelBackendScopedReproducibility:
    """Seed-reproducibility contract of the multinomial-kernel seam.

    Cell *keys* are kernel-independent (the backend is provenance, never key
    material), bitwise equality of results is promised only *within* a
    backend, the two backends agree in distribution, and every stored record
    says which kernel produced it."""

    @staticmethod
    def _cell(num_runs=4, seed=21, name="kernel-cell") -> ExperimentConfig:
        return ExperimentConfig(
            name=name, workload="blocks", workload_params={"n": 256, "m": 4},
            rule="median", num_runs=num_runs, max_rounds=400, seed=seed,
            engine="occupancy-fused")

    @staticmethod
    def _backends():
        from repro.engine import resolve_multinomial_backend

        out = ["numpy"]
        if resolve_multinomial_backend("compiled").resolved == "compiled":
            out.append("compiled")
        return out

    @staticmethod
    def _pinned(backend):
        import contextlib

        from repro.engine import set_multinomial_backend

        @contextlib.contextmanager
        def cm():
            set_multinomial_backend(backend)
            try:
                yield
            finally:
                set_multinomial_backend(None)

        return cm()

    def test_cell_keys_are_kernel_independent(self):
        keys = set()
        for backend in self._backends():
            with self._pinned(backend):
                keys.add(cell_key(self._cell()))
        assert len(keys) == 1

    def test_bitwise_determinism_within_each_backend(self):
        from repro.experiments.runner import run_cell

        for backend in self._backends():
            with self._pinned(backend):
                a = run_cell(self._cell())
                b = run_cell(self._cell())
            assert a.rounds == b.rounds, backend
            assert a.mean_rounds == b.mean_rounds, backend

    def test_cross_backend_statistical_equality(self):
        # backends are different bit streams drawing the same law: mean
        # convergence rounds over a seed ensemble must agree within a
        # Monte-Carlo band (two-sample z on 60 runs per backend)
        backends = self._backends()
        if len(backends) < 2:
            pytest.skip("no compiled multinomial provider on this host")
        from repro.experiments.runner import run_cell

        stats = {}
        for backend in backends:
            with self._pinned(backend):
                res = run_cell(self._cell(num_runs=60, seed=77))
            rounds = [float(r) for r in res.rounds]
            stats[backend] = (sum(rounds) / len(rounds), rounds)
        mean_np, rounds_np = stats["numpy"]
        mean_cc, rounds_cc = stats["compiled"]

        def var(xs, mu):
            return sum((x - mu) ** 2 for x in xs) / (len(xs) - 1)

        se = math.sqrt(var(rounds_np, mean_np) / len(rounds_np)
                       + var(rounds_cc, mean_cc) / len(rounds_cc))
        assert abs(mean_np - mean_cc) <= max(4.0 * se, 0.75), (
            f"numpy={mean_np:.2f} compiled={mean_cc:.2f} se={se:.3f}")

    def test_provenance_records_multinomial_kernel(self, tmp_path):
        from repro.engine import multinomial_kernel_id

        for backend in self._backends():
            store = ResultStore(tmp_path / f"store-{backend}")
            with self._pinned(backend):
                sweep = SweepConfig(name=f"kernel-{backend}")
                sweep.add(self._cell(name=f"cell-{backend}"))
                CachedSweepRunner(store).run(sweep)
                expected = multinomial_kernel_id()
            record = store.get(store.keys()[0])
            assert record.provenance["multinomial_kernel"] == expected
            if backend == "numpy":
                assert expected == "numpy"
            else:
                assert expected.startswith("compiled:")
            # surfaced by store.info() aggregation as well
            assert any(expected in part
                       for part in store.info()["multinomial_kernels"].split(","))


class TestArtifacts:
    def test_build_provenance_shape(self):
        prov = build_provenance({"cell": "abc"}, extra={"note": "x"})
        assert prov["cell_keys"] == {"cell": "abc"}
        assert prov["note"] == "x"
        assert "package_version" in prov and "created_at" in prov

    def test_registry_register_and_replace(self, tmp_path):
        ledger = tmp_path / "artifacts.json"
        artifact = tmp_path / "out.json"
        artifact.write_text("{}")
        registry = ArtifactRegistry(ledger)
        registry.register(artifact, kind="test", cell_keys=["k1"])
        registry.register(artifact, kind="test", cell_keys=["k1", "k2"])
        records = registry.records()
        assert len(records) == 1                 # same path replaced, not dup
        assert records[0]["provenance"]["cell_keys"] == ["k1", "k2"]
        assert records[0]["sha256"]
        assert records[0]["path"] == "out.json"  # ledger-relative


class TestStoreCli:
    def test_sweep_store_cold_then_warm(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        argv = ["sweep", "theorem1", "--scale", "0.1", "--runs", "2",
                "--store", store_dir]
        assert main(argv) == 0
        assert "misses=6" in capsys.readouterr().out
        assert main(argv) == 0
        assert "hits=6 misses=0" in capsys.readouterr().out

    def test_sweep_no_cache_bypasses_store(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        argv = ["sweep", "theorem1", "--scale", "0.1", "--runs", "2",
                "--store", store_dir, "--no-cache"]
        assert main(argv) == 0
        assert "cache:" not in capsys.readouterr().out
        assert not (tmp_path / "store" / "cells").exists() or \
            len(list((tmp_path / "store" / "cells").glob("*.json"))) == 0

    def test_store_subcommands(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        main(["sweep", "theorem1", "--scale", "0.1", "--runs", "2",
              "--store", store_dir])
        capsys.readouterr()
        assert main(["store", "ls", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "all-distinct" in out
        assert main(["store", "info", "--store", store_dir]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["store", "gc", "--store", store_dir]) == 0
        assert "kept=5" in capsys.readouterr().out

    def test_store_info_single_record(self, tmp_path, capsys):
        from repro.cli import main

        store = ResultStore(tmp_path / "store")
        cfg = _config()
        key = store.put(cfg, _result(cfg), {"engine": "vectorized"})
        assert main(["store", "info", "--store", str(store.root), key[:10]]) == 0
        out = capsys.readouterr().out
        assert key in out and "provenance.engine" in out

    def test_json_artifact_registered(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        json_path = tmp_path / "report.json"
        assert main(["sweep", "theorem1", "--scale", "0.1", "--runs", "2",
                     "--store", str(store_dir), "--json", str(json_path)]) == 0
        records = ArtifactRegistry(store_dir / "artifacts.json").records()
        assert len(records) == 1
        assert records[0]["kind"] == "sweep-report-json"
        # theorem1 at scale 0.1 clamps two cells to n=16, so 5 unique names
        assert len(records[0]["provenance"]["cell_keys"]) == 5
