"""Structured telemetry: spans, metrics, per-process shards, merged traces.

Covers the observability acceptance contract:

* disarmed tracing is a true no-op — shared noop span, no files, no ``obs/``
  directory, and a report byte-identical to a traced run's;
* deterministic span ids — same (name, key) in every process and across
  worker restarts;
* a traced 2-worker sharded chaos run (pinned fault plan, SIGKILL included)
  yields a well-formed merged span tree whose counters reconcile exactly
  with the shard execution ledger and the cache statistics, tolerating
  shards torn by killed workers;
* warnings raised inside the sweep stack dual-emit as structured trace
  events, visible from worker subprocesses;
* the CLI surface: ``sweep --trace``, ``obs summarize``/``validate``,
  ``store info --json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from chaos import CHAOS_RETRY, chaos_sweep, clean_reference
from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import merge_trace, read_trace, validate_trace
from repro.obs.trace import NOOP_SPAN, span_id_for
from repro.robustness import FaultPlan, FaultSpec, StoreIntegrityWarning
from repro.robustness import activate as faults_activate
from repro.robustness import deactivate as faults_deactivate
from repro.store import (
    CachedSweepRunner,
    ResultStore,
    ShardBackend,
    read_execution_log,
)


@pytest.fixture(autouse=True)
def _disarm_everything():
    """Leave no tracer, fault plan, or env handoff behind — ever."""
    yield
    obs_trace.deactivate()
    faults_deactivate()
    os.environ.pop(obs_trace.ENV_VAR, None)
    os.environ.pop(obs_trace.PARENT_ENV_VAR, None)


def _sweep(name="obs-mini", ns=(24, 32, 40)) -> SweepConfig:
    sweep = SweepConfig(name=name, description="obs test sweep")
    for n in ns:
        sweep.add(ExperimentConfig(name=f"n={n}", workload="all-distinct",
                                   workload_params={"n": n}, num_runs=2,
                                   seed=11))
    return sweep


# ---------------------------------------------------------------------- #
# span identity and the disabled path
# ---------------------------------------------------------------------- #
class TestTraceCore:
    def test_span_ids_deterministic_across_processes_and_restarts(self):
        a = span_id_for("cell.compute", "deadbeef" * 8)
        b = span_id_for("cell.compute", "deadbeef" * 8)
        assert a == b and len(a) == 16
        assert a != span_id_for("cell.compute", "cafef00d" * 8)
        assert a != span_id_for("sweep", "deadbeef" * 8)

    def test_volatile_attrs_never_enter_the_id(self, tmp_path):
        tracer = obs_trace.activate(tmp_path / "obs", export_env=False)
        with tracer.span("cell.compute", key="k1", backend="serial") as s1:
            s1.set(outcome="computed", attempts=3)
        with tracer.span("cell.compute", key="k1", backend="shard") as s2:
            s2.set(outcome="failed")
        assert s1.span_id == s2.span_id == span_id_for("cell.compute", "k1")

    def test_disarmed_span_is_the_shared_noop(self):
        obs_trace.deactivate()
        assert not obs_trace.enabled()
        assert obs_trace.span("cell.compute", key="x") is NOOP_SPAN
        with obs_trace.span("anything") as s:
            assert s.set(outcome="ignored") is NOOP_SPAN
        # events and metrics are silent no-ops, even for bogus names
        obs_trace.event("whatever")
        obs_metrics.count("not.a.metric")
        obs_metrics.observe("also.not.a.metric", 1.0)

    def test_armed_metrics_reject_uncataloged_names(self, tmp_path):
        obs_trace.activate(tmp_path / "obs", export_env=False)
        with pytest.raises(ValueError, match="uncataloged"):
            obs_metrics.count("not.a.metric")
        with pytest.raises(ValueError, match="histogram"):
            obs_metrics.count("cell.elapsed_s")   # histogram via count()

    def test_activate_exports_env_and_deactivate_clears_it(self, tmp_path):
        obs_trace.activate(tmp_path / "obs")
        assert os.environ[obs_trace.ENV_VAR] == str(tmp_path / "obs")
        obs_trace.deactivate()
        assert obs_trace.ENV_VAR not in os.environ
        assert not obs_trace.enabled()

    def test_nonfinite_attrs_serialize_and_validate(self, tmp_path):
        obs_trace.activate(tmp_path / "obs", export_env=False)
        with obs_trace.span("sweep", key="s", bad=float("nan")):
            obs_trace.event("probe", inf=float("inf"), obj=object())
        obs_trace.deactivate()
        stats = validate_trace(tmp_path / "obs")
        assert stats["torn"] == 0 and stats["span"] == 1

    def test_broken_sink_never_raises_into_the_host(self, tmp_path):
        sink_parent = tmp_path / "blocked"
        sink_parent.write_text("a file, not a directory")
        obs_trace.activate(sink_parent / "obs", export_env=False)
        with obs_trace.span("sweep", key="s"):
            obs_trace.event("probe")
            obs_metrics.count("cells.computed")


# ---------------------------------------------------------------------- #
# disabled path: no files, byte-identical report
# ---------------------------------------------------------------------- #
class TestDisabledPath:
    def test_untraced_sweep_writes_no_obs_dir_and_identical_report(
            self, tmp_path):
        sweep = _sweep()

        traced_store = ResultStore(tmp_path / "traced")
        obs_trace.activate(tmp_path / "traced" / "obs")
        try:
            traced = CachedSweepRunner(traced_store,
                                       backend="serial").run(sweep)
        finally:
            obs_trace.deactivate()

        plain_store = ResultStore(tmp_path / "plain")
        plain = CachedSweepRunner(plain_store, backend="serial").run(sweep)

        assert (tmp_path / "traced" / "obs").is_dir()
        assert not (tmp_path / "plain" / "obs").exists()
        assert not list((tmp_path / "plain").rglob("trace-*.jsonl"))

        # tracing is observational only: the reports are byte-identical
        traced.save_json(tmp_path / "traced.json")
        plain.save_json(tmp_path / "plain.json")
        assert (tmp_path / "traced.json").read_bytes() == \
            (tmp_path / "plain.json").read_bytes()

    def test_empty_trace_dir_reads_as_empty(self, tmp_path):
        records, stats = read_trace(tmp_path / "nowhere")
        assert records == [] and stats == {"files": 0, "lines": 0, "torn": 0}


# ---------------------------------------------------------------------- #
# traced serial execution: tree shape + counter reconciliation
# ---------------------------------------------------------------------- #
class TestTracedSerial:
    def test_counters_reconcile_and_tree_is_well_formed(self, tmp_path):
        sweep = _sweep()
        store = ResultStore(tmp_path / "store")
        obs_trace.activate(tmp_path / "store" / "obs")
        try:
            runner = CachedSweepRunner(store, backend="serial")
            runner.run(sweep)     # cold: all misses
            runner.run(sweep)     # warm: all hits
        finally:
            obs_trace.deactivate()

        stats = validate_trace(tmp_path / "store" / "obs")
        assert stats["torn"] == 0 and stats["span"] >= 5

        merged = merge_trace(tmp_path / "store" / "obs")
        c = merged.counters
        assert c["cache.hits"] + c["cache.misses"] == 2 * len(sweep)
        assert c["cells.computed"] == len(sweep)
        assert c["store.put"] == len(sweep)
        assert c["store.get.hit"] == len(sweep)
        assert "cells.failed" not in c

        sweeps = merged.spans_named("sweep")
        assert len(sweeps) == 2
        cold = next(s for s in sweeps if s.children)
        assert len(cold.children) == len(sweep)
        for node in cold.children:
            assert node.name == "cell.compute"
            assert node.attrs["outcome"] == "computed"
            key = node.attrs["cell"]
            assert node.span_id == span_id_for("cell.compute", key)
            assert key == store.key_for(
                next(cell for cell in sweep
                     if cell.name == node.attrs["cell_label"]))
        assert merged.histograms["cell.elapsed_s"]["count"] == len(sweep)

    def test_tree_lines_render_every_root(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        obs_trace.activate(tmp_path / "store" / "obs")
        try:
            CachedSweepRunner(store, backend="serial").run(_sweep(ns=(24,)))
        finally:
            obs_trace.deactivate()
        lines = merge_trace(tmp_path / "store" / "obs").tree_lines()
        assert any(line.startswith("sweep ") for line in lines)
        assert any("cell.compute" in line and "[computed]" in line
                   for line in lines)


# ---------------------------------------------------------------------- #
# the acceptance gate: traced 2-worker sharded chaos run
# ---------------------------------------------------------------------- #
class TestTracedShardChaos:
    #: Pinned schedule: transient raises, a lease hiccup and one SIGKILL —
    #: but no shard.log_append faults, so the execution ledger stays exact
    #: and the computed-cell reconciliation below can demand equality.
    def _plan(self, journal: Path) -> FaultPlan:
        return FaultPlan(specs=[
            FaultSpec("worker.compute", "raise", times=2),
            FaultSpec("lease.acquire", "raise", times=1),
            FaultSpec("worker.compute", "kill-worker", times=1),
        ], seed=1234, journal=str(journal))

    def test_traced_chaos_run_reconciles_exactly(self, tmp_path):
        sweep = chaos_sweep()
        clean = clean_reference(tmp_path)          # before tracing arms
        store = ResultStore(tmp_path / "store", rounds_sidecar_at=1)
        trace_dir = store.root / "obs"

        obs_trace.activate(trace_dir)
        faults_activate(self._plan(tmp_path / "journal.jsonl"))
        try:
            runner = CachedSweepRunner(
                store,
                backend=ShardBackend(workers=2, stale_after=2.0,
                                     poll_interval=0.02),
                retry=CHAOS_RETRY)
            report = runner.run(sweep)
        finally:
            faults_deactivate()
            obs_trace.deactivate()

        assert report == clean   # telemetry never changes what is reported

        stats = validate_trace(trace_dir)          # every line, full schema
        assert stats["torn"] == 0

        merged = merge_trace(trace_dir)
        c = merged.counters
        ledger = read_execution_log(store.root)

        # computed-cell events reconcile 1:1 with the execution ledger
        assert c["cells.computed"] == len(ledger) == len(sweep)
        # hit/miss partition covers the sweep
        assert c.get("cache.hits", 0) + c["cache.misses"] == len(sweep)
        # the faulted run healed: nothing failed terminally
        assert "cells.failed" not in c
        # the lease protocol balanced its books
        assert c["lease.acquired"] >= len(sweep)
        assert c["lease.released"] + c.get("lease.reclaimed", 0) >= \
            c["lease.acquired"] - 1   # a SIGKILLed holder never releases

        # coordinator + 2 workers at least (a killed worker is replaced by
        # lease reclaim, not process respawn, so exactly 3 here)
        assert len(merged.processes) >= 3

        # every retry event carries the canonical cell hash
        retries = merged.events_named("retry")
        assert retries, "pinned raise faults must produce retry events"
        keys = {record["key"] for record in ledger}
        for event in retries:
            assert event["attrs"]["cell"] in keys

        # fault firings are correlated by cell identity: compute seams carry
        # the cell label, lease seams the canonical cell hash
        fired = merged.events_named("fault.fired")
        assert fired, "pinned plan must trace its firings"
        labels = {cell.name for cell in sweep}
        compute_faults = [e for e in fired
                          if e["attrs"]["seam"] == "worker.compute"]
        assert compute_faults
        for event in compute_faults:
            assert event["attrs"]["cell"] in labels
        lease_faults = [e for e in fired
                        if e["attrs"]["seam"] == "lease.acquire"]
        assert lease_faults
        for event in lease_faults:
            assert event["attrs"]["key"] in keys

        # the merged tree: one sweep root spanning the whole fleet, every
        # surviving cell.compute attached under it with a stable id
        roots = [n for n in merged.roots if n.name == "sweep"]
        assert len(roots) == 1
        cell_nodes = [n for n in roots[0].walk() if n.name == "cell.compute"]
        assert cell_nodes
        for node in cell_nodes:
            assert node.span_id == span_id_for("cell.compute",
                                               node.attrs["cell"])
        # the SIGKILLed attempt wrote no span record; the recomputing
        # worker's span for that cell carries the same deterministic id
        assert {n.attrs["cell"] for n in cell_nodes
                if n.attrs.get("outcome") == "computed"} == keys

    def test_merge_tolerates_torn_trace_shards(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        obs_trace.activate(store.root / "obs")
        try:
            CachedSweepRunner(store, backend="serial").run(_sweep())
        finally:
            obs_trace.deactivate()

        merged = merge_trace(store.root / "obs")
        baseline = dict(merged.counters)

        # tear the shard the way a SIGKILL mid-append would: a truncated
        # JSON line and stray bytes with no newline discipline
        shard = next((store.root / "obs").glob("trace-*.jsonl"))
        with shard.open("a") as fh:
            fh.write('{"schema": 1, "kind": "metric", "met')
            fh.write("\n\x00garbage\n")

        from repro.robustness import TornLogWarning
        with pytest.warns(TornLogWarning, match="undecodable"):
            torn = merge_trace(store.root / "obs")
        assert torn.stats["torn"] == 2
        assert torn.counters == baseline   # surviving lines unaffected
        with pytest.warns(TornLogWarning):
            stats = validate_trace(store.root / "obs")
        assert stats["torn"] == 2

    def test_orphan_spans_surface_as_flagged_roots(self, tmp_path):
        obs_trace.activate(tmp_path / "obs", export_env=False)
        tracer = obs_trace.active_tracer()
        # child span whose parent record is never written (killed parent)
        tracer.write({"kind": "span", "name": "cell.compute",
                      "span": span_id_for("cell.compute", "k1"),
                      "parent": "feedfacedeadbeef", "at": 1.0,
                      "dur_s": 0.5, "attrs": {"cell": "k1"}})
        obs_trace.deactivate()
        merged = merge_trace(tmp_path / "obs")
        assert len(merged.roots) == 1
        assert merged.roots[0].orphan


# ---------------------------------------------------------------------- #
# warnings dual-emitted as structured events
# ---------------------------------------------------------------------- #
class TestWarningEvents:
    def test_store_quarantine_emits_structured_warning(self, tmp_path):
        sweep = _sweep(ns=(24,))
        store = ResultStore(tmp_path / "store")
        faults_activate(FaultPlan(specs=[
            FaultSpec("store.payload_write", "torn-write")]),
            export_env=False)
        CachedSweepRunner(store, backend="serial").run(sweep)
        faults_deactivate()

        obs_trace.activate(store.root / "obs")
        try:
            with pytest.warns(StoreIntegrityWarning):
                warm = CachedSweepRunner(store, backend="serial").run(sweep)
        finally:
            obs_trace.deactivate()
        assert warm.cells[0].mean_rounds is not None

        merged = merge_trace(store.root / "obs")
        warnings_ = merged.events_named("warning")
        categories = {e["attrs"]["category"] for e in warnings_}
        assert "StoreIntegrityWarning" in categories
        quarantine = next(e for e in warnings_
                          if e["attrs"]["category"] == "StoreIntegrityWarning")
        assert quarantine["attrs"]["cell"] == store.key_for(sweep.cells[0])
        assert merged.counters["store.quarantine"] == 1

    def test_shard_to_pool_degradation_emits_structured_warning(
            self, tmp_path):
        from repro.robustness import DegradedExecutionWarning

        store = ResultStore(tmp_path / "store")
        (store.root / "shard").write_text("not a directory")
        obs_trace.activate(store.root / "obs")
        try:
            runner = CachedSweepRunner(store,
                                       backend=ShardBackend(workers=0))
            with pytest.warns(DegradedExecutionWarning, match="lease"):
                runner.run(_sweep(ns=(24,)))
        finally:
            obs_trace.deactivate()

        merged = merge_trace(store.root / "obs")
        degraded = [e for e in merged.events_named("warning")
                    if e["attrs"]["category"] == "DegradedExecutionWarning"]
        assert degraded and degraded[0]["attrs"]["rung"] == "shard-to-pool"
        assert merged.counters["degraded"] == 1
        assert merged.counter_labels["degraded"] == {
            json.dumps({"rung": "shard-to-pool"}): 1}


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #
class TestCLI:
    def _run_traced_sweep(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "st"
        code = main(["sweep", "theorem1", "--scale", "0.05", "--runs", "2",
                     "--store", str(store), "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace: {store / 'obs'}" in out
        return store

    def test_sweep_trace_auto_requires_store(self, capsys):
        from repro.cli import main

        assert main(["sweep", "theorem1", "--trace"]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_sweep_trace_then_obs_summarize_and_validate(self, tmp_path,
                                                         capsys):
        from repro.cli import main

        store = self._run_traced_sweep(tmp_path, capsys)
        assert main(["obs", "validate", "--trace", str(store / "obs")]) == 0
        assert "metric" in capsys.readouterr().out

        assert main(["obs", "summarize", "--trace", str(store / "obs")]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "cell.compute" in out
        assert "counter.cells.computed" in out

        assert main(["obs", "summarize", "--trace", str(store / "obs"),
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["counters"]["cells.computed"] >= 1
        assert summary["schema"] == obs_trace.TRACE_SCHEMA_VERSION
        # the CLI left this process disarmed
        assert not obs_trace.enabled()

    def test_obs_summarize_empty_dir_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs", "summarize",
                     "--trace", str(tmp_path / "nothing")]) == 1
        assert main(["obs", "validate",
                     "--trace", str(tmp_path / "nothing")]) == 1

    def test_store_info_json_summary_and_record(self, tmp_path, capsys):
        from repro.cli import main

        store = self._run_traced_sweep(tmp_path, capsys)
        assert main(["store", "info", "--store", str(store), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["entries"] >= 1
        assert info["trace_files"] >= 1
        assert info["failed_cells"] == []

        key = ResultStore(store).keys()[0]
        assert main(["store", "info", "--store", str(store), key,
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["key"] == key
        assert isinstance(record["config"], dict)
        assert isinstance(record["provenance"], dict)

    def test_store_info_plain_shows_trace_aggregates(self, tmp_path, capsys):
        from repro.cli import main

        store = self._run_traced_sweep(tmp_path, capsys)
        assert main(["store", "info", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "trace_lines" in out and "trace_counters" in out
        assert "cells.computed=" in out
