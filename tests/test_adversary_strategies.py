"""Tests for the concrete adversary strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.base import NullAdversary
from repro.adversary.strategies import (
    ADVERSARY_REGISTRY,
    BalancingAdversary,
    HidingAdversary,
    RandomCorruptionAdversary,
    RevivingAdversary,
    StickyAdversary,
    SwitchingAdversary,
    TargetedMedianAdversary,
    make_adversary,
)


ADMISSIBLE = np.array([0, 1, 2, 3])


class TestMakeAdversary:
    def test_registry_contents(self):
        for name in ("null", "balancing", "reviving", "hiding", "switching",
                     "random", "targeted-median", "sticky"):
            assert name in ADVERSARY_REGISTRY

    def test_null_by_name(self):
        assert isinstance(make_adversary("null"), NullAdversary)

    def test_zero_budget_is_null(self):
        assert isinstance(make_adversary("balancing", budget=0), NullAdversary)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_adversary("nope", budget=1)

    def test_kwargs_forwarded(self):
        adv = make_adversary("reviving", budget=2, delay=7, target_value=3)
        assert adv.delay == 7 and adv.target_value == 3


class TestBalancingAdversary:
    def test_moves_leader_towards_runner_up(self, rng):
        adv = BalancingAdversary(budget=10)
        values = np.array([0] * 30 + [1] * 10, dtype=np.int64)
        out = adv.corrupt(values, 1, ADMISSIBLE, rng)
        # gap is 20, adversary should move up to 10 processes from 0 to 1
        assert np.count_nonzero(out == 1) > 10
        assert np.count_nonzero(out == 1) <= 20

    def test_respects_budget(self, rng):
        adv = BalancingAdversary(budget=3)
        values = np.array([0] * 35 + [1] * 5, dtype=np.int64)
        out = adv.corrupt(values, 1, ADMISSIBLE, rng)
        assert np.count_nonzero(out != values) <= 3

    def test_does_nothing_when_balanced(self, rng):
        adv = BalancingAdversary(budget=5)
        values = np.array([0] * 20 + [1] * 20, dtype=np.int64)
        out = adv.corrupt(values, 1, ADMISSIBLE, rng)
        assert np.array_equal(out, values)

    def test_reseeds_after_consensus(self, rng):
        adv = BalancingAdversary(budget=4)
        values = np.zeros(30, dtype=np.int64)
        out = adv.corrupt(values, 1, ADMISSIBLE, rng)
        assert np.count_nonzero(out != 0) == 4

    def test_consensus_single_admissible_value_noop(self, rng):
        adv = BalancingAdversary(budget=4)
        values = np.zeros(30, dtype=np.int64)
        out = adv.corrupt(values, 1, np.array([0]), rng)
        assert np.array_equal(out, values)

    def test_maintains_balance_over_time(self, rng):
        # with a large budget the adversary should keep the two-bin gap small
        from repro.core.median_rule import MedianRule
        adv = BalancingAdversary(budget=200)
        rule = MedianRule()
        values = np.array([0] * 100 + [1] * 100, dtype=np.int64)
        for t in range(1, 30):
            values = adv.corrupt(values, t, np.array([0, 1]), rng)
            values = rule.step(values, rng)
        counts = np.bincount(values, minlength=2)
        assert abs(int(counts[0]) - int(counts[1])) <= 2 * 200


class TestRevivingAdversary:
    def test_waits_for_delay(self, rng):
        adv = RevivingAdversary(budget=2, delay=5, target_value=0)
        values = np.ones(10, dtype=np.int64)
        out = adv.corrupt(values, 3, ADMISSIBLE, rng)
        assert np.array_equal(out, values)

    def test_acts_after_delay(self, rng):
        adv = RevivingAdversary(budget=2, delay=5, target_value=0)
        values = np.ones(10, dtype=np.int64)
        out = adv.corrupt(values, 5, ADMISSIBLE, rng)
        assert np.count_nonzero(out == 0) == 2

    def test_default_target_is_minimum_admissible(self, rng):
        adv = RevivingAdversary(budget=1)
        values = np.full(10, 3, dtype=np.int64)
        out = adv.corrupt(values, 0, ADMISSIBLE, rng)
        assert np.count_nonzero(out == 0) == 1

    def test_noop_when_everything_is_target(self, rng):
        adv = RevivingAdversary(budget=3, target_value=0)
        values = np.zeros(10, dtype=np.int64)
        out = adv.corrupt(values, 0, ADMISSIBLE, rng)
        assert np.array_equal(out, values)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            RevivingAdversary(budget=1, delay=-1)


class TestHidingAdversary:
    def test_pins_fixed_victims_every_round(self, rng):
        adv = HidingAdversary(budget=3, hidden_value=3)
        values = np.zeros(20, dtype=np.int64)
        out1 = adv.corrupt(values, 1, ADMISSIBLE, rng)
        victims1 = set(np.flatnonzero(out1 == 3).tolist())
        out2 = adv.corrupt(np.zeros(20, dtype=np.int64), 2, ADMISSIBLE, rng)
        victims2 = set(np.flatnonzero(out2 == 3).tolist())
        assert victims1 == victims2
        assert len(victims1) == 3

    def test_default_hidden_value_is_max(self, rng):
        adv = HidingAdversary(budget=2)
        out = adv.corrupt(np.zeros(10, dtype=np.int64), 1, ADMISSIBLE, rng)
        assert np.count_nonzero(out == 3) == 2

    def test_reset_reselects_victims(self, rng):
        adv = HidingAdversary(budget=2, hidden_value=1)
        adv.corrupt(np.zeros(50, dtype=np.int64), 1, ADMISSIBLE, rng)
        first = set(adv._victims.tolist())
        adv.reset()
        adv.corrupt(np.zeros(50, dtype=np.int64), 1, ADMISSIBLE, rng)
        # victims re-drawn (may coincide with tiny probability; 2-of-50 twice equal is unlikely)
        assert adv._victims is not None
        assert len(adv._victims) == 2
        assert adv.ledger.total == 2


class TestSwitchingAdversary:
    def test_alternates_extremes(self, rng):
        adv = SwitchingAdversary(budget=4)
        values = np.full(20, 2, dtype=np.int64)
        out_even = adv.corrupt(values, 0, ADMISSIBLE, rng)
        out_odd = adv.corrupt(values, 1, ADMISSIBLE, rng)
        assert np.count_nonzero(out_even == 0) == 4
        assert np.count_nonzero(out_odd == 3) == 4

    def test_budget_respected(self, rng):
        adv = SwitchingAdversary(budget=2)
        out = adv.corrupt(np.full(10, 1, dtype=np.int64), 0, ADMISSIBLE, rng)
        assert np.count_nonzero(out != 1) <= 2


class TestRandomCorruptionAdversary:
    def test_only_admissible_values_written(self, rng):
        adv = RandomCorruptionAdversary(budget=5)
        values = np.full(30, 9, dtype=np.int64)
        out = adv.corrupt(values, 1, ADMISSIBLE, rng)
        changed = out[out != 9]
        assert set(changed.tolist()) <= set(ADMISSIBLE.tolist())
        assert changed.shape[0] <= 5

    def test_budget_larger_than_n(self, rng):
        adv = RandomCorruptionAdversary(budget=100)
        values = np.zeros(10, dtype=np.int64)
        out = adv.corrupt(values, 1, ADMISSIBLE, rng)
        assert out.shape == (10,)
        assert adv.ledger.verify()


class TestTargetedMedianAdversary:
    def test_targets_median_holders(self, rng):
        adv = TargetedMedianAdversary(budget=3)
        values = np.array([0] * 5 + [2] * 10 + [3] * 5, dtype=np.int64)
        out = adv.corrupt(values, 1, ADMISSIBLE, rng)
        # median value is 2; some of its holders pushed to an extreme (0 or 3)
        assert np.count_nonzero(out == 2) >= 7
        assert np.count_nonzero(out != values) <= 3
        changed_to = set(out[out != values].tolist())
        assert changed_to <= {0, 3}

    def test_works_when_no_median_holders(self, rng):
        # degenerate: all values equal (median holders = everyone)
        adv = TargetedMedianAdversary(budget=2)
        out = adv.corrupt(np.zeros(10, dtype=np.int64), 1, ADMISSIBLE, rng)
        assert np.count_nonzero(out != 0) <= 2


class TestStickyAdversary:
    def test_victims_fixed_across_rounds(self, rng):
        adv = StickyAdversary(budget=3, pinned_value=2)
        out1 = adv.corrupt(np.zeros(30, dtype=np.int64), 1, ADMISSIBLE, rng)
        out2 = adv.corrupt(np.zeros(30, dtype=np.int64), 2, ADMISSIBLE, rng)
        assert np.array_equal(np.flatnonzero(out1 == 2), np.flatnonzero(out2 == 2))

    def test_default_pin_is_max_value(self, rng):
        adv = StickyAdversary(budget=2)
        out = adv.corrupt(np.zeros(10, dtype=np.int64), 1, ADMISSIBLE, rng)
        assert np.count_nonzero(out == 3) == 2

    def test_ledger_within_budget_over_many_rounds(self, rng):
        adv = StickyAdversary(budget=2, pinned_value=1)
        values = np.zeros(20, dtype=np.int64)
        for t in range(1, 20):
            values = adv.corrupt(values, t, ADMISSIBLE, rng)
        assert adv.ledger.verify()
        assert adv.ledger.max_in_round() <= 2


class TestVictimsPerBin:
    """The count-space uniform victim draw, including the huge-n fallback."""

    def test_matches_counts_and_size(self):
        from repro.adversary.strategies import _victims_per_bin

        rng = np.random.default_rng(0)
        counts = np.array([50, 0, 30, 20], dtype=np.int64)
        out = _victims_per_bin(counts, 25, rng)
        assert int(out.sum()) == 25
        assert np.all(out >= 0) and np.all(out <= counts)
        assert out[1] == 0  # empty bins never yield victims

    def test_huge_population_fallback_is_exact_in_law(self, monkeypatch):
        # force the sequential path at small scale and compare its law with
        # numpy's multivariate hypergeometric via per-bin means (hypergeometric
        # mean = size * c_i / n, CLT-bounded)
        import repro.adversary.strategies as strategies

        counts = np.array([60, 25, 15], dtype=np.int64)
        size, reps = 10, 3000
        rng = np.random.default_rng(1)
        monkeypatch.setattr(strategies, "_MVH_POPULATION_LIMIT", 0)
        draws = np.stack([strategies._victims_per_bin(counts, size, rng)
                          for _ in range(reps)])
        assert np.all(draws.sum(axis=1) == size)
        expected = size * counts / counts.sum()
        se = draws.std(axis=0, ddof=1) / np.sqrt(reps)
        assert np.all(np.abs(draws.mean(axis=0) - expected) <= 6 * se + 1e-9)

    def test_population_at_mvh_limit_runs(self):
        from repro.adversary.strategies import _victims_per_bin

        rng = np.random.default_rng(2)
        n = 1_000_000_000
        counts = np.full(4, n // 4, dtype=np.int64)
        out = _victims_per_bin(counts, 100, rng)
        assert int(out.sum()) == 100 and np.all(out >= 0)

    def test_numpy_refusal_threshold_is_pinned(self):
        # the exact-boundary pin for _MVH_POPULATION_LIMIT: numpy's sampler
        # accepts total = limit - 1 and refuses total = limit, so the
        # `total < limit` branch uses numpy on exactly the populations it
        # can handle and the fallback on exactly the ones it cannot
        from repro.adversary.strategies import _MVH_POPULATION_LIMIT

        rng = np.random.default_rng(3)
        below = np.array([_MVH_POPULATION_LIMIT - 2, 1], dtype=np.int64)
        at = np.array([_MVH_POPULATION_LIMIT - 1, 1], dtype=np.int64)
        assert int(rng.multivariate_hypergeometric(below, 3).sum()) == 3
        with pytest.raises(ValueError):
            rng.multivariate_hypergeometric(at, 3)

    def test_fallback_at_exact_boundary_population(self):
        # total == _MVH_POPULATION_LIMIT exactly: must route to the
        # vectorized fallback (numpy would raise, see the pin above) and
        # still be a valid without-replacement draw
        from repro.adversary.strategies import (
            _MVH_POPULATION_LIMIT,
            _victims_per_bin,
        )

        rng = np.random.default_rng(4)
        counts = np.array([_MVH_POPULATION_LIMIT - 7, 0, 5, 2],
                          dtype=np.int64)
        out = _victims_per_bin(counts, 50, rng)
        assert int(out.sum()) == 50
        assert np.all(out >= 0) and np.all(out <= counts)
        assert out[1] == 0

    def test_forced_fallback_matches_hypergeometric_pmf(self, monkeypatch):
        # collision-heavy regime (size comparable to total): the rejection
        # resampling must still produce the exact multivariate
        # hypergeometric law; chi-square against the closed-form pmf
        from math import comb

        import repro.adversary.strategies as strategies

        counts = np.array([4, 3], dtype=np.int64)
        total, size, reps = 7, 3, 4000
        rng = np.random.default_rng(5)
        monkeypatch.setattr(strategies, "_MVH_POPULATION_LIMIT", 0)
        draws = np.array([strategies._victims_per_bin(counts, size, rng)[0]
                          for _ in range(reps)])
        observed = np.bincount(draws, minlength=size + 1)
        pmf = np.array([comb(4, k) * comb(3, size - k) / comb(total, size)
                        for k in range(size + 1)])
        expected = reps * pmf
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        # 3 degrees of freedom; chi2 > 16.3 has p < 0.001
        assert chi2 < 16.3
