"""Tests for repro.core.state: Configuration and its encodings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import (
    Configuration,
    canonicalize_values,
    loads_from_values,
    support,
    values_from_loads,
)


class TestLoadsAndValues:
    def test_loads_from_values_counts(self):
        assert loads_from_values([1, 1, 2, 5]) == {1: 2, 2: 1, 5: 1}

    def test_loads_from_values_single_value(self):
        assert loads_from_values([7, 7, 7]) == {7: 3}

    def test_values_from_loads_sorted_expansion(self):
        assert values_from_loads({2: 1, 1: 2}).tolist() == [1, 1, 2]

    def test_values_from_loads_skips_zero_counts(self):
        assert values_from_loads({3: 0, 5: 2}).tolist() == [5, 5]

    def test_values_from_loads_rejects_negative(self):
        with pytest.raises(ValueError):
            values_from_loads({1: -1})

    def test_values_from_loads_empty(self):
        assert values_from_loads({}).shape == (0,)

    def test_roundtrip_loads_values(self):
        loads = {0: 3, 4: 2, 9: 5}
        assert loads_from_values(values_from_loads(loads)) == loads

    def test_support_sorted_unique(self):
        assert support([5, 1, 5, 3]).tolist() == [1, 3, 5]

    def test_canonicalize_preserves_order(self):
        assert canonicalize_values([10, 3, 10, 99]).tolist() == [1, 0, 1, 2]

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            loads_from_values(np.zeros((2, 2)))


class TestConfigurationConstruction:
    def test_from_values(self):
        cfg = Configuration.from_values([3, 1, 2])
        assert cfg.n == 3
        assert cfg.values.tolist() == [3, 1, 2]

    def test_values_are_readonly(self):
        cfg = Configuration.from_values([1, 2, 3])
        with pytest.raises(ValueError):
            cfg.values[0] = 9

    def test_from_loads(self):
        cfg = Configuration.from_loads({1: 2, 5: 1})
        assert cfg.loads == {1: 2, 5: 1}

    def test_all_distinct(self):
        cfg = Configuration.all_distinct(10)
        assert cfg.num_values == 10
        assert cfg.values.tolist() == list(range(10))

    def test_all_distinct_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Configuration.all_distinct(0)

    def test_two_bins_counts(self):
        cfg = Configuration.two_bins(10, minority=3, low=0, high=1)
        assert cfg.count_value(0) == 3
        assert cfg.count_value(1) == 7

    def test_two_bins_all_in_one_bin(self):
        cfg = Configuration.two_bins(5, minority=0)
        assert cfg.num_values == 1

    def test_two_bins_rejects_bad_minority(self):
        with pytest.raises(ValueError):
            Configuration.two_bins(5, minority=6)

    def test_uniform_random_shape_and_range(self, rng):
        cfg = Configuration.uniform_random(100, 7, rng)
        assert cfg.n == 100
        assert set(cfg.support.tolist()) <= set(range(7))

    def test_uniform_random_custom_pool(self, rng):
        cfg = Configuration.uniform_random(50, 3, rng, values=[10, 20, 30])
        assert set(cfg.support.tolist()) <= {10, 20, 30}

    def test_uniform_random_pool_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            Configuration.uniform_random(50, 3, rng, values=[10, 20])


class TestConfigurationQueries:
    def test_num_values_and_support(self):
        cfg = Configuration.from_values([5, 5, 2, 9])
        assert cfg.num_values == 3
        assert cfg.support.tolist() == [2, 5, 9]

    def test_is_consensus_true(self):
        assert Configuration.from_values([4, 4, 4]).is_consensus

    def test_is_consensus_false(self):
        assert not Configuration.from_values([4, 4, 5]).is_consensus

    def test_median_value_odd(self):
        cfg = Configuration.from_values([10, 1, 5])
        assert cfg.median_value() == 5

    def test_median_value_even_takes_lower_central(self):
        cfg = Configuration.from_values([1, 2, 3, 4])
        assert cfg.median_value() == 2

    def test_median_value_satisfies_definition(self, rng):
        # Section 2.1: at most n/2 balls strictly below and strictly above m_t.
        cfg = Configuration.uniform_random(101, 9, rng)
        m = cfg.median_value()
        below = int(np.count_nonzero(cfg.values < m))
        above = int(np.count_nonzero(cfg.values > m))
        assert below <= cfg.n / 2
        assert above <= cfg.n / 2

    def test_majority_value_tie_breaks_low(self):
        cfg = Configuration.from_values([1, 1, 2, 2])
        assert cfg.majority_value() == 1

    def test_agreement_fraction(self):
        cfg = Configuration.from_values([1, 1, 1, 2])
        assert cfg.agreement_fraction() == pytest.approx(0.75)

    def test_len(self):
        assert len(Configuration.all_distinct(17)) == 17

    def test_equality_and_hash(self):
        a = Configuration.from_values([1, 2, 3])
        b = Configuration.from_values([1, 2, 3])
        c = Configuration.from_values([1, 2, 4])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_with_non_configuration(self):
        assert Configuration.from_values([1]) != "not a configuration"


class TestConfigurationTransforms:
    def test_canonicalized(self):
        cfg = Configuration.from_values([100, 7, 100])
        assert cfg.canonicalized().values.tolist() == [1, 0, 1]

    def test_with_values_does_not_mutate_original(self):
        cfg = Configuration.from_values([0, 0, 0])
        out = cfg.with_values([1], [9])
        assert cfg.values.tolist() == [0, 0, 0]
        assert out.values.tolist() == [0, 9, 0]

    def test_mapped(self):
        cfg = Configuration.from_values([1, 2, 1])
        out = cfg.mapped({1: 10, 2: 20})
        assert out.values.tolist() == [10, 20, 10]

    def test_copy_values_is_mutable_copy(self):
        cfg = Configuration.from_values([1, 2])
        arr = cfg.copy_values()
        arr[0] = 99
        assert cfg.values[0] == 1

    def test_sorted_values(self):
        cfg = Configuration.from_values([3, 1, 2])
        assert cfg.sorted_values().tolist() == [1, 2, 3]
