"""Tests for repro.experiments.workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import Configuration
from repro.experiments.workloads import (
    WORKLOAD_REGISTRY,
    all_distinct_workload,
    blocks_workload,
    make_workload,
    planted_majority_workload,
    two_bins_workload,
    uniform_random_workload,
    zipf_workload,
)


class TestRegistry:
    def test_all_names_present(self):
        for name in ("all-distinct", "two-bins", "uniform-random", "blocks",
                     "zipf", "planted-majority"):
            assert name in WORKLOAD_REGISTRY

    def test_make_workload_unknown(self):
        with pytest.raises(KeyError):
            make_workload("nope", n=10)

    def test_make_workload_dispatch(self):
        cfg = make_workload("all-distinct", n=12)
        assert isinstance(cfg, Configuration) and cfg.n == 12


class TestFixedWorkloads:
    def test_all_distinct(self):
        cfg = all_distinct_workload(20)
        assert cfg.num_values == 20

    def test_two_bins_default_balanced(self):
        cfg = two_bins_workload(20)
        assert cfg.count_value(0) == 10 and cfg.count_value(1) == 10

    def test_two_bins_custom(self):
        cfg = two_bins_workload(20, minority=3, low=5, high=9)
        assert cfg.count_value(5) == 3 and cfg.count_value(9) == 17

    def test_blocks_equal_loads(self):
        cfg = blocks_workload(100, 4)
        loads = list(cfg.loads.values())
        assert loads == [25, 25, 25, 25]

    def test_blocks_near_equal_when_not_divisible(self):
        cfg = blocks_workload(10, 3)
        loads = sorted(cfg.loads.values())
        assert sum(loads) == 10
        assert max(loads) - min(loads) <= 1

    def test_blocks_m_equals_n(self):
        cfg = blocks_workload(8, 8)
        assert cfg.num_values == 8

    def test_blocks_invalid_m(self):
        with pytest.raises(ValueError):
            blocks_workload(10, 0)
        with pytest.raises(ValueError):
            blocks_workload(10, 11)


class TestRandomWorkloads:
    def test_uniform_random_factory(self, rng):
        factory = uniform_random_workload(200, 6)
        cfg = factory(rng)
        assert cfg.n == 200
        assert set(cfg.support.tolist()) <= set(range(6))

    def test_uniform_random_loads_roughly_equal(self, rng):
        factory = uniform_random_workload(6000, 6)
        cfg = factory(rng)
        loads = np.array(list(cfg.loads.values()))
        assert np.all(np.abs(loads - 1000) < 200)

    def test_uniform_random_invalid_m(self):
        with pytest.raises(ValueError):
            uniform_random_workload(10, 0)

    def test_zipf_skewed_towards_small_values(self, rng):
        factory = zipf_workload(5000, 10, exponent=1.5)
        cfg = factory(rng)
        loads = cfg.loads
        assert loads.get(0, 0) > loads.get(9, 0)

    def test_zipf_invalid(self):
        with pytest.raises(ValueError):
            zipf_workload(10, 0)
        with pytest.raises(ValueError):
            zipf_workload(10, 3, exponent=0)

    def test_planted_majority_bias(self, rng):
        factory = planted_majority_workload(4000, 5, bias=0.5, planted_value=0)
        cfg = factory(rng)
        frac = cfg.count_value(0) / cfg.n
        assert 0.45 < frac < 0.75   # 0.5 planted + share of the uniform remainder

    def test_planted_majority_invalid(self):
        with pytest.raises(ValueError):
            planted_majority_workload(10, 1)
        with pytest.raises(ValueError):
            planted_majority_workload(10, 3, bias=1.5)

    def test_factories_differ_across_rngs(self):
        factory = uniform_random_workload(50, 4)
        a = factory(np.random.default_rng(1))
        b = factory(np.random.default_rng(2))
        assert a != b

    def test_factories_reproducible_for_same_rng_state(self):
        factory = uniform_random_workload(50, 4)
        a = factory(np.random.default_rng(3))
        b = factory(np.random.default_rng(3))
        assert a == b
