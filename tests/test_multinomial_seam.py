"""The exact-multinomial kernel seam: resolution, fallback, and sampling law.

Four concerns, mirroring ISSUE 6's satellite list:

* **selection plumbing** — ``auto → compiled → numpy`` resolution, the
  ``REPRO_MULTINOMIAL_KERNEL`` env override, :func:`set_multinomial_backend`
  precedence, and the guarantee that a broken provider degrades to NumPy
  with exactly one structured :class:`MultinomialKernelWarning` (and that
  importing :mod:`repro.engine` never triggers detection at all);
* **invariants** — row sums preserved exactly, zero-count rows exactly
  zero, zero-probability columns never receive mass, on both backends and
  every seam entry point;
* **marginal law** — chi-square goodness of fit of compiled single-cell
  marginals against the exact binomial law, over a small (R, m) grid;
* **cross-backend agreement** — the two backends are bitwise *different*
  streams but statistically equal: mean flows match within Monte-Carlo
  error, and the banded sampler matches the dense cascade in law.

Seeds fixed throughout; thresholds sized so a correct sampler passes with
wide margin (p-value floors at 1e-4 over a handful of cells) while an
off-by-one in a conditional probability fails immediately.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.engine import _multinomial as mnk
from repro.engine._multinomial import (
    BACKEND_CHOICES,
    ENV_VAR,
    KernelInfo,
    MultinomialKernelWarning,
    resolve_multinomial_backend,
    sample_flows,
    sample_flows_batch,
    sample_scatter_banded,
    scatter_column_sums,
    scatter_column_sums_batch,
    set_multinomial_backend,
)

HAS_COMPILED = resolve_multinomial_backend("compiled").resolved == "compiled"

BACKENDS = ["numpy"] + (["compiled"] if HAS_COMPILED else [])

needs_compiled = pytest.mark.skipif(
    not HAS_COMPILED, reason="no compiled multinomial provider on this host")


@pytest.fixture(autouse=True)
def _clean_backend_config(monkeypatch):
    """Each test starts from pristine resolution state (env wins, no override)."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_multinomial_backend(None)
    yield
    set_multinomial_backend(None)


# ---------------------------------------------------------------------- #
# selection plumbing
# ---------------------------------------------------------------------- #
class TestResolution:
    def test_numpy_always_resolves(self):
        info = resolve_multinomial_backend("numpy")
        assert info == KernelInfo("numpy", "numpy", "numpy")
        assert info.kernel_id == "numpy"

    def test_auto_resolves_to_something_valid(self):
        info = resolve_multinomial_backend("auto")
        assert info.resolved in ("compiled", "numpy")
        assert info.kernel_id in ("numpy", "compiled:numba", "compiled:cc")

    def test_env_override_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_multinomial_backend().resolved == "numpy"

    def test_set_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "auto")
        set_multinomial_backend("numpy")
        assert resolve_multinomial_backend().resolved == "numpy"

    def test_explicit_argument_wins_over_everything(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        set_multinomial_backend("numpy")
        info = resolve_multinomial_backend("auto")
        assert info.requested == "auto"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown multinomial backend"):
            resolve_multinomial_backend("cuda")
        with pytest.raises(ValueError, match="unknown multinomial backend"):
            set_multinomial_backend("cuda")
        monkeypatch.setenv(ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="unknown multinomial backend"):
            resolve_multinomial_backend()

    def test_choices_are_documented(self):
        assert set(BACKEND_CHOICES) == {"auto", "compiled", "numpy", "numba",
                                        "cc"}

    @needs_compiled
    def test_kernel_id_is_provenance_grade(self):
        assert resolve_multinomial_backend("compiled").kernel_id.startswith(
            "compiled:")


class TestFallback:
    """A broken provider degrades to NumPy: one warning, correct results."""

    def test_broken_providers_fall_back_with_single_warning(self, monkeypatch):
        # poison the factory table so every compiled provider fails detection
        monkeypatch.setattr(mnk, "_PROVIDER_FACTORIES", {
            name: _raise for name in mnk._PROVIDER_FACTORIES})
        monkeypatch.setattr(mnk, "_providers", {})
        monkeypatch.setattr(mnk, "_provider_errors", {})
        monkeypatch.setattr(mnk, "_warned", set())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = resolve_multinomial_backend("compiled")
            second = resolve_multinomial_backend("compiled")
        assert first.resolved == "numpy" == second.resolved
        assert "deliberately broken" in first.detail
        kernel_warnings = [w for w in caught
                           if issubclass(w.category, MultinomialKernelWarning)]
        assert len(kernel_warnings) == 1  # warned once, not per call
        # sampling still works end to end on the fallback
        rng = np.random.default_rng(3)
        flows = sample_flows(np.array([9, 4]), np.full((2, 3), 1 / 3), rng,
                             backend="compiled")
        assert flows.sum() == 13

    def test_import_engine_does_not_trigger_detection(self):
        # detection state is only populated by sampling/resolution calls;
        # a fresh interpreter importing repro.engine must not compile
        # anything or warn (proven end-to-end by the no-numba CI leg; here
        # we pin the module-level contract that makes it true)
        import subprocess
        import sys
        code = (
            "import sys, warnings\n"
            "warnings.simplefilter('error')\n"   # any warning -> failure
            "import repro.engine\n"
            "mnk = sys.modules['repro.engine._multinomial']\n"
            "assert mnk._providers == {}, 'import ran feature detection'\n"
            "print('clean')\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout


def _raise(*a, **k):
    raise RuntimeError("deliberately broken provider")


# ---------------------------------------------------------------------- #
# invariants, both backends, every entry point
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestInvariants:
    def _rows(self, seed=0, N=24, m=7):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 500, N).astype(np.int64)
        counts[::4] = 0                      # interleave zero-count rows
        P = rng.dirichlet(np.ones(m), N)
        P[:, 2] = 0.0                        # a dead column
        P /= P.sum(axis=1, keepdims=True)
        return counts, P

    def test_sample_flows_row_sums_and_zero_rows(self, backend):
        counts, P = self._rows()
        flows = sample_flows(counts, P, np.random.default_rng(1),
                             backend=backend)
        assert flows.dtype == np.int64
        np.testing.assert_array_equal(flows.sum(axis=1), counts)
        assert (flows[counts == 0] == 0).all()
        assert (flows[:, 2] == 0).all()      # dead column gets no mass
        assert (flows >= 0).all()

    def test_sample_flows_batch_matches_contract(self, backend):
        counts, P = self._rows(seed=5, N=24, m=6)
        R, m = 4, 6
        cb = counts[:R * m].reshape(R, m) % 97
        Qb = P[:m][None].repeat(R, axis=0)
        flows = sample_flows_batch(cb, Qb, np.random.default_rng(2),
                                   backend=backend)
        assert flows.shape == (R, m, m)
        np.testing.assert_array_equal(flows.sum(axis=2), cb)

    def test_scatter_sums_conserve_population(self, backend):
        counts, P = self._rows(seed=9, N=6, m=6)
        sums = scatter_column_sums(counts[:6], P[:6],
                                   np.random.default_rng(3), backend=backend)
        assert sums.sum() == counts[:6].sum()
        cb = np.abs(counts[:6])[None].repeat(5, axis=0)
        cb[1] = 0
        cb[1, 0] = 11                        # sparse row for the filter path
        Qb = P[:6][None].repeat(5, axis=0)
        out = scatter_column_sums_batch(cb, Qb, np.random.default_rng(4),
                                        backend=backend)
        np.testing.assert_array_equal(out.sum(axis=1), cb.sum(axis=1))

    def test_banded_stay_profile_is_identity(self, backend):
        cb = np.array([[3, 0, 14, 2], [1, 1, 1, 1]], dtype=np.int64)
        z = np.zeros(4)
        out = sample_scatter_banded(cb, z, z, np.ones(4),
                                    np.random.default_rng(5), backend=backend)
        np.testing.assert_array_equal(out, cb)

    def test_banded_conserves_population(self, backend):
        rng = np.random.default_rng(6)
        cb = rng.integers(0, 200, (8, 9)).astype(np.int64)
        lo = rng.random(9) * 0.1
        hi = rng.random(9) * 0.1
        diag = rng.random(9)
        out = sample_scatter_banded(cb, lo, hi, diag,
                                    np.random.default_rng(7), backend=backend)
        np.testing.assert_array_equal(out.sum(axis=1), cb.sum(axis=1))
        assert (out >= 0).all()

    def test_within_backend_seed_reproducibility(self, backend):
        counts, P = self._rows(seed=11)
        a = sample_flows(counts, P, np.random.default_rng(42), backend=backend)
        b = sample_flows(counts, P, np.random.default_rng(42), backend=backend)
        np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------- #
# marginal law: chi-square against the exact binomial marginals
# ---------------------------------------------------------------------- #
def _chi_square_pvalue(observed: np.ndarray, expected: np.ndarray) -> float:
    """Right-tail chi-square p-value via the regularized gamma function."""
    from math import erfc, exp, lgamma, log, sqrt

    mask = expected > 5
    if mask.sum() < 2:
        return 1.0
    stat = float(((observed[mask] - expected[mask]) ** 2
                  / expected[mask]).sum())
    k = int(mask.sum()) - 1
    # Wilson–Hilferty normal approximation of the chi-square tail
    z = ((stat / k) ** (1 / 3) - (1 - 2 / (9 * k))) / sqrt(2 / (9 * k))
    return 0.5 * erfc(z / sqrt(2))


@needs_compiled
@pytest.mark.parametrize("n,p", [(50, 0.3), (400, 0.07), (2000, 0.5),
                                 (10 ** 5, 0.015)])
def test_compiled_marginal_matches_binomial_law(n, p):
    """Each multinomial cell is marginally Binomial(n, p_j): chi-square the
    compiled sampler's first cell over repeated draws (covers both the
    inversion and the BTRS regime of the compiled binomial sampler)."""
    reps = 600
    pvals = np.array([p, 1.0 - p])
    counts = np.full(reps, n, dtype=np.int64)
    P = np.tile(pvals, (reps, 1))
    flows = sample_flows(counts, P, np.random.default_rng(123),
                         backend="compiled")
    draws = flows[:, 0]
    lo_edge = max(0, int(n * p - 6 * np.sqrt(n * p * (1 - p)) - 2))
    hi_edge = min(n, int(n * p + 6 * np.sqrt(n * p * (1 - p)) + 2))
    edges = np.linspace(lo_edge, hi_edge, 12).astype(np.int64)
    observed, _ = np.histogram(draws, bins=edges)
    # exact bin probabilities from the binomial pmf (log-space, stable)
    from math import lgamma

    def log_pmf(k):
        return (lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)
                + k * np.log(p) + (n - k) * np.log1p(-p))

    ks = np.arange(0, n + 1) if n <= 2000 else np.arange(lo_edge, hi_edge + 1)
    pmf = np.exp([log_pmf(int(k)) for k in ks])
    cell_p = np.array([pmf[(ks >= a) & (ks < b)].sum()
                       for a, b in zip(edges[:-1], edges[1:])])
    expected = reps * cell_p
    assert _chi_square_pvalue(observed, expected) > 1e-4


@needs_compiled
@pytest.mark.parametrize("R,m", [(40, 3), (25, 6)])
def test_compiled_mean_flows_match_numpy(R, m):
    """Cross-backend statistical equality of full flow tensors: mean flows
    over many draws agree within z < 5 Monte-Carlo bands, cell-wise."""
    rng = np.random.default_rng(17)
    counts = rng.integers(50, 400, (R, m)).astype(np.int64)
    Q = rng.dirichlet(np.ones(m), (R, m))
    reps = 60
    acc = {}
    for backend in ("numpy", "compiled"):
        total = np.zeros((R, m, m))
        for rep in range(reps):
            total += sample_flows_batch(counts, Q,
                                        np.random.default_rng(1000 + rep),
                                        backend=backend)
        acc[backend] = total / reps
    expected = counts[..., None] * Q
    var = counts[..., None] * Q * (1 - Q) / reps
    sd = np.sqrt(np.maximum(var, 1e-12))
    for backend in ("numpy", "compiled"):
        z = np.abs(acc[backend] - expected) / sd
        assert z[var > 1e-9].max() < 5.5, f"{backend} marginal means drifted"


@needs_compiled
def test_banded_matches_dense_cascade_in_law():
    """The pooled banded walker and the dense cascade sample the same law:
    compare mean new-occupancy and variance over repeated rounds for a real
    median-rule profile."""
    from repro.core.median_rule import MedianRule
    from repro.engine.occupancy import (
        occupancy_outcome_profiles,
        occupancy_transition_matrix_batch,
    )

    rng = np.random.default_rng(29)
    R, m, n = 24, 12, 3000
    counts = rng.multinomial(n, rng.dirichlet(np.ones(m)), size=R)
    rule = MedianRule()
    Q = occupancy_transition_matrix_batch(rule, counts)
    lo, hi, diag = occupancy_outcome_profiles(rule, counts)
    reps = 150
    dense = np.zeros((R, m))
    banded = np.zeros((R, m))
    for rep in range(reps):
        dense += scatter_column_sums_batch(
            counts, Q, np.random.default_rng(5000 + rep), backend="compiled")
        banded += sample_scatter_banded(
            counts, lo, hi, diag, np.random.default_rng(6000 + rep),
            backend="compiled")
    dense /= reps
    banded /= reps
    # exact mean: counts @ Q per run
    expected = np.einsum("ra,rab->rb", counts.astype(float), Q)
    sd = np.sqrt(np.maximum(
        np.einsum("ra,rab->rb", counts.astype(float), Q * (1 - Q)), 1e-9)
        / reps)
    assert (np.abs(dense - expected) / sd).max() < 6.0
    assert (np.abs(banded - expected) / sd).max() < 6.0


@needs_compiled
def test_banded_numpy_reference_agrees_with_compiled():
    """The independently-written NumPy banded reference and the compiled
    walker agree in mean occupancy (mutual certification of the two
    implementations of the pooled-hazard scheme)."""
    rng = np.random.default_rng(31)
    R, m = 16, 8
    counts = rng.integers(100, 800, (R, m)).astype(np.int64)
    lo = rng.random(m) * 0.05
    hi = rng.random(m) * 0.05
    diag = 0.5 + rng.random(m) * 0.5
    reps = 200
    acc = {}
    for backend in ("numpy", "compiled"):
        total = np.zeros((R, m))
        for rep in range(reps):
            total += sample_scatter_banded(
                counts, lo, hi, diag, np.random.default_rng(7000 + rep),
                backend=backend)
        acc[backend] = total / reps
    scale = np.maximum(np.sqrt(counts.sum(axis=1, keepdims=True)), 1.0)
    diff = np.abs(acc["numpy"] - acc["compiled"]) / (scale / np.sqrt(reps))
    assert diff.max() < 6.0
