"""Tests for repro.core.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import (
    agreement_count,
    bin_loads_array,
    configuration_metrics,
    imbalance,
    labelled_imbalance,
    minority_count,
    superbin_split,
    support_size,
    two_bin_stats,
)
from repro.core.state import Configuration


class TestTwoBinStats:
    def test_balanced(self):
        stats = two_bin_stats(Configuration.two_bins(100, minority=50))
        assert stats.minority == 50
        assert stats.majority == 50
        assert stats.imbalance == 0.0
        assert stats.labelled_imbalance == 0.0
        assert stats.delta_fraction == 0.0

    def test_unbalanced(self):
        stats = two_bin_stats(Configuration.two_bins(100, minority=30))
        assert stats.minority == 30
        assert stats.majority == 70
        assert stats.imbalance == 20.0
        # left bin (value 0) holds 30 → labelled imbalance (R-L)/2 = +20
        assert stats.labelled_imbalance == 20.0

    def test_labelled_sign(self):
        # majority on the smaller value → negative labelled imbalance
        stats = two_bin_stats(Configuration.two_bins(100, minority=70))
        assert stats.labelled_imbalance == -20.0
        assert stats.imbalance == 20.0

    def test_single_value_degenerate(self):
        stats = two_bin_stats(Configuration.from_values([5, 5, 5, 5]))
        assert stats.left == 4
        assert stats.right == 0
        assert stats.imbalance == 2.0

    def test_rejects_three_values(self):
        with pytest.raises(ValueError):
            two_bin_stats(Configuration.from_values([0, 1, 2]))

    def test_imbalance_helpers(self):
        cfg = Configuration.two_bins(60, minority=20)
        assert imbalance(cfg) == 10.0
        assert labelled_imbalance(cfg) == 10.0

    def test_accepts_raw_arrays(self):
        assert imbalance(np.array([0, 0, 1, 1, 1, 1])) == 1.0


class TestCountMetrics:
    def test_support_size(self):
        assert support_size(Configuration.from_values([1, 1, 2, 9])) == 3

    def test_agreement_and_minority(self):
        cfg = Configuration.from_values([2, 2, 2, 7, 9])
        assert agreement_count(cfg) == 3
        assert minority_count(cfg) == 2

    def test_consensus_minority_zero(self):
        cfg = Configuration.from_values([4, 4, 4])
        assert minority_count(cfg) == 0
        assert agreement_count(cfg) == 3

    def test_bin_loads_array_default(self):
        bins, loads = bin_loads_array(Configuration.from_values([3, 1, 3]))
        assert bins.tolist() == [1, 3]
        assert loads.tolist() == [1, 2]

    def test_bin_loads_array_fixed_bins(self):
        bins, loads = bin_loads_array(Configuration.from_values([3, 1, 3]), bins=[0, 1, 2, 3])
        assert bins.tolist() == [0, 1, 2, 3]
        assert loads.tolist() == [0, 1, 0, 2]

    def test_loads_sum_to_n(self, rng):
        cfg = Configuration.uniform_random(123, 7, rng)
        _, loads = bin_loads_array(cfg)
        assert loads.sum() == 123


class TestSuperbinSplit:
    def test_split_counts(self):
        cfg = Configuration.from_values([0, 1, 1, 2, 2, 2, 5])
        left, mid, right = superbin_split(cfg, threshold=2)
        assert (left, mid, right) == (3, 3, 1)

    def test_split_sums_to_n(self, rng):
        cfg = Configuration.uniform_random(200, 11, rng)
        left, mid, right = superbin_split(cfg, threshold=5)
        assert left + mid + right == 200

    def test_threshold_below_all(self):
        cfg = Configuration.from_values([3, 4, 5])
        assert superbin_split(cfg, threshold=0) == (0, 0, 3)

    def test_threshold_above_all(self):
        cfg = Configuration.from_values([3, 4, 5])
        assert superbin_split(cfg, threshold=9) == (3, 0, 0)


class TestConfigurationMetrics:
    def test_fields(self):
        cfg = Configuration.from_values([1, 1, 2, 3])
        m = configuration_metrics(cfg, round_index=7)
        assert m.round == 7
        assert m.support_size == 3
        assert m.agreement == 2
        assert m.minority == 2
        assert m.majority_value == 1
        assert m.median_value in (1, 2)

    def test_agreement_fraction(self):
        cfg = Configuration.from_values([1, 1, 1, 2])
        m = configuration_metrics(cfg)
        assert m.agreement_fraction == pytest.approx(0.75)

    def test_accepts_raw_values(self):
        m = configuration_metrics(np.array([0, 0, 1]), round_index=2)
        assert m.round == 2
        assert m.agreement == 2
