"""Differential tests: the occupancy engines are pinned to the vectorized engine.

The occupancy engines claim *statistical exactness*: for any initial
configuration, rule and (count-expressible) adversary, the distribution of
every occupancy-measurable statistic is identical to the vectorized engine's.
The machinery — paired-run mean/variance/KS checks over convergence rounds,
mean minority trajectories, and one-round exact-flow (L1/TV) checks — lives
in :mod:`equivalence` so every kernel is certified by the same harness; this
module declares the scenario grid:

* the median family (MedianRule, BestOfKMedianRule) with and without a
  balancing adversary, at n ∈ {100, 1000} — the original coverage;
* the majority family (three-majority, two-choices-majority) and the
  identity-tracking adversaries (sticky, hiding, in their exact
  victim-occupancy count form), crossed over ``engine="occupancy"`` *and*
  ``engine="occupancy-fused"`` — the scenarios the paper contrasts against
  the median rule, previously forced onto the O(n) vectorized path.

Seeds are fixed, so these tests are deterministic; the tolerances are sized
so a correct implementation passes with wide margin while an off-by-one in a
transition CDF (e.g. using ``F_a`` where ``F_{a-1}`` belongs) fails
immediately.
"""

from __future__ import annotations

import contextlib

import pytest

from equivalence import (
    EquivalenceScenario,
    assert_means_close,
    assert_one_round_flows_match,
    assert_rounds_equivalent,
    collect_convergence_rounds,
    collect_minority_trajectories,
)
from repro.adversary.strategies import (
    BalancingAdversary,
    HidingAdversary,
    StickyAdversary,
)
from repro.core.baseline_rules import TwoChoicesMajorityRule, TwoChoicesRule
from repro.core.median_rule import BestOfKMedianRule, MedianRule

RUNS = 200
TRAJ_ROUNDS = 12


def _balancing(budget):
    return lambda: BalancingAdversary(budget=budget)


def _sticky(budget):
    return lambda: StickyAdversary(budget=budget)


def _hiding(budget):
    return lambda: HidingAdversary(budget=budget)


#: The original median-family grid (vectorized vs looped occupancy).
MEDIAN_SCENARIOS = [
    EquivalenceScenario("median/n=100/noadv", 100, 4, MedianRule),
    EquivalenceScenario("median/n=100/adv", 100, 4, MedianRule, _balancing(2)),
    EquivalenceScenario("median-k3/n=100/noadv", 100, 4,
                        lambda: BestOfKMedianRule(k=3)),
    EquivalenceScenario("median-k3/n=100/adv", 100, 4,
                        lambda: BestOfKMedianRule(k=3), _balancing(2)),
    EquivalenceScenario("median/n=1000/noadv", 1000, 8, MedianRule),
    EquivalenceScenario("median/n=1000/adv", 1000, 8, MedianRule, _balancing(6)),
    EquivalenceScenario("median-k3/n=1000/noadv", 1000, 8,
                        lambda: BestOfKMedianRule(k=3)),
    EquivalenceScenario("median-k3/n=1000/adv", 1000, 8,
                        lambda: BestOfKMedianRule(k=3), _balancing(6)),
]

#: The widened coverage: majority-family kernels × identity-tracking
#: adversaries (count-space victim-occupancy forms), certified against the
#: vectorized engine through the looped *and* the fused occupancy engine.
MAJORITY_SCENARIOS = [
    EquivalenceScenario("three-majority/noadv", 600, 4, TwoChoicesMajorityRule),
    EquivalenceScenario("three-majority/sticky", 600, 4, TwoChoicesMajorityRule,
                        _sticky(4)),
    EquivalenceScenario("three-majority/hiding", 600, 4, TwoChoicesMajorityRule,
                        _hiding(4)),
    EquivalenceScenario("two-choices/noadv", 600, 4, TwoChoicesRule),
    EquivalenceScenario("two-choices/sticky", 600, 4, TwoChoicesRule, _sticky(4)),
    EquivalenceScenario("two-choices/hiding", 600, 4, TwoChoicesRule, _hiding(4)),
    EquivalenceScenario("median/sticky", 600, 4, MedianRule, _sticky(4)),
    EquivalenceScenario("median/hiding", 600, 4, MedianRule, _hiding(4)),
]


@pytest.mark.parametrize("sc", MEDIAN_SCENARIOS, ids=lambda sc: sc.name)
def test_convergence_round_statistics_match(sc: EquivalenceScenario):
    vect = collect_convergence_rounds("vectorized", sc, RUNS, seed_base=10_000)
    occ = collect_convergence_rounds("occupancy", sc, RUNS, seed_base=20_000)
    assert_rounds_equivalent(vect, occ, sc.name)


@pytest.mark.parametrize("engine", ["occupancy", "occupancy-fused"])
@pytest.mark.parametrize("sc", MAJORITY_SCENARIOS, ids=lambda sc: sc.name)
def test_majority_and_victim_adversary_statistics_match(sc: EquivalenceScenario,
                                                        engine: str):
    vect = collect_convergence_rounds("vectorized", sc, RUNS, seed_base=110_000)
    fast = collect_convergence_rounds(engine, sc, RUNS, seed_base=120_000)
    assert_rounds_equivalent(vect, fast, f"{sc.name} via {engine}")


@pytest.mark.parametrize("sc", [MEDIAN_SCENARIOS[0], MEDIAN_SCENARIOS[1],
                                MEDIAN_SCENARIOS[4], MEDIAN_SCENARIOS[5]],
                         ids=lambda sc: sc.name)
def test_minority_trajectory_statistics_match(sc: EquivalenceScenario):
    vect = collect_minority_trajectories("vectorized", sc, RUNS,
                                         seed_base=30_000, rounds=TRAJ_ROUNDS)
    occ = collect_minority_trajectories("occupancy", sc, RUNS,
                                        seed_base=40_000, rounds=TRAJ_ROUNDS)
    assert vect.shape == occ.shape
    for t in range(TRAJ_ROUNDS + 1):
        assert_means_close(vect[:, t], occ[:, t],
                           f"{sc.name} minority at round {t}")


@pytest.mark.parametrize("sc", [
    EquivalenceScenario("three-majority/sticky/traj", 500, 4,
                        TwoChoicesMajorityRule, _sticky(4)),
    EquivalenceScenario("two-choices/hiding/traj", 500, 4,
                        TwoChoicesRule, _hiding(4)),
], ids=lambda sc: sc.name)
def test_majority_minority_trajectories_match(sc: EquivalenceScenario):
    vect = collect_minority_trajectories("vectorized", sc, RUNS,
                                         seed_base=130_000, rounds=TRAJ_ROUNDS)
    occ = collect_minority_trajectories("occupancy", sc, RUNS,
                                        seed_base=140_000, rounds=TRAJ_ROUNDS)
    for t in range(TRAJ_ROUNDS + 1):
        assert_means_close(vect[:, t], occ[:, t],
                           f"{sc.name} minority at round {t}")


#: One-round exact-flow grid at tiny n: the complete next-occupancy law of
#: one *engine* round (including corruption placement and the victim-
#: occupancy split-scatter) must match between the substrates.
ONE_ROUND_SCENARIOS = [
    EquivalenceScenario("median/noadv/1round", 12, 3, MedianRule),
    EquivalenceScenario("median/sticky/1round", 12, 3, MedianRule, _sticky(3)),
    EquivalenceScenario("three-majority/noadv/1round", 12, 3,
                        TwoChoicesMajorityRule),
    EquivalenceScenario("three-majority/sticky/1round", 12, 3,
                        TwoChoicesMajorityRule, _sticky(3)),
    EquivalenceScenario("two-choices/noadv/1round", 12, 3, TwoChoicesRule),
    EquivalenceScenario("two-choices/hiding/1round", 12, 3, TwoChoicesRule,
                        _hiding(3)),
]


@pytest.mark.parametrize("sc", ONE_ROUND_SCENARIOS, ids=lambda sc: sc.name)
def test_one_round_occupancy_distribution_matches_exactly(sc: EquivalenceScenario):
    assert_one_round_flows_match(sc, trials=3000, seed_base=50_000)


# --------------------------------------------------------------------------- #
# Compiled-kernel certification: the same harness, with the compiled
# multinomial backend forced.  One scenario line per seam entry point:
#
#   * dense scatter + banded round   — median, looped occupancy engine;
#   * fused per-round path           — median, occupancy-fused engine;
#   * split-scatter (victim split)   — sticky adversary, both engines;
#   * one-round exact flow law       — tiny-n L1/TV check.
#
# Skipped wholesale when no compiled provider exists on the host (the
# numpy backend is already certified by every test above, since it is the
# bit-identical legacy path).
# --------------------------------------------------------------------------- #
from repro.engine import resolve_multinomial_backend, set_multinomial_backend

HAS_COMPILED = resolve_multinomial_backend("compiled").resolved == "compiled"

needs_compiled = pytest.mark.skipif(
    not HAS_COMPILED, reason="no compiled multinomial provider on this host")


@contextlib.contextmanager
def _compiled_kernel():
    set_multinomial_backend("compiled")
    try:
        yield
    finally:
        set_multinomial_backend(None)


COMPILED_SCENARIOS = [
    ("occupancy", EquivalenceScenario("median/n=1000/noadv/compiled", 1000, 8,
                                      MedianRule)),
    ("occupancy-fused", EquivalenceScenario("median/n=1000/noadv/compiled",
                                            1000, 8, MedianRule)),
    ("occupancy", EquivalenceScenario("median/sticky/compiled", 600, 4,
                                      MedianRule, _sticky(4))),
    ("occupancy-fused", EquivalenceScenario("three-majority/sticky/compiled",
                                            600, 4, TwoChoicesMajorityRule,
                                            _sticky(4))),
]


@needs_compiled
@pytest.mark.parametrize("engine,sc", COMPILED_SCENARIOS,
                         ids=lambda v: v if isinstance(v, str) else v.name)
def test_compiled_kernel_statistics_match(engine: str, sc: EquivalenceScenario):
    vect = collect_convergence_rounds("vectorized", sc, RUNS, seed_base=210_000)
    with _compiled_kernel():
        fast = collect_convergence_rounds(engine, sc, RUNS, seed_base=220_000)
    assert_rounds_equivalent(vect, fast, f"{sc.name} via {engine}")


@needs_compiled
@pytest.mark.parametrize("sc", [
    EquivalenceScenario("median/noadv/1round/compiled", 12, 3, MedianRule),
    EquivalenceScenario("median/sticky/1round/compiled", 12, 3, MedianRule,
                        _sticky(3)),
], ids=lambda sc: sc.name)
def test_compiled_kernel_one_round_flows_match(sc: EquivalenceScenario):
    with _compiled_kernel():
        assert_one_round_flows_match(sc, trials=3000, seed_base=250_000)
