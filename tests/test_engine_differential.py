"""Differential tests: the occupancy engine is pinned to the vectorized engine.

The occupancy engine claims *statistical exactness*: for any initial
configuration, rule and (count-expressible) adversary, the distribution of
every occupancy-measurable statistic is identical to the vectorized engine's.
The two engines consume randomness differently, so runs are compared in
distribution, not path-wise: for each scenario we run ≥200 independent runs
per engine with fixed seed roots and require

* the mean consensus/convergence round to agree within a 6-sigma Welch
  tolerance (plus a small absolute slack),
* the variance of the convergence round to agree within the sampling
  tolerance of a 200-run variance estimate,
* the mean minority-count trajectory (round by round over a fixed horizon)
  to agree within the same Welch tolerance.

Scenarios cover MedianRule and BestOfKMedianRule, with and without a
balancing adversary, at n ∈ {100, 1000}.  Seeds are fixed, so these tests are
deterministic; the tolerances are sized so a correct implementation passes
with wide margin while an off-by-one in the transition CDF (e.g. using
``F_a`` where ``F_{a-1}`` belongs) fails immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import pytest

from repro.adversary.base import Adversary
from repro.adversary.strategies import BalancingAdversary
from repro.core.median_rule import BestOfKMedianRule, MedianRule
from repro.core.rules import Rule
from repro.engine.occupancy import simulate_occupancy
from repro.engine.trajectory import RecordLevel
from repro.engine.vectorized import simulate
from repro.experiments.workloads import blocks_workload

RUNS = 200
HORIZON = 400
TRAJ_ROUNDS = 12


@dataclass(frozen=True)
class Scenario:
    name: str
    n: int
    m: int
    rule_factory: Callable[[], Rule]
    budget: int  # 0 → no adversary

    def make_adversary(self) -> Optional[Callable[[], Adversary]]:
        if self.budget == 0:
            return None
        return lambda: BalancingAdversary(budget=self.budget)


SCENARIOS = [
    Scenario("median/n=100/noadv", 100, 4, MedianRule, 0),
    Scenario("median/n=100/adv", 100, 4, MedianRule, 2),
    Scenario("median-k3/n=100/noadv", 100, 4, lambda: BestOfKMedianRule(k=3), 0),
    Scenario("median-k3/n=100/adv", 100, 4, lambda: BestOfKMedianRule(k=3), 2),
    Scenario("median/n=1000/noadv", 1000, 8, MedianRule, 0),
    Scenario("median/n=1000/adv", 1000, 8, MedianRule, 6),
    Scenario("median-k3/n=1000/noadv", 1000, 8, lambda: BestOfKMedianRule(k=3), 0),
    Scenario("median-k3/n=1000/adv", 1000, 8, lambda: BestOfKMedianRule(k=3), 6),
]

_ENGINES = {"vectorized": simulate, "occupancy": simulate_occupancy}


def _convergence_rounds(engine: str, sc: Scenario, seed_base: int) -> np.ndarray:
    """Convergence round of RUNS independent runs (NaN if not converged)."""
    simulate_fn = _ENGINES[engine]
    init = blocks_workload(sc.n, sc.m)
    adv_factory = sc.make_adversary()
    out = np.full(RUNS, np.nan)
    for i in range(RUNS):
        adversary = adv_factory() if adv_factory else None
        res = simulate_fn(init, rule=sc.rule_factory(), adversary=adversary,
                          seed=seed_base + i, max_rounds=HORIZON,
                          record=RecordLevel.NONE)
        r = res.convergence_round()
        if r is not None:
            out[i] = r
    return out


def _minority_trajectories(engine: str, sc: Scenario, seed_base: int) -> np.ndarray:
    """(RUNS, TRAJ_ROUNDS+1) minority counts over a fixed horizon."""
    simulate_fn = _ENGINES[engine]
    init = blocks_workload(sc.n, sc.m)
    adv_factory = sc.make_adversary()
    out = np.empty((RUNS, TRAJ_ROUNDS + 1))
    for i in range(RUNS):
        adversary = adv_factory() if adv_factory else None
        res = simulate_fn(init, rule=sc.rule_factory(), adversary=adversary,
                          seed=seed_base + i, max_rounds=TRAJ_ROUNDS,
                          run_to_horizon=True, record=RecordLevel.METRICS)
        out[i] = res.trajectory.minority_series()
    return out


def _assert_means_close(a: np.ndarray, b: np.ndarray, label: str,
                        sigmas: float = 6.0, abs_slack: float = 0.75) -> None:
    """Welch-style two-sample check: |mean_a − mean_b| within `sigmas` SEs."""
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    assert a.size and b.size, f"{label}: an engine never converged"
    se = float(np.sqrt(np.var(a, ddof=1) / a.size + np.var(b, ddof=1) / b.size))
    diff = abs(float(np.mean(a)) - float(np.mean(b)))
    assert diff <= sigmas * se + abs_slack, (
        f"{label}: means {np.mean(a):.3f} vs {np.mean(b):.3f} "
        f"differ by {diff:.3f} > {sigmas}·SE + {abs_slack} = {sigmas * se + abs_slack:.3f}"
    )


def _assert_variances_close(a: np.ndarray, b: np.ndarray, label: str,
                            factor: float = 2.5, abs_slack: float = 1.5) -> None:
    """Sample variances of ~200 draws agree within sampling tolerance."""
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    va, vb = float(np.var(a, ddof=1)), float(np.var(b, ddof=1))
    assert va <= factor * vb + abs_slack and vb <= factor * va + abs_slack, (
        f"{label}: variances {va:.3f} vs {vb:.3f} differ beyond "
        f"factor {factor} + {abs_slack}"
    )


@pytest.mark.parametrize("sc", SCENARIOS, ids=lambda sc: sc.name)
def test_convergence_round_statistics_match(sc: Scenario):
    vect = _convergence_rounds("vectorized", sc, seed_base=10_000)
    occ = _convergence_rounds("occupancy", sc, seed_base=20_000)
    # both engines must converge essentially always in these regimes
    assert np.isnan(vect).mean() <= 0.02, f"{sc.name}: vectorized rarely converged"
    assert np.isnan(occ).mean() <= 0.02, f"{sc.name}: occupancy rarely converged"
    _assert_means_close(vect, occ, f"{sc.name} convergence round")
    _assert_variances_close(vect, occ, f"{sc.name} convergence round")


@pytest.mark.parametrize("sc", [SCENARIOS[0], SCENARIOS[1],
                                SCENARIOS[4], SCENARIOS[5]],
                         ids=lambda sc: sc.name)
def test_minority_trajectory_statistics_match(sc: Scenario):
    vect = _minority_trajectories("vectorized", sc, seed_base=30_000)
    occ = _minority_trajectories("occupancy", sc, seed_base=40_000)
    assert vect.shape == occ.shape
    for t in range(TRAJ_ROUNDS + 1):
        _assert_means_close(vect[:, t], occ[:, t],
                            f"{sc.name} minority at round {t}")


def test_one_round_occupancy_distribution_matches_exactly():
    """Tight per-round check at tiny n: the full next-round occupancy
    distribution of the two substrates agrees.

    Drives the raw round kernels (``rule.step`` vs ``occupancy_round``)
    directly so tens of thousands of single-round draws are cheap, then
    compares the empirical distributions over complete occupancy outcomes
    with an L1 bound calibrated to the sampling noise of identical laws
    (E[L1] ≲ 0.8·sqrt(2K/trials) for K observed outcomes)."""
    from repro.engine.occupancy import occupancy_round

    n, m = 12, 3
    init_values = blocks_workload(n, m).copy_values()
    init_counts = np.array([np.sum(init_values == v) for v in range(m)],
                           dtype=np.int64)
    trials = 40_000
    rule = MedianRule()
    rng_v = np.random.default_rng(50_000)
    rng_o = np.random.default_rng(60_000)
    hist_v: dict = {}
    hist_o: dict = {}
    for _ in range(trials):
        out_v = rule.step(init_values, rng_v)
        key_v = tuple(int(np.sum(out_v == v)) for v in range(m))
        hist_v[key_v] = hist_v.get(key_v, 0) + 1
        out_o = occupancy_round(init_counts, rule, rng_o)
        key_o = tuple(int(c) for c in out_o)
        hist_o[key_o] = hist_o.get(key_o, 0) + 1
    keys = set(hist_v) | set(hist_o)
    l1 = sum(abs(hist_v.get(k, 0) - hist_o.get(k, 0)) for k in keys) / trials
    noise = 0.8 * np.sqrt(2 * len(keys) / trials)
    assert l1 < max(3 * noise, 0.05), (
        f"one-round occupancy laws differ: L1 {l1:.4f} over {len(keys)} "
        f"outcomes (noise scale {noise:.4f})"
    )
