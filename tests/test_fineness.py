"""Tests for repro.core.fineness: the partial order and the Lemma 17 coupling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fineness import (
    coupled_run,
    coupled_step,
    is_finer,
    refine_configuration,
    refinement_map,
    sorted_loads,
)
from repro.core.median_rule import MedianRule
from repro.core.state import Configuration


class TestRefinementMap:
    def test_simple_grouping(self):
        # fine loads [1,1,1,1] grouped into coarse [2,2]
        assert refinement_map([1, 1, 1, 1], [2, 2]) == [0, 0, 1, 1]

    def test_identity(self):
        assert refinement_map([3, 2], [3, 2]) == [0, 1]

    def test_all_into_one(self):
        assert refinement_map([1, 2, 3], [6]) == [0, 0, 0]

    def test_impossible_split(self):
        # cannot split a fine bin across coarse bins
        assert refinement_map([3, 3], [2, 4]) is None

    def test_total_mismatch(self):
        assert refinement_map([1, 1], [3]) is None

    def test_coarse_finer_than_fine_fails(self):
        assert refinement_map([4], [2, 2]) is None


class TestIsFiner:
    def test_all_one_finer_than_everything(self, rng):
        fine = Configuration.all_distinct(30)
        coarse = Configuration.uniform_random(30, 4, rng)
        assert is_finer(fine, coarse)

    def test_reflexive(self, rng):
        cfg = Configuration.uniform_random(30, 4, rng)
        assert is_finer(cfg, cfg)

    def test_antisymmetric_except_equal_loads(self):
        a = Configuration.from_values([0, 0, 1, 2])   # loads 2,1,1
        b = Configuration.from_values([0, 0, 0, 1])   # loads 3,1
        assert is_finer(a, b)
        assert not is_finer(b, a)

    def test_not_finer_when_grouping_impossible(self):
        a = Configuration.from_values([0, 0, 0, 1, 1])   # loads 3,2
        b = Configuration.from_values([0, 0, 1, 1, 1])   # loads 2,3
        assert not is_finer(a, b)
        assert not is_finer(b, a)

    def test_accepts_load_sequences(self):
        assert is_finer([1, 1, 2], [2, 2])
        assert not is_finer([2, 2], [1, 1, 2])

    def test_sorted_loads(self):
        cfg = Configuration.from_values([5, 5, 1, 9])
        assert sorted_loads(cfg) == [1, 2, 1]


class TestRefineConfiguration:
    def test_maps_fine_bins_to_coarse_values(self):
        fine = Configuration.from_values([0, 1, 2, 3])
        assignment = [0, 0, 1, 1]
        out = refine_configuration(fine, coarse_support=[10, 20], assignment=assignment)
        assert out.values.tolist() == [10, 10, 20, 20]

    def test_wrong_assignment_length(self):
        fine = Configuration.from_values([0, 1])
        with pytest.raises(ValueError):
            refine_configuration(fine, coarse_support=[0], assignment=[0, 0, 0])


class TestCoupling:
    def test_coupled_step_commutes_with_monotone_map(self, rng):
        # Lemma 17 core fact: running the rule then mapping == mapping then running,
        # for the same samples.
        n = 80
        fine = Configuration.all_distinct(n)
        # coarse: group values into 4 blocks of 20 via the monotone map v -> v // 20
        coarse_vals = fine.values // 20
        rule = MedianRule()
        samples = rule.sample_contacts(n, rng)
        fine_next, coarse_next = coupled_step(fine.copy_values(),
                                              coarse_vals.astype(np.int64), samples, rule)
        assert np.array_equal(coarse_next, fine_next // 20)

    def test_coupled_run_coarse_is_image_of_fine(self, rng):
        n = 60
        fine = Configuration.all_distinct(n)
        coarse = Configuration.from_values(np.repeat(np.arange(3), 20))
        out = coupled_run(fine, coarse, rounds=40, rng=rng)
        # at every recorded round, the coarse run equals fine // 20
        for f_cfg, c_cfg in zip(out.fine, out.coarse):
            assert np.array_equal(c_cfg.values, f_cfg.values // 20)

    def test_coarse_converges_no_later_than_fine(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            n = 60
            fine = Configuration.all_distinct(n)
            coarse = Configuration.from_values(np.repeat(np.arange(4), 15))
            out = coupled_run(fine, coarse, rounds=400, rng=rng)
            assert out.fine_consensus_round is not None
            assert out.coarse_consensus_round is not None
            assert out.coarse_consensus_round <= out.fine_consensus_round

    def test_mismatched_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            coupled_run(Configuration.all_distinct(10), Configuration.all_distinct(12),
                        rounds=5, rng=rng)

    def test_not_finer_rejected(self, rng):
        a = Configuration.from_values([0, 0, 0, 1, 1])
        b = Configuration.from_values([0, 0, 1, 1, 1])
        with pytest.raises(ValueError):
            coupled_run(a, b, rounds=5, rng=rng)

    def test_already_consensus_round_zero(self, rng):
        fine = Configuration.from_values([0, 1, 2, 3])
        coarse = Configuration.from_values([5, 5, 5, 5])
        out = coupled_run(fine, coarse, rounds=50, rng=rng)
        assert out.coarse_consensus_round == 0
