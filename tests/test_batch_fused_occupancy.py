"""Differential tests: the fused occupancy batch engine is pinned to the
looped occupancy engine.

``run_batch_fused_occupancy`` claims to be *statistically indistinguishable*
from looping :func:`repro.engine.occupancy.simulate_occupancy` over the runs
(``run_batch(engine="occupancy")``): same initial-draw seed discipline, same
count-space adversary semantics, same convergence bookkeeping — only the
randomness consumption differs (one batch stream vs per-run streams), so the
two are compared in distribution over paired batches:

* mean convergence round within a 6-sigma Welch tolerance (plus small
  absolute slack), for the median rule, the voter rule and the best-of-k
  median rule, with and without a balancing adversary;
* variance of the convergence round within the sampling tolerance of a
  ~200-run variance estimate;
* the one-round *flow distribution* exactly: each row of
  :func:`repro.engine.occupancy.occupancy_round_batch` must follow the same
  law as :func:`repro.engine.occupancy.occupancy_round` on that row (L1
  distance over complete occupancy outcomes at tiny n, and exact algebraic
  equality of the stacked transition tensor).

Also covered: the ``engine="occupancy-fused"`` dispatch in ``run_batch`` and
its fallbacks, and the per-cell engine resolution in
``SweepConfig.with_engine``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import pytest

from repro.adversary.strategies import BalancingAdversary, StickyAdversary
from repro.core.baseline_rules import MaximumRule, MinimumRule, VoterRule
from repro.core.median_rule import (
    BestOfKMedianRule,
    MedianRule,
    MedianRuleWithoutReplacement,
)
from repro.core.rules import Rule
from repro.core.state import Configuration
from repro.engine.batch import (
    BATCH_ENGINES,
    fused_occupancy_cell_supported,
    run_batch,
    run_batch_fused_occupancy,
)
from repro.engine.occupancy import (
    occupancy_round,
    occupancy_round_batch,
    occupancy_transition_matrix,
    occupancy_transition_matrix_batch,
)
from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.workloads import blocks_workload

RUNS = 200


@dataclass(frozen=True)
class Scenario:
    name: str
    n: int
    m: int
    rule_factory: Callable[[], Rule]
    budget: int  # 0 → no adversary
    horizon: int = 400

    def adversary_factory(self) -> Optional[Callable[[], BalancingAdversary]]:
        if self.budget == 0:
            return None
        return lambda: BalancingAdversary(budget=self.budget)


SCENARIOS = [
    Scenario("median/noadv", 1000, 8, MedianRule, 0),
    Scenario("median/adv", 1000, 8, MedianRule, 6),
    Scenario("median-k3/noadv", 1000, 8, lambda: BestOfKMedianRule(k=3), 0),
    Scenario("median-k3/adv", 1000, 8, lambda: BestOfKMedianRule(k=3), 6),
    # the voter rule needs O(n) rounds, so pin it at small n with a long leash
    Scenario("voter/noadv", 60, 3, VoterRule, 0, horizon=4000),
]


def _looped_rounds(sc: Scenario, seed: int) -> np.ndarray:
    batch = run_batch(
        blocks_workload(sc.n, sc.m),
        num_runs=RUNS,
        rule=sc.rule_factory(),
        adversary_factory=sc.adversary_factory(),
        seed=seed,
        max_rounds=sc.horizon,
        engine="occupancy",
    )
    return batch.rounds


def _fused_rounds(sc: Scenario, seed: int) -> np.ndarray:
    batch = run_batch_fused_occupancy(
        blocks_workload(sc.n, sc.m),
        RUNS,
        rule=sc.rule_factory(),
        adversary_factory=sc.adversary_factory(),
        seed=seed,
        max_rounds=sc.horizon,
    )
    assert batch.meta["engine"] == "occupancy-fused"
    assert batch.meta["budget_ledger_ok"] is True
    return batch.rounds


def _assert_means_close(a: np.ndarray, b: np.ndarray, label: str,
                        sigmas: float = 6.0, abs_slack: float = 0.75) -> None:
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    assert a.size and b.size, f"{label}: an engine never converged"
    se = float(np.sqrt(np.var(a, ddof=1) / a.size + np.var(b, ddof=1) / b.size))
    diff = abs(float(np.mean(a)) - float(np.mean(b)))
    assert diff <= sigmas * se + abs_slack, (
        f"{label}: means {np.mean(a):.3f} vs {np.mean(b):.3f} "
        f"differ by {diff:.3f} > {sigmas}·SE + {abs_slack} = {sigmas * se + abs_slack:.3f}"
    )


def _assert_variances_close(a: np.ndarray, b: np.ndarray, label: str,
                            factor: float = 2.5, abs_slack: float = 1.5) -> None:
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    va, vb = float(np.var(a, ddof=1)), float(np.var(b, ddof=1))
    assert va <= factor * vb + abs_slack and vb <= factor * va + abs_slack, (
        f"{label}: variances {va:.3f} vs {vb:.3f} differ beyond "
        f"factor {factor} + {abs_slack}"
    )


@pytest.mark.parametrize("sc", SCENARIOS, ids=lambda sc: sc.name)
def test_convergence_round_statistics_match_looped_engine(sc: Scenario):
    looped = _looped_rounds(sc, seed=70_000)
    fused = _fused_rounds(sc, seed=80_000)
    assert np.isnan(looped).mean() <= 0.02, f"{sc.name}: looped rarely converged"
    assert np.isnan(fused).mean() <= 0.02, f"{sc.name}: fused rarely converged"
    _assert_means_close(looped, fused, f"{sc.name} convergence round")
    _assert_variances_close(looped, fused, f"{sc.name} convergence round")


# ---------------------------------------------------------------------- #
# exact per-round checks
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("rule", [MedianRule(), BestOfKMedianRule(k=4),
                                  MedianRuleWithoutReplacement(), VoterRule(),
                                  MinimumRule(), MaximumRule()],
                         ids=lambda r: r.name)
def test_batched_transition_tensor_equals_stacked_single_matrices(rule):
    rng = np.random.default_rng(7)
    counts = rng.multinomial(240, np.full(6, 1 / 6), size=12).astype(np.int64)
    Qb = occupancy_transition_matrix_batch(rule, counts)
    assert Qb.shape == (12, 6, 6)
    for i in range(counts.shape[0]):
        np.testing.assert_allclose(Qb[i], occupancy_transition_matrix(rule, counts[i]),
                                   atol=1e-12)


def test_one_round_flow_distribution_matches_exactly():
    """Each row of a fused one-round update follows the single-run law: the
    empirical distributions over complete occupancy outcomes agree within the
    L1 sampling noise of identical laws (same bound as the engine-differential
    suite: E[L1] ≲ 0.8·sqrt(2K/trials))."""
    counts = np.array([5, 4, 3], dtype=np.int64)
    rule = MedianRule()
    trials = 40_000
    chunk = 500

    rng_s = np.random.default_rng(90_000)
    rng_b = np.random.default_rng(91_000)
    hist_s: dict = {}
    hist_b: dict = {}
    for _ in range(trials):
        out = occupancy_round(counts, rule, rng_s)
        key = tuple(int(c) for c in out)
        hist_s[key] = hist_s.get(key, 0) + 1
    tiled = np.tile(counts, (chunk, 1))
    for _ in range(trials // chunk):
        out = occupancy_round_batch(tiled, rule, rng_b)
        for row in out:
            key = tuple(int(c) for c in row)
            hist_b[key] = hist_b.get(key, 0) + 1
    keys = set(hist_s) | set(hist_b)
    l1 = sum(abs(hist_s.get(k, 0) - hist_b.get(k, 0)) for k in keys) / trials
    noise = 0.8 * np.sqrt(2 * len(keys) / trials)
    assert l1 < max(3 * noise, 0.05), (
        f"one-round fused laws differ: L1 {l1:.4f} over {len(keys)} outcomes "
        f"(noise scale {noise:.4f})"
    )


def test_rows_evolve_independently():
    """Runs in one batch must not influence each other: a batch of identical
    rows produces (statistically) independent outcomes, so outcome rows are
    not all equal after one round from a high-entropy state."""
    rng = np.random.default_rng(1)
    counts = np.tile(np.full(8, 16, dtype=np.int64), (64, 1))
    out = occupancy_round_batch(counts, MedianRule(), rng)
    assert out.shape == (64, 8)
    assert np.all(out.sum(axis=1) == 128)
    assert np.unique(out, axis=0).shape[0] > 1


# ---------------------------------------------------------------------- #
# engine bookkeeping and dispatch
# ---------------------------------------------------------------------- #
class TestRunBatchFusedOccupancy:
    def test_reproducible_given_seed(self):
        init = Configuration.two_bins(500, minority=250)
        a = run_batch_fused_occupancy(init, 12, seed=5)
        b = run_batch_fused_occupancy(init, 12, seed=5)
        assert np.array_equal(a.rounds, b.rounds, equal_nan=True)

    def test_initial_consensus_reports_round_zero(self):
        init = Configuration.from_values(np.zeros(64, dtype=np.int64))
        batch = run_batch_fused_occupancy(init, 4, seed=6)
        assert batch.convergence_fraction == 1.0
        assert np.all(batch.rounds == 0.0)

    def test_factory_initials_and_uniform_n_enforced(self):
        def factory(rng):
            return Configuration.uniform_random(128, 4, rng)

        batch = run_batch_fused_occupancy(factory, 8, seed=7)
        assert batch.n == 128
        assert batch.convergence_fraction == 1.0

        sizes = iter([64, 65, 64, 64])

        def bad_factory(rng):
            return Configuration.uniform_random(next(sizes), 4, rng)

        with pytest.raises(ValueError, match="uniform population"):
            run_batch_fused_occupancy(bad_factory, 4, seed=8)

    def test_short_horizon_leaves_nan(self):
        batch = run_batch_fused_occupancy(blocks_workload(4096, 32), 6, seed=9,
                                          max_rounds=2)
        assert batch.convergence_fraction == 0.0
        assert np.all(np.isnan(batch.rounds))

    def test_invalid_num_runs(self):
        with pytest.raises(ValueError):
            run_batch_fused_occupancy(blocks_workload(64, 4), 0)

    def test_custom_identity_tracking_adversary_rejected(self):
        from repro.adversary.base import Adversary, Corruption

        class IdentityOnly(Adversary):
            def propose(self, values, round_index, admissible_values, rng):
                return Corruption.empty()

        with pytest.raises(NotImplementedError, match="identities"):
            run_batch_fused_occupancy(
                Configuration.two_bins(128, minority=64), 4, seed=10,
                adversary_factory=lambda: IdentityOnly(budget=3))

    def test_sticky_adversary_runs_fused_via_victim_occupancy(self):
        batch = run_batch_fused_occupancy(
            Configuration.two_bins(256, minority=128), 8, seed=10,
            adversary_factory=lambda: StickyAdversary(budget=3),
            max_rounds=400)
        assert batch.meta["engine"] == "occupancy-fused"
        assert batch.convergence_fraction == 1.0
        assert batch.meta["budget_ledger_ok"] is True

    def test_mixed_tracking_and_plain_adversaries_in_one_batch(self):
        from repro.adversary.strategies import HidingAdversary

        sequence = []

        def alternating_factory():
            adv = HidingAdversary(budget=3) if len(sequence) % 2 == 0 \
                else BalancingAdversary(budget=3)
            sequence.append(adv)
            return adv

        batch = run_batch_fused_occupancy(
            Configuration.two_bins(256, minority=128), 8, seed=11,
            adversary_factory=alternating_factory, max_rounds=500)
        assert batch.convergence_fraction == 1.0
        assert batch.meta["budget_ledger_ok"] is True

    def test_adversary_tolerance_default(self):
        batch = run_batch_fused_occupancy(
            Configuration.two_bins(256, minority=128), 4, seed=11,
            adversary_factory=lambda: BalancingAdversary(budget=2),
            max_rounds=400)
        assert batch.meta["tolerance"] == 8
        assert batch.meta["window"] == 10

    def test_blocked_rounds_match_unblocked_statistics(self):
        # force run-chunking with a tiny working-set cap; the chunked path
        # must stay the same program, just sliced
        init = blocks_workload(512, 16)
        small = run_batch_fused_occupancy(init, 24, seed=12, max_block_elems=16 * 16)
        big = run_batch_fused_occupancy(init, 24, seed=12)
        assert small.convergence_fraction == 1.0
        assert big.convergence_fraction == 1.0
        assert abs(small.mean_rounds - big.mean_rounds) < 6.0


class TestEngineDispatch:
    def test_batch_engines_registry(self):
        assert "occupancy-fused" in BATCH_ENGINES
        assert fused_occupancy_cell_supported("median", "balancing")
        assert fused_occupancy_cell_supported("voter")
        # the majority family and identity-tracking adversaries gained
        # count-space forms; only kernel-less rules remain unsupported
        assert fused_occupancy_cell_supported("three-majority")
        assert fused_occupancy_cell_supported("two-choices-majority", "hiding")
        assert fused_occupancy_cell_supported("median", "sticky")
        assert not fused_occupancy_cell_supported("mean")
        # geometry guard: count space loses (or outright refuses) wide supports
        assert fused_occupancy_cell_supported("median", "null", n=10**6, m=64)
        assert not fused_occupancy_cell_supported("median", "null", n=2048, m=2048)
        assert not fused_occupancy_cell_supported("median", "null", n=10**9, m=20000)

    def test_all_distinct_cells_resolve_to_vectorized(self):
        # all-distinct implies m = n: O(m^2)-per-round count space is the
        # wrong substrate, and m > 10^4 would refuse its transition tensor
        from repro.experiments.runner import resolve_cell_engine
        from repro.experiments.sweep import theorem1_sweep

        assert all(c.engine == "vectorized" for c in theorem1_sweep(ns=(512, 16384)))
        assert resolve_cell_engine("median", "null", "occupancy-fused",
                                   "all-distinct", {"n": 16384}) == "vectorized"
        assert resolve_cell_engine("median", "null", "occupancy-fused",
                                   "two-bins", {"n": 16384}) == "occupancy-fused"

    def test_run_batch_routes_to_fused(self):
        batch = run_batch(blocks_workload(1024, 8), num_runs=6, seed=13,
                          engine="occupancy-fused")
        assert batch.meta["engine"] == "occupancy-fused"
        assert batch.convergence_fraction == 1.0

    def test_run_batch_falls_back_when_results_requested(self):
        batch = run_batch(blocks_workload(256, 4), num_runs=3, seed=14,
                          engine="occupancy-fused", keep_results=True)
        assert batch.meta["engine"] == "occupancy"
        assert len(batch.results) == 3

    def test_experiment_config_accepts_fused_engine(self):
        cfg = ExperimentConfig(name="c", workload="blocks",
                               workload_params={"n": 64, "m": 4},
                               engine="occupancy-fused")
        assert cfg.engine == "occupancy-fused"
        with pytest.raises(ValueError, match="unknown engine"):
            ExperimentConfig(name="c", workload="blocks",
                             workload_params={"n": 64, "m": 4},
                             engine="occupancy-fused-typo")

    def test_run_batch_falls_back_to_vectorized_for_unsupported_rule(self):
        from repro.core.rules import get_rule

        batch = run_batch(blocks_workload(128, 4), num_runs=2, seed=15,
                          rule=get_rule("mean"),
                          engine="occupancy-fused")
        assert batch.meta["engine"] == "vectorized"
        assert batch.convergence_fraction == 1.0

    def test_run_batch_routes_majority_family_to_fused(self):
        from repro.core.rules import get_rule

        batch = run_batch(blocks_workload(512, 4), num_runs=4, seed=15,
                          rule=get_rule("three-majority"),
                          adversary_factory=lambda: StickyAdversary(budget=3),
                          engine="occupancy-fused", max_rounds=400)
        assert batch.meta["engine"] == "occupancy-fused"
        assert batch.convergence_fraction == 1.0

    def test_probe_does_not_consume_an_extra_factory_call(self):
        calls = []

        def counting_factory():
            calls.append(1)
            return BalancingAdversary(budget=2)

        run_batch(Configuration.two_bins(128, minority=64), num_runs=3,
                  seed=16, adversary_factory=counting_factory,
                  engine="occupancy-fused", max_rounds=200)
        assert len(calls) == 3

    def test_custom_criterion_honored_without_adversary(self):
        from repro.core.consensus import AlmostStableCriterion

        # horizon far too short for exact consensus, but the minority drops
        # under the tolerance almost immediately — both engines must report
        # the almost-stable round instead of NaN
        crit = AlmostStableCriterion(tolerance=700, window=2)
        init = blocks_workload(1000, 8)
        fused = run_batch_fused_occupancy(init, 40, seed=17, max_rounds=8,
                                          criterion=crit)
        looped = run_batch(init, 40, seed=18, engine="occupancy",
                           max_rounds=8, criterion=crit)
        assert fused.convergence_fraction >= 0.9
        assert looped.convergence_fraction >= 0.9
        assert np.nanmax(fused.rounds) <= 8
        _assert_means_close(fused.rounds, looped.rounds,
                            "custom criterion almost-stable round")

    def test_mixed_budget_factory_keeps_per_run_semantics(self):
        from repro.adversary.base import NullAdversary

        sequence = []

        def alternating_factory():
            adv = NullAdversary() if len(sequence) % 2 == 0 \
                else BalancingAdversary(budget=4)
            sequence.append(adv)
            return adv

        batch = run_batch_fused_occupancy(
            Configuration.two_bins(512, minority=256), 8, seed=19,
            adversary_factory=alternating_factory, max_rounds=500)
        assert batch.convergence_fraction == 1.0
        assert batch.meta["adversary_budget"] == 4
        # the adversary-free runs must have reached *exact* consensus within
        # the horizon (they never stop on the almost-stable criterion)
        assert np.all(batch.rounds[::2] >= 1)

    def test_with_engine_keeps_plain_occupancy_requests_verbatim(self):
        sweep = SweepConfig(name="plain")
        sweep.add(ExperimentConfig(name="no-kernel", workload="blocks",
                                   workload_params={"n": 64, "m": 4},
                                   rule="mean"))
        resolved = sweep.with_engine("occupancy")
        assert resolved.cells[0].engine == "occupancy"

    def test_with_engine_resolves_unsupported_cells(self):
        sweep = SweepConfig(name="mix")
        sweep.add(ExperimentConfig(name="ok", workload="blocks",
                                   workload_params={"n": 64, "m": 4}))
        sweep.add(ExperimentConfig(name="no-kernel", workload="blocks",
                                   workload_params={"n": 64, "m": 4},
                                   rule="mean"))
        # majority-family rules and identity-tracking adversaries now have
        # count-space forms, so these cells stay on the fused engine
        sweep.add(ExperimentConfig(name="majority", workload="blocks",
                                   workload_params={"n": 64, "m": 4},
                                   rule="three-majority"))
        sweep.add(ExperimentConfig(name="victims", workload="blocks",
                                   workload_params={"n": 64, "m": 4},
                                   adversary="sticky", adversary_budget=2))
        resolved = sweep.with_engine("occupancy-fused")
        engines = {c.name: c.engine for c in resolved}
        assert engines == {"ok": "occupancy-fused",
                           "no-kernel": "vectorized",
                           "majority": "occupancy-fused",
                           "victims": "occupancy-fused"}
