"""Tests for the rule registry and the Rule base class plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rules import RULE_REGISTRY, Rule, available_rules, get_rule, register_rule


class TestRegistry:
    def test_builtin_rules_registered(self):
        rules = available_rules()
        for name in ("median", "majority", "minimum", "maximum", "voter", "mean",
                     "three-majority", "median-noreplace", "median-k"):
            assert name in rules, name

    def test_get_rule_returns_instance(self):
        rule = get_rule("median")
        assert isinstance(rule, Rule)
        assert rule.name == "median"

    def test_get_rule_with_kwargs(self):
        rule = get_rule("median-k", k=4)
        assert rule.num_choices == 4

    def test_get_rule_unknown_name(self):
        with pytest.raises(KeyError):
            get_rule("does-not-exist")

    def test_register_rule_rejects_non_rule(self):
        with pytest.raises(TypeError):
            register_rule(int)

    def test_register_rule_rejects_duplicate_name(self):
        class Dup(Rule):
            name = "median"  # collides with the built-in

            def apply_vectorized(self, values, samples, rng):  # pragma: no cover
                return values

            def apply_single(self, own_value, sampled_values, rng):  # pragma: no cover
                return own_value

        with pytest.raises(ValueError):
            register_rule(Dup)

    def test_custom_rule_registration_roundtrip(self):
        class EchoRule(Rule):
            name = "echo-test-rule"
            num_choices = 1

            def apply_vectorized(self, values, samples, rng):
                return np.array(values)

            def apply_single(self, own_value, sampled_values, rng):
                return own_value

        try:
            register_rule(EchoRule)
            assert isinstance(get_rule("echo-test-rule"), EchoRule)
        finally:
            RULE_REGISTRY.pop("echo-test-rule", None)


class TestRuleBaseClass:
    def test_step_runs_full_round(self, rng):
        rule = get_rule("median")
        values = np.arange(30)
        out = rule.step(values, rng)
        assert out.shape == (30,)
        assert set(np.unique(out)) <= set(range(30))

    def test_validate_samples_wrong_rows(self, rng):
        rule = get_rule("median")
        with pytest.raises(ValueError):
            rule.validate_samples(10, np.zeros((5, 2), dtype=np.int64))

    def test_validate_samples_negative_index(self):
        rule = get_rule("median")
        samples = np.array([[-1, 0]], dtype=np.int64)
        with pytest.raises(ValueError):
            rule.validate_samples(1, samples)

    def test_sample_contacts_is_uniform(self):
        rng = np.random.default_rng(0)
        rule = get_rule("median")
        n = 20
        counts = np.zeros(n)
        for _ in range(500):
            counts += np.bincount(rule.sample_contacts(n, rng).ravel(), minlength=n)
        # every process expected 2*500 = 1000 selections; allow 10% deviation
        assert np.all(np.abs(counts - 1000) < 120)
