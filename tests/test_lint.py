"""Tests for ``repro lint``: framework, rule pack, baseline ratchet, CLI.

Layout mirrors the acceptance criteria:

* per-rule fixtures — a positive (violating) snippet, a negative (clean)
  snippet, and an inline suppression for every rule;
* canaries — one injected single-rule violation per rule, each driving the
  runner to exit code 4;
* the self-run — the shipped ``src/repro`` tree must be clean against the
  committed ``lint-baseline.json``;
* catalog round-trips — statically-resolved metric emitters equal the
  ``METRICS`` catalog, instrumented seams equal ``SEAMS``;
* the baseline ratchet — grandfathered, new, and stale findings and the
  ``--write-baseline`` regeneration flow;
* the JSON artifact — schema check plus cross-commit ``diff_reports``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    Baseline,
    apply_baseline,
    default_baseline_path,
    default_root,
    default_rules,
    diff_reports,
    load_report,
    render_json,
    run_lint,
    run_rules,
    suppressions_in,
)
from repro.lint.rules import FaultSeamRule, MetricsCatalogRule

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def make_tree(tmp_path: Path, files: dict) -> Path:
    """Write ``{relpath: source}`` under a fresh fixture root."""
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def findings_for(tmp_path: Path, files: dict, rule_id: str = None):
    rules = default_rules() if rule_id is None else [ALL_RULES[rule_id]()]
    result = run_rules(make_tree(tmp_path, files), rules)
    return result


# --------------------------------------------------------------------------- #
# framework
# --------------------------------------------------------------------------- #
class TestFramework:
    def test_suppression_parsing(self):
        lines = ["x = 1  # repro-lint: disable=rng-discipline",
                 "y = 2",
                 "z = 3  # repro-lint: disable=a, b"]
        sup = suppressions_in(lines)
        assert sup == {1: {"rng-discipline"}, 3: {"a", "b"}}

    def test_fingerprint_survives_line_shift(self, tmp_path):
        src = "import numpy as np\nnp.random.seed(1)\n"
        shifted = "import numpy as np\n# a comment\n\nnp.random.seed(1)\n"
        f1 = findings_for(tmp_path / "a", {"engine/m.py": src},
                          "rng-discipline").findings
        f2 = findings_for(tmp_path / "b", {"engine/m.py": shifted},
                          "rng-discipline").findings
        assert len(f1) == len(f2) == 1
        assert f1[0].line != f2[0].line
        assert f1[0].fingerprint == f2[0].fingerprint

    def test_parse_error_is_a_finding(self, tmp_path):
        root = make_tree(tmp_path, {"engine/bad.py": "def broken(:\n"})
        result = run_rules(root, default_rules())
        assert [f.rule for f in result.parse_errors] == ["parse-error"]
        run = run_lint(root=root, baseline_path=tmp_path / "b.json")
        assert run.exit_code == 4

    def test_multiline_statement_suppression(self, tmp_path):
        # the comment sits on a continuation line of the statement span
        src = ("import numpy as np\n"
               "np.random.seed(\n"
               "    1)  # repro-lint: disable=rng-discipline\n")
        result = findings_for(tmp_path, {"engine/m.py": src},
                              "rng-discipline")
        assert result.findings == [] and len(result.suppressed) == 1


# --------------------------------------------------------------------------- #
# per-rule fixtures: positive, negative, suppression
# --------------------------------------------------------------------------- #
class TestRngDiscipline:
    def test_positive_legacy_numpy(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"engine/m.py": "import numpy as np\nx = np.random.rand(3)\n"},
            "rng-discipline")
        assert [f.rule for f in result.findings] == ["rng-discipline"]

    def test_positive_stdlib_random(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"core/m.py": "import random\nx = random.random()\n"},
            "rng-discipline")
        assert len(result.findings) == 1

    def test_positive_wall_clock(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"analysis/m.py": "import time\nt = time.time()\n"},
            "rng-discipline")
        assert len(result.findings) == 1

    def test_negative_generator_api(self, tmp_path):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng(3)\n"
               "ss = np.random.SeedSequence(7)\n"
               "x = rng.integers(0, 10)\n")
        result = findings_for(tmp_path, {"engine/m.py": src},
                              "rng-discipline")
        assert result.findings == []

    def test_out_of_scope_not_flagged(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"util/m.py": "import numpy as np\nx = np.random.rand(3)\n"},
            "rng-discipline")
        assert result.findings == []

    def test_seam_file_exempt(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"engine/rng.py": "import numpy as np\nnp.random.seed(0)\n"},
            "rng-discipline")
        assert result.findings == []

    def test_suppression(self, tmp_path):
        src = ("import numpy as np\n"
               "np.random.seed(1)  # repro-lint: disable=rng-discipline\n")
        result = findings_for(tmp_path, {"engine/m.py": src},
                              "rng-discipline")
        assert result.findings == [] and len(result.suppressed) == 1


class TestJsonNanDiscipline:
    def test_positive(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"store/m.py": "import json\ns = json.dumps({'a': 1})\n"},
            "json-nan-discipline")
        assert [f.rule for f in result.findings] == ["json-nan-discipline"]

    def test_positive_from_import(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"obs/m.py": "from json import dumps\ns = dumps({'a': 1})\n"},
            "json-nan-discipline")
        assert len(result.findings) == 1

    def test_negative(self, tmp_path):
        src = "import json\ns = json.dumps({'a': 1}, allow_nan=False)\n"
        result = findings_for(tmp_path, {"store/m.py": src},
                              "json-nan-discipline")
        assert result.findings == []

    def test_serialization_exempt(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"io/serialization.py": "import json\ns = json.dumps({})\n"},
            "json-nan-discipline")
        assert result.findings == []

    def test_suppression(self, tmp_path):
        src = ("import json\n"
               "s = json.dumps({})  # repro-lint: disable=json-nan-discipline\n")
        result = findings_for(tmp_path, {"store/m.py": src},
                              "json-nan-discipline")
        assert result.findings == [] and len(result.suppressed) == 1


CATALOG = ("METRICS = {\n"
           "    'a.hits': {'kind': 'counter', 'doc': 'x'},\n"
           "    'a.lat_s': {'kind': 'histogram', 'doc': 'y'},\n"
           "}\n")
EMITTER = ("from repro.obs import metrics\n"
           "metrics.count('a.hits')\n"
           "metrics.observe('a.lat_s', 0.5)\n")


class TestMetricsCatalog:
    def test_negative_round_trip(self, tmp_path):
        result = findings_for(
            tmp_path, {"obs/metrics.py": CATALOG, "engine/m.py": EMITTER},
            "metrics-catalog")
        assert result.findings == []

    def test_positive_uncataloged(self, tmp_path):
        emitter = EMITTER + "metrics.count('nope')\n"
        result = findings_for(
            tmp_path, {"obs/metrics.py": CATALOG, "engine/m.py": emitter},
            "metrics-catalog")
        assert ["'nope'" in f.message for f in result.findings] == [True]

    def test_positive_kind_mismatch(self, tmp_path):
        emitter = ("from repro.obs import metrics\n"
                   "metrics.observe('a.hits', 1.0)\n"
                   "metrics.count('a.hits')\n"
                   "metrics.observe('a.lat_s', 0.5)\n")
        result = findings_for(
            tmp_path, {"obs/metrics.py": CATALOG, "engine/m.py": emitter},
            "metrics-catalog")
        assert len(result.findings) == 1
        assert "cataloged as a counter" in result.findings[0].message

    def test_positive_dead_metric(self, tmp_path):
        emitter = "from repro.obs import metrics\nmetrics.count('a.hits')\n"
        result = findings_for(
            tmp_path, {"obs/metrics.py": CATALOG, "engine/m.py": emitter},
            "metrics-catalog")
        assert len(result.findings) == 1
        assert "dead metric" in result.findings[0].message
        assert result.findings[0].path == "obs/metrics.py"

    def test_dynamic_name_skipped(self, tmp_path):
        emitter = EMITTER + "name = 'dyn'\nmetrics.count(name)\n"
        result = findings_for(
            tmp_path, {"obs/metrics.py": CATALOG, "engine/m.py": emitter},
            "metrics-catalog")
        assert result.findings == []


class TestWarningTaxonomy:
    def test_positive_bare_string(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"store/m.py": "import warnings\nwarnings.warn('careful')\n"},
            "warning-taxonomy")
        assert [f.rule for f in result.findings] == ["warning-taxonomy"]

    def test_positive_user_warning(self, tmp_path):
        src = "import warnings\nwarnings.warn('x', UserWarning)\n"
        result = findings_for(tmp_path, {"store/m.py": src},
                              "warning-taxonomy")
        assert len(result.findings) == 1

    def test_negative_cataloged_class(self, tmp_path):
        src = ("import warnings\n"
               "from repro.robustness import DegradedExecutionWarning\n"
               "warnings.warn('x', DegradedExecutionWarning)\n"
               "warnings.warn('y', category=DegradedExecutionWarning)\n")
        result = findings_for(tmp_path, {"store/m.py": src},
                              "warning-taxonomy")
        assert result.findings == []

    def test_suppression(self, tmp_path):
        src = ("import warnings\n"
               "warnings.warn('x')  # repro-lint: disable=warning-taxonomy\n")
        result = findings_for(tmp_path, {"store/m.py": src},
                              "warning-taxonomy")
        assert result.findings == [] and len(result.suppressed) == 1


class TestAtomicWriteDiscipline:
    def test_positive_bare_open(self, tmp_path):
        src = "with open('x.json', 'w') as fh:\n    fh.write('{}')\n"
        result = findings_for(tmp_path, {"store/m.py": src},
                              "atomic-write-discipline")
        assert [f.rule for f in result.findings] == ["atomic-write-discipline"]

    def test_positive_write_text(self, tmp_path):
        src = ("from pathlib import Path\n"
               "Path('x.json').write_text('{}')\n")
        result = findings_for(tmp_path, {"store/m.py": src},
                              "atomic-write-discipline")
        assert len(result.findings) == 1

    def test_negative_temp_then_replace(self, tmp_path):
        src = ("import os\n"
               "def put(path, data):\n"
               "    tmp = str(path) + '.tmp'\n"
               "    with open(tmp, 'w') as fh:\n"
               "        fh.write(data)\n"
               "    os.replace(tmp, path)\n")
        result = findings_for(tmp_path, {"store/m.py": src},
                              "atomic-write-discipline")
        assert result.findings == []

    def test_negative_append_mode(self, tmp_path):
        src = "with open('log.jsonl', 'a') as fh:\n    fh.write('x')\n"
        result = findings_for(tmp_path, {"store/m.py": src},
                              "atomic-write-discipline")
        assert result.findings == []

    def test_out_of_scope_not_flagged(self, tmp_path):
        src = "with open('x', 'w') as fh:\n    fh.write('y')\n"
        result = findings_for(tmp_path, {"analysis/m.py": src},
                              "atomic-write-discipline")
        assert result.findings == []

    def test_suppression(self, tmp_path):
        src = ("from pathlib import Path\n"
               "Path('x').write_text('')"
               "  # repro-lint: disable=atomic-write-discipline\n")
        result = findings_for(tmp_path, {"store/m.py": src},
                              "atomic-write-discipline")
        assert result.findings == [] and len(result.suppressed) == 1


class TestSpawnContext:
    def test_positive_direct_process(self, tmp_path):
        src = ("import multiprocessing\n"
               "p = multiprocessing.Process(target=print)\n")
        result = findings_for(tmp_path, {"store/coordinator.py": src},
                              "spawn-context")
        assert [f.rule for f in result.findings] == ["spawn-context"]

    def test_positive_fork_context(self, tmp_path):
        src = ("import multiprocessing\n"
               "ctx = multiprocessing.get_context('fork')\n")
        result = findings_for(tmp_path, {"store/coordinator.py": src},
                              "spawn-context")
        assert len(result.findings) == 1

    def test_positive_pool_without_mp_context(self, tmp_path):
        src = ("import http.server\n"
               "from concurrent.futures import ProcessPoolExecutor\n"
               "pool = ProcessPoolExecutor(2)\n")
        result = findings_for(tmp_path, {"net/serve.py": src},
                              "spawn-context")
        assert len(result.findings) == 1

    def test_negative_spawn(self, tmp_path):
        src = ("import multiprocessing\n"
               "from concurrent.futures import ProcessPoolExecutor\n"
               "ctx = multiprocessing.get_context('spawn')\n"
               "p = ctx.Process(target=print)\n"
               "pool = ProcessPoolExecutor(2, mp_context=ctx)\n")
        result = findings_for(tmp_path, {"store/coordinator.py": src},
                              "spawn-context")
        assert result.findings == []

    def test_out_of_scope_not_flagged(self, tmp_path):
        src = ("import multiprocessing\n"
               "p = multiprocessing.Process(target=print)\n")
        result = findings_for(tmp_path, {"engine/parallel.py": src},
                              "spawn-context")
        assert result.findings == []


SEAM_CATALOG = "SEAMS = (\n    's.write',\n    's.read',\n)\n"
SEAM_CALLER = ("from repro.robustness import fault_point\n"
               "fault_point('s.write')\n"
               "fault_point('s.read')\n")


class TestFaultSeamCoverage:
    def test_negative_round_trip(self, tmp_path):
        result = findings_for(
            tmp_path,
            {"robustness/faults.py": SEAM_CATALOG, "store/m.py": SEAM_CALLER},
            "fault-seam-coverage")
        assert result.findings == []

    def test_positive_unknown_seam(self, tmp_path):
        caller = SEAM_CALLER + "fault_point('s.ghost')\n"
        result = findings_for(
            tmp_path,
            {"robustness/faults.py": SEAM_CATALOG, "store/m.py": caller},
            "fault-seam-coverage")
        assert len(result.findings) == 1
        assert "'s.ghost'" in result.findings[0].message

    def test_positive_dead_seam(self, tmp_path):
        catalog = "SEAMS = (\n    's.write',\n    's.read',\n    's.dead',\n)\n"
        result = findings_for(
            tmp_path,
            {"robustness/faults.py": catalog, "store/m.py": SEAM_CALLER},
            "fault-seam-coverage")
        assert len(result.findings) == 1
        assert "dead seam" in result.findings[0].message
        assert result.findings[0].path == "robustness/faults.py"

    def test_seam_keyword_counts_as_instrumented(self, tmp_path):
        caller = ("from repro.robustness import fault_point\n"
                  "fault_point('s.write')\n"
                  "def save(w):\n"
                  "    w.atomic(seam='s.read')\n")
        result = findings_for(
            tmp_path,
            {"robustness/faults.py": SEAM_CATALOG, "store/m.py": caller},
            "fault-seam-coverage")
        assert result.findings == []


# --------------------------------------------------------------------------- #
# canaries: each injected single-rule violation must exit 4
# --------------------------------------------------------------------------- #
CANARIES = {
    "rng-discipline":
        {"engine/m.py": "import numpy as np\nnp.random.seed(1)\n"},
    "json-nan-discipline":
        {"store/m.py": "import json\ns = json.dumps({'a': 1})\n"},
    "metrics-catalog":
        {"obs/metrics.py": CATALOG,
         "engine/m.py": EMITTER + "metrics.count('uncataloged')\n"},
    "warning-taxonomy":
        {"store/m.py": "import warnings\nwarnings.warn('bare')\n"},
    "atomic-write-discipline":
        {"store/m.py": "with open('x', 'w') as fh:\n    fh.write('y')\n"},
    "spawn-context":
        {"store/coordinator.py":
         "import multiprocessing\np = multiprocessing.Process(target=print)\n"},
    "fault-seam-coverage":
        {"robustness/faults.py": SEAM_CATALOG,
         "store/m.py": SEAM_CALLER + "fault_point('s.ghost')\n"},
}


class TestCanaries:
    @pytest.mark.parametrize("rule_id", sorted(CANARIES))
    def test_injected_violation_exits_4(self, rule_id, tmp_path):
        root = make_tree(tmp_path, CANARIES[rule_id])
        run = run_lint(root=root, baseline_path=tmp_path / "baseline.json")
        assert run.exit_code == 4
        assert rule_id in {f.rule for f in run.outcome.new}


# --------------------------------------------------------------------------- #
# baseline ratchet
# --------------------------------------------------------------------------- #
class TestBaselineRatchet:
    VIOLATION = {"store/m.py": "import json\ns = json.dumps({'a': 1})\n"}

    def test_write_then_grandfathered(self, tmp_path):
        root = make_tree(tmp_path, self.VIOLATION)
        bpath = tmp_path / "baseline.json"
        wrote = run_lint(root=root, baseline_path=bpath, write_baseline=True)
        assert wrote.exit_code == 0 and wrote.wrote_baseline
        assert len(Baseline.load(bpath).entries) == 1
        rerun = run_lint(root=root, baseline_path=bpath)
        assert rerun.exit_code == 0
        assert len(rerun.outcome.baselined) == 1 and rerun.outcome.new == []

    def test_new_finding_beyond_baseline_is_fatal(self, tmp_path):
        root = make_tree(tmp_path, self.VIOLATION)
        bpath = tmp_path / "baseline.json"
        run_lint(root=root, baseline_path=bpath, write_baseline=True)
        extra = root / "store" / "extra.py"
        extra.write_text("import warnings\nwarnings.warn('bare')\n")
        run = run_lint(root=root, baseline_path=bpath)
        assert run.exit_code == 4
        assert [f.rule for f in run.outcome.new] == ["warning-taxonomy"]
        assert len(run.outcome.baselined) == 1  # the grandfathered one stays

    def test_fixed_finding_makes_baseline_stale(self, tmp_path):
        root = make_tree(tmp_path, self.VIOLATION)
        bpath = tmp_path / "baseline.json"
        run_lint(root=root, baseline_path=bpath, write_baseline=True)
        (root / "store" / "m.py").write_text(
            "import json\ns = json.dumps({'a': 1}, allow_nan=False)\n")
        run = run_lint(root=root, baseline_path=bpath)
        assert run.exit_code == 4                 # ratchet: fail until...
        assert len(run.outcome.stale) == 1
        regen = run_lint(root=root, baseline_path=bpath, write_baseline=True)
        assert regen.exit_code == 0               # ...regenerated smaller
        assert Baseline.load(bpath).entries == {}

    def test_bad_schema_rejected(self, tmp_path):
        bpath = tmp_path / "baseline.json"
        bpath.write_text(json.dumps({"schema": 99, "entries": {}}))
        with pytest.raises(ValueError, match="schema"):
            Baseline.load(bpath)

    def test_apply_baseline_counts(self):
        outcome = apply_baseline([], Baseline(entries={
            "deadbeef0000": {"count": 2, "rule": "x", "path": "p"}}))
        assert outcome.fatal and outcome.stale[0]["grandfathered"] == 2


# --------------------------------------------------------------------------- #
# the self-run: the shipped tree is clean
# --------------------------------------------------------------------------- #
class TestSelfRun:
    def test_src_tree_clean_against_committed_baseline(self):
        run = run_lint(root=SRC_ROOT,
                       baseline_path=REPO_ROOT / "lint-baseline.json")
        assert run.result.parse_errors == []
        assert run.outcome.new == [], [f.format() for f in run.outcome.new]
        assert run.outcome.stale == []
        assert run.exit_code == 0

    def test_default_paths_resolve_to_this_checkout(self):
        assert default_root() == SRC_ROOT
        assert default_baseline_path() == REPO_ROOT / "lint-baseline.json"

    def test_metrics_catalog_round_trip(self):
        rule = MetricsCatalogRule()
        run_rules(SRC_ROOT, [rule])
        emitted = {name for _, _, name, _ in rule.emitters}
        assert rule.catalog_seen
        assert emitted == set(rule.catalog)

    def test_fault_seam_round_trip(self):
        rule = FaultSeamRule()
        run_rules(SRC_ROOT, [rule])
        instrumented = {seam for _, _, seam in rule.sites}
        assert rule.catalog_seen
        assert instrumented == set(rule.catalog)


# --------------------------------------------------------------------------- #
# CLI + JSON artifact
# --------------------------------------------------------------------------- #
class TestCliAndReport:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
            cwd=str(REPO_ROOT))

    def test_cli_clean_tree_exits_0(self, tmp_path):
        root = make_tree(tmp_path, {"engine/ok.py": "x = 1\n"})
        proc = self.run_cli("--root", str(root),
                            "--baseline", str(tmp_path / "b.json"))
        assert proc.returncode == 0, proc.stderr
        assert "0 new finding(s)" in proc.stdout

    def test_cli_violation_exits_4_with_json_report(self, tmp_path):
        root = make_tree(tmp_path, CANARIES["rng-discipline"])
        proc = self.run_cli("--root", str(root), "--format", "json",
                            "--baseline", str(tmp_path / "b.json"))
        assert proc.returncode == 4, proc.stderr
        doc = load_report(proc.stdout)
        assert doc["summary"]["exit_code"] == 4
        assert [f["rule"] for f in doc["findings"]] == ["rng-discipline"]

    def test_cli_bad_root_exits_2(self, tmp_path):
        proc = self.run_cli("--root", str(tmp_path / "missing"))
        assert proc.returncode == 2

    def test_report_schema_enforced(self):
        with pytest.raises(ValueError, match="repro-lint"):
            load_report(json.dumps({"tool": "other"}))
        with pytest.raises(ValueError, match="schema"):
            load_report(json.dumps({"tool": "repro-lint", "schema": 99}))

    def test_diff_reports(self, tmp_path):
        def report_for(files):
            run = run_lint(root=make_tree(tmp_path / files.pop("__dir__"),
                                          files),
                           baseline_path=tmp_path / "nonexistent.json")
            return load_report(render_json(run.result, run.outcome,
                                           run.exit_code))

        old = report_for({"__dir__": "a",
                          "store/m.py": "import json\nx = json.dumps({})\n"})
        new = report_for({"__dir__": "b",
                          "store/m.py":
                          "import json\nx = json.dumps({}, allow_nan=False)\n",
                          "store/n.py":
                          "import warnings\nwarnings.warn('bare')\n"})
        diff = diff_reports(old, new)
        assert [f["rule"] for f in diff["introduced"]] == ["warning-taxonomy"]
        assert [f["rule"] for f in diff["fixed"]] == ["json-nan-discipline"]
