"""Tests for repro.core.consensus: stable and almost-stable detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.consensus import (
    AlmostStableCriterion,
    consensus_value,
    detect_almost_stable_round,
    detect_consensus_round,
    is_consensus,
)
from repro.core.state import Configuration


class TestIsConsensus:
    def test_true(self):
        assert is_consensus(np.array([3, 3, 3]))

    def test_false(self):
        assert not is_consensus(np.array([3, 3, 4]))

    def test_empty_is_consensus(self):
        assert is_consensus(np.array([], dtype=np.int64))

    def test_configuration_input(self):
        assert is_consensus(Configuration.from_values([1, 1]))

    def test_consensus_value(self):
        assert consensus_value(np.array([5, 5])) == 5
        assert consensus_value(np.array([5, 6])) is None
        assert consensus_value(np.array([], dtype=np.int64)) is None


class TestAlmostStableCriterion:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlmostStableCriterion(tolerance=-1)
        with pytest.raises(ValueError):
            AlmostStableCriterion(window=0)

    def test_holds_within_tolerance(self):
        crit = AlmostStableCriterion(tolerance=2)
        assert crit.holds(np.array([1, 1, 1, 2, 3]), value=1)

    def test_fails_beyond_tolerance(self):
        crit = AlmostStableCriterion(tolerance=1)
        assert not crit.holds(np.array([1, 1, 1, 2, 3]), value=1)

    def test_zero_tolerance_is_exact_consensus(self):
        crit = AlmostStableCriterion(tolerance=0)
        assert crit.holds(np.array([1, 1]), value=1)
        assert not crit.holds(np.array([1, 2]), value=1)


class TestDetectConsensusRound:
    def test_detects_first_round(self):
        traj = [np.array([0, 1]), np.array([1, 1]), np.array([1, 1])]
        status = detect_consensus_round(traj)
        assert status.reached and status.round == 1 and status.value == 1

    def test_not_reached(self):
        traj = [np.array([0, 1]), np.array([1, 0])]
        status = detect_consensus_round(traj)
        assert not status.reached and status.round is None

    def test_initial_consensus_is_round_zero(self):
        status = detect_consensus_round([np.array([7, 7])])
        assert status.reached and status.round == 0 and status.value == 7

    def test_empty_trajectory(self):
        status = detect_consensus_round([])
        assert not status.reached


class TestDetectAlmostStableRound:
    def test_detects_trailing_run(self):
        traj = [
            np.array([0, 1, 0, 1]),
            np.array([1, 1, 0, 1]),
            np.array([1, 1, 1, 1]),
            np.array([1, 1, 1, 0]),  # still within tolerance 1
            np.array([1, 1, 1, 1]),
        ]
        status = detect_almost_stable_round(traj, AlmostStableCriterion(tolerance=1, window=3))
        assert status.reached
        assert status.round == 1       # from round 1 onwards, ≤1 process disagrees with 1
        assert status.value == 1

    def test_run_broken_in_middle_restarts(self):
        traj = [
            np.array([1, 1, 1, 1]),
            np.array([0, 0, 1, 1]),    # breaks the streak (2 disagree, tolerance 1)
            np.array([1, 1, 1, 1]),
            np.array([1, 1, 1, 1]),
        ]
        status = detect_almost_stable_round(traj, AlmostStableCriterion(tolerance=1, window=2))
        assert status.reached
        assert status.round == 2

    def test_window_longer_than_trailing_run(self):
        traj = [np.array([0, 1]), np.array([1, 1])]
        status = detect_almost_stable_round(traj, AlmostStableCriterion(tolerance=0, window=5))
        assert not status.reached

    def test_fails_if_final_state_not_agreeing(self):
        traj = [np.array([1, 1, 1]), np.array([0, 2, 1])]
        status = detect_almost_stable_round(traj, AlmostStableCriterion(tolerance=0, window=1))
        assert not status.reached

    def test_explicit_value_parameter(self):
        traj = [np.array([2, 2, 2, 9])] * 4
        status = detect_almost_stable_round(traj, AlmostStableCriterion(tolerance=1, window=2),
                                            value=2)
        assert status.reached and status.value == 2

    def test_empty_trajectory(self):
        status = detect_almost_stable_round([], AlmostStableCriterion())
        assert not status.reached

    def test_accepts_configurations(self):
        traj = [Configuration.from_values([1, 1]), Configuration.from_values([1, 1])]
        status = detect_almost_stable_round(traj, AlmostStableCriterion(tolerance=0, window=2))
        assert status.reached and status.round == 0
