"""Tests for repro.core.occupancy_state: the O(m) state representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import configuration_metrics
from repro.core.occupancy_state import (
    OccupancyState,
    occupancy_from_values,
    occupancy_metrics,
)
from repro.core.state import Configuration


class TestConstruction:
    def test_from_values_counts(self):
        st = OccupancyState.from_values([3, 1, 3, 3, 7])
        assert st.support.tolist() == [1, 3, 7]
        assert st.counts.tolist() == [1, 3, 1]
        assert st.n == 5

    def test_from_configuration_roundtrip(self):
        cfg = Configuration.from_values([5, 5, 2, 9, 2, 2])
        st = OccupancyState.from_configuration(cfg)
        assert st.loads == cfg.loads
        back = st.to_configuration()
        assert back.loads == cfg.loads

    def test_from_loads_keeps_zero_bins(self):
        st = OccupancyState.from_loads({0: 4, 1: 0, 2: 6})
        assert st.num_bins == 3
        assert st.num_values == 2
        assert st.n == 10

    def test_rejects_unsorted_support(self):
        with pytest.raises(ValueError):
            OccupancyState(support=np.array([3, 1]), counts=np.array([1, 1]))

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            OccupancyState(support=np.array([1, 2]), counts=np.array([1, -1]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            OccupancyState(support=np.array([1, 2]), counts=np.array([1]))

    def test_arrays_are_read_only(self):
        st = OccupancyState.from_values([1, 2, 2])
        with pytest.raises(ValueError):
            st.counts[0] = 99


class TestConfigurationCompatibleQueries:
    """OccupancyState must answer every query exactly like the expanded
    Configuration — that is what makes SimulationResult substrate-agnostic."""

    @pytest.mark.parametrize("values", [
        [0],
        [7, 7, 7],
        [0, 1],
        [0, 0, 1, 1],
        [5, 3, 3, 9, 9, 9, 1],
        list(range(10)),
        [2, 2, 2, 8, 8, 8],          # tie in loads
        [-5, -5, 0, 3, 3],           # negative values
    ])
    def test_matches_configuration(self, values):
        cfg = Configuration.from_values(values)
        st = OccupancyState.from_configuration(cfg)
        assert st.n == cfg.n
        assert st.num_values == cfg.num_values
        assert st.loads == cfg.loads
        assert st.is_consensus == cfg.is_consensus
        assert st.median_value() == cfg.median_value()
        assert st.majority_value() == cfg.majority_value()
        assert st.agreement_fraction() == pytest.approx(cfg.agreement_fraction())
        for v in set(values) | {12345}:
            assert st.count_value(v) == cfg.count_value(v)

    @pytest.mark.parametrize("values", [
        [0, 1, 1], [4, 4, 2, 2, 7, 0, 0, 0], [1, 2, 3, 4, 5],
    ])
    def test_metrics_match_configuration_metrics(self, values):
        st = occupancy_from_values(values)
        assert occupancy_metrics(st, 3) == configuration_metrics(np.array(values), 3)

    def test_zero_bins_do_not_disturb_queries(self):
        dense = OccupancyState.from_values([1, 1, 5])
        padded = dense.with_support([0, 1, 2, 5, 9])
        assert padded.num_bins == 5
        assert padded.num_values == dense.num_values
        assert padded.loads == dense.loads
        assert padded.median_value() == dense.median_value()
        assert padded.majority_value() == dense.majority_value()
        assert padded == dense  # equality compares compacted states


class TestTransformations:
    def test_with_support_rejects_dropping_nonempty_bins(self):
        st = OccupancyState.from_values([1, 2])
        with pytest.raises(ValueError):
            st.with_support([1, 3])

    def test_compacted_drops_empty_bins(self):
        st = OccupancyState.from_loads({0: 2, 1: 0, 5: 3})
        c = st.compacted()
        assert c.support.tolist() == [0, 5]
        assert c.counts.tolist() == [2, 3]

    def test_fractions_sum_to_one(self):
        st = OccupancyState.from_values([0, 0, 1, 2, 2, 2])
        assert st.fractions.sum() == pytest.approx(1.0)

    def test_to_configuration_refuses_huge_n(self):
        st = OccupancyState(support=np.array([0, 1]),
                            counts=np.array([10**9, 10**9]))
        with pytest.raises(ValueError, match="materialize"):
            st.to_configuration()

    def test_huge_n_queries_stay_cheap(self):
        # the whole point: O(m) queries at n = 2·10⁹ without materializing
        st = OccupancyState(support=np.array([0, 1, 2]),
                            counts=np.array([10**9, 10**9, 17]))
        assert st.n == 2 * 10**9 + 17
        assert st.median_value() == 1
        assert st.majority_value() == 0
        assert st.minority_count() == 10**9 + 17
