"""Tests for repro.io and the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.state import Configuration
from repro.engine.trajectory import RecordLevel
from repro.engine.vectorized import simulate
from repro.io.serialization import (
    from_jsonable,
    load_result_summary,
    load_rounds_npz,
    load_trajectory_npz,
    save_result_summary,
    save_rounds_npz,
    save_trajectory_npz,
    to_jsonable,
)
from repro.io.tables import render_kv, render_table


class TestSerialization:
    def test_result_summary_roundtrip(self, tmp_path):
        res = simulate(Configuration.all_distinct(32), seed=0)
        path = save_result_summary(res, tmp_path / "run.json")
        loaded = load_result_summary(path)
        assert loaded["n"] == 32
        assert loaded["consensus_reached"] is True
        assert loaded["consensus_round"] == res.consensus_round

    def test_trajectory_metrics_roundtrip(self, tmp_path):
        res = simulate(Configuration.all_distinct(32), seed=1, record=RecordLevel.METRICS)
        path = save_trajectory_npz(res.trajectory, tmp_path / "traj.npz")
        data = load_trajectory_npz(path)
        assert "support_size" in data and "minority" in data
        assert data["support_size"].shape[0] == res.rounds_executed + 1
        assert data["support_size"][-1] == 1

    def test_trajectory_full_roundtrip(self, tmp_path):
        res = simulate(Configuration.all_distinct(16), seed=2, record=RecordLevel.FULL)
        path = save_trajectory_npz(res.trajectory, tmp_path / "full.npz")
        data = load_trajectory_npz(path)
        assert data["configurations"].shape == (res.rounds_executed + 1, 16)

    def test_rounds_npz_roundtrip(self, tmp_path):
        rounds = {"n=64": np.array([10.0, 12.0]), "n=128/adv": np.array([20.0, np.nan])}
        path = save_rounds_npz(rounds, tmp_path / "rounds.npz")
        loaded = load_rounds_npz(path)
        assert set(loaded) == {"n=64", "n=128_adv"}
        assert np.array_equal(loaded["n=64"], rounds["n=64"])

    def test_summary_json_is_valid(self, tmp_path):
        res = simulate(Configuration.all_distinct(16), seed=3)
        path = save_result_summary(res, tmp_path / "x.json")
        json.loads(path.read_text())   # should not raise


class TestNonFiniteJson:
    """The explicit NaN/inf encoding convention of repro.io.serialization."""

    def test_roundtrip(self):
        value = {"a": float("nan"), "b": [1.5, float("inf"), float("-inf")],
                 "c": {"nested": np.float64("nan")}, "d": "text", "e": 3}
        encoded = to_jsonable(value)
        # strict JSON: no NaN/Infinity literals anywhere in the payload
        text = json.dumps(encoded, allow_nan=False)
        decoded = from_jsonable(json.loads(text))
        assert np.isnan(decoded["a"]) and np.isnan(decoded["c"]["nested"])
        assert decoded["b"] == [1.5, float("inf"), float("-inf")]
        assert decoded["d"] == "text" and decoded["e"] == 3

    def test_encoding_shape(self):
        assert to_jsonable(float("nan")) == {"__float__": "nan"}
        assert to_jsonable(float("inf")) == {"__float__": "inf"}
        assert to_jsonable(float("-inf")) == {"__float__": "-inf"}
        assert to_jsonable(1.25) == 1.25

    def test_nonfinite_array_roundtrips(self):
        arr = np.array([1.0, np.nan, np.inf])
        decoded = from_jsonable(json.loads(
            json.dumps(to_jsonable(arr), allow_nan=False)))
        assert decoded[0] == 1.0 and np.isnan(decoded[1]) and np.isinf(decoded[2])

    def test_nonconverged_summary_is_strict_json(self, tmp_path):
        # a run that cannot converge within the horizon has NaN metrics
        res = simulate(Configuration.all_distinct(64), seed=4, max_rounds=1)
        path = save_result_summary(res, tmp_path / "nf.json")
        # strict parse: reject any NaN/Infinity literal the encoder missed
        json.loads(path.read_text(),
                   parse_constant=lambda name: pytest.fail(name))
        loaded = load_result_summary(path)
        assert loaded["consensus_reached"] is False


class TestTables:
    def test_render_table(self):
        out = render_table([{"x": 1}, {"x": 2}])
        assert "| x" in out

    def test_render_kv(self):
        out = render_kv({"alpha": 1, "b": "two"}, title="stuff")
        assert "stuff" in out and "alpha" in out and "two" in out

    def test_render_kv_empty(self):
        assert render_kv({}) == "(empty)"


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--n", "64"])
        assert args.command == "simulate" and args.n == 64

    def test_no_command_shows_help(self, capsys):
        rc = main([])
        assert rc == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_rules_listing(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "median" in out and "balancing" in out and "uniform-random" in out

    def test_simulate_command(self, capsys):
        rc = main(["simulate", "--n", "64", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "consensus_reached" in out

    def test_simulate_with_adversary(self, capsys):
        rc = main(["simulate", "--n", "128", "--workload", "two-bins",
                   "--adversary", "balancing", "--budget", "2",
                   "--max-rounds", "300", "--seed", "2"])
        assert rc == 0
        assert "almost_stable" in capsys.readouterr().out

    def test_simulate_uniform_workload_with_m(self, capsys):
        rc = main(["simulate", "--n", "64", "--workload", "uniform-random",
                   "--m", "5", "--seed", "3"])
        assert rc == 0

    def test_sweep_command_with_outputs(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "report.csv"
        rc = main(["sweep", "theorem1", "--scale", "0.3", "--runs", "2",
                   "--json", str(json_path), "--csv", str(csv_path)])
        assert rc == 0
        assert json_path.exists() and csv_path.exists()
        out = capsys.readouterr().out
        assert "Scaling fits" in out

    def test_figure1_command(self, capsys):
        rc = main(["figure1", "--scale", "0.15", "--runs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "worst-case 2 bins" in out
