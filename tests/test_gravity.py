"""Tests for repro.core.gravity: Equation (1) and heavy-ball sets."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.gravity import (
    empirical_gravity,
    exact_gravity,
    gravity,
    gravity_array,
    heavy_ball_threshold,
    heavy_balls,
    median_ball_rank,
)
from repro.core.state import Configuration


class TestGravityFormula:
    def test_scalar_value(self):
        # g(i) = 6 i (n-i) / n^2; for i = n/2 this is 6/4 = 1.5 (minus O(1/n))
        assert gravity(50, 100) == pytest.approx(6 * 50 * 50 / 100**2)

    def test_array_matches_scalar(self):
        n = 64
        arr = gravity_array(n)
        for i in (1, 10, 32, 63, 64):
            assert arr[i - 1] == pytest.approx(gravity(i, n))

    def test_maximized_at_median_ball(self):
        n = 101
        arr = gravity_array(n)
        argmax_rank = int(np.argmax(arr)) + 1
        # the quadratic peaks at n/2; the median ball is at ceil(n/2) — they
        # differ by at most one rank
        assert abs(argmax_rank - median_ball_rank(n)) <= 1

    def test_symmetric_about_center(self):
        n = 100
        arr = gravity_array(n)
        # g(i) with i and n-i swapped is identical for the quadratic formula
        assert arr[9] == pytest.approx(arr[n - 10 - 1], rel=1e-12)

    def test_extremes_have_small_gravity(self):
        n = 1000
        assert gravity(1, n) < 0.01
        assert gravity(n, n) == pytest.approx(0.0)

    def test_threshold_four_thirds_at_n_over_three(self):
        # Lemma 18: g(i) < 4/3 implies i <= n/3 + O(1) (or i >= 2n/3 by symmetry)
        n = 3000
        i_low = int(n / 3)
        assert gravity(i_low, n) <= 4 / 3 + 0.01
        assert gravity(n // 2, n) > 4 / 3


class TestExactGravity:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            exact_gravity(0, 10)
        with pytest.raises(ValueError):
            exact_gravity(11, 10)

    def test_total_gravity_is_n(self):
        # every ball chooses exactly one median, so gravities sum to n
        n = 150
        total = sum(exact_gravity(i, n) for i in range(1, n + 1))
        assert total == pytest.approx(n, rel=1e-9)

    def test_close_to_equation1(self):
        n = 400
        for i in (1, 50, 133, 200, 301, 400):
            assert exact_gravity(i, n) == pytest.approx(gravity(i, n), abs=6.5 / n + 1e-9)

    def test_matches_empirical(self):
        n, rounds = 120, 400
        rng = np.random.default_rng(9)
        emp = empirical_gravity(n, rounds, rng)
        exact = np.array([exact_gravity(i, n) for i in range(1, n + 1)])
        # Monte-Carlo noise per rank is ~sqrt(g/rounds) ≈ 0.06; allow 5 sigma
        assert np.max(np.abs(emp - exact)) < 0.35

    def test_empirical_requires_positive_rounds(self, rng):
        with pytest.raises(ValueError):
            empirical_gravity(10, 0, rng)


class TestHeavyBalls:
    def test_threshold_formula(self):
        n = 100
        assert heavy_ball_threshold(n, constant=2.0) == math.ceil(2.0 * math.sqrt(n * math.log(n)))

    def test_threshold_small_n(self):
        assert heavy_ball_threshold(1) == 1

    def test_heavy_sets_bounded_by_phi(self, rng):
        cfg = Configuration.uniform_random(300, 5, rng)
        phi = heavy_ball_threshold(300, constant=0.3)
        sets = heavy_balls(cfg, constant=0.3)
        for members in sets.values():
            assert 0 < members.shape[0] <= phi

    def test_heavy_sets_members_belong_to_bin(self, rng):
        cfg = Configuration.uniform_random(200, 4, rng)
        sets = heavy_balls(cfg)
        for value, members in sets.items():
            assert np.all(cfg.values[members] == value)

    def test_heavy_sets_pick_highest_gravity(self):
        # all-distinct config: bin i holds exactly ball of rank i+1, so the
        # heavy set of each bin is that single ball
        cfg = Configuration.all_distinct(50)
        sets = heavy_balls(cfg)
        assert len(sets) == 50
        for value, members in sets.items():
            assert members.shape[0] == 1

    def test_small_bins_fully_included(self):
        cfg = Configuration.from_values([0] * 3 + [1] * 200)
        sets = heavy_balls(cfg, constant=0.2)
        assert sets[0].shape[0] == 3
