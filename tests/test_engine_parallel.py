"""Tests for repro.engine.parallel: work items and pooled execution."""

from __future__ import annotations

import pytest

from repro.engine.parallel import WorkItem, execute_work_items, recommended_workers


def _item(label: str, n: int = 64, seed: int = 1, **kwargs) -> WorkItem:
    defaults = dict(
        label=label,
        workload="all-distinct",
        workload_params={"n": n},
        num_runs=3,
        seed=seed,
    )
    defaults.update(kwargs)
    return WorkItem(**defaults)


class TestWorkItem:
    def test_hashable(self):
        assert hash(_item("a")) != 0 or True   # hash computed without error
        assert {_item("a"), _item("a")} is not None

    def test_defaults(self):
        item = _item("x")
        assert item.rule == "median"
        assert item.adversary == "null"
        assert item.adversary_budget == 0


class TestExecuteWorkItems:
    def test_empty_list(self):
        assert execute_work_items([]) == []

    def test_serial_execution(self):
        items = [_item("a", n=64), _item("b", n=32)]
        out = execute_work_items(items, max_workers=0)
        assert len(out) == 2
        assert out[0]["label"] == "a"
        assert out[1]["label"] == "b"
        assert out[0]["convergence_fraction"] == 1.0
        assert out[0]["param_n"] == 64

    def test_adversarial_item(self):
        item = _item("adv", n=128, workload="two-bins",
                     workload_params={"n": 128, "minority": 64},
                     adversary="balancing", adversary_budget=2,
                     max_rounds=400)
        out = execute_work_items([item], max_workers=0)
        assert out[0]["adversary"] == "balancing"
        assert out[0]["adversary_budget"] == 2

    def test_results_order_matches_items(self):
        items = [_item(f"cell-{i}", n=32, seed=i) for i in range(4)]
        out = execute_work_items(items, max_workers=0)
        assert [o["label"] for o in out] == [f"cell-{i}" for i in range(4)]

    def test_parallel_path_produces_same_labels(self):
        # the pool may fall back to serial in sandboxes — either way the
        # results must be complete and ordered
        items = [_item(f"p-{i}", n=32, seed=i) for i in range(3)]
        out = execute_work_items(items, max_workers=2)
        assert [o["label"] for o in out] == ["p-0", "p-1", "p-2"]

    def test_serial_and_parallel_agree(self):
        items = [_item("same", n=48, seed=7)]
        serial = execute_work_items(items, max_workers=0)[0]
        pooled = execute_work_items(items, max_workers=2)[0]
        assert serial["mean_rounds"] == pooled["mean_rounds"]

    def test_summaries_carry_per_run_rounds(self):
        out = execute_work_items([_item("r", n=32)], max_workers=0)[0]
        assert len(out["rounds"]) == out["num_runs"]
        assert all(isinstance(r, float) for r in out["rounds"])

    @pytest.mark.parametrize("max_workers", [0, 2])
    def test_raising_cell_becomes_error_summary(self, max_workers):
        # a poisoned cell must yield {"label", "error"} in its slot instead
        # of aborting the batch — identically on the serial and pooled paths
        items = [_item("good", n=32),
                 _item("bad", n=32, rule="no-such-rule"),
                 _item("also-good", n=48)]
        out = execute_work_items(items, max_workers=max_workers)
        assert [o["label"] for o in out] == ["good", "bad", "also-good"]
        assert "error" in out[1] and "no-such-rule" in out[1]["error"]
        assert out[1]["error"].startswith("KeyError")
        assert out[0]["convergence_fraction"] == 1.0

    def test_iter_results_include_errors(self):
        from repro.engine.parallel import iter_work_item_results

        items = [_item("good", n=32), _item("bad", n=32, rule="boom")]
        results = dict(iter_work_item_results(items, max_workers=2))
        assert set(results) == {0, 1}
        assert "error" in results[1] and "boom" in results[1]["error"]


class TestRecommendedWorkers:
    def test_at_least_one(self):
        assert recommended_workers() >= 1
