"""Tests for repro.core.baseline_rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline_rules import (
    MaximumRule,
    MeanRule,
    MinimumRule,
    TwoChoicesMajorityRule,
    VoterRule,
)


class TestMinimumRule:
    def test_vectorized_matches_definition(self, rng):
        rule = MinimumRule()
        values = rng.integers(0, 50, size=100)
        samples = rng.integers(0, 100, size=(100, 1))
        out = rule.apply_vectorized(values, samples, rng)
        expected = np.minimum(values, values[samples[:, 0]])
        assert np.array_equal(out, expected)

    def test_monotone_never_increases_any_value(self, rng):
        rule = MinimumRule()
        values = rng.integers(0, 100, size=64)
        for _ in range(5):
            new = rule.step(values, rng)
            assert np.all(new <= values)
            values = new

    def test_global_minimum_is_invariant(self, rng):
        rule = MinimumRule()
        values = rng.integers(5, 100, size=64)
        values[7] = 1
        for _ in range(20):
            values = rule.step(values, rng)
        assert values.min() == 1

    def test_converges_to_minimum(self, rng):
        rule = MinimumRule()
        values = rng.integers(0, 1000, size=128)
        target = values.min()
        for _ in range(200):
            values = rule.step(values, rng)
            if np.all(values == target):
                break
        assert np.all(values == target)

    def test_apply_single(self, rng):
        assert MinimumRule().apply_single(5, [3], rng) == 3
        assert MinimumRule().apply_single(2, [3], rng) == 2

    def test_apply_single_arity(self, rng):
        with pytest.raises(ValueError):
            MinimumRule().apply_single(5, [3, 4], rng)


class TestMaximumRule:
    def test_vectorized(self, rng):
        rule = MaximumRule()
        values = rng.integers(0, 50, size=100)
        samples = rng.integers(0, 100, size=(100, 1))
        out = rule.apply_vectorized(values, samples, rng)
        assert np.array_equal(out, np.maximum(values, values[samples[:, 0]]))

    def test_converges_to_maximum(self, rng):
        rule = MaximumRule()
        values = rng.integers(0, 1000, size=128)
        target = values.max()
        for _ in range(200):
            values = rule.step(values, rng)
            if np.all(values == target):
                break
        assert np.all(values == target)

    def test_apply_single(self, rng):
        assert MaximumRule().apply_single(5, [3], rng) == 5
        with pytest.raises(ValueError):
            MaximumRule().apply_single(5, [], rng)


class TestVoterRule:
    def test_copies_sampled_value(self, rng):
        rule = VoterRule()
        values = rng.integers(0, 10, size=50)
        samples = rng.integers(0, 50, size=(50, 1))
        out = rule.apply_vectorized(values, samples, rng)
        assert np.array_equal(out, values[samples[:, 0]])

    def test_apply_single(self, rng):
        assert VoterRule().apply_single(4, [9], rng) == 9
        with pytest.raises(ValueError):
            VoterRule().apply_single(4, [9, 1], rng)

    def test_preserves_value_set(self, rng):
        rule = VoterRule()
        values = rng.integers(0, 5, size=100)
        initial = set(np.unique(values))
        for _ in range(10):
            values = rule.step(values, rng)
            assert set(np.unique(values)) <= initial

    def test_two_value_consensus_eventually(self):
        # voter model on a complete graph from a 2-value state reaches
        # consensus (slowly); use a tiny n so it finishes fast
        rng = np.random.default_rng(2)
        rule = VoterRule()
        values = np.array([0] * 8 + [1] * 8, dtype=np.int64)
        for _ in range(2000):
            values = rule.step(values, rng)
            if np.all(values == values[0]):
                break
        assert np.all(values == values[0])


class TestMeanRule:
    def test_does_not_preserve_values(self):
        assert MeanRule.preserves_values is False

    def test_mean_of_three(self, rng):
        rule = MeanRule()
        values = np.array([0, 30, 60], dtype=np.int64)
        samples = np.array([[1, 2], [0, 2], [0, 1]], dtype=np.int64)
        out = rule.apply_vectorized(values, samples, rng)
        assert out.tolist() == [30, 30, 30]

    def test_can_output_new_value(self, rng):
        rule = MeanRule()
        values = np.array([0, 10], dtype=np.int64)
        samples = np.array([[1, 1], [0, 0]], dtype=np.int64)
        out = rule.apply_vectorized(values, samples, rng)
        # means are (0+10+10)/3 ≈ 6.67 and (10+0+0)/3 ≈ 3.33 — neither is 0 or 10
        assert not set(out.tolist()) <= {0, 10}

    def test_bounded_by_value_range(self, rng):
        rule = MeanRule()
        values = rng.integers(0, 100, size=100)
        lo, hi = values.min(), values.max()
        for _ in range(10):
            values = rule.step(values, rng)
            assert values.min() >= lo and values.max() <= hi

    def test_apply_single(self, rng):
        assert MeanRule().apply_single(0, [30, 60], rng) == 30
        with pytest.raises(ValueError):
            MeanRule().apply_single(0, [1], rng)


class TestTwoChoicesMajorityRule:
    def test_majority_of_three_samples(self, rng):
        rule = TwoChoicesMajorityRule()
        values = np.array([9, 1, 1, 1, 5], dtype=np.int64)
        samples = np.array([[1, 2, 3]] * 5, dtype=np.int64)
        out = rule.apply_vectorized(values, samples, rng)
        assert np.all(out == 1)

    def test_all_distinct_picks_one_of_three(self, rng):
        rule = TwoChoicesMajorityRule()
        values = np.array([0, 10, 20, 30], dtype=np.int64)
        samples = np.array([[1, 2, 3]] * 4, dtype=np.int64)
        out = rule.apply_vectorized(values, samples, rng)
        assert set(out.tolist()) <= {10, 20, 30}

    def test_own_value_ignored(self, rng):
        rule = TwoChoicesMajorityRule()
        values = np.array([99, 2, 2, 2], dtype=np.int64)
        samples = np.array([[1, 2, 3]] * 4, dtype=np.int64)
        out = rule.apply_vectorized(values, samples, rng)
        assert np.all(out == 2)

    def test_apply_single_majority(self, rng):
        assert TwoChoicesMajorityRule().apply_single(9, [2, 2, 7], rng) == 2

    def test_apply_single_all_distinct_uniform(self, rng):
        rule = TwoChoicesMajorityRule()
        picks = {rule.apply_single(0, [1, 2, 3], rng) for _ in range(200)}
        assert picks == {1, 2, 3}

    def test_apply_single_arity(self, rng):
        with pytest.raises(ValueError):
            TwoChoicesMajorityRule().apply_single(0, [1, 2], rng)

    def test_preserves_value_set(self, rng):
        rule = TwoChoicesMajorityRule()
        values = rng.integers(0, 4, size=100)
        initial = set(np.unique(values))
        for _ in range(10):
            values = rule.step(values, rng)
            assert set(np.unique(values)) <= initial
