"""Statistical integration tests of the paper's headline claims (small scale).

These are the "does the reproduction actually reproduce the paper" tests:
each theorem's qualitative claim is checked at sizes small enough for the
test-suite (seconds, not minutes).  The full-scale versions live in the
benchmark harness (``benchmarks/``) and EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.strategies import BalancingAdversary, RevivingAdversary
from repro.analysis.statistics import compare_predictors, fit_scaling
from repro.core.baseline_rules import MinimumRule, VoterRule
from repro.core.median_rule import MedianRule
from repro.core.state import Configuration
from repro.engine.batch import run_batch, run_batch_fused
from repro.engine.vectorized import simulate
from repro.experiments.workloads import blocks_workload, uniform_random_workload


class TestTheorem1LogNConvergence:
    """Theorem 1: O(log n) consensus from any state, no adversary."""

    def test_consensus_always_reached(self):
        for n in (64, 256, 1024):
            batch = run_batch_fused(Configuration.all_distinct(n), 10, seed=n)
            assert batch.convergence_fraction == 1.0

    def test_rounds_grow_logarithmically(self):
        ns = [64, 128, 256, 512, 1024, 2048]
        means = []
        for n in ns:
            batch = run_batch_fused(Configuration.all_distinct(n), 12, seed=n)
            means.append(batch.mean_rounds)
        fits = compare_predictors(ns, [2] * len(ns), means, ["log_n", "linear_n", "sqrt_n"])
        assert fits[0].predictor_name == "log_n"
        # doubling n adds roughly a constant number of rounds, far from doubling time
        assert means[-1] < 2.0 * means[0]

    def test_rounds_are_small_in_absolute_terms(self):
        batch = run_batch_fused(Configuration.all_distinct(1024), 10, seed=3)
        # ~2-4x log2(n) in practice
        assert batch.mean_rounds < 6 * np.log2(1024)


class TestTheorem10TwoBinsWithAdversary:
    """Theorem 10: two bins + sqrt(n)-bounded adversary, O(log n) to n-O(sqrt n) agreement."""

    def test_almost_stable_despite_balancing_adversary(self):
        n = 1024
        budget = int(0.25 * np.sqrt(n))
        batch = run_batch(
            Configuration.two_bins(n, minority=n // 2),
            num_runs=6,
            adversary_factory=lambda: BalancingAdversary(budget=budget),
            seed=1,
            max_rounds=600,
        )
        assert batch.convergence_fraction == 1.0

    def test_agreement_reaches_n_minus_O_sqrt_n(self):
        n = 1024
        budget = int(0.25 * np.sqrt(n))
        res = simulate(Configuration.two_bins(n, minority=n // 2),
                       adversary=BalancingAdversary(budget=budget), seed=2,
                       max_rounds=600)
        assert res.reached_almost_stable
        assert res.final.agreement_fraction() >= 1.0 - 8 * np.sqrt(n) / n

    def test_stronger_adversary_slows_convergence(self):
        # the sqrt(n) threshold: larger T (as a multiple of sqrt n) takes longer
        n = 1024
        means = []
        for c in (0.1, 0.25, 0.5):
            budget = max(1, int(c * np.sqrt(n)))
            batch = run_batch(
                Configuration.two_bins(n, minority=n // 2),
                num_runs=5,
                adversary_factory=lambda b=budget: BalancingAdversary(budget=b),
                seed=3,
                max_rounds=2000,
            )
            assert batch.convergence_fraction == 1.0
            means.append(batch.mean_rounds)
        assert means[0] <= means[-1]


class TestMinimumRuleCounterexample:
    """Section 1.1: the minimum rule is not stabilizing; the median rule is."""

    def test_minimum_rule_flipped_by_one_corruption(self):
        n = 256
        init = Configuration.two_bins(n, minority=1, low=0, high=1)
        adv = RevivingAdversary(budget=1, delay=25, target_value=0)
        res = simulate(init, rule=MinimumRule(), adversary=adv, seed=4,
                       max_rounds=300, run_to_horizon=True)
        assert res.final.count_value(0) > 0.9 * n

    def test_median_rule_unaffected_by_same_attack(self):
        n = 256
        init = Configuration.two_bins(n, minority=1, low=0, high=1)
        adv = RevivingAdversary(budget=1, delay=25, target_value=0)
        res = simulate(init, rule=MedianRule(), adversary=adv, seed=4,
                       max_rounds=300, run_to_horizon=True)
        assert res.final.count_value(1) >= n - 4


class TestAverageCaseOddEven:
    """Theorems 4/21: odd m converges faster than even m in the average case."""

    def test_odd_m_faster_than_even_m(self):
        n, runs = 2048, 8
        mean_rounds = {}
        for m in (8, 9):
            batch = run_batch(uniform_random_workload(n, m), num_runs=runs, seed=50 + m)
            assert batch.convergence_fraction == 1.0
            mean_rounds[m] = batch.mean_rounds
        # odd m has a guaranteed middle-bin head start; even m must break a tie
        assert mean_rounds[9] < mean_rounds[8]

    def test_even_m_comparable_to_two_bin_case(self):
        n, runs = 2048, 6
        even = run_batch(uniform_random_workload(n, 8), num_runs=runs, seed=60)
        two = run_batch(Configuration.two_bins(n, minority=n // 2), num_runs=runs, seed=61)
        assert even.convergence_fraction == two.convergence_fraction == 1.0
        # both are Θ(log n): within a small constant factor of each other
        assert 0.2 <= even.mean_rounds / two.mean_rounds <= 5.0


class TestPowerOfTwoChoices:
    """The headline: two choices (median) vastly outperform one choice (voter)."""

    def test_median_beats_voter_from_many_values(self):
        n = 256
        init = blocks_workload(n, 16)
        median_batch = run_batch(init, num_runs=4, rule=MedianRule(), seed=70,
                                 max_rounds=400)
        voter_batch = run_batch(init, num_runs=4, rule=VoterRule(), seed=71,
                                max_rounds=400)
        assert median_batch.convergence_fraction == 1.0
        # the voter model needs Θ(n) rounds; at n=256 it should usually miss a
        # 400-round horizon or at the very least be far slower
        if voter_batch.convergence_fraction == 1.0:
            assert voter_batch.mean_rounds > 3 * median_batch.mean_rounds
        else:
            assert voter_batch.convergence_fraction < 1.0


class TestTheorem3ManyValuesWithAdversary:
    """Theorem 3: m values under a sqrt(n)-bounded adversary still stabilize."""

    def test_converges_for_moderate_m(self):
        n, m = 1024, 16
        budget = max(1, int(0.25 * np.sqrt(n)))
        batch = run_batch(
            blocks_workload(n, m),
            num_runs=5,
            adversary_factory=lambda: BalancingAdversary(budget=budget),
            seed=80,
            max_rounds=800,
        )
        assert batch.convergence_fraction == 1.0

    def test_rounds_grow_slowly_in_m(self):
        n = 1024
        budget = max(1, int(0.25 * np.sqrt(n)))
        means = []
        for m in (4, 16, 64):
            batch = run_batch(
                blocks_workload(n, m),
                num_runs=4,
                adversary_factory=lambda: BalancingAdversary(budget=budget),
                seed=90 + m,
                max_rounds=800,
            )
            assert batch.convergence_fraction == 1.0
            means.append(batch.mean_rounds)
        # multiplying m by 16 should far less than double-digit-multiply the rounds
        assert means[-1] < 4 * means[0] + 20
