"""Tests for repro.engine.batch: run_batch and the fused multi-run engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.strategies import BalancingAdversary
from repro.core.median_rule import MedianRule
from repro.core.state import Configuration
from repro.engine.batch import BatchResult, run_batch, run_batch_fused


class TestRunBatch:
    def test_fixed_initial_configuration(self):
        batch = run_batch(Configuration.all_distinct(64), num_runs=5, seed=1)
        assert batch.num_runs == 5
        assert batch.n == 64
        assert batch.convergence_fraction == 1.0
        assert np.all(batch.rounds[batch.converged] > 0)

    def test_factory_initial_configuration(self):
        def factory(rng):
            return Configuration.uniform_random(64, 5, rng)

        batch = run_batch(factory, num_runs=5, seed=2)
        assert batch.convergence_fraction == 1.0

    def test_reproducible_given_seed(self):
        a = run_batch(Configuration.all_distinct(64), num_runs=4, seed=3)
        b = run_batch(Configuration.all_distinct(64), num_runs=4, seed=3)
        assert np.array_equal(a.rounds, b.rounds, equal_nan=True)

    def test_runs_are_independent(self):
        batch = run_batch(Configuration.all_distinct(128), num_runs=8, seed=4)
        assert len(set(batch.rounds[batch.converged].tolist())) > 1

    def test_with_adversary_factory(self):
        batch = run_batch(
            Configuration.two_bins(256, minority=128),
            num_runs=4,
            adversary_factory=lambda: BalancingAdversary(budget=4),
            seed=5,
            max_rounds=500,
        )
        assert batch.convergence_fraction == 1.0

    def test_keep_results(self):
        batch = run_batch(Configuration.all_distinct(32), num_runs=3, seed=6,
                          keep_results=True)
        assert len(batch.results) == 3
        assert all(r.reached_consensus for r in batch.results)

    def test_nonconvergent_runs_are_nan(self):
        # 2 rounds is not enough to reach consensus from all-distinct at n=128
        batch = run_batch(Configuration.all_distinct(128), num_runs=3, seed=7,
                          max_rounds=2)
        assert batch.convergence_fraction == 0.0
        assert np.all(np.isnan(batch.rounds))
        assert np.isnan(batch.mean_rounds)

    def test_invalid_num_runs(self):
        with pytest.raises(ValueError):
            run_batch(Configuration.all_distinct(8), num_runs=0)

    def test_summary_keys(self):
        batch = run_batch(Configuration.all_distinct(32), num_runs=3, seed=8)
        s = batch.summary()
        for key in ("n", "num_runs", "convergence_fraction", "mean_rounds",
                    "median_rounds", "p90_rounds", "max_rounds", "rule"):
            assert key in s

    def test_statistics_consistency(self):
        batch = run_batch(Configuration.all_distinct(64), num_runs=10, seed=9)
        assert batch.quantile(0.0) <= batch.median_rounds <= batch.quantile(1.0)
        assert batch.mean_rounds <= batch.max_rounds


class TestBatchResult:
    def test_empty_converged_statistics(self):
        br = BatchResult(n=10, num_runs=2, rounds=np.array([np.nan, np.nan]),
                         converged=np.array([False, False]))
        assert np.isnan(br.mean_rounds)
        assert np.isnan(br.median_rounds)
        assert np.isnan(br.quantile(0.5))
        assert br.convergence_fraction == 0.0

    def test_zero_runs(self):
        br = BatchResult(n=0, num_runs=0, rounds=np.array([]), converged=np.array([], dtype=bool))
        assert br.convergence_fraction == 0.0


class TestRunBatchFused:
    def test_no_adversary_matches_unfused_statistically(self):
        init = Configuration.all_distinct(128)
        fused = run_batch_fused(init, 20, seed=10)
        unfused = run_batch(init, 20, seed=11)
        assert fused.convergence_fraction == 1.0
        assert unfused.convergence_fraction == 1.0
        # both measure the same distribution; means within 35% of each other
        assert fused.mean_rounds == pytest.approx(unfused.mean_rounds, rel=0.35)

    def test_all_runs_converge_quickly(self):
        fused = run_batch_fused(Configuration.all_distinct(256), 10, seed=12)
        assert fused.convergence_fraction == 1.0
        assert fused.max_rounds < 80

    def test_reproducible(self):
        init = Configuration.all_distinct(64)
        a = run_batch_fused(init, 6, seed=13)
        b = run_batch_fused(init, 6, seed=13)
        assert np.array_equal(a.rounds, b.rounds, equal_nan=True)

    def test_with_balancing_adversary(self):
        init = Configuration.two_bins(512, minority=256)
        fused = run_batch_fused(init, 6, seed=14, adversary_budget=5, max_rounds=500)
        assert fused.convergence_fraction == 1.0
        assert fused.meta["adversary_budget"] == 5

    def test_adversary_tolerance_default(self):
        init = Configuration.two_bins(128, minority=64)
        fused = run_batch_fused(init, 3, seed=15, adversary_budget=2, max_rounds=400)
        assert fused.meta["tolerance"] == 8

    def test_short_horizon_leaves_nan(self):
        fused = run_batch_fused(Configuration.all_distinct(128), 4, seed=16, max_rounds=2)
        assert fused.convergence_fraction == 0.0

    def test_invalid_num_runs(self):
        with pytest.raises(ValueError):
            run_batch_fused(Configuration.all_distinct(8), 0)

    def test_consensus_rounds_positive(self):
        fused = run_batch_fused(Configuration.all_distinct(64), 5, seed=17)
        assert np.all(fused.rounds[fused.converged] >= 1)
