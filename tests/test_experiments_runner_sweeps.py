"""Tests for repro.experiments.runner, sweep builders and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.reporting import format_figure1_table, format_report, format_table
from repro.experiments.runner import run_cell, run_sweep
from repro.experiments.sweep import (
    DEFAULT_ADVERSARY_CONSTANT,
    adversary_threshold_sweep,
    figure1_sweep,
    minimum_rule_attack_sweep,
    rule_comparison_sweep,
    theorem1_sweep,
    theorem2_sweep,
    theorem3_sweep,
    theorem4_sweep,
    theorem10_sweep,
)


class TestRunCell:
    def test_basic_cell(self):
        cfg = ExperimentConfig(name="t", workload="all-distinct",
                               workload_params={"n": 64}, num_runs=4, seed=1)
        res = run_cell(cfg)
        assert res.num_runs == 4
        assert res.convergence_fraction == 1.0
        assert res.mean_rounds > 0
        assert len(res.rounds) == 4

    def test_adversarial_cell(self):
        cfg = ExperimentConfig(name="adv", workload="two-bins",
                               workload_params={"n": 128, "minority": 64},
                               adversary="balancing", adversary_budget=2,
                               num_runs=3, seed=2, max_rounds=400)
        res = run_cell(cfg)
        assert res.convergence_fraction == 1.0

    def test_factory_workload_cell(self):
        cfg = ExperimentConfig(name="avg", workload="uniform-random",
                               workload_params={"n": 64, "m": 5}, num_runs=3, seed=3)
        res = run_cell(cfg)
        assert res.convergence_fraction == 1.0

    def test_reproducible(self):
        cfg = ExperimentConfig(name="t", workload="all-distinct",
                               workload_params={"n": 64}, num_runs=3, seed=7)
        assert run_cell(cfg).rounds == run_cell(cfg).rounds


class TestRunSweep:
    def _sweep(self) -> SweepConfig:
        sweep = SweepConfig(name="mini", description="tiny test sweep")
        for n in (32, 64):
            sweep.add(ExperimentConfig(name=f"n={n}", workload="all-distinct",
                                       workload_params={"n": n}, num_runs=3, seed=5))
        return sweep

    def test_serial_execution(self):
        report = run_sweep(self._sweep(), max_workers=0)
        assert len(report) == 2
        assert report.cells[0].config.name == "n=32"
        assert all(c.convergence_fraction == 1.0 for c in report.cells)

    def test_parallel_execution_matches_serial_summaries(self):
        serial = run_sweep(self._sweep(), max_workers=0)
        pooled = run_sweep(self._sweep(), max_workers=2)
        for a, b in zip(serial.cells, pooled.cells):
            assert a.mean_rounds == pytest.approx(b.mean_rounds)


class TestSweepBuilders:
    def test_theorem1_cells(self):
        sweep = theorem1_sweep(ns=(32, 64), num_runs=2)
        assert len(sweep) == 2
        assert all(c.workload == "all-distinct" for c in sweep)
        assert all(c.adversary_budget == 0 for c in sweep)

    def test_theorem2_budgets_scale_with_sqrt_n(self):
        sweep = theorem2_sweep(ns=(256, 1024), ms=(2,), num_runs=1)
        budgets = [c.adversary_budget for c in sweep]
        assert budgets[1] == pytest.approx(budgets[0] * 2, abs=1)

    def test_theorem3_has_m_and_n_sweeps(self):
        sweep = theorem3_sweep(n=256, ms=(2, 4), ns=(128, 256), m_for_n_sweep=4, num_runs=1)
        names = [c.name for c in sweep]
        assert any(name.startswith("m-sweep") for name in names)
        assert any(name.startswith("n-sweep") for name in names)

    def test_theorem4_odd_even_labels(self):
        sweep = theorem4_sweep(n=128, ms=(3, 4), num_runs=1)
        names = [c.name for c in sweep]
        assert "m=3(odd)" in names and "m=4(even)" in names

    def test_theorem4_with_adversary(self):
        sweep = theorem4_sweep(n=128, ms=(3,), num_runs=1, with_adversary=True)
        assert sweep.name == "corollary22"
        assert all(c.adversary_budget > 0 for c in sweep)

    def test_theorem10_balanced(self):
        sweep = theorem10_sweep(ns=(64,), num_runs=1)
        cell = sweep.cells[0]
        assert cell.workload == "two-bins"
        assert cell.workload_params["minority"] == 32

    def test_minimum_rule_attack_has_both_rules(self):
        sweep = minimum_rule_attack_sweep(n=64, num_runs=1)
        assert {c.rule for c in sweep} == {"minimum", "median"}
        assert all(c.adversary == "reviving" for c in sweep)

    def test_adversary_threshold_budgets(self):
        sweep = adversary_threshold_sweep(n=1024, constants=(0.0, 1.0), num_runs=1)
        budgets = [c.adversary_budget for c in sweep]
        assert budgets == [0, 32]
        assert sweep.cells[0].adversary == "null"

    def test_figure1_has_all_table_cells(self):
        sweep = figure1_sweep(n=128, m_many=8, num_runs=1)
        names = [c.name for c in sweep]
        assert sum(1 for n in names if n.endswith("/adv")) == 4
        assert sum(1 for n in names if n.endswith("/noadv")) == 4

    def test_rule_comparison_rules(self):
        sweep = rule_comparison_sweep(n=64, m=4, num_runs=1, rules=("median", "voter"))
        assert [c.rule for c in sweep] == ["median", "voter"]

    def test_default_adversary_constant_below_one(self):
        assert 0 < DEFAULT_ADVERSARY_CONSTANT <= 1.0


class TestReporting:
    def test_format_table_markdown(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 3.25}]
        out = format_table(rows)
        assert "| a " in out and "| 2.50" in out
        assert out.count("\n") == 3

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_format_report_contains_description(self):
        sweep = SweepConfig(name="mini", description="tiny test sweep")
        sweep.add(ExperimentConfig(name="n=32", workload="all-distinct",
                                   workload_params={"n": 32}, num_runs=2, seed=5))
        report = run_sweep(sweep)
        text = format_report(report)
        assert "mini" in text and "tiny test sweep" in text
        assert "n=32" in text

    def test_format_figure1_table_structure(self):
        report = run_sweep(figure1_sweep(n=64, m_many=4, num_runs=1, seed=1))
        table = format_figure1_table(report)
        assert "worst-case 2 bins" in table
        assert "average-case m bins (odd)" in table
        assert "with adversary" in table
