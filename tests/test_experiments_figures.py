"""Tests for repro.experiments.figures — the per-artifact reproduction entry points.

Each ``reproduce_*`` function is exercised at a tiny scale (the benchmarks run
them at paper scale); the tests check the structure of the returned
:class:`FigureResult`, that every cell converged, and the headline qualitative
finding of each artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import (
    FigureResult,
    reproduce_figure1,
    reproduce_minimum_rule_attack,
    reproduce_rule_comparison,
    reproduce_theorem1,
    reproduce_theorem4,
    reproduce_theorem10,
)


class TestReproduceTheorem1:
    @pytest.fixture(scope="class")
    def figure(self) -> FigureResult:
        return reproduce_theorem1(scale=0.25, num_runs=4, seed=1)

    def test_structure(self, figure):
        assert isinstance(figure, FigureResult)
        assert len(figure.report) == 6
        assert figure.table and "theorem1" in figure.table

    def test_all_cells_converge(self, figure):
        assert all(c.convergence_fraction == 1.0 for c in figure.report.cells)

    def test_fits_present_and_growth_sublinear(self, figure):
        # at this tiny scale and run count the regression winner is noisy, so
        # assert the robust shape instead: rounds grow far slower than n
        assert figure.fits
        assert figure.best_fit().r_squared > 0.0
        cells = sorted(figure.report.cells, key=lambda c: c.n)
        size_ratio = cells[-1].n / cells[0].n
        assert cells[-1].mean_rounds / cells[0].mean_rounds < 0.5 * size_ratio

    def test_rounds_increase_weakly_with_n(self, figure):
        cells = sorted(figure.report.cells, key=lambda c: c.n)
        assert cells[-1].mean_rounds >= cells[0].mean_rounds - 2


class TestReproduceTheorem10:
    def test_adversarial_two_bin_cells_converge(self):
        figure = reproduce_theorem10(scale=0.1, num_runs=3, seed=2)
        assert len(figure.report) == 4
        assert all(c.convergence_fraction == 1.0 for c in figure.report.cells)
        assert all(c.config.adversary == "balancing" for c in figure.report.cells)
        assert all(c.config.adversary_budget >= 1 for c in figure.report.cells)


class TestReproduceTheorem4:
    def test_odd_even_split(self):
        figure = reproduce_theorem4(scale=0.25, num_runs=4, seed=3)
        odd = [c.mean_rounds for c in figure.report.cells if c.m % 2 == 1]
        even = [c.mean_rounds for c in figure.report.cells if c.m % 2 == 0]
        assert odd and even
        assert np.mean(odd) < np.mean(even)
        # separate fits are produced for the two parities
        assert figure.fits


class TestReproduceFigure1:
    def test_table_has_all_rows_filled(self):
        figure = reproduce_figure1(scale=0.15, num_runs=3, seed=4)
        assert "n/a" not in figure.table
        assert "worst-case m bins" in figure.table
        assert len(figure.report) == 8


class TestReproduceMinimumRuleAttack:
    def test_minimum_flips_median_does_not(self):
        figure = reproduce_minimum_rule_attack(scale=0.25, num_runs=3, seed=5)
        by_rule = {c.config.rule: c for c in figure.report.cells}
        assert set(by_rule) == {"minimum", "median"}
        # the experiment runs to a fixed horizon; the informative signal is in
        # the raw cells, which the benchmark inspects in detail — here we only
        # check both cells executed the configured number of runs
        assert all(c.num_runs == 3 for c in figure.report.cells)


class TestReproduceRuleComparison:
    def test_median_beats_single_choice_rules(self):
        figure = reproduce_rule_comparison(scale=0.25, num_runs=3, seed=6)
        by_rule = {c.config.rule: c for c in figure.report.cells}
        assert by_rule["median"].convergence_fraction == 1.0
        # the power of two choices: the voter model (one choice) is far slower
        # than the median rule if it converges at all within its horizon
        voter = by_rule["voter"]
        if voter.convergence_fraction == 1.0:
            assert voter.mean_rounds > 3 * by_rule["median"].mean_rounds
        # 3-majority (three samples, own value ignored) also converges but is
        # not faster than the median rule by more than noise
        majority3 = by_rule["three-majority"]
        assert majority3.convergence_fraction == 1.0
