"""Coordinator-backed fleet transport: HTTP lease protocol + result push.

Covers the wire round-trips (store + lease surfaces), the NPZ sidecar pin
(rounds travel inline, the *server's* sidecar policy lands them on its
disk), the fleet guarantee — N workers on disjoint filesystems compute
every cell exactly once and the merged report equals cold serial — and the
outage pin: the coordinator killed mid-sweep, restarted on the same port,
with the budgeted client retries and the worker poll loop finishing the
sweep bit-identically.
"""

from __future__ import annotations

import subprocess
import sys
import threading
import time

import pytest

from chaos import CHAOS_RETRY, chaos_sweep
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_cell
from repro.robustness import DegradedExecutionWarning
from repro.store import (
    CachedSweepRunner,
    CoordinatorClient,
    CoordinatorError,
    CoordinatorServer,
    CoordinatorStore,
    HttpBackend,
    HttpLeaseClient,
    ResultStore,
    read_execution_log,
)
from repro.robustness.retry import RetryPolicy, classify_error

_FAST = RetryPolicy(max_attempts=2, base_delay_s=0.01, max_delay_s=0.02)


def _config(name="cell", n=32, **kwargs) -> ExperimentConfig:
    defaults = dict(name=name, workload="all-distinct",
                    workload_params={"n": n}, num_runs=2, seed=11)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


# ---------------------------------------------------------------------- #
# transport round-trips
# ---------------------------------------------------------------------- #
class TestTransport:
    def test_store_round_trip(self, tmp_path):
        with CoordinatorServer(tmp_path / "store") as server:
            store = CoordinatorStore(server.url)
            cfg = _config()
            assert store.get(cfg) is None and not store.contains(cfg)
            result = run_cell(cfg)
            key = store.put(cfg, result, {"note": "rt"})
            assert key == store.key_for(cfg)
            record = store.get(cfg)
            # bit-identical through JSON: stats, rounds, extra, provenance
            assert record.result.to_dict() == result.to_dict()
            assert record.provenance["note"] == "rt"
            # and the payload really lives in the server's store directory
            local = ResultStore(tmp_path / "store")
            assert local.get(key).result.to_dict() == result.to_dict()

    def test_lease_surface_round_trip(self, tmp_path):
        with CoordinatorServer(tmp_path / "store") as server:
            leases = HttpLeaseClient(server.url)
            rival = HttpLeaseClient(server.url, worker="rival")
            assert leases.acquire("k") is True
            assert rival.acquire("k") is False          # exactly one winner
            lease = leases.peek("k")
            assert lease["worker"] == leases.worker
            assert lease["state"] == "running"
            assert not leases.is_stale("k", lease)
            rival.release("k")                # ownership check: not rival's
            assert leases.peek("k") is not None
            leases.release("k")
            assert leases.peek("k") is None
            leases.mark_failed("k", "cell", "ValueError: boom", attempts=2)
            marker = leases.peek("k")
            assert marker["state"] == "failed" and marker["attempts"] == 2
            assert leases.clear_failure("k") is True
            assert leases.clear_failure("k") is False

    def test_execution_ledger_dedups_lost_ack_retries(self, tmp_path):
        with CoordinatorServer(tmp_path / "store") as server:
            leases = HttpLeaseClient(server.url)
            other = HttpLeaseClient(server.url, worker="other")
            leases.log_execution("k", "cell")
            leases.log_execution("k", "cell")   # retried lost ack: dropped
            other.log_execution("k", "cell")    # genuine recompute: recorded
            ledger = read_execution_log(tmp_path / "store")
            assert [r["worker"] for r in ledger] == [leases.worker, "other"]

    def test_mismatched_key_is_rejected(self, tmp_path):
        with CoordinatorServer(tmp_path / "store") as server:
            client = CoordinatorClient(server.url, retry=_FAST)
            cfg = _config()
            with pytest.raises(ValueError, match="hashes to"):
                client.request("PUT", "/api/v1/cells/" + "0" * 64, {
                    "config": cfg.to_dict(),
                    "result": run_cell(cfg).to_dict(),
                    "provenance": {},
                })

    def test_unreachable_coordinator_classifies_transient(self):
        client = CoordinatorClient("http://127.0.0.1:9", timeout=0.2,
                                   retry=_FAST)
        with pytest.raises(CoordinatorError) as excinfo:
            client.request("GET", "/api/v1/ping")
        # the whole outage-recovery story hangs on this classification:
        # worker loops keep the cell pending instead of dying
        assert isinstance(excinfo.value, (ConnectionError, OSError))
        assert classify_error(excinfo.value) == "transient"

    def test_sidecar_policy_is_server_side(self, tmp_path):
        # rounds travel inline over the wire; the server's own sidecar
        # policy (rounds_sidecar_at=1) lands them as NPZ next to the JSON
        local = ResultStore(tmp_path / "store", rounds_sidecar_at=1)
        with CoordinatorServer(local) as server:
            store = CoordinatorStore(server.url)
            cfg = _config()
            result = run_cell(cfg)
            key = store.put(cfg, result, {})
            sidecars = list((tmp_path / "store" / "cells").glob("*.npz"))
            assert [p.stem for p in sidecars] == [key]
            # and a remote get re-inlines them bit-identically
            assert store.get(cfg).result.rounds == result.rounds != []


# ---------------------------------------------------------------------- #
# fleet execution: disjoint filesystems, exactly once, == cold serial
# ---------------------------------------------------------------------- #
class TestHttpFleet:
    def test_two_workers_exactly_once_equals_serial(self, tmp_path):
        sweep = chaos_sweep()
        baseline = CachedSweepRunner(ResultStore(tmp_path / "serial"),
                                     backend="serial").run(sweep)
        with CoordinatorServer(tmp_path / "coord", stale_after=2.0) as server:
            runner = CachedSweepRunner(
                CoordinatorStore(server.url),
                backend=HttpBackend(server.url, workers=2,
                                    poll_interval=0.02))
            report = runner.run(sweep)
            assert report == baseline
            assert runner.last_stats.misses == 4
            ledger = read_execution_log(tmp_path / "coord")
            assert len(ledger) == len({r["key"] for r in ledger}) == 4
            # no lease or marker files survive the run
            leases_dir = tmp_path / "coord" / "shard" / "leases"
            assert list(leases_dir.glob("*.json")) == []
            # warm pass: all hits, ledger untouched
            warm = CachedSweepRunner(
                CoordinatorStore(server.url),
                backend=HttpBackend(server.url, workers=2,
                                    poll_interval=0.02))
            assert warm.run(sweep) == baseline
            assert warm.last_stats.hits == 4 and warm.last_stats.misses == 0
            assert len(read_execution_log(tmp_path / "coord")) == 4

    def test_store_less_cli_workers_cooperate(self, tmp_path):
        # the real disjoint-filesystem shape: two CLI processes with *no*
        # --store at all, attached purely through the coordinator URL
        with CoordinatorServer(tmp_path / "coord", stale_after=5.0) as server:
            cmd = [sys.executable, "-m", "repro", "sweep", "theorem1",
                   "--scale", "0.1", "--runs", "2",
                   "--worker", "--coordinator", server.url]
            procs = [subprocess.Popen(cmd, cwd="/root/repo",
                                      env={"PYTHONPATH": "src",
                                           "PATH": "/usr/bin:/bin"},
                                      stdout=subprocess.PIPE,
                                      stderr=subprocess.STDOUT, text=True)
                     for _ in range(2)]
            outs = [p.communicate(timeout=240)[0] for p in procs]
            assert all(p.returncode == 0 for p in procs), outs
            ledger = read_execution_log(tmp_path / "coord")
            # theorem1 at scale 0.1 dedups its 6 cells to 5 unique keys
            assert len(ledger) == len({r["key"] for r in ledger}) == 5

    def test_unreachable_coordinator_degrades_to_pool(self, tmp_path):
        sweep = chaos_sweep()
        baseline = CachedSweepRunner(ResultStore(tmp_path / "serial"),
                                     backend="serial").run(sweep)
        dead = "http://127.0.0.1:9"
        backend = HttpBackend(dead, workers=2, timeout=0.2)
        runner = CachedSweepRunner(CoordinatorStore(
            CoordinatorClient(dead, timeout=0.2, retry=_FAST)),
            backend=backend)
        with pytest.warns(DegradedExecutionWarning):
            report = runner.run(sweep)
        # results computed anyway (pool), just not persisted anywhere
        assert report == baseline


# ---------------------------------------------------------------------- #
# the outage pin: coordinator killed mid-sweep, fleet retries and finishes
# ---------------------------------------------------------------------- #
class TestCoordinatorOutage:
    def test_outage_mid_sweep_recovers_exactly_once(self, tmp_path):
        sweep = chaos_sweep()
        baseline = CachedSweepRunner(ResultStore(tmp_path / "serial"),
                                     backend="serial").run(sweep)
        server = CoordinatorServer(tmp_path / "coord", stale_after=2.0)
        server.start()
        port = int(server.url.rsplit(":", 1)[1])
        runner = CachedSweepRunner(
            CoordinatorStore(server.url),
            backend=HttpBackend(server.url, workers=2, poll_interval=0.02),
            retry=CHAOS_RETRY)
        box = {}

        def coordinate():
            box["report"] = runner.run(sweep)

        thread = threading.Thread(target=coordinate)
        thread.start()
        try:
            # wait for the fleet to make real progress...
            deadline = time.time() + 60
            while time.time() < deadline \
                    and not read_execution_log(tmp_path / "coord"):
                time.sleep(0.02)
            assert read_execution_log(tmp_path / "coord"), \
                "fleet made no progress before the injected outage"
            # ...then yank the coordinator out from under it
            server.stop()
            time.sleep(0.3)   # transport budgets drain, cells go pending
            server = CoordinatorServer(tmp_path / "coord", port=port,
                                       stale_after=2.0).start()
            thread.join(timeout=180)
            assert not thread.is_alive(), "fleet never finished after outage"
        finally:
            server.stop()
            thread.join(timeout=10)

        assert box["report"] == baseline
        ledger = read_execution_log(tmp_path / "coord")
        assert len(ledger) == len({r["key"] for r in ledger}) == 4, ledger
        leases_dir = tmp_path / "coord" / "shard" / "leases"
        assert list(leases_dir.glob("*.json")) == []


# ---------------------------------------------------------------------- #
# CLI argument surface
# ---------------------------------------------------------------------- #
class TestHttpCli:
    def test_http_backend_requires_coordinator_or_serve(self, capsys):
        from repro.cli import main

        assert main(["sweep", "theorem1", "--backend", "http"]) == 2
        assert "--coordinator" in capsys.readouterr().err

    def test_serve_requires_local_store(self, capsys):
        from repro.cli import main

        assert main(["sweep", "theorem1", "--serve"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_serve_conflicts_with_coordinator(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "theorem1", "--store", str(tmp_path / "s"),
                     "--serve", "--coordinator",
                     "http://127.0.0.1:1"]) == 2
        assert "cannot also attach" in capsys.readouterr().err

    def test_coordinator_implies_http_backend(self, capsys):
        from repro.cli import main

        assert main(["sweep", "theorem1", "--coordinator",
                     "http://127.0.0.1:1", "--backend", "shard"]) == 2
        assert "imply --backend http" in capsys.readouterr().err

    def test_serve_runs_sweep_through_coordinator(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        argv = ["sweep", "theorem1", "--scale", "0.1", "--runs", "2",
                "--store", store_dir, "--serve", "127.0.0.1:0",
                "--workers", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "coordinator: http://127.0.0.1:" in out
        assert "misses=6" in out
        ledger = read_execution_log(store_dir)
        assert len(ledger) == len({r["key"] for r in ledger}) == 5
