"""Tests for the message-passing substrate: topology, messages, node, scheduler, sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.median_rule import MedianRule
from repro.network.messages import DroppedRequest, MessageStats, ValueRequest, ValueResponse
from repro.network.node import Process
from repro.network.sampling import (
    choice_in_degrees,
    override_choices,
    sample_k_choices,
    sample_two_choices,
)
from repro.network.scheduler import RoundScheduler, default_capacity
from repro.network.topology import (
    CompleteTopology,
    GraphTopology,
    random_regular_topology,
    ring_topology,
    torus_topology,
)


class TestCompleteTopology:
    def test_neighbors_include_self(self):
        topo = CompleteTopology(5)
        assert topo.neighbors(2).tolist() == [0, 1, 2, 3, 4]
        assert topo.degree(2) == 5

    def test_neighbors_exclude_self(self):
        topo = CompleteTopology(5, include_self=False)
        assert topo.neighbors(2).tolist() == [0, 1, 3, 4]

    def test_sample_range(self, rng):
        topo = CompleteTopology(10)
        s = topo.sample_neighbors(3, 100, rng)
        assert s.min() >= 0 and s.max() < 10

    def test_sample_excluding_self_never_self(self, rng):
        topo = CompleteTopology(10, include_self=False)
        for p in range(10):
            s = topo.sample_neighbors(p, 200, rng)
            assert not np.any(s == p)

    def test_sample_all_shape(self, rng):
        topo = CompleteTopology(20)
        s = topo.sample_all(2, rng)
        assert s.shape == (20, 2)

    def test_sample_all_excluding_self(self, rng):
        topo = CompleteTopology(20, include_self=False)
        s = topo.sample_all(2, rng)
        assert not np.any(s == np.arange(20)[:, None])

    def test_invalid_process_index(self, rng):
        topo = CompleteTopology(5)
        with pytest.raises(IndexError):
            topo.neighbors(5)
        with pytest.raises(IndexError):
            topo.sample_neighbors(-1, 2, rng)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CompleteTopology(0)


class TestGraphTopologies:
    def test_ring_neighbors(self):
        topo = ring_topology(6)
        nbrs = set(topo.neighbors(0).tolist())
        assert nbrs == {5, 0, 1}

    def test_graph_samples_stay_in_neighborhood(self, rng):
        topo = ring_topology(8)
        for p in range(8):
            s = topo.sample_neighbors(p, 50, rng)
            assert set(s.tolist()) <= set(topo.neighbors(p).tolist())

    def test_random_regular(self):
        topo = random_regular_topology(12, degree=4, seed=0)
        assert topo.n == 12
        # every neighbourhood = own node + 4 neighbours
        assert all(topo.degree(i) == 5 for i in range(12))

    def test_torus_size(self):
        topo = torus_topology(4)
        assert topo.n == 16
        assert all(topo.degree(i) == 5 for i in range(16))

    def test_disconnected_graph_rejected(self):
        import networkx as nx
        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            GraphTopology(g)

    def test_bad_labels_rejected(self):
        import networkx as nx
        g = nx.path_graph(3)
        g = nx.relabel_nodes(g, {0: "a"})
        with pytest.raises(ValueError):
            GraphTopology(g)


class TestMessages:
    def test_request_fields(self):
        req = ValueRequest(sender=1, destination=2, round=3)
        assert req.sender == 1 and req.destination == 2 and req.round == 3

    def test_request_ids_unique(self):
        a = ValueRequest(sender=0, destination=1, round=0)
        b = ValueRequest(sender=0, destination=1, round=0)
        assert a.request_id != b.request_id

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            ValueRequest(sender=-1, destination=0, round=0)
        with pytest.raises(ValueError):
            ValueResponse(responder=0, destination=-2, round=0, value=1, request_id=0)

    def test_message_stats(self):
        stats = MessageStats()
        stats.record_request()
        stats.record_request()
        stats.record_response()
        stats.record_drop(3)
        assert stats.total_messages == 3
        assert stats.requests_dropped == 3
        assert stats.as_dict()["requests_sent"] == 2


class TestProcess:
    def test_private_numbering_is_a_permutation(self, rng):
        proc = Process(index=0, value=5, n=10, rule=MedianRule(), rng=rng)
        assert sorted(proc._ports.tolist()) == list(range(10))

    def test_choose_contacts_count(self, rng):
        proc = Process(index=0, value=5, n=10, rule=MedianRule(), rng=rng)
        contacts = proc.choose_contacts()
        assert contacts.shape == (2,)
        assert contacts.min() >= 0 and contacts.max() < 10

    def test_respond_reports_value(self, rng):
        proc = Process(index=0, value=7, n=5, rule=MedianRule(), rng=rng)
        assert proc.respond(round_index=1) == 7

    def test_update_applies_median(self, rng):
        proc = Process(index=0, value=10, n=5, rule=MedianRule(), rng=rng)
        proc.choose_contacts()
        proc.receive_value(12)
        proc.receive_value(100)
        assert proc.update() == 12

    def test_update_with_missing_responses_self_substitutes(self, rng):
        proc = Process(index=0, value=10, n=5, rule=MedianRule(), rng=rng)
        proc.choose_contacts()
        proc.receive_value(100)    # only one of two responses arrived
        # median(10, 100, 10) = 10
        assert proc.update() == 10

    def test_corrupt_overwrites_value(self, rng):
        proc = Process(index=0, value=10, n=5, rule=MedianRule(), rng=rng)
        proc.corrupt(3)
        assert proc.value == 3


class TestScheduler:
    def test_default_capacity_logarithmic(self):
        assert default_capacity(2) >= 2
        assert default_capacity(1024) == int(np.ceil(4 * np.log2(1024)))

    def test_delivery_without_overload(self, rng):
        sched = RoundScheduler(n=4, capacity=3)
        reqs = [ValueRequest(sender=0, destination=1, round=1),
                ValueRequest(sender=2, destination=1, round=1)]
        responses, dropped = sched.deliver(reqs, values=[9, 7, 5, 3], round_index=1, rng=rng)
        assert len(responses) == 2 and not dropped
        assert all(r.value == 7 for r in responses)
        assert {r.destination for r in responses} == {0, 2}

    def test_overload_drops_excess(self, rng):
        sched = RoundScheduler(n=10, capacity=2)
        reqs = [ValueRequest(sender=s, destination=0, round=1) for s in range(1, 7)]
        responses, dropped = sched.deliver(reqs, values=list(range(10)), round_index=1, rng=rng)
        assert len(responses) == 2
        assert len(dropped) == 4
        assert sched.stats.requests_dropped == 4

    def test_adversarial_drop_selector(self, rng):
        # the adversary keeps only requests from even senders
        def selector(dest, requests, capacity, rng):
            return [r for r in requests if r.sender % 2 == 0][:capacity]

        sched = RoundScheduler(n=10, capacity=2, drop_selector=selector)
        reqs = [ValueRequest(sender=s, destination=0, round=1) for s in range(1, 7)]
        responses, dropped = sched.deliver(reqs, values=list(range(10)), round_index=1, rng=rng)
        assert all(r.destination % 2 == 0 for r in responses)

    def test_selector_output_clipped_to_capacity(self, rng):
        def greedy(dest, requests, capacity, rng):
            return requests  # tries to keep everything

        sched = RoundScheduler(n=10, capacity=2, drop_selector=greedy)
        reqs = [ValueRequest(sender=s, destination=0, round=1) for s in range(1, 7)]
        responses, _ = sched.deliver(reqs, values=list(range(10)), round_index=1, rng=rng)
        assert len(responses) == 2

    def test_invalid_destination_rejected(self, rng):
        sched = RoundScheduler(n=3)
        with pytest.raises(ValueError):
            sched.deliver([ValueRequest(sender=0, destination=7, round=1)],
                          values=[1, 2, 3], round_index=1, rng=rng)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RoundScheduler(n=0)
        with pytest.raises(ValueError):
            RoundScheduler(n=5, capacity=0)


class TestSampling:
    def test_two_choices_shape(self, rng):
        s = sample_two_choices(50, rng)
        assert s.shape == (50, 2)

    def test_two_choices_without_self(self, rng):
        s = sample_two_choices(50, rng, include_self=False)
        assert not np.any(s == np.arange(50)[:, None])

    def test_k_choices(self, rng):
        s = sample_k_choices(30, 5, rng)
        assert s.shape == (30, 5)
        with pytest.raises(ValueError):
            sample_k_choices(0, 2, rng)

    def test_in_degrees_total(self, rng):
        s = sample_two_choices(100, rng)
        deg = choice_in_degrees(s, 100)
        assert deg.sum() == 200

    def test_in_degrees_mean_is_k(self, rng):
        totals = np.zeros(50)
        for _ in range(200):
            totals += choice_in_degrees(sample_two_choices(50, rng), 50)
        assert totals.mean() / 200 == pytest.approx(2.0, rel=0.05)

    def test_override_choices(self, rng):
        s = sample_two_choices(10, rng)
        out = override_choices(s, victims=np.array([3, 7]),
                               new_choices=np.array([[0, 0], [1, 1]]))
        assert out[3].tolist() == [0, 0]
        assert out[7].tolist() == [1, 1]
        assert np.array_equal(out[np.array([0, 1, 2, 4, 5, 6, 8, 9])],
                              s[np.array([0, 1, 2, 4, 5, 6, 8, 9])])
        # original untouched
        assert not np.array_equal(s[3], [0, 0]) or not np.array_equal(s[7], [1, 1])

    def test_override_shape_mismatch(self, rng):
        s = sample_two_choices(10, rng)
        with pytest.raises(ValueError):
            override_choices(s, victims=np.array([1]), new_choices=np.array([[0, 0], [1, 1]]))


class TestSeedReproducibility:
    """rng-discipline pins: seeded draws are bitwise repeatable and seedless
    draws never touch the ``random`` module's process-global state."""

    def test_random_regular_same_seed_same_edges(self):
        t1 = random_regular_topology(24, degree=4, seed=7)
        t2 = random_regular_topology(24, degree=4, seed=7)
        assert sorted(t1.graph.edges) == sorted(t2.graph.edges)

    def test_random_regular_accepts_generator(self):
        g1 = np.random.default_rng(11)
        g2 = np.random.default_rng(11)
        t1 = random_regular_topology(24, degree=4, seed=g1)
        t2 = random_regular_topology(24, degree=4, seed=g2)
        assert sorted(t1.graph.edges) == sorted(t2.graph.edges)

    def test_seedless_draw_leaves_global_random_alone(self):
        import random as stdlib_random

        stdlib_random.seed(123)
        before = stdlib_random.getstate()
        random_regular_topology(24, degree=4)
        assert stdlib_random.getstate() == before

    def test_simulator_trajectory_repeats_on_graph_topology(self):
        from repro.core.state import Configuration
        from repro.network.simulator import NetworkSimulator

        def trajectory():
            topo = random_regular_topology(16, degree=4, seed=3)
            sim = NetworkSimulator(Configuration.all_distinct(16),
                                   topology=topo, seed=5)
            return [sim.step().tolist() for _ in range(6)]

        assert trajectory() == trajectory()
