"""Tests for sharded store-routed execution, backends, offline replay and
NPZ sidecars (repro.store.shard / repro.store.backends + satellites)."""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.results import CellResult
from repro.store import (
    CachedSweepRunner,
    LeaseManager,
    PoolBackend,
    ResultStore,
    SerialBackend,
    ShardBackend,
    ShardWorker,
    StoreMissError,
    read_execution_log,
    resolve_backend,
    run_sweep_sharded,
)


def _config(name="cell", n=48, **kwargs) -> ExperimentConfig:
    defaults = dict(name=name, workload="all-distinct",
                    workload_params={"n": n}, num_runs=3, seed=11)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def _sweep(ns=(32, 48), name="mini", **kwargs) -> SweepConfig:
    sweep = SweepConfig(name=name, description="shard test sweep")
    for n in ns:
        sweep.add(_config(name=f"n={n}", n=n, **kwargs))
    return sweep


def _poisoned_sweep() -> SweepConfig:
    sweep = SweepConfig(name="poison", description="one bad cell")
    sweep.add(_config(name="ok-32", n=32))
    sweep.add(_config(name="bad", n=32, rule="no-such-rule"))
    sweep.add(_config(name="ok-48", n=48))
    return sweep


# ---------------------------------------------------------------------- #
# child-process entry points (module-level so they pickle/fork cleanly)
# ---------------------------------------------------------------------- #
def _worker_main(store_root, sweep_dict, worker, delay):
    """Run one shard worker, optionally slowing each cell by ``delay``."""
    import repro.store.shard as shard_mod

    if delay:
        real_run_cell = shard_mod.run_cell

        def slow_run_cell(cell):
            time.sleep(delay)
            return real_run_cell(cell)

        shard_mod.run_cell = slow_run_cell
    store = ResultStore(store_root)
    sweep = SweepConfig.from_dict(sweep_dict)
    ShardWorker(store, worker=worker, poll_interval=0.02).run(sweep)


def _start_worker(store_root, sweep, worker, delay=0.0):
    proc = multiprocessing.Process(
        target=_worker_main,
        args=(str(store_root), sweep.to_dict(), worker, delay), daemon=True)
    proc.start()
    return proc


def _join_all(procs, timeout=120.0):
    deadline = time.monotonic() + timeout
    for proc in procs:
        proc.join(max(0.1, deadline - time.monotonic()))
        assert not proc.is_alive(), "shard worker did not finish in time"


# ---------------------------------------------------------------------- #
# lease protocol
# ---------------------------------------------------------------------- #
class TestLeaseManager:
    def test_acquire_is_exclusive(self, tmp_path):
        a = LeaseManager(tmp_path, worker="a")
        b = LeaseManager(tmp_path, worker="b")
        assert a.acquire("k1")
        assert not b.acquire("k1")          # exactly one winner
        assert b.acquire("k2")              # other cells unaffected
        a.release("k1")
        assert b.acquire("k1")              # released leases are takeable

    def test_peek_and_live_lease_not_stale(self, tmp_path):
        manager = LeaseManager(tmp_path, worker="me")
        manager.acquire("k")
        lease = manager.peek("k")
        assert lease["state"] == "running" and lease["pid"] == os.getpid()
        # our own pid is alive, so the lease is not stale no matter its age
        assert not manager.is_stale("k", lease)

    def test_dead_pid_lease_is_stale_and_reclaimable(self, tmp_path):
        manager = LeaseManager(tmp_path, worker="crash")
        manager.acquire("k")
        # forge the recorded pid to a dead one (fork+exit gives a real,
        # definitely-dead pid without guessing)
        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        proc.join()
        path = manager._path("k")
        lease = json.loads(path.read_text())
        lease["pid"] = proc.pid
        path.write_text(json.dumps(lease))
        observer = LeaseManager(tmp_path, worker="other")
        observed = observer.peek("k")
        assert observer.is_stale("k", observed)
        assert observer.reclaim("k", observed)
        assert observer.peek("k") is None   # gone: the cell is pending again
        assert observer.acquire("k")

    @staticmethod
    def _forge_dead_pid(manager, key):
        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        proc.join()
        path = manager._path(key)
        lease = json.loads(path.read_text())
        lease["pid"] = proc.pid
        path.write_text(json.dumps(lease))

    def test_reclaim_races_have_one_winner(self, tmp_path):
        manager = LeaseManager(tmp_path, worker="crash")
        manager.acquire("k")
        self._forge_dead_pid(manager, "k")
        observed = manager.peek("k")
        claimers = [LeaseManager(tmp_path, worker=f"w{i}") for i in range(4)]
        wins = [c.reclaim("k", observed) for c in claimers]
        assert sum(wins) == 1

    def test_reclaim_refuses_live_and_foreign_leases(self, tmp_path):
        # re-verification under the reclaim mutex: a lease whose owner is
        # alive, or whose path was re-acquired by someone else since the
        # observation, must never be deleted
        manager = LeaseManager(tmp_path, worker="alive")
        manager.acquire("k")
        observed = manager.peek("k")
        other = LeaseManager(tmp_path, worker="other")
        assert not other.reclaim("k", observed)      # owner pid is alive
        assert manager.peek("k")["worker"] == "alive"
        # now simulate observe → reclaim-by-someone-else → re-acquire
        self._forge_dead_pid(manager, "k")
        stale = other.peek("k")
        assert other.reclaim("k", stale)
        third = LeaseManager(tmp_path, worker="third")
        assert third.acquire("k")                    # fresh lease on the path
        assert not other.reclaim("k", stale)         # stale view: refused
        assert other.peek("k")["worker"] == "third"  # fresh lease untouched

    def test_foreign_host_lease_uses_age(self, tmp_path):
        manager = LeaseManager(tmp_path, worker="w", stale_after=0.05)
        manager.acquire("k")
        path = manager._path("k")
        lease = json.loads(path.read_text())
        lease["host"] = "some-other-host"
        path.write_text(json.dumps(lease))
        fresh = manager.peek("k")
        assert not manager.is_stale("k", fresh)       # younger than horizon
        old = time.time() - 10
        os.utime(path, (old, old))
        assert manager.is_stale("k", manager.peek("k"))

    def test_failed_marker_round_trip(self, tmp_path):
        manager = LeaseManager(tmp_path, worker="w")
        manager.acquire("k")
        manager.mark_failed("k", "cell-7", "ValueError: boom")
        lease = manager.peek("k")
        assert lease["state"] == "failed" and lease["error"] == "ValueError: boom"
        assert not manager.is_stale("k", lease)       # failures never expire
        assert not manager.acquire("k")               # still occupied
        manager.clear_failure("k")
        assert manager.acquire("k")

    def test_execution_log_append(self, tmp_path):
        manager = LeaseManager(tmp_path, worker="w")
        manager.log_execution("k1", "cell-1")
        manager.log_execution("k2", "cell-2")
        log = read_execution_log(tmp_path)
        assert [r["key"] for r in log] == ["k1", "k2"]
        assert all(r["worker"] == "w" for r in log)


# ---------------------------------------------------------------------- #
# lease liveness (regressions: pid reuse, clock skew, identity stability)
# ---------------------------------------------------------------------- #
class TestLeaseLiveness:
    @staticmethod
    def _rewrite(manager, key, **fields):
        path = manager._path(key)
        lease = json.loads(path.read_text())
        lease.update(fields)
        path.write_text(json.dumps(lease))
        return json.loads(path.read_text())

    def test_worker_identity_is_memoized_per_process(self):
        from repro.store.shard import process_nonce, worker_identity

        # regression: identity used to mint a fresh uuid4 per call, so two
        # call sites comparing identities always disagreed
        assert worker_identity() == worker_identity()
        assert worker_identity().endswith(process_nonce())
        assert worker_identity().split(":")[1] == str(os.getpid())

    def test_worker_identity_differs_across_processes(self):
        from repro.store.shard import worker_identity

        with multiprocessing.Pool(1) as pool:
            child = pool.apply(worker_identity)
        assert child != worker_identity()

    def test_recycled_pid_lease_is_stale(self, tmp_path):
        # regression: a same-host lease whose recorded pid was recycled by
        # an unrelated process used to be immortal (pid alive → live).
        # A live process *started after the lease was acquired* cannot be
        # the lease's owner — incarnation check declares it stale.
        manager = LeaseManager(tmp_path, worker="crash")
        manager.acquire("k")
        victim = subprocess.Popen([sys.executable, "-c",
                                   "import time; time.sleep(60)"])
        try:
            self._rewrite(manager, "k", pid=victim.pid, nonce="dead0000",
                          acquired_at=time.time() - 60)
            observer = LeaseManager(tmp_path, worker="other")
            observed = observer.peek("k")
            assert observer.is_stale("k", observed)
            assert observer.reclaim("k", observed)
            assert observer.acquire("k")
        finally:
            victim.kill()
            victim.wait()

    def test_plausible_same_start_lease_stays_live(self, tmp_path):
        # the other side of the incarnation check: a live pid whose start
        # time predates the lease acquisition is (as far as the observer
        # can tell) the true owner — never stale
        manager = LeaseManager(tmp_path, worker="w")
        victim = subprocess.Popen([sys.executable, "-c",
                                   "import time; time.sleep(60)"])
        try:
            time.sleep(0.1)
            manager.acquire("k")   # acquired after the victim started
            lease = self._rewrite(manager, "k", pid=victim.pid,
                                  nonce="f0e1d2c3")
            assert not manager.is_stale("k", lease)
        finally:
            victim.kill()
            victim.wait()

    def test_own_pid_foreign_nonce_is_stale(self, tmp_path):
        # same host, same pid, different nonce: a previous incarnation of
        # *this* pid slot — the nonce comparison needs no /proc at all
        manager = LeaseManager(tmp_path, worker="w")
        manager.acquire("k")
        lease = self._rewrite(manager, "k", nonce="00000000")
        assert manager.is_stale("k", lease)

    def test_future_dated_foreign_lease_is_stale(self, tmp_path):
        # regression: age = now - mtime went negative for a foreign host
        # with a fast clock, so the lease never crossed the TTL.  Mtimes
        # beyond the plausibility slack are treated as stale immediately.
        manager = LeaseManager(tmp_path, worker="w", stale_after=0.05)
        manager.acquire("k")
        path = manager._path("k")
        future = time.time() + 900
        self._rewrite(manager, "k", host="fast-clock-host")
        os.utime(path, (future, future))
        assert manager.is_stale("k", manager.peek("k"))

    def test_slightly_future_foreign_lease_stays_live(self, tmp_path):
        # ordinary NFS-grade skew (seconds) must not trip the clamp
        manager = LeaseManager(tmp_path, worker="w", stale_after=30.0)
        manager.acquire("k")
        path = manager._path("k")
        near = time.time() + 5
        self._rewrite(manager, "k", host="slightly-fast-host")
        os.utime(path, (near, near))
        assert not manager.is_stale("k", manager.peek("k"))

    def test_release_refuses_foreign_lease(self, tmp_path):
        # late release after a reclaim + re-acquire: the old owner must not
        # clobber the new owner's lease
        old = LeaseManager(tmp_path, worker="old")
        new = LeaseManager(tmp_path, worker="new")
        old.acquire("k")
        old._path("k").unlink()     # reclaimed from under the old owner
        new.acquire("k")
        old.release("k")            # ownership check: not ours, no unlink
        assert new.peek("k")["worker"] == "new"
        new.release("k")
        assert new.peek("k") is None

    def test_negative_skew_chaos_schedule(self, tmp_path):
        # the stale-clock seam with *negative* skew future-dates a lease
        # (acquired_at and mtime pushed past now): before the clamp this
        # lease was unreclaimable and the sweep hung until the kill-worker
        # budget drained.  The pinned plan proves reclaim + exactly-once
        # now survive it.
        from chaos import assert_chaos_invariants, run_chaos_trial
        from repro.robustness import FaultPlan, FaultSpec

        plan = FaultPlan(specs=[
            FaultSpec("lease.acquire", "stale-clock", skew_s=-900.0),
            FaultSpec("worker.compute", "kill-worker"),
        ], seed=4242, journal=str(tmp_path / "journal.jsonl"))
        outcome = run_chaos_trial(tmp_path, seed=4242, workers=2, plan=plan)
        assert_chaos_invariants(outcome)
        fired = outcome.fired_seams()
        assert fired["lease.acquire"], "stale-clock fault never fired"
        assert fired["worker.compute"], "kill-worker fault never fired"


# ---------------------------------------------------------------------- #
# sharded execution
# ---------------------------------------------------------------------- #
class TestShardedExecution:
    def test_single_worker_resolves_sweep(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sweep = _sweep(ns=(32, 48, 64))
        resolved = ShardWorker(store).run(sweep)
        assert set(resolved) == {0, 1, 2}
        assert len(store) == 3
        assert len(read_execution_log(store.root)) == 3
        assert not any(store.root.joinpath("shard", "leases").iterdir())

    def test_duplicate_cells_computed_once(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sweep = _sweep(ns=(32, 32, 48))      # two cells share one key
        resolved = ShardWorker(store).run(sweep)
        assert set(resolved) == {0, 1, 2}
        assert len(read_execution_log(store.root)) == 2
        assert resolved[0] == resolved[1]

    def test_two_concurrent_workers_overlapping_sweeps(self, tmp_path):
        """Acceptance: overlapping sweeps, two live workers — every cell
        computed exactly once, merged report == cold serial report."""
        ns = (32, 40, 48, 56, 64, 72, 80, 96)
        union = _sweep(ns=ns, name="union")
        sweep_a = _sweep(ns=ns[:6], name="union")     # cells 0..5
        sweep_b = _sweep(ns=ns[2:], name="union")     # cells 2..7 (overlap)
        store = ResultStore(tmp_path / "store")
        store.cells_dir.mkdir(parents=True, exist_ok=True)
        procs = [_start_worker(store.root, sweep_a, "worker-a", delay=0.05),
                 _start_worker(store.root, sweep_b, "worker-b", delay=0.05)]
        _join_all(procs)

        log_keys = [r["key"] for r in read_execution_log(store.root)]
        assert sorted(log_keys) == sorted(set(log_keys))   # exactly once
        assert set(log_keys) == {store.key_for(c) for c in union.cells}

        merged = CachedSweepRunner(
            store, backend=ShardBackend(workers=0)).run(union)
        cold = CachedSweepRunner(ResultStore(tmp_path / "fresh"),
                                 backend="serial").run(union)
        assert merged == cold

    def test_kill_one_worker_mid_sweep_then_restart(self, tmp_path):
        """Satellite: SIGKILL one of two live workers mid-sweep, restart it;
        every cell still computed exactly once and the report == cold serial."""
        ns = (32, 40, 48, 56, 64, 72, 80, 96)
        sweep = _sweep(ns=ns, name="killer")
        store = ResultStore(tmp_path / "store")
        store.cells_dir.mkdir(parents=True, exist_ok=True)

        victim = _start_worker(store.root, sweep, "victim", delay=0.25)
        survivor = _start_worker(store.root, sweep, "survivor", delay=0.25)
        # wait until the fleet is demonstrably mid-sweep, then kill one
        deadline = time.monotonic() + 60
        while len(read_execution_log(store.root)) < 2:
            assert time.monotonic() < deadline, "workers made no progress"
            time.sleep(0.01)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()

        replacement = _start_worker(store.root, sweep, "victim-2", delay=0.0)
        _join_all([survivor, replacement])

        log_keys = [r["key"] for r in read_execution_log(store.root)]
        assert sorted(log_keys) == sorted(set(log_keys))   # exactly once
        assert set(log_keys) == {store.key_for(c) for c in sweep.cells}
        assert not any(store.root.joinpath("shard", "leases").iterdir())

        resumed = CachedSweepRunner(
            store, backend=ShardBackend(workers=0)).run(sweep)
        cold = CachedSweepRunner(ResultStore(tmp_path / "fresh"),
                                 backend="serial").run(sweep)
        assert resumed == cold

    def test_shard_backend_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CachedSweepRunner(store, backend="shard", max_workers=2)
        cold = runner.run(_sweep(ns=(32, 48, 64)))
        assert runner.last_stats.misses == 3
        warm = runner.run(_sweep(ns=(32, 48, 64)))
        assert runner.last_stats.hits == 3 and runner.last_stats.misses == 0
        assert warm == cold
        assert len(read_execution_log(store.root)) == 3

    def test_run_sweep_sharded_convenience(self, tmp_path):
        report = run_sweep_sharded(_sweep(), tmp_path / "store", workers=2)
        assert len(report) == 2
        assert len(ResultStore(tmp_path / "store")) == 2

    def test_shard_rerun_recomputes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        CachedSweepRunner(store, backend="shard", max_workers=0).run(_sweep())
        runner = CachedSweepRunner(store, rerun=True, backend="shard",
                                   max_workers=0)
        runner.run(_sweep())
        assert runner.last_stats.misses == 2
        # the log shows both generations: each key computed twice overall
        log_keys = [r["key"] for r in read_execution_log(store.root)]
        assert len(log_keys) == 4 and len(set(log_keys)) == 2


# ---------------------------------------------------------------------- #
# backend plumbing & failure semantics
# ---------------------------------------------------------------------- #
class TestBackends:
    def test_resolve_backend_names(self):
        assert isinstance(resolve_backend(None, 0), SerialBackend)
        assert isinstance(resolve_backend(None, None), PoolBackend)
        assert isinstance(resolve_backend(None, 4), PoolBackend)
        assert isinstance(resolve_backend("serial", 4), SerialBackend)
        assert isinstance(resolve_backend("pool", 0), PoolBackend)
        assert isinstance(resolve_backend("shard", 2), ShardBackend)
        backend = SerialBackend()
        assert resolve_backend(backend, 0) is backend
        with pytest.raises(ValueError):
            resolve_backend("warp-drive", 0)

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 0), ("pool", 2), ("shard", 2)])
    def test_poisoned_cell_surfaces_per_cell(self, tmp_path, backend, workers):
        """Satellite: a raising cell must surface (label + error) instead of
        aborting or vanishing — and must not be persisted as a result."""
        store = ResultStore(tmp_path / backend)
        runner = CachedSweepRunner(store, backend=backend,
                                   max_workers=workers)
        report = runner.run(_poisoned_sweep())
        assert runner.last_stats.failures == 1
        assert "failures=1" in runner.last_stats.summary()
        failures = report.meta["failures"]
        assert len(failures) == 1
        assert failures[0]["cell"] == "bad"
        assert "no-such-rule" in failures[0]["error"]
        by_name = {c.config.name: c for c in report.cells}
        assert by_name["bad"].extra["failed"]
        assert by_name["bad"].num_runs == 0
        assert by_name["ok-32"].convergence_fraction == 1.0
        assert len(store) == 2               # the poisoned cell is not cached

    def test_poisoned_reports_equal_across_backends(self, tmp_path):
        """Satellite pin: serial ≡ pool ≡ shard on a poisoned sweep."""
        reports = {}
        for backend, workers in (("serial", 0), ("pool", 2), ("shard", 2)):
            runner = CachedSweepRunner(ResultStore(tmp_path / backend),
                                       backend=backend, max_workers=workers)
            reports[backend] = runner.run(_poisoned_sweep())
        assert reports["serial"] == reports["pool"] == reports["shard"]

    def test_failed_marker_survives_and_dedups_workers(self, tmp_path,
                                                       monkeypatch):
        """Regression: the failure marker must outlive the worker's lease
        release, so a second worker reports the same failure WITHOUT
        re-executing the poisoned cell."""
        import repro.store.shard as shard_mod

        calls = []
        real_run_cell = shard_mod.run_cell
        monkeypatch.setattr(
            shard_mod, "run_cell",
            lambda cell: calls.append(cell.name) or real_run_cell(cell))

        store = ResultStore(tmp_path / "store")
        first = ShardWorker(store).run(_poisoned_sweep())
        assert calls.count("bad") == 1
        marker_names = [p.name for p in
                        store.root.joinpath("shard", "leases").iterdir()]
        assert len(marker_names) == 1            # exactly the failure marker
        second = ShardWorker(store).run(_poisoned_sweep())
        assert calls.count("bad") == 1           # not re-executed
        assert second == first                   # same failure reported

    def test_failed_cells_retry_on_next_coordinated_run(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CachedSweepRunner(store, backend="shard", max_workers=0)
        runner.run(_poisoned_sweep())
        assert runner.last_stats.failures == 1
        # second coordinated run: good cells hit, the bad one retries (fails
        # again) instead of being served a stale failure marker blindly
        runner.run(_poisoned_sweep())
        assert runner.last_stats.hits == 2 and runner.last_stats.misses == 1
        assert runner.last_stats.failures == 1

    def test_plain_run_sweep_captures_failures_both_paths(self):
        from repro.experiments.runner import run_sweep

        serial = run_sweep(_poisoned_sweep(), max_workers=0)
        pooled = run_sweep(_poisoned_sweep(), max_workers=2)
        assert serial == pooled
        assert serial.meta["failures"][0]["cell"] == "bad"

    def test_pooled_cells_now_equal_serial_cells(self):
        """Pooled summaries carry per-run rounds + serial-identical extra, so
        whole reports are backend-equal (the store-seam defect this PR fixes:
        a cache populated by pooled execution used to serve different cells
        than a serially-populated one)."""
        from repro.experiments.runner import run_sweep

        serial = run_sweep(_sweep(), max_workers=0)
        pooled = run_sweep(_sweep(), max_workers=2)
        assert serial == pooled
        assert pooled.cells[0].rounds == serial.cells[0].rounds != []


# ---------------------------------------------------------------------- #
# offline (zero-recompute) replay
# ---------------------------------------------------------------------- #
class TestOfflineReplay:
    def test_offline_miss_raises_store_miss_error(self, tmp_path):
        runner = CachedSweepRunner(ResultStore(tmp_path / "s"), offline=True)
        with pytest.raises(StoreMissError) as exc_info:
            runner.run(_sweep())
        assert "n=32" in str(exc_info.value)

    def test_offline_warm_runs_zero_simulation(self, tmp_path, monkeypatch):
        """Acceptance: warm offline replay == cold report with zero
        simulation, pinned by the execution counter AND a poisoned
        run_cell."""
        import repro.store.backends as backends_mod
        from repro.experiments import runner as exr

        store = ResultStore(tmp_path / "s")
        cold = CachedSweepRunner(store).run(_sweep())
        monkeypatch.setattr(
            backends_mod, "run_cell",
            lambda cell: pytest.fail("offline replay executed a cell"))
        before = exr.EXECUTION_STATS["run_cell_calls"]
        warm = CachedSweepRunner(store, offline=True).run(_sweep())
        assert exr.EXECUTION_STATS["run_cell_calls"] == before
        assert warm == cold

    def test_regenerate_figure_from_store(self, tmp_path, monkeypatch):
        """Acceptance: reproduce_* tables regenerate purely from the store."""
        import repro.store.backends as backends_mod
        from repro.experiments import runner as exr
        from repro.experiments.figures import (
            regenerate_from_store,
            reproduce_theorem1,
        )

        store = ResultStore(tmp_path / "s")
        cold = reproduce_theorem1(scale=0.02, num_runs=2,
                                  runner=CachedSweepRunner(store))
        monkeypatch.setattr(
            backends_mod, "run_cell",
            lambda cell: pytest.fail("figure regeneration executed a cell"))
        before = exr.EXECUTION_STATS["run_cell_calls"]
        warm = regenerate_from_store("theorem1", store, scale=0.02, num_runs=2)
        assert exr.EXECUTION_STATS["run_cell_calls"] == before
        assert warm.report == cold.report
        assert warm.table == cold.table

    def test_regenerate_unknown_figure(self, tmp_path):
        from repro.experiments.figures import regenerate_from_store

        with pytest.raises(KeyError):
            regenerate_from_store("figure99", tmp_path / "s")


# ---------------------------------------------------------------------- #
# NPZ rounds sidecars
# ---------------------------------------------------------------------- #
def _big_result(config, runs=1000, seed=3) -> CellResult:
    rng = np.random.default_rng(seed)
    rounds = (rng.integers(1, 60, size=runs) + rng.random(runs)).tolist()
    return CellResult(config=config, num_runs=runs, convergence_fraction=1.0,
                      mean_rounds=float(np.mean(rounds)),
                      median_rounds=float(np.median(rounds)),
                      p90_rounds=float(np.quantile(rounds, 0.9)),
                      max_rounds=float(np.max(rounds)), rounds=rounds)


class TestRoundsSidecar:
    def test_round_trip_bit_exact_at_large_r(self, tmp_path):
        """Acceptance: NPZ sidecar preserves per-run rounds bit-exactly at
        R >= 1000."""
        store = ResultStore(tmp_path / "s", rounds_sidecar_at=1000)
        cfg = _config(num_runs=1000)
        result = _big_result(cfg, runs=1000)
        key = store.put(cfg, result)
        assert store._sidecar_path(key).exists()
        payload = json.loads(store._payload_path(key).read_text())
        assert payload["result"]["rounds"] == []          # JSON stays lean
        ref = payload["result"]["rounds_ref"]
        assert ref["format"] == "npz" and ref["count"] == 1000
        loaded = store.get(cfg).result
        assert loaded.rounds == result.rounds             # bit-exact
        assert loaded == result

    def test_below_threshold_stays_inline(self, tmp_path):
        store = ResultStore(tmp_path / "s", rounds_sidecar_at=1000)
        cfg = _config(num_runs=999)
        key = store.put(cfg, _big_result(cfg, runs=999))
        assert not store._sidecar_path(key).exists()
        payload = json.loads(store._payload_path(key).read_text())
        assert "rounds_ref" not in payload["result"]
        assert len(payload["result"]["rounds"]) == 999

    def test_reader_without_threshold_still_loads_sidecar(self, tmp_path):
        writer = ResultStore(tmp_path / "s", rounds_sidecar_at=10)
        cfg = _config(num_runs=50)
        result = _big_result(cfg, runs=50)
        writer.put(cfg, result)
        reader = ResultStore(tmp_path / "s")        # no sidecar config at all
        assert reader.get(cfg).result.rounds == result.rounds

    def test_missing_sidecar_quarantines_payload(self, tmp_path):
        store = ResultStore(tmp_path / "s", rounds_sidecar_at=10)
        cfg = _config(num_runs=20)
        key = store.put(cfg, _big_result(cfg, runs=20))
        store._sidecar_path(key).unlink()
        assert store.get(cfg) is None               # miss, not a crash
        assert not store._payload_path(key).exists()
        assert (store.quarantine_dir / f"{key}.json").exists()

    def test_corrupt_sidecar_quarantines_both(self, tmp_path):
        store = ResultStore(tmp_path / "s", rounds_sidecar_at=10)
        cfg = _config(num_runs=20)
        key = store.put(cfg, _big_result(cfg, runs=20))
        store._sidecar_path(key).write_bytes(b"not an npz")
        assert store.get(cfg) is None
        assert (store.quarantine_dir / f"{key}.json").exists()
        assert (store.quarantine_dir / f"{key}.npz").exists()

    def test_overwrite_below_threshold_drops_sidecar(self, tmp_path):
        store = ResultStore(tmp_path / "s", rounds_sidecar_at=10)
        cfg = _config(num_runs=20)
        key = store.put(cfg, _big_result(cfg, runs=20))
        assert store._sidecar_path(key).exists()
        small = ResultStore(tmp_path / "s", rounds_sidecar_at=None)
        small.put(cfg, _big_result(cfg, runs=20))
        assert not store._sidecar_path(key).exists()
        assert store.get(cfg).result.num_runs == 20

    def test_gc_validates_sidecars_and_sweeps_orphans(self, tmp_path):
        store = ResultStore(tmp_path / "s", rounds_sidecar_at=10)
        cfg = _config(name="big", n=32, num_runs=20)
        key = store.put(cfg, _big_result(cfg, runs=20))
        ok = _config(name="ok", n=48)
        store.put(ok, _big_result(ok, runs=5))      # inline, no sidecar
        orphan = store.cells_dir / ("a" * 64 + ".npz")
        orphan.write_bytes(b"zombie sidecar")
        counts = store.gc()
        assert counts["kept"] == 2
        assert counts["orphan_sidecars"] == 1
        assert not orphan.exists()
        assert (store.quarantine_dir / orphan.name).exists()
        assert store._sidecar_path(key).exists()    # referenced one survives
        # now break the referenced sidecar: gc must quarantine the pair
        store._sidecar_path(key).write_bytes(b"broken")
        counts = store.gc()
        assert counts["kept"] == 1 and counts["quarantined"] == 1
        assert not store._payload_path(key).exists()

    def test_cached_sweep_with_sidecars_equals_cold(self, tmp_path):
        store = ResultStore(tmp_path / "s", rounds_sidecar_at=3)
        runner = CachedSweepRunner(store)
        cold = runner.run(_sweep())                 # num_runs=3 → sidecars
        assert len(list(store.cells_dir.glob("*.npz"))) == 2
        warm = runner.run(_sweep())
        assert runner.last_stats.hits == 2
        assert warm == cold

    def test_info_counts_sidecars(self, tmp_path):
        store = ResultStore(tmp_path / "s", rounds_sidecar_at=10)
        cfg = _config(num_runs=20)
        store.put(cfg, _big_result(cfg, runs=20))
        info = store.info()
        assert info["sidecars"] == 1 and info["sidecar_bytes"] > 0


# ---------------------------------------------------------------------- #
# gc: dangling artifact records (satellite regression test)
# ---------------------------------------------------------------------- #
class TestGcDanglingArtifacts:
    def test_gc_flags_and_unflags_dangling_artifacts(self, tmp_path):
        from repro.store import ArtifactRegistry

        store = ResultStore(tmp_path / "s")
        cfg_a, cfg_b = _config(name="a", n=32), _config(name="b", n=48)
        runner = CachedSweepRunner(store)
        runner.run(_sweep(ns=(32, 48)))
        key_a, key_b = store.key_for(cfg_a), store.key_for(cfg_b)
        artifact = tmp_path / "report.json"
        artifact.write_text("{}")
        registry = ArtifactRegistry(store.root / "artifacts.json")
        registry.register(artifact, kind="test",
                          cell_keys={"a": key_a, "b": key_b})

        assert store.gc()["dangling_artifacts"] == 0

        store._payload_path(key_a).unlink()         # drop one input cell
        counts = store.gc()
        assert counts["dangling_artifacts"] == 1
        record = registry.records()[0]
        assert record["dangling_cell_keys"] == [key_a]

        runner.run(_sweep(ns=(32, 48)))             # recompute the cell
        counts = store.gc()
        assert counts["dangling_artifacts"] == 0
        assert "dangling_cell_keys" not in registry.records()[0]

    def test_quarantined_payload_also_dangles(self, tmp_path):
        from repro.store import ArtifactRegistry

        store = ResultStore(tmp_path / "s")
        runner = CachedSweepRunner(store)
        runner.run(_sweep(ns=(32,)))
        key = store.keys()[0]
        artifact = tmp_path / "bench.json"
        artifact.write_text("{}")
        ArtifactRegistry(store.root / "artifacts.json").register(
            artifact, kind="bench", cell_keys=[key])
        (store.cells_dir / f"{key}.json").write_text("garbage")
        counts = store.gc()
        assert counts["quarantined"] == 1
        assert counts["dangling_artifacts"] == 1


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #
class TestShardCli:
    def test_backend_shard_cold_then_warm(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["sweep", "theorem1", "--scale", "0.1", "--runs", "2",
                "--store", str(tmp_path / "store"),
                "--backend", "shard", "--workers", "2"]
        assert main(argv) == 0
        assert "misses=6" in capsys.readouterr().out
        assert main(argv) == 0
        assert "hits=6 misses=0" in capsys.readouterr().out
        # 6 sweep cells, 5 unique keys: exactly-once is per content hash
        assert len(read_execution_log(tmp_path / "store")) == 5

    def test_worker_attach_mode(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["sweep", "theorem1", "--scale", "0.1", "--runs", "2",
                "--store", str(tmp_path / "store"), "--worker"]
        assert main(argv) == 0
        assert "misses=6" in capsys.readouterr().out

    def test_from_store_cold_fails_warm_succeeds(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        base = ["sweep", "theorem1", "--scale", "0.1", "--runs", "2",
                "--store", store_dir]
        assert main(base + ["--from-store"]) == 1          # cold: refuse
        assert "not in the store" in capsys.readouterr().err
        assert main(base) == 0                             # populate
        capsys.readouterr()
        assert main(base + ["--from-store"]) == 0          # warm: replay
        assert "hits=6 misses=0" in capsys.readouterr().out

    def test_store_only_flags_require_store(self, capsys):
        from repro.cli import main

        assert main(["sweep", "theorem1", "--backend", "shard"]) == 2
        assert "--store" in capsys.readouterr().err
        assert main(["sweep", "theorem1", "--worker"]) == 2
        assert main(["sweep", "theorem1", "--from-store"]) == 2

    def test_failure_exit_code(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.experiments import figures

        def poisoned_reproduce(runner=None, **kwargs):
            report = (runner.run(_poisoned_sweep()) if runner is not None
                      else __import__("repro.experiments.runner",
                                      fromlist=["run_sweep"]
                                      ).run_sweep(_poisoned_sweep()))
            return figures.FigureResult(report=report, fits=[],
                                        table="(poisoned)")

        monkeypatch.setitem(figures.FIGURE_REGISTRY, "theorem1",
                            poisoned_reproduce)
        assert main(["sweep", "theorem1",
                     "--store", str(tmp_path / "s")]) == 3
        err = capsys.readouterr().err
        assert "bad" in err and "no-such-rule" in err

    def test_sidecar_at_cli(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        assert main(["sweep", "theorem1", "--scale", "0.1", "--runs", "2",
                     "--store", str(store_dir), "--sidecar-at", "1"]) == 0
        capsys.readouterr()
        assert len(list((store_dir / "cells").glob("*.npz"))) == 5
        # gc keeps the referenced sidecars and reports cleanly
        assert main(["store", "gc", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "orphan_sidecars=0" in out and "dangling_artifacts=0" in out
