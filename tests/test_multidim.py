"""Tests for repro.core.multidim: higher-dimensional median rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.median_rule import MedianRule
from repro.core.multidim import (
    CoordinatewiseMedianRule,
    TukeyMedianRule,
    VectorConfiguration,
    simulate_vector,
)


class TestVectorConfiguration:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            VectorConfiguration(values=np.zeros(5, dtype=np.int64))

    def test_random_construction(self, rng):
        vc = VectorConfiguration.random(50, 3, 0, 10, rng)
        assert vc.n == 50 and vc.d == 3
        assert vc.values.min() >= 0 and vc.values.max() < 10

    def test_random_invalid(self, rng):
        with pytest.raises(ValueError):
            VectorConfiguration.random(0, 3, 0, 10, rng)
        with pytest.raises(ValueError):
            VectorConfiguration.random(5, 3, 5, 5, rng)

    def test_values_readonly(self, rng):
        vc = VectorConfiguration.random(10, 2, 0, 5, rng)
        with pytest.raises(ValueError):
            vc.values[0, 0] = 99

    def test_consensus_detection(self):
        vc = VectorConfiguration(values=np.tile([1, 2, 3], (5, 1)))
        assert vc.is_consensus
        assert vc.agreement_fraction() == 1.0
        assert vc.distinct_vectors() == 1

    def test_contains_vector(self, rng):
        vc = VectorConfiguration(values=np.array([[1, 2], [3, 4]]))
        assert vc.contains_vector([1, 2])
        assert not vc.contains_vector([1, 4])

    def test_agreement_fraction_partial(self):
        vc = VectorConfiguration(values=np.array([[1, 1], [1, 1], [2, 2], [3, 3]]))
        assert vc.agreement_fraction() == pytest.approx(0.5)


class TestCoordinatewiseMedianRule:
    def test_one_dimension_matches_scalar_median_rule(self, rng):
        n = 100
        values = rng.integers(0, 30, size=n)
        seed_samples = np.random.default_rng(5)
        # run both rules with the same contact samples
        samples = seed_samples.integers(0, n, size=(n, 2))
        scalar_out = MedianRule().apply_vectorized(values, samples, rng)

        vec_values = values[:, None]
        vj = vec_values[samples[:, 0]]
        vk = vec_values[samples[:, 1]]
        lo = np.minimum(vec_values, vj)
        hi = np.maximum(vec_values, vj)
        vec_out = np.maximum(lo, np.minimum(hi, vk))
        assert np.array_equal(vec_out[:, 0], scalar_out)

    def test_each_coordinate_stays_in_initial_coordinate_set(self, rng):
        vc = VectorConfiguration.random(60, 3, 0, 7, rng)
        rule = CoordinatewiseMedianRule()
        values = vc.copy_values()
        initial_sets = [set(np.unique(values[:, k])) for k in range(3)]
        for _ in range(10):
            values = rule.step(values, rng)
            for k in range(3):
                assert set(np.unique(values[:, k])) <= initial_sets[k]

    def test_reaches_consensus(self, rng):
        vc = VectorConfiguration.random(100, 3, 0, 1000, rng)
        result = simulate_vector(vc, seed=1)
        assert result.reached_consensus
        assert result.final.is_consensus
        assert result.final_vector is not None

    def test_limit_vector_may_mix_coordinates(self):
        # with many distinct vectors the agreed vector is typically NOT one of
        # the initial vectors (coordinate-wise consensus only)
        rng = np.random.default_rng(3)
        mixed_count = 0
        for s in range(5):
            vc = VectorConfiguration.random(80, 4, 0, 10**6, rng)
            result = simulate_vector(vc, seed=s)
            assert result.reached_consensus
            if not vc.contains_vector(result.final_vector):
                mixed_count += 1
        assert mixed_count >= 4     # almost surely mixes with 10^6-range coordinates

    def test_consensus_time_logarithmic_shape(self):
        means = []
        for n in (64, 256, 1024):
            rounds = []
            for s in range(4):
                rng = np.random.default_rng(100 + s)
                vc = VectorConfiguration.random(n, 2, 0, 10**6, rng)
                res = simulate_vector(vc, seed=s)
                assert res.reached_consensus
                rounds.append(res.consensus_round)
            means.append(np.mean(rounds))
        # 16x larger n costs far less than 4x the rounds
        assert means[-1] < 2.5 * means[0]


class TestTukeyMedianRule:
    def test_output_is_one_of_the_three_inputs(self, rng):
        rule = TukeyMedianRule()
        values = rng.integers(0, 50, size=(40, 3))
        out = rule.step(values, rng)
        # every output row must equal some current row (value preservation is
        # even stronger: it equals own or one of the sampled rows)
        current = {tuple(row) for row in values.tolist()}
        for row in out.tolist():
            assert tuple(row) in current

    def test_preserves_initial_vector_set(self, rng):
        vc = VectorConfiguration.random(60, 3, 0, 100, rng)
        initial_vectors = {tuple(row) for row in vc.values.tolist()}
        result = simulate_vector(vc, rule=TukeyMedianRule(), seed=2, max_rounds=3000)
        final_vectors = {tuple(row) for row in result.final.values.tolist()}
        assert final_vectors <= initial_vectors

    def test_one_dimension_is_the_median(self, rng):
        rule = TukeyMedianRule()
        values = np.array([[10], [12], [100]], dtype=np.int64)
        # force process 0 to sample processes 1 and 2 by monkey-running the kernel
        a, b, c = values[0], values[1], values[2]
        dist_ab = np.abs(a - b).sum()
        dist_ac = np.abs(a - c).sum()
        dist_bc = np.abs(b - c).sum()
        costs = [dist_ab + dist_ac, dist_ab + dist_bc, dist_ac + dist_bc]
        assert int(np.argmin(costs)) == 1          # the 1-D median (12) wins

    def test_reaches_consensus_with_few_vectors(self, rng):
        base = np.array([[0, 0, 0], [5, 5, 5], [9, 1, 4]], dtype=np.int64)
        values = base[rng.integers(0, 3, size=90)]
        vc = VectorConfiguration(values=values)
        result = simulate_vector(vc, rule=TukeyMedianRule(), seed=3, max_rounds=3000)
        assert result.reached_consensus
        assert result.final_vector in {tuple(r) for r in base.tolist()}


class TestSimulateVector:
    def test_already_consensus(self):
        vc = VectorConfiguration(values=np.tile([4, 4], (10, 1)))
        result = simulate_vector(vc, seed=0)
        assert result.consensus_round == 0

    def test_horizon_respected(self, rng):
        vc = VectorConfiguration.random(64, 2, 0, 10**6, rng)
        result = simulate_vector(vc, seed=0, max_rounds=1)
        assert result.rounds_executed == 1

    def test_deterministic_given_seed(self, rng):
        vc = VectorConfiguration.random(64, 2, 0, 100, rng)
        a = simulate_vector(vc, seed=9)
        b = simulate_vector(vc, seed=9)
        assert a.consensus_round == b.consensus_round
        assert np.array_equal(a.final.values, b.final.values)
