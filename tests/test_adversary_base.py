"""Tests for repro.adversary.base and budget enforcement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.base import Adversary, AdversaryTiming, Corruption, NullAdversary
from repro.adversary.budget import BudgetLedger


class GreedyAdversary(Adversary):
    """Test helper: proposes to rewrite *every* process (over budget on purpose)."""

    def __init__(self, budget: int, target: int = 99) -> None:
        super().__init__(budget=budget)
        self.target = target

    def propose(self, values, round_index, admissible_values, rng):
        idx = np.arange(values.shape[0])
        return Corruption(indices=idx, values=np.full(idx.shape[0], self.target))


class OutOfRangeAdversary(Adversary):
    """Test helper: proposes invalid indices and inadmissible values."""

    def propose(self, values, round_index, admissible_values, rng):
        idx = np.array([-5, 0, 10_000, 1])
        vals = np.array([0, 12345, 0, int(admissible_values[0])])
        return Corruption(indices=idx, values=vals)


class TestCorruption:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Corruption(indices=np.array([1, 2]), values=np.array([3]))

    def test_empty(self):
        c = Corruption.empty()
        assert c.count == 0

    def test_count(self):
        c = Corruption(indices=np.array([1, 2, 3]), values=np.array([0, 0, 0]))
        assert c.count == 3


class TestAdversaryEnforcement:
    def test_budget_clipping(self, rng):
        adv = GreedyAdversary(budget=3, target=1)
        values = np.zeros(20, dtype=np.int64)
        out = adv.corrupt(values, 1, np.array([0, 1]), rng)
        assert int(np.count_nonzero(out != values)) <= 3

    def test_inadmissible_values_filtered(self, rng):
        adv = GreedyAdversary(budget=5, target=99)   # 99 not admissible
        values = np.zeros(10, dtype=np.int64)
        out = adv.corrupt(values, 1, np.array([0, 1]), rng)
        assert np.array_equal(out, values)

    def test_out_of_range_indices_dropped(self, rng):
        adv = OutOfRangeAdversary(budget=10)
        values = np.zeros(5, dtype=np.int64)
        out = adv.corrupt(values, 1, np.array([0, 7]), rng)
        # only indices 0 and 1 are in range; of those, only admissible values kept
        changed = np.flatnonzero(out != values)
        assert set(changed.tolist()) <= {0, 1}

    def test_input_never_mutated(self, rng):
        adv = GreedyAdversary(budget=5, target=1)
        values = np.zeros(10, dtype=np.int64)
        _ = adv.corrupt(values, 1, np.array([0, 1]), rng)
        assert np.all(values == 0)

    def test_zero_budget_never_changes_anything(self, rng):
        adv = NullAdversary()
        values = np.arange(10)
        out = adv.corrupt(values, 1, np.arange(10), rng)
        assert np.array_equal(out, values)

    def test_ledger_records_every_round(self, rng):
        adv = GreedyAdversary(budget=2, target=1)
        values = np.zeros(10, dtype=np.int64)
        for t in range(1, 6):
            values = adv.corrupt(values, t, np.array([0, 1]), rng)
        assert adv.ledger.verify()
        assert set(adv.ledger.per_round) == {1, 2, 3, 4, 5}
        assert adv.ledger.max_in_round() <= 2

    def test_reset_clears_ledger(self, rng):
        adv = GreedyAdversary(budget=2, target=1)
        adv.corrupt(np.zeros(5, dtype=np.int64), 1, np.array([0, 1]), rng)
        adv.reset()
        assert adv.ledger.total == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            NullAdversary.__init__.__wrapped__ if False else GreedyAdversary(budget=-1)

    def test_duplicate_indices_deduplicated(self, rng):
        class DupAdversary(Adversary):
            def propose(self, values, round_index, admissible_values, rng):
                return Corruption(indices=np.array([2, 2, 2]),
                                  values=np.array([1, 1, 1]))

        adv = DupAdversary(budget=3)
        values = np.zeros(5, dtype=np.int64)
        out = adv.corrupt(values, 1, np.array([0, 1]), rng)
        assert adv.ledger.per_round[1] == 1
        assert out[2] == 1

    def test_timing_default(self):
        adv = GreedyAdversary(budget=1)
        assert adv.timing is AdversaryTiming.BEFORE_SAMPLING


class TestBudgetLedger:
    def test_record_and_totals(self):
        ledger = BudgetLedger(budget=5)
        ledger.record(1, 3)
        ledger.record(2, 5)
        ledger.record(3, 0)
        assert ledger.total == 8
        assert ledger.rounds_active == 2
        assert ledger.max_in_round() == 5
        assert ledger.verify()

    def test_history_dense(self):
        ledger = BudgetLedger(budget=5)
        ledger.record(0, 1)
        ledger.record(3, 2)
        assert ledger.history() == [1, 0, 0, 2]

    def test_over_budget_raises(self):
        ledger = BudgetLedger(budget=2)
        with pytest.raises(ValueError):
            ledger.record(1, 3)

    def test_cumulative_over_budget_raises(self):
        ledger = BudgetLedger(budget=2)
        ledger.record(1, 2)
        with pytest.raises(ValueError):
            ledger.record(1, 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BudgetLedger(budget=2).record(0, -1)

    def test_empty_history(self):
        assert BudgetLedger(budget=1).history() == []
