"""Tests for repro.analysis.theory and repro.analysis.statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.statistics import (
    compare_predictors,
    empirical_success_probability,
    fit_scaling,
    growth_ratio,
    summarize_rounds,
)
from repro.analysis.theory import (
    PREDICTORS,
    adversary_budget_sqrt_n,
    heavy_set_size,
    phase_count,
    predictor_for,
    theorem1_predictor,
    theorem3_predictor,
    theorem4_predictor,
)


class TestPredictors:
    def test_theorem1_is_log_n(self):
        assert theorem1_predictor(1024) == pytest.approx(10.0)

    def test_theorem3_combines_terms(self):
        n, m = 1 << 16, 16
        assert theorem3_predictor(n, m) == pytest.approx(4 * math.log2(16) + 16)

    def test_theorem4_odd_even_split(self):
        n = 1 << 16
        assert theorem4_predictor(n, 17) < theorem4_predictor(n, 16)

    def test_small_arguments_guarded(self):
        assert theorem1_predictor(1) == 1.0
        assert theorem3_predictor(2, 1) >= 1.0

    def test_predictor_registry_callables(self):
        for name, pred in PREDICTORS.items():
            val = pred(1024, 8)
            assert np.isfinite(val) and val > 0, name

    def test_predictor_for_known_theorems(self):
        assert predictor_for("thm1").name == "log_n"
        assert predictor_for("thm3").name == "log_m_loglog_n_plus_log_n"
        assert predictor_for("thm4_odd").name == "log_m_plus_loglog_n"
        assert predictor_for("THM10").name == "log_n"

    def test_predictor_for_unknown(self):
        with pytest.raises(KeyError):
            predictor_for("thm99")

    def test_adversary_budget(self):
        assert adversary_budget_sqrt_n(1024) == 32
        assert adversary_budget_sqrt_n(1024, 0.25) == 8
        assert adversary_budget_sqrt_n(4, 0.01) == 1   # floor at 1

    def test_phase_count(self):
        assert phase_count(16) == 5
        assert phase_count(1) == 2
        with pytest.raises(ValueError):
            phase_count(0)

    def test_heavy_set_size(self):
        n = 1000
        assert heavy_set_size(n) == math.ceil(math.sqrt(n * math.log(n)))
        assert heavy_set_size(1) == 1


class TestSummarizeRounds:
    def test_basic_statistics(self):
        s = summarize_rounds([10, 12, 14, 16, 18])
        assert s.count == 5 and s.converged == 5
        assert s.mean == pytest.approx(14.0)
        assert s.median == pytest.approx(14.0)
        assert s.maximum == 18.0
        assert s.convergence_fraction == 1.0

    def test_nan_treated_as_nonconverged(self):
        s = summarize_rounds([10.0, float("nan"), 20.0])
        assert s.count == 3 and s.converged == 2
        assert s.mean == pytest.approx(15.0)

    def test_all_nan(self):
        s = summarize_rounds([float("nan")] * 3)
        assert s.converged == 0
        assert math.isnan(s.mean)

    def test_single_sample_std(self):
        assert summarize_rounds([7.0]).std == 0.0


class TestFitScaling:
    def test_perfect_log_fit(self):
        ns = [2**k for k in range(6, 14)]
        rounds = [3.0 * math.log2(n) + 5.0 for n in ns]
        fit = fit_scaling(ns, [2] * len(ns), rounds, "log_n")
        assert fit.slope == pytest.approx(3.0, rel=1e-6)
        assert fit.intercept == pytest.approx(5.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        ns = [64, 256, 1024]
        rounds = [2.0 * math.log2(n) for n in ns]
        fit = fit_scaling(ns, [2] * 3, rounds, "log_n")
        assert fit.predict(20.0) == pytest.approx(40.0, rel=1e-6)

    def test_log_beats_linear_for_log_data(self):
        rng = np.random.default_rng(0)
        ns = [2**k for k in range(6, 16)]
        rounds = [4 * math.log2(n) + rng.normal(0, 0.5) for n in ns]
        fits = compare_predictors(ns, [2] * len(ns), rounds, ["log_n", "linear_n"])
        assert fits[0].predictor_name == "log_n"

    def test_linear_beats_log_for_linear_data(self):
        rng = np.random.default_rng(1)
        ns = [100 * k for k in range(1, 12)]
        rounds = [0.5 * n + rng.normal(0, 5) for n in ns]
        fits = compare_predictors(ns, [2] * len(ns), rounds, ["log_n", "linear_n"])
        assert fits[0].predictor_name == "linear_n"

    def test_nan_rounds_dropped(self):
        ns = [64, 128, 256, 512]
        rounds = [6.0, float("nan"), 8.0, 9.0]
        fit = fit_scaling(ns, [2] * 4, rounds, "log_n")
        assert fit.points == 3

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_scaling([64], [2], [5.0], "log_n")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_scaling([64, 128], [2], [5.0, 6.0], "log_n")

    def test_constant_data_r2_one(self):
        fit = fit_scaling([64, 128, 256], [2, 2, 2], [5.0, 5.0, 5.0], "log_n")
        assert fit.r_squared == pytest.approx(1.0)


class TestGrowthRatio:
    def test_pairs_in_size_order(self):
        out = growth_ratio([100, 400, 200], [10.0, 14.0, 12.0])
        assert out == [(100, 200, pytest.approx(1.2)), (200, 400, pytest.approx(14 / 12))]

    def test_nan_skipped(self):
        out = growth_ratio([100, 200], [float("nan"), 10.0])
        assert out == []

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            growth_ratio([1, 2], [1.0])


class TestSuccessProbability:
    def test_all_success(self):
        p, hw = empirical_success_probability([True] * 50)
        assert p == 1.0 and hw < 0.05

    def test_half(self):
        p, hw = empirical_success_probability([True, False] * 100)
        assert p == pytest.approx(0.5)
        assert 0 < hw < 0.1

    def test_empty(self):
        p, hw = empirical_success_probability([])
        assert math.isnan(p)
