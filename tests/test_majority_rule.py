"""Tests for repro.core.majority_rule: the two-bin specialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.majority_rule import (
    MajorityRule,
    exact_two_bin_transition,
    two_bin_step_distribution,
)
from repro.core.median_rule import MedianRule


class TestMajorityRule:
    def test_equivalent_to_median_on_two_values(self, rng):
        values = (rng.random(200) < 0.4).astype(np.int64)
        samples = rng.integers(0, 200, size=(200, 2))
        a = MedianRule().apply_vectorized(values, samples, rng)
        b = MajorityRule().apply_vectorized(values, samples, rng)
        assert np.array_equal(a, b)

    def test_equivalent_with_arbitrary_two_values(self, rng):
        values = np.where(rng.random(150) < 0.5, 17, 42).astype(np.int64)
        samples = rng.integers(0, 150, size=(150, 2))
        a = MedianRule().apply_vectorized(values, samples, rng)
        b = MajorityRule().apply_vectorized(values, samples, rng)
        assert np.array_equal(a, b)

    def test_strict_rejects_three_values(self, rng):
        values = np.array([0, 1, 2, 0], dtype=np.int64)
        samples = np.zeros((4, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            MajorityRule(strict=True).apply_vectorized(values, samples, rng)

    def test_non_strict_accepts_three_values(self, rng):
        values = np.array([0, 1, 2, 0], dtype=np.int64)
        samples = np.zeros((4, 2), dtype=np.int64)
        out = MajorityRule(strict=False).apply_vectorized(values, samples, rng)
        assert out.shape == (4,)

    def test_apply_single_majority(self, rng):
        rule = MajorityRule()
        assert rule.apply_single(0, [1, 1], rng) == 1
        assert rule.apply_single(0, [0, 1], rng) == 0
        assert rule.apply_single(1, [0, 0], rng) == 0
        assert rule.apply_single(1, [1, 1], rng) == 1

    def test_apply_single_wrong_arity(self, rng):
        with pytest.raises(ValueError):
            MajorityRule().apply_single(0, [1], rng)

    def test_apply_single_three_distinct_falls_back_to_median(self, rng):
        assert MajorityRule(strict=False).apply_single(5, [1, 9], rng) == 5


class TestExactTwoBinTransition:
    def test_balanced_probabilities(self):
        p_leave, p_join = exact_two_bin_transition(100, 50)
        assert p_leave == pytest.approx(0.25)
        assert p_join == pytest.approx(0.25)

    def test_empty_minority(self):
        p_leave, p_join = exact_two_bin_transition(100, 0)
        assert p_leave == pytest.approx(1.0)
        assert p_join == pytest.approx(0.0)

    def test_full_minority(self):
        p_leave, p_join = exact_two_bin_transition(100, 100)
        assert p_leave == pytest.approx(0.0)
        assert p_join == pytest.approx(1.0)

    def test_matches_lemma12_parameterization(self):
        # Lemma 12 writes the stay probability of a minority ball as
        # 3/4 - delta - delta^2 where delta = Delta/n and minority = n/2 - Delta.
        n, minority = 1000, 300
        delta = (n / 2 - minority) / n
        p_leave, p_join = exact_two_bin_transition(n, minority)
        assert 1.0 - p_leave == pytest.approx(3 / 4 - delta - delta**2)
        assert p_join == pytest.approx(1 / 4 - delta + delta**2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            exact_two_bin_transition(0, 0)
        with pytest.raises(ValueError):
            exact_two_bin_transition(10, 11)


class TestTwoBinStepDistribution:
    def test_is_probability_vector(self):
        dist = two_bin_step_distribution(50, 20)
        assert dist.shape == (51,)
        assert np.all(dist >= 0)
        assert dist.sum() == pytest.approx(1.0)

    def test_mean_matches_expectation(self):
        n, minority = 60, 25
        dist = two_bin_step_distribution(n, minority)
        p_leave, p_join = exact_two_bin_transition(n, minority)
        expected = minority * (1 - p_leave) + (n - minority) * p_join
        assert float(dist @ np.arange(n + 1)) == pytest.approx(expected, rel=1e-9)

    def test_absorbing_at_zero(self):
        dist = two_bin_step_distribution(40, 0)
        assert dist[0] == pytest.approx(1.0)

    def test_absorbing_at_n(self):
        dist = two_bin_step_distribution(40, 40)
        assert dist[40] == pytest.approx(1.0)

    def test_matches_monte_carlo(self):
        # empirical next-minority distribution from simulation vs exact pmf mean/var
        rng = np.random.default_rng(3)
        n, minority, samples = 100, 30, 4000
        values = np.zeros((samples, n), dtype=np.int64)
        values[:, minority:] = 1
        contacts = rng.integers(0, n, size=(samples, n, 2))
        vj = np.take_along_axis(values, contacts[:, :, 0], axis=1)
        vk = np.take_along_axis(values, contacts[:, :, 1], axis=1)
        new_values = np.maximum(np.minimum(values, vj),
                                np.minimum(np.maximum(values, vj), vk))
        next_minority = (new_values == 0).sum(axis=1)
        dist = two_bin_step_distribution(n, minority)
        exact_mean = float(dist @ np.arange(n + 1))
        exact_var = float(dist @ (np.arange(n + 1) ** 2)) - exact_mean ** 2
        assert next_minority.mean() == pytest.approx(exact_mean, rel=0.05)
        assert next_minority.var() == pytest.approx(exact_var, rel=0.25)
