"""Tests for repro.engine.occupancy: kernels, round dynamics, adversaries.

The statistical pinning against the vectorized engine lives in
``test_engine_differential.py``; this module covers the exact algebra of the
transition matrices (against brute-force enumeration), conservation laws,
stop rules, adversary count edits, and the large-n contract.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.adversary.base import AdversaryTiming, NullAdversary
from repro.adversary.strategies import (
    BalancingAdversary,
    RandomCorruptionAdversary,
    RevivingAdversary,
    StickyAdversary,
    SwitchingAdversary,
    TargetedMedianAdversary,
)
from repro.core.baseline_rules import MaximumRule, MinimumRule, VoterRule
from repro.core.consensus import AlmostStableCriterion
from repro.core.median_rule import (
    BestOfKMedianRule,
    MedianRule,
    MedianRuleWithoutReplacement,
)
from repro.core.occupancy_state import OccupancyState
from repro.core.rules import get_rule
from repro.core.state import Configuration
from repro.engine.occupancy import (
    median_noreplace_outcome_matrix,
    median_outcome_matrix,
    occupancy_round,
    occupancy_transition_matrix,
    simulate_occupancy,
)
from repro.engine.trajectory import RecordLevel


def _brute_force_with_replacement(p: np.ndarray, k: int) -> np.ndarray:
    """Enumerate all k-sample outcomes of the median-of-(k+1) rule."""
    m = p.shape[0]
    Q = np.zeros((m, m))
    for a in range(m):
        for combo in itertools.product(range(m), repeat=k):
            pool = sorted([a] + list(combo))
            b = pool[(len(pool) - 1) // 2]
            Q[a, b] += np.prod(p[list(combo)])
    return Q


class TestTransitionMatrices:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_median_matrix_matches_enumeration(self, k):
        counts = np.array([3, 5, 2, 4], dtype=np.int64)
        p = counts / counts.sum()
        Q = median_outcome_matrix(np.cumsum(p), k=k)
        assert np.allclose(Q, _brute_force_with_replacement(p, k), atol=1e-12)

    def test_rows_are_distributions(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(1, 50, size=12)
        for rule in (MedianRule(), BestOfKMedianRule(k=5), VoterRule(),
                     MinimumRule(), MaximumRule(), MedianRuleWithoutReplacement()):
            Q = occupancy_transition_matrix(rule, counts)
            assert np.all(Q >= 0)
            assert np.allclose(Q.sum(axis=1), 1.0, atol=1e-12)

    def test_noreplace_matrix_matches_enumeration(self):
        counts = np.array([3, 5, 2, 4], dtype=np.int64)
        values = np.repeat(np.arange(4), counts)
        n = int(counts.sum())
        Q = median_noreplace_outcome_matrix(counts)
        for a in range(4):
            self_idx = int(np.flatnonzero(values == a)[0])
            others = [i for i in range(n) if i != self_idx]
            q = np.zeros(4)
            total = 0
            for j in others:
                for k_ in others:
                    if k_ == j:
                        continue
                    b = sorted([a, values[j], values[k_]])[1]
                    q[b] += 1
                    total += 1
            assert np.allclose(q / total, Q[a], atol=1e-12)

    def test_noreplace_approaches_with_replacement_for_large_n(self):
        counts = np.array([40_000, 25_000, 35_000], dtype=np.int64)
        p = counts / counts.sum()
        Q_wr = median_outcome_matrix(np.cumsum(p), k=2)
        Q_nr = median_noreplace_outcome_matrix(counts)
        assert np.allclose(Q_wr, Q_nr, atol=1e-4)  # they differ by O(1/n)

    def test_voter_rows_equal_fractions(self):
        counts = np.array([2, 6, 2], dtype=np.int64)
        Q = occupancy_transition_matrix(VoterRule(), counts)
        assert np.allclose(Q, np.tile(counts / counts.sum(), (3, 1)))

    def test_minimum_rule_never_moves_up(self):
        counts = np.array([4, 3, 3], dtype=np.int64)
        Q = occupancy_transition_matrix(MinimumRule(), counts)
        assert np.allclose(np.triu(Q, k=1), 0.0)

    def test_wide_support_rejected_with_clear_error(self):
        # m² memory would explode; the engine must fail fast, not OOM
        counts = np.ones(20_001, dtype=np.int64)
        with pytest.raises(ValueError, match="vectorized engine"):
            occupancy_transition_matrix(MedianRule(), counts)

    def test_unsupported_rule_raises(self):
        # the mean rule does not preserve values and has no count-space kernel
        rule = get_rule("mean")
        with pytest.raises(TypeError, match="occupancy"):
            occupancy_transition_matrix(rule, np.array([5, 5]))

    @pytest.mark.parametrize("name", ["three-majority", "two-choices-majority"])
    def test_majority_family_has_kernels(self, name):
        Q = occupancy_transition_matrix(get_rule(name), np.array([5, 5]))
        np.testing.assert_allclose(Q.sum(axis=1), 1.0)

    def test_custom_kernel_hook_is_used(self):
        class FrozenRule(MedianRule):
            name = "frozen-test"

            def occupancy_kernel(self, support, counts):
                return np.eye(counts.shape[0])

        counts = np.array([3, 7], dtype=np.int64)
        Q = occupancy_transition_matrix(FrozenRule(), counts)
        assert np.allclose(Q, np.eye(2))

    def test_hook_receives_support_argument(self):
        # regression: the batch builder used to pass support=None into the
        # hook, so any kernel that consulted the support values crashed or
        # silently mis-scaled; both builders must forward the real support
        seen = []

        class SupportEchoRule(MedianRule):
            name = "support-echo-test"

            def occupancy_kernel(self, support, counts):
                seen.append(support)
                assert support is not None
                m = counts.shape[-1]
                return np.tile(np.eye(m), counts.shape[:-1] + (1, 1)) \
                    if counts.ndim > 1 else np.eye(m)

        from repro.engine.occupancy import occupancy_transition_matrix_batch

        support = np.array([2.0, 5.0, 9.0])
        occupancy_transition_matrix(
            SupportEchoRule(), np.array([3, 4, 5]), support=support)
        occupancy_transition_matrix_batch(
            SupportEchoRule(), np.array([[3, 4, 5], [1, 1, 10]]),
            support=support)
        assert len(seen) >= 2
        for s in seen:
            np.testing.assert_array_equal(np.asarray(s, dtype=float), support)

    def test_batched_hook_used_when_it_vectorizes(self):
        # a hook that accepts the (R, m) batch and returns (R, m, m) must be
        # called once, not once per row
        calls = []

        class BatchAwareRule(MedianRule):
            name = "batch-aware-test"

            def occupancy_kernel(self, support, counts):
                counts = np.asarray(counts)
                calls.append(counts.shape)
                if counts.ndim == 2:
                    R, m = counts.shape
                    return np.tile(np.eye(m), (R, 1, 1))
                return np.eye(counts.shape[0])

        from repro.engine.occupancy import occupancy_transition_matrix_batch

        counts = np.array([[3, 4, 5], [6, 0, 6]], dtype=np.int64)
        Q = occupancy_transition_matrix_batch(BatchAwareRule(), counts)
        assert Q.shape == (2, 3, 3)
        assert calls == [(2, 3)]  # single batched call, no per-row loop

    def test_row_only_hook_falls_back_to_per_row_loop(self):
        # a legacy hook that only understands 1-D counts still works: the
        # batch builder detects the wrong output shape and loops
        calls = []

        class RowOnlyRule(MedianRule):
            name = "row-only-test"

            def occupancy_kernel(self, support, counts):
                counts = np.asarray(counts)
                calls.append(counts.shape)
                if counts.ndim != 1:
                    raise TypeError("rows only")
                return np.eye(counts.shape[0])

        from repro.engine.occupancy import occupancy_transition_matrix_batch

        counts = np.array([[3, 4, 5], [6, 0, 6]], dtype=np.int64)
        Q = occupancy_transition_matrix_batch(RowOnlyRule(), counts)
        assert Q.shape == (2, 3, 3)
        np.testing.assert_allclose(Q, np.tile(np.eye(3), (2, 1, 1)))
        assert (2, 3) in calls and calls.count((3,)) == 2


class TestOccupancyRound:
    def test_population_is_conserved(self):
        rng = np.random.default_rng(1)
        counts = np.array([100, 200, 300], dtype=np.int64)
        for _ in range(25):
            counts = occupancy_round(counts, MedianRule(), rng)
            assert int(counts.sum()) == 600
            assert np.all(counts >= 0)

    def test_consensus_is_absorbing(self):
        rng = np.random.default_rng(2)
        counts = np.array([0, 500, 0], dtype=np.int64)
        out = occupancy_round(counts, MedianRule(), rng)
        assert out.tolist() == [0, 500, 0]

    def test_large_n_round_is_exactly_representable(self):
        rng = np.random.default_rng(3)
        counts = np.full(16, 10**8 // 16, dtype=np.int64)
        out = occupancy_round(counts, MedianRule(), rng)
        assert int(out.sum()) == 10**8


class TestSimulateOccupancy:
    def test_reaches_consensus_two_bins(self):
        res = simulate_occupancy(Configuration.two_bins(1000, minority=400), seed=0)
        assert res.reached_consensus
        assert res.final.is_consensus
        assert res.winning_value in (0, 1)

    def test_deterministic_given_seed(self):
        init = Configuration.two_bins(512, minority=256)
        a = simulate_occupancy(init, seed=42)
        b = simulate_occupancy(init, seed=42)
        assert a.consensus_round == b.consensus_round
        assert a.winning_value == b.winning_value

    def test_accepts_occupancy_state_and_raw_values(self):
        st = OccupancyState.from_loads({0: 50, 1: 50})
        assert simulate_occupancy(st, seed=1).reached_consensus
        assert simulate_occupancy(np.array([0] * 30 + [1] * 30), seed=1).reached_consensus

    def test_already_consensus_input(self):
        res = simulate_occupancy(Configuration.from_values([7] * 10), seed=0)
        assert res.reached_consensus and res.consensus_round == 0
        assert res.rounds_executed <= 1

    def test_horizon_zero_and_run_to_horizon(self):
        init = Configuration.two_bins(64, minority=32)
        res0 = simulate_occupancy(init, seed=0, max_rounds=0)
        assert res0.rounds_executed == 0
        res = simulate_occupancy(init, seed=0, max_rounds=40, run_to_horizon=True)
        assert res.rounds_executed == 40

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            simulate_occupancy(Configuration.two_bins(8, minority=4), max_rounds=-1)

    def test_metrics_trajectory_support_never_grows_without_adversary(self):
        res = simulate_occupancy(Configuration.from_values(list(range(32)) * 4),
                                 seed=0, record=RecordLevel.METRICS)
        assert len(res.trajectory.metrics) == res.rounds_executed + 1
        support = res.trajectory.support_series()
        assert np.all(np.diff(support) <= 0)

    def test_full_record_small_n(self):
        res = simulate_occupancy(Configuration.two_bins(32, minority=16), seed=0,
                                 record=RecordLevel.FULL)
        assert len(res.trajectory.configurations) == res.rounds_executed + 1
        assert res.trajectory.configurations[-1].loads == res.final.loads

    def test_full_record_refused_for_large_n(self):
        st = OccupancyState.from_loads({0: 10**7, 1: 10**7})
        with pytest.raises(ValueError, match="FULL"):
            simulate_occupancy(st, record=RecordLevel.FULL)

    def test_large_n_result_not_materialized(self):
        st = OccupancyState.from_loads({0: 10**8, 1: 10**8 + 5})
        res = simulate_occupancy(st, seed=4)
        assert isinstance(res.final, OccupancyState)
        assert res.n == 2 * 10**8 + 5
        summary = res.summary()  # the analysis surface must keep working
        assert summary["consensus_reached"] is True
        assert summary["final_agreement_fraction"] == 1.0

    def test_materialize_override(self):
        st = OccupancyState.from_loads({0: 40, 1: 60})
        res = simulate_occupancy(st, seed=5, materialize=False)
        assert isinstance(res.final, OccupancyState)

    def test_best_of_k_rule(self):
        res = simulate_occupancy(Configuration.two_bins(2000, minority=900),
                                 rule=BestOfKMedianRule(k=4), seed=6)
        assert res.reached_consensus

    def test_noreplace_rule(self):
        res = simulate_occupancy(Configuration.two_bins(2000, minority=900),
                                 rule=MedianRuleWithoutReplacement(), seed=7)
        assert res.reached_consensus

    def test_meta_declares_engine(self):
        res = simulate_occupancy(Configuration.two_bins(64, minority=32), seed=8)
        assert res.meta["engine"] == "occupancy"


class TestOccupancyAdversaries:
    def test_balancing_reaches_almost_stable(self):
        adv = BalancingAdversary(budget=8)
        res = simulate_occupancy(Configuration.two_bins(4096, minority=2048),
                                 adversary=adv, seed=0, max_rounds=500)
        assert res.reached_almost_stable
        assert res.meta["budget_ledger_ok"] is True

    def test_ledger_never_exceeds_budget(self):
        for adv in (BalancingAdversary(budget=5),
                    SwitchingAdversary(budget=5),
                    RandomCorruptionAdversary(budget=5),
                    TargetedMedianAdversary(budget=5),
                    RevivingAdversary(budget=5, delay=3)):
            res = simulate_occupancy(Configuration.two_bins(512, minority=256),
                                     adversary=adv, seed=1, max_rounds=120,
                                     run_to_horizon=True)
            assert res.meta["budget_ledger_ok"] is True, type(adv).__name__
            assert adv.ledger.max_in_round() <= 5, type(adv).__name__

    def test_after_sampling_timing(self):
        adv = BalancingAdversary(budget=4, timing=AdversaryTiming.AFTER_SAMPLING)
        res = simulate_occupancy(Configuration.two_bins(1024, minority=512),
                                 adversary=adv, seed=2, max_rounds=400)
        assert res.reached_almost_stable

    def test_reviving_adversary_reintroduces_extinct_value(self):
        # start at consensus on 1 but let the adversary write value 0 after
        # the round's sampling, so the write is visible in that round's record
        st = OccupancyState.from_loads({1: 500})
        adv = RevivingAdversary(budget=3, delay=0, target_value=0,
                                timing=AdversaryTiming.AFTER_SAMPLING)
        res = simulate_occupancy(st, adversary=adv, seed=3, max_rounds=30,
                                 run_to_horizon=True,
                                 admissible_values=np.array([0, 1]))
        minorities = res.trajectory.minority_series()
        assert minorities.max() > 0       # value 0 shows up in the occupancy
        assert adv.ledger.total > 0       # and the writes were ledgered

    def test_custom_identity_tracking_adversary_rejected(self):
        # shipped strategies all have count-space forms now; a *custom*
        # adversary without propose_counts must still fail fast
        from repro.adversary.base import Adversary, Corruption

        class IdentityOnly(Adversary):
            def propose(self, values, round_index, admissible_values, rng):
                return Corruption.empty()

        with pytest.raises(NotImplementedError, match="identities"):
            simulate_occupancy(Configuration.two_bins(128, minority=64),
                               adversary=IdentityOnly(budget=3), seed=4,
                               max_rounds=50)

    def test_sticky_adversary_runs_via_victim_occupancy(self):
        adv = StickyAdversary(budget=3, pinned_value=1)
        res = simulate_occupancy(Configuration.two_bins(128, minority=64),
                                 adversary=adv, seed=4, max_rounds=400)
        assert res.reached_almost_stable
        assert res.meta["budget_ledger_ok"] is True
        # every round rewrites all min(T, n) victims, exactly like the
        # vectorized enforcement ledger
        assert adv.ledger.total == 3 * res.rounds_executed

    def test_sticky_pins_a_minority_forever(self):
        # with AFTER_SAMPLING timing the re-pinned victims are visible in
        # every recorded round, so the round-boundary minority can never
        # drop below the pinned reservoir
        from repro.engine.trajectory import RecordLevel

        adv = StickyAdversary(budget=5, pinned_value=0,
                              timing=AdversaryTiming.AFTER_SAMPLING)
        res = simulate_occupancy(Configuration.two_bins(200, minority=20),
                                 adversary=adv, seed=6, max_rounds=40,
                                 run_to_horizon=True,
                                 record=RecordLevel.METRICS)
        minorities = res.trajectory.minority_series()
        assert np.all(minorities[1:] >= 5)
        assert res.meta["budget_ledger_ok"] is True

    def test_hiding_victim_occupancy_stays_in_sync(self):
        from repro.adversary.strategies import HidingAdversary

        adv = HidingAdversary(budget=4)
        res = simulate_occupancy(Configuration.two_bins(256, minority=128),
                                 adversary=adv, seed=7, max_rounds=200)
        assert res.reached_almost_stable
        # the tracked victim occupancy is a real subpopulation: non-negative
        # and totalling the budget on the run's support
        vic = adv.victim_counts(np.arange(2))
        assert vic is not None and np.all(vic >= 0) and int(vic.sum()) == 4

    def test_corrupt_counts_conserves_population(self):
        adv = BalancingAdversary(budget=10)
        adv.reset()
        rng = np.random.default_rng(0)
        support = np.array([0, 1, 2], dtype=np.int64)
        counts = np.array([70, 20, 10], dtype=np.int64)
        out = adv.corrupt_counts(support, counts, 1, support, rng)
        assert int(out.sum()) == 100
        assert np.all(out >= 0)
        # moved mass from the leader towards the runner-up, within budget
        assert out[0] >= 60 and counts[0] - out[0] <= 10

    def test_custom_criterion_respected(self):
        adv = BalancingAdversary(budget=2)
        crit = AlmostStableCriterion(tolerance=2, window=5)
        res = simulate_occupancy(Configuration.two_bins(256, minority=128),
                                 adversary=adv, criterion=crit, seed=5,
                                 max_rounds=300)
        assert res.criterion is crit

    def test_null_adversary_supports_counts(self):
        from repro.adversary.base import Adversary, Corruption
        from repro.adversary.strategies import HidingAdversary

        assert NullAdversary().supports_counts
        assert BalancingAdversary(budget=3).supports_counts
        # identity-tracking strategies support counts via victim occupancy
        assert StickyAdversary(budget=3).supports_counts
        assert HidingAdversary(budget=3).supports_counts

        class IdentityOnly(Adversary):
            def propose(self, values, round_index, admissible_values, rng):
                return Corruption.empty()

        assert not IdentityOnly(budget=3).supports_counts
