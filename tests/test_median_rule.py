"""Tests for repro.core.median_rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.median_rule import (
    BestOfKMedianRule,
    MedianRule,
    MedianRuleWithoutReplacement,
    median_of_three,
    median_of_three_scalar,
)


class TestMedianOfThree:
    @pytest.mark.parametrize("a,b,c,expected", [
        (10, 12, 100, 12),      # the paper's example
        (1, 2, 3, 2),
        (3, 2, 1, 2),
        (5, 5, 5, 5),
        (5, 5, 1, 5),
        (1, 5, 5, 5),
        (7, 1, 7, 7),
        (-3, 0, 3, 0),
        (-10, -20, -30, -20),
    ])
    def test_scalar_cases(self, a, b, c, expected):
        assert median_of_three_scalar(a, b, c) == expected

    def test_vector_matches_scalar(self, rng):
        a = rng.integers(-50, 50, size=200)
        b = rng.integers(-50, 50, size=200)
        c = rng.integers(-50, 50, size=200)
        vec = median_of_three(a, b, c)
        for i in range(200):
            assert vec[i] == median_of_three_scalar(int(a[i]), int(b[i]), int(c[i]))

    def test_vector_matches_numpy_median(self, rng):
        a = rng.integers(0, 100, size=500)
        b = rng.integers(0, 100, size=500)
        c = rng.integers(0, 100, size=500)
        expected = np.median(np.stack([a, b, c]), axis=0).astype(np.int64)
        assert np.array_equal(median_of_three(a, b, c), expected)

    def test_symmetric_in_all_arguments(self, rng):
        a = rng.integers(0, 10, size=50)
        b = rng.integers(0, 10, size=50)
        c = rng.integers(0, 10, size=50)
        ref = median_of_three(a, b, c)
        assert np.array_equal(ref, median_of_three(b, a, c))
        assert np.array_equal(ref, median_of_three(c, b, a))
        assert np.array_equal(ref, median_of_three(b, c, a))


class TestMedianRule:
    def test_registry_name(self):
        assert MedianRule.name == "median"
        assert MedianRule().num_choices == 2
        assert MedianRule().preserves_values is True

    def test_apply_vectorized_matches_definition(self, rng):
        rule = MedianRule()
        values = rng.integers(0, 20, size=100)
        samples = rng.integers(0, 100, size=(100, 2))
        out = rule.apply_vectorized(values, samples, rng)
        for j in range(100):
            expected = sorted([values[j], values[samples[j, 0]], values[samples[j, 1]]])[1]
            assert out[j] == expected

    def test_apply_single_matches_vectorized(self, rng):
        rule = MedianRule()
        assert rule.apply_single(10, [12, 100], rng) == 12

    def test_apply_single_wrong_arity(self, rng):
        with pytest.raises(ValueError):
            MedianRule().apply_single(1, [2], rng)

    def test_output_is_new_array(self, rng):
        rule = MedianRule()
        values = rng.integers(0, 5, size=50)
        samples = rng.integers(0, 50, size=(50, 2))
        out = rule.apply_vectorized(values, samples, rng)
        assert out is not values

    def test_output_values_subset_of_input(self, rng):
        rule = MedianRule()
        values = rng.integers(0, 7, size=200)
        for _ in range(10):
            values = rule.step(values, rng)
            assert set(np.unique(values)) <= set(range(7))

    def test_consensus_is_fixed_point(self, rng):
        rule = MedianRule()
        values = np.full(64, 3, dtype=np.int64)
        out = rule.step(values, rng)
        assert np.all(out == 3)

    def test_sample_contacts_shape_and_range(self, rng):
        samples = MedianRule().sample_contacts(37, rng)
        assert samples.shape == (37, 2)
        assert samples.min() >= 0 and samples.max() < 37

    def test_validate_samples_rejects_bad_shape(self, rng):
        rule = MedianRule()
        with pytest.raises(ValueError):
            rule.apply_vectorized(np.zeros(5, dtype=np.int64),
                                  np.zeros((5, 3), dtype=np.int64), rng)

    def test_validate_samples_rejects_out_of_range(self, rng):
        rule = MedianRule()
        samples = np.array([[0, 5]], dtype=np.int64)
        with pytest.raises(ValueError):
            rule.apply_vectorized(np.zeros(1, dtype=np.int64), samples, rng)

    def test_reaches_consensus_small(self, rng):
        rule = MedianRule()
        values = np.arange(50, dtype=np.int64)
        for _ in range(400):
            values = rule.step(values, rng)
            if np.all(values == values[0]):
                break
        assert np.all(values == values[0])


class TestMedianRuleWithoutReplacement:
    def test_excludes_self(self, rng):
        rule = MedianRuleWithoutReplacement()
        samples = rule.sample_contacts(50, rng)
        own = np.arange(50)[:, None]
        assert not np.any(samples == own)

    def test_two_choices_distinct(self, rng):
        rule = MedianRuleWithoutReplacement()
        samples = rule.sample_contacts(50, rng)
        assert not np.any(samples[:, 0] == samples[:, 1])

    def test_small_n_falls_back(self, rng):
        rule = MedianRuleWithoutReplacement()
        samples = rule.sample_contacts(2, rng)
        assert samples.shape == (2, 2)
        assert samples.max() < 2

    def test_uniform_marginals(self):
        # each other process should be chosen by the first slot ~uniformly
        rng = np.random.default_rng(7)
        rule = MedianRuleWithoutReplacement()
        n = 10
        counts = np.zeros(n)
        for _ in range(2000):
            samples = rule.sample_contacts(n, rng)
            counts += np.bincount(samples[:, 0], minlength=n)
        # every process chosen n*2000/n... first slot total picks = n*2000;
        # uniformity over the other n-1 targets per chooser
        assert counts.std() / counts.mean() < 0.05


class TestBestOfKMedianRule:
    def test_k2_matches_median_rule(self, rng):
        values = rng.integers(0, 30, size=80)
        samples = rng.integers(0, 80, size=(80, 2))
        a = MedianRule().apply_vectorized(values, samples, rng)
        b = BestOfKMedianRule(k=2).apply_vectorized(values, samples, rng)
        assert np.array_equal(a, b)

    def test_k_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BestOfKMedianRule(k=0)

    def test_output_among_inputs(self, rng):
        rule = BestOfKMedianRule(k=4)
        values = rng.integers(0, 9, size=60)
        samples = rng.integers(0, 60, size=(60, 4))
        out = rule.apply_vectorized(values, samples, rng)
        for j in range(60):
            pool = {int(values[j])} | {int(values[s]) for s in samples[j]}
            assert int(out[j]) in pool

    def test_single_matches_vectorized(self, rng):
        rule = BestOfKMedianRule(k=3)
        values = np.array([5, 1, 9, 3, 7], dtype=np.int64)
        samples = np.array([[1, 2, 3]], dtype=np.int64)
        vec = rule.apply_vectorized(values[:1].repeat(1), None, rng) if False else None
        out_single = rule.apply_single(5, [1, 9, 3], rng)
        # lower median of [1,3,5,9] is 3
        assert out_single == 3

    def test_larger_k_converges_faster_on_average(self):
        # more choices → stronger drift; compare mean consensus times
        rng = np.random.default_rng(11)

        def consensus_time(rule, seed):
            r = np.random.default_rng(seed)
            values = np.arange(100, dtype=np.int64)
            for t in range(1, 500):
                values = rule.step(values, r)
                if np.all(values == values[0]):
                    return t
            return 500

        t2 = np.mean([consensus_time(BestOfKMedianRule(k=2), s) for s in range(8)])
        t6 = np.mean([consensus_time(BestOfKMedianRule(k=6), s) for s in range(8)])
        assert t6 <= t2
