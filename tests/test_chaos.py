"""Chaos certification: fault injection, retry policy, degradation ladder.

The randomized trials (:class:`TestRandomizedChaos`) drive real sharded
sweeps through ``tests/chaos.py`` under seed-derived fault schedules; the
remaining classes pin each robustness mechanism individually — fault-plan
plumbing, retry/backoff policy, read-time integrity quarantine, torn-log
tolerance, budgeted failure-marker retries, and every rung of the
shard→pool→serial degradation ladder.
"""

from __future__ import annotations

import json

import pytest

from chaos import (
    CHAOS_RETRY,
    assert_chaos_invariants,
    chaos_sweep,
    clean_reference,
    run_chaos_trial,
)
from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.robustness import (
    DegradedExecutionWarning,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryExhausted,
    RetryPolicy,
    StoreIntegrityWarning,
    TornLogWarning,
    activate,
    active_plan,
    call_with_retry,
    classify_error,
    deactivate,
    fault_point,
    maybe_torn,
    read_fault_journal,
)
from repro.robustness import faults as faults_mod
from repro.store import (
    CachedSweepRunner,
    LeaseManager,
    ResultStore,
    ShardBackend,
    ShardWorker,
    failed_markers,
    read_execution_log,
)


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Every test leaves the process with no plan armed and no env handoff."""
    yield
    deactivate()


def _solo_sweep() -> SweepConfig:
    sweep = SweepConfig(name="solo", description="one-cell chaos probe")
    sweep.add(ExperimentConfig(name="solo", workload="all-distinct",
                               workload_params={"n": 32}, num_runs=2, seed=7))
    return sweep


# ---------------------------------------------------------------------- #
# fault-plan plumbing
# ---------------------------------------------------------------------- #
class TestFaultPlan:
    def test_random_plans_are_seed_deterministic(self):
        assert FaultPlan.random(7).to_json() == FaultPlan.random(7).to_json()
        assert FaultPlan.random(7).to_json() != FaultPlan.random(8).to_json()

    def test_random_plans_stay_inside_chaos_envelope(self):
        for seed in range(50):
            plan = FaultPlan.random(seed)
            assert 2 <= len(plan.specs) <= 4
            shapes = [s.shape for s in plan.specs]
            assert shapes.count("stale-clock") <= 1
            assert shapes.count("kill-worker") <= 1
            for spec in plan.specs:
                assert spec.shape in FaultPlan.CHAOS_SEAMS[spec.seam]
                assert 1 <= spec.times <= 2

    def test_json_roundtrip_and_file_load(self, tmp_path):
        plan = FaultPlan(specs=[FaultSpec("lease.acquire", "raise", times=2)],
                         seed=3, journal=str(tmp_path / "j.jsonl"))
        assert FaultPlan.load(plan.to_json()).specs == plan.specs
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.load(path).specs == plan.specs

    def test_unknown_seam_or_shape_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("no.such.seam", "raise")
        with pytest.raises(ValueError):
            FaultSpec("lease.acquire", "no-such-shape")

    def test_unarmed_seams_are_noops(self):
        deactivate()
        assert active_plan() is None
        assert fault_point("worker.compute") is None
        assert maybe_torn("store.payload_write", "payload") == "payload"

    def test_times_budget_then_heal(self):
        plan = FaultPlan(specs=[FaultSpec("worker.compute", "raise", times=2)])
        activate(plan, export_env=False)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                fault_point("worker.compute")
        assert fault_point("worker.compute") is None   # healed

    def test_worker_only_skip_does_not_consume_budget(self, monkeypatch):
        plan = FaultPlan(specs=[
            FaultSpec("worker.compute", "raise", worker_only=True)])
        injector = activate(plan, export_env=False)
        assert fault_point("worker.compute") is None   # coordinator: skipped
        assert injector.fired_counts() == [0]
        monkeypatch.setattr(faults_mod, "_IS_WORKER", True)
        with pytest.raises(InjectedFault):
            fault_point("worker.compute")              # worker: fires

    def test_env_handoff_arms_fresh_process_state(self, monkeypatch):
        plan = FaultPlan(specs=[FaultSpec("lease.acquire", "raise")], seed=9)
        activate(plan)   # exports REPRO_FAULT_PLAN
        # simulate a spawned child: unresolved module state + inherited env
        monkeypatch.setattr(faults_mod, "_INJECTOR", faults_mod._UNRESOLVED)
        resolved = active_plan()
        assert resolved is not None and resolved.seed == 9

    def test_malformed_env_plan_is_ignored_with_warning(self, monkeypatch):
        monkeypatch.setenv(faults_mod.ENV_VAR, "{not json")
        monkeypatch.setattr(faults_mod, "_INJECTOR", faults_mod._UNRESOLVED)
        with pytest.warns(UserWarning, match="malformed"):
            assert active_plan() is None

    def test_journal_records_firings(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        plan = FaultPlan(specs=[FaultSpec("lease.reclaim", "delay",
                                          delay_s=0.0)],
                         journal=str(journal))
        activate(plan, export_env=False)
        fault_point("lease.reclaim", key="k1")
        records = read_fault_journal(journal)
        assert [r["seam"] for r in records] == ["lease.reclaim"]
        assert records[0]["ctx"] == {"key": "k1"}


# ---------------------------------------------------------------------- #
# retry policy
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_classification(self):
        assert classify_error("KeyError: 'no-such-rule'") == "permanent"
        assert classify_error(ValueError("bad shape")) == "permanent"
        assert classify_error("OSError: disk on fire") == "transient"
        assert classify_error(InjectedFault("lease.acquire")) == "transient"
        # a transient error *mentioning* a permanent type stays transient
        assert classify_error("OSError: ValueError inside") == "transient"

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.4)
        for attempt in (1, 2, 3, 4):
            a = policy.backoff_s(attempt, token="cell-a")
            assert a == policy.backoff_s(attempt, token="cell-a")
            assert 0.0 <= a <= 0.4 * (1.0 + policy.jitter)
        # jitter decorrelates cells at the same attempt number
        assert policy.backoff_s(2, token="cell-a") != \
            policy.backoff_s(2, token="cell-b")

    def test_call_with_retry_heals_transient(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient hiccup")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        assert call_with_retry(flaky, policy, label="flaky") == "ok"
        assert len(calls) == 3

    def test_call_with_retry_permanent_raises_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("deterministic bug")

        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        with pytest.raises(ValueError):
            call_with_retry(broken, policy)
        assert len(calls) == 1

    def test_call_with_retry_exhaustion_counts_prior_attempts(self):
        def always_down():
            raise OSError("still down")

        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0, jitter=0.0)
        with pytest.raises(RetryExhausted) as exc_info:
            call_with_retry(always_down, policy, label="cell",
                            prior_attempts=2)
        assert exc_info.value.attempts == 4
        assert "OSError" in exc_info.value.error

    def test_default_policy_is_historical_no_retry(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


# ---------------------------------------------------------------------- #
# read-time integrity verification
# ---------------------------------------------------------------------- #
class TestReadTimeIntegrity:
    def _cold_run(self, root, **store_kwargs):
        store = ResultStore(root / "store", **store_kwargs)
        runner = CachedSweepRunner(store, backend="serial")
        return store, runner, runner.run(_solo_sweep())

    def test_torn_payload_write_is_quarantined_and_recomputed(self, tmp_path):
        activate(FaultPlan(specs=[
            FaultSpec("store.payload_write", "torn-write")]),
            export_env=False)
        store, runner, cold = self._cold_run(tmp_path)
        deactivate()
        with pytest.warns(StoreIntegrityWarning):
            warm = CachedSweepRunner(store, backend="serial").run(_solo_sweep())
        assert warm == cold
        assert list(store.quarantine_dir.glob("*.json"))
        assert store.get(store.key_for(_solo_sweep().cells[0])) is not None

    def test_torn_sidecar_write_is_quarantined_and_recomputed(self, tmp_path):
        activate(FaultPlan(specs=[
            FaultSpec("store.sidecar_write", "torn-write")]),
            export_env=False)
        store, runner, cold = self._cold_run(tmp_path, rounds_sidecar_at=1)
        deactivate()
        with pytest.warns(StoreIntegrityWarning):
            warm = CachedSweepRunner(store, backend="serial").run(_solo_sweep())
        assert warm == cold
        record = store.get(store.key_for(_solo_sweep().cells[0]))
        assert record is not None and record.result.rounds


# ---------------------------------------------------------------------- #
# torn-log tolerance
# ---------------------------------------------------------------------- #
class TestTornLogs:
    def test_read_execution_log_skips_torn_lines(self, tmp_path):
        log = tmp_path / "shard" / "executions.jsonl"
        log.parent.mkdir(parents=True)
        good = json.dumps({"key": "k1", "cell": "a", "attempts": 1})
        torn = json.dumps({"key": "k2", "cell": "b"})[:11]   # no newline
        glued = json.dumps({"key": "k3", "cell": "c", "attempts": 1})
        log.write_text(good + "\n" + torn + glued + "\n" + good + "\n")
        with pytest.warns(TornLogWarning, match="1 undecodable"):
            records = read_execution_log(tmp_path)
        assert [r["key"] for r in records] == ["k1", "k1"]

    def test_injected_torn_append_undercounts_not_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        activate(FaultPlan(specs=[
            FaultSpec("shard.log_append", "torn-write")]), export_env=False)
        ShardWorker(store).run(chaos_sweep())
        deactivate()
        with pytest.warns(TornLogWarning):
            records = read_execution_log(store.root)
        # the torn line (glued onto its successor) is skipped, the rest read
        assert 0 < len(records) < len(chaos_sweep().cells)
        assert len(store) == len(chaos_sweep().cells)   # payloads unaffected


# ---------------------------------------------------------------------- #
# budgeted failure-marker retries
# ---------------------------------------------------------------------- #
class TestFailureMarkerBudget:
    def test_exhausted_marker_retried_by_worker_with_budget(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sweep = _solo_sweep()
        activate(FaultPlan(specs=[
            FaultSpec("worker.compute", "raise", times=3)]), export_env=False)

        fast = RetryPolicy(max_attempts=2, base_delay_s=0.001, jitter=0.0)
        first = ShardWorker(store, worker="w1", retry=fast).run(sweep)
        assert first[0].extra.get("failed")
        assert first[0].extra["attempts"] == 2
        assert first[0].extra["kind"] == "transient-exhausted"
        markers = failed_markers(store.root)
        assert len(markers) == 1 and markers[0]["attempts"] == 2
        assert markers[0]["kind"] == "transient-exhausted"

        # a later worker ("restart") with more budget inherits the 2 spent
        # attempts: attempt 3 still faults, attempt 4 heals and succeeds
        wide = RetryPolicy(max_attempts=4, base_delay_s=0.001, jitter=0.0)
        second = ShardWorker(store, worker="w2", retry=wide).run(sweep)
        deactivate()
        assert not second[0].extra.get("failed")
        assert failed_markers(store.root) == []
        log = read_execution_log(store.root)
        assert len(log) == 1 and log[0]["attempts"] == 4

    def test_permanent_marker_never_retried(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sweep = SweepConfig(name="poison", description="deterministic bug")
        sweep.add(ExperimentConfig(name="bad", workload="all-distinct",
                                   workload_params={"n": 32}, num_runs=2,
                                   seed=7, rule="no-such-rule"))
        wide = RetryPolicy(max_attempts=5, base_delay_s=0.001, jitter=0.0)
        result = ShardWorker(store, retry=wide).run(sweep)[0]
        assert result.extra["kind"] == "permanent"
        assert result.extra["attempts"] == 1   # budget not burned on a bug
        again = ShardWorker(store, retry=wide).run(sweep)[0]
        assert again.extra["attempts"] == 1

    def test_store_info_surfaces_attempt_counts(self, tmp_path, capsys):
        from repro.cli import main

        store = ResultStore(tmp_path / "store")
        LeaseManager(store.root, worker="w").mark_failed(
            "deadbeef", "n=64", "OSError: flaky disk", attempts=3,
            kind="transient-exhausted")
        assert main(["store", "info", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "failed_cells" in out
        assert "3 attempt(s)" in out and "transient-exhausted" in out


# ---------------------------------------------------------------------- #
# degradation ladder
# ---------------------------------------------------------------------- #
class TestDegradationLadder:
    def test_shard_degrades_to_pool_without_lease_infra(self, tmp_path):
        clean = clean_reference(tmp_path)
        store = ResultStore(tmp_path / "store")
        (store.root / "shard").write_text("not a directory")   # mkdir fails
        runner = CachedSweepRunner(store, backend=ShardBackend(workers=0))
        with pytest.warns(DegradedExecutionWarning, match="lease"):
            report = runner.run(chaos_sweep())
        assert report == clean
        assert len(store) == len(chaos_sweep().cells)   # pool still persisted

    def test_pool_degrades_to_serial_when_spawn_fails(self, tmp_path):
        clean = clean_reference(tmp_path)
        store = ResultStore(tmp_path / "store")
        activate(FaultPlan(specs=[FaultSpec("subprocess.spawn", "raise")]),
                 export_env=False)
        runner = CachedSweepRunner(store, backend="pool", max_workers=2)
        with pytest.warns(DegradedExecutionWarning, match="serial"):
            report = runner.run(chaos_sweep())
        deactivate()
        assert report == clean
        assert len(store) == len(chaos_sweep().cells)

    def test_unwritable_store_returns_results_unpersisted(self, tmp_path,
                                                          monkeypatch):
        clean = clean_reference(tmp_path)
        store = ResultStore(tmp_path / "store")

        def refuse(*args, **kwargs):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(store, "put", refuse)
        runner = CachedSweepRunner(store, backend="serial")
        with pytest.warns(DegradedExecutionWarning, match="not persisted"):
            report = runner.run(chaos_sweep())
        assert report == clean
        assert runner.last_stats.executed == []
        assert len(store) == 0

    def test_kernel_compile_fault_degrades_to_numpy(self):
        from repro.engine import _multinomial as mnk

        mnk._reset_for_testing()
        activate(FaultPlan(specs=[
            FaultSpec("kernel.compile", "raise", times=10)]),
            export_env=False)
        try:
            with pytest.warns(mnk.MultinomialKernelWarning):
                info = mnk.resolve_multinomial_backend("cc")
            assert info.provider == "numpy" and info.requested == "cc"
            assert "injected fault" in info.detail
        finally:
            deactivate()
            mnk._reset_for_testing()


# ---------------------------------------------------------------------- #
# pool-backend SIGKILL certification (shard equivalent lives in test_shard)
# ---------------------------------------------------------------------- #
class TestPoolWorkerKill:
    def test_kill_pool_workers_mid_sweep_completes_serially(self, tmp_path):
        clean = clean_reference(tmp_path)
        journal = tmp_path / "journal.jsonl"
        plan = FaultPlan(specs=[FaultSpec("worker.compute", "kill-worker")],
                         journal=str(journal))
        store = ResultStore(tmp_path / "store")
        activate(plan)   # pool children inherit the armed plan
        try:
            runner = CachedSweepRunner(store, backend="pool", max_workers=2)
            with pytest.warns(DegradedExecutionWarning):
                report = runner.run(chaos_sweep())
        finally:
            deactivate()
        assert report == clean
        kills = [r for r in read_fault_journal(journal)
                 if r["shape"] == "kill-worker"]
        assert kills and all(r["worker"] for r in kills)
        # every cell persisted by the serial completion: warm run is all hits
        warm_runner = CachedSweepRunner(store, backend="serial")
        assert warm_runner.run(chaos_sweep()) == clean
        assert warm_runner.last_stats.misses == 0
        assert warm_runner.last_stats.hits == len(chaos_sweep().cells)


# ---------------------------------------------------------------------- #
# randomized chaos certification (the acceptance gate)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def chaos_clean(tmp_path_factory):
    return clean_reference(tmp_path_factory.mktemp("chaos-ref"))


class TestRandomizedChaos:
    @pytest.mark.parametrize("seed", range(21))
    def test_seeded_schedule_preserves_report(self, seed, tmp_path,
                                              chaos_clean):
        outcome = run_chaos_trial(tmp_path, seed, workers=2,
                                  clean=chaos_clean)
        assert_chaos_invariants(outcome, budget=CHAOS_RETRY)
