"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import Configuration


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_all_distinct() -> Configuration:
    """All-distinct configuration with 64 processes."""
    return Configuration.all_distinct(64)


@pytest.fixture
def small_two_bins() -> Configuration:
    """Balanced two-value configuration with 64 processes."""
    return Configuration.two_bins(64, minority=32)


@pytest.fixture
def medium_two_bins() -> Configuration:
    """Balanced two-value configuration with 512 processes."""
    return Configuration.two_bins(512, minority=256)
