"""Tests for repro.analysis.markov: the exact two-bin absorbing chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.markov import (
    TwoBinChain,
    absorption_probabilities,
    consensus_time_distribution,
    expected_absorption_time,
    two_bin_transition_matrix,
    verify_growth_condition,
)
from repro.engine.batch import run_batch
from repro.core.state import Configuration


class TestTransitionMatrix:
    def test_rows_are_distributions(self):
        P = two_bin_transition_matrix(20)
        assert P.shape == (21, 21)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0)

    def test_absorbing_states(self):
        P = two_bin_transition_matrix(15)
        assert P[0, 0] == 1.0
        assert P[15, 15] == 1.0

    def test_symmetry_under_relabelling(self):
        # the chain is symmetric: P[l, l'] == P[n-l, n-l']
        n = 12
        P = two_bin_transition_matrix(n)
        assert np.allclose(P[1:-1, :], P[::-1, ::-1][1:-1, :], atol=1e-12)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            two_bin_transition_matrix(0)


class TestAbsorption:
    def test_probabilities_sum_to_one(self):
        for l in (1, 5, 10, 19):
            p0, pn = absorption_probabilities(20, l)
            assert p0 + pn == pytest.approx(1.0)

    def test_boundary_states(self):
        assert absorption_probabilities(20, 0) == (1.0, 0.0)
        assert absorption_probabilities(20, 20) == (0.0, 1.0)

    def test_symmetric_start_is_fair(self):
        p0, pn = absorption_probabilities(20, 10)
        assert p0 == pytest.approx(0.5, abs=1e-9)

    def test_minority_usually_loses(self):
        p0, pn = absorption_probabilities(30, 5)
        assert p0 > 0.95            # the bin with 5 of 30 balls dies out w.h.p.

    def test_monotone_in_initial_load(self):
        n = 24
        probs = [absorption_probabilities(n, l)[1] for l in range(0, n + 1, 4)]
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            absorption_probabilities(10, 11)


class TestAbsorptionTimes:
    def test_zero_from_absorbing_states(self):
        assert expected_absorption_time(20, 0) == 0.0
        assert expected_absorption_time(20, 20) == 0.0

    def test_positive_from_transient(self):
        assert expected_absorption_time(20, 10) > 1.0

    def test_balanced_start_is_slowest(self):
        n = 20
        times = [expected_absorption_time(n, l) for l in range(1, n)]
        assert int(np.argmax(times)) + 1 in (n // 2, n // 2 + 1, n // 2 - 1)

    def test_logarithmic_growth_with_n(self):
        # E[T] from the balanced state grows slowly (like log n), far below linear
        t16 = expected_absorption_time(16, 8)
        t64 = expected_absorption_time(64, 32)
        assert t64 < 4 * t16          # quadrupling n far less than quadruples time
        assert t64 > t16              # but it does grow

    def test_matches_monte_carlo(self):
        n, start = 30, 15
        exact = expected_absorption_time(n, start)
        batch = run_batch(Configuration.two_bins(n, minority=start), num_runs=300,
                          seed=5, max_rounds=500)
        assert batch.convergence_fraction == 1.0
        assert batch.mean_rounds == pytest.approx(exact, rel=0.15)


class TestConsensusTimeDistribution:
    def test_monotone_cdf(self):
        cdf = consensus_time_distribution(20, 10, horizon=60)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] == 0.0
        assert cdf[-1] > 0.9

    def test_starts_at_one_for_absorbing_start(self):
        cdf = consensus_time_distribution(20, 0, horizon=5)
        assert cdf[0] == pytest.approx(1.0)

    def test_median_time_consistent_with_expectation(self):
        n, start = 24, 12
        cdf = consensus_time_distribution(n, start, horizon=200)
        median_time = int(np.searchsorted(cdf, 0.5))
        expected = expected_absorption_time(n, start)
        assert 0.3 * expected <= median_time <= 2.5 * expected


class TestTwoBinChainWrapper:
    def test_fundamental_matrix_positive(self):
        chain = TwoBinChain.build(12)
        N = chain.fundamental_matrix()
        assert np.all(N >= -1e-12)

    def test_step_distribution_preserves_mass(self):
        chain = TwoBinChain.build(12)
        dist = np.zeros(13)
        dist[6] = 1.0
        out = chain.step_distribution(dist)
        assert out.sum() == pytest.approx(1.0)

    def test_step_distribution_shape_check(self):
        chain = TwoBinChain.build(12)
        with pytest.raises(ValueError):
            chain.step_distribution(np.zeros(5))


class TestGrowthCondition:
    def test_drift_region_has_positive_c2(self):
        # Lemma 8/9 premise: in the drift region sqrt(n) <= Delta <= n/4 the
        # imbalance grows by a factor c1 > 1 with failure probability
        # exp(-c2*Delta) for a uniformly positive c2.  (Closer to saturation
        # the growth target collides with the absorbing boundary, so the
        # region is capped at n/4 as in the paper's case analysis.)
        n = 144
        records = verify_growth_condition(n, c1=1.1)
        drift_region = {l: r for l, r in records.items()
                        if np.sqrt(n) <= r["delta"] <= n / 4}
        assert drift_region, "no states in the drift region for this n"
        assert all(r["implied_c2"] > 0.05 for r in drift_region.values())

    def test_growth_probability_high_in_drift_region(self):
        n = 144
        records = verify_growth_condition(n, c1=1.1)
        region = [r for r in records.values() if np.sqrt(n) <= r["delta"] <= n / 4]
        assert region and all(r["prob_grow"] > 0.75 for r in region)
