"""Tests for repro.analysis.drift (Lemmas 11/12/15) and repro.analysis.clt (Lemma 14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.clt import (
    gaussian_tail_bounds,
    imbalance_std_after_balanced_round,
    lemma14_asymptotic_probability,
    lemma14_lower_bound,
    simulate_balanced_round_imbalance,
)
from repro.analysis.drift import (
    expected_imbalance_next,
    expected_minority_next,
    lemma11_quadratic_bound,
    lemma12_contraction_factor,
    lemma15_growth_factor,
    measure_empirical_drift,
    measure_empirical_occupancy_drift,
    occupancy_expected_counts,
    occupancy_expected_drift,
)


class TestExpectedMinority:
    def test_closed_form_of_lemma12(self):
        # E[X_{t+1}] = (1/2 - (3/2) delta + 2 delta^3) n
        n = 1200
        for minority in (100, 300, 500):
            delta = (n / 2 - minority) / n
            expected = (0.5 - 1.5 * delta + 2 * delta**3) * n
            assert expected_minority_next(n, minority) == pytest.approx(expected, rel=1e-9)

    def test_balanced_state_is_unbiased(self):
        n = 1000
        assert expected_minority_next(n, n // 2) == pytest.approx(n / 2)

    def test_empty_minority_stays_empty(self):
        assert expected_minority_next(500, 0) == pytest.approx(0.0)

    def test_expected_minority_decreases_below_balance(self):
        n = 1000
        for minority in (100, 200, 300, 450):
            assert expected_minority_next(n, minority) < minority


class TestLemma12Contraction:
    def test_bound_holds_in_lemma_regime(self):
        # E[X_{t+1}] <= (1 - delta/2) X_t for delta < 1/3
        n = 3000
        for minority in (1100, 1300, 1450):
            delta = (n / 2 - minority) / n
            assert delta < 1 / 3
            assert lemma12_contraction_factor(n, minority) <= 1 - delta / 2 + 1e-9

    def test_factor_less_than_one_whenever_unbalanced(self):
        n = 2000
        for minority in (200, 600, 900, 999):
            assert lemma12_contraction_factor(n, minority) < 1.0

    def test_invalid_minority(self):
        with pytest.raises(ValueError):
            lemma12_contraction_factor(100, 0)


class TestLemma11Quadratic:
    def test_bound_dominates_exact_expectation_below_quarter(self):
        n = 4000
        for minority in (50, 200, 500, 1000):
            assert expected_minority_next(n, minority) <= lemma11_quadratic_bound(n, minority) + 1e-9

    def test_quadratic_shape(self):
        assert lemma11_quadratic_bound(1000, 100) == pytest.approx(30.0)


class TestLemma15Growth:
    def test_growth_factor_matches_exact_formula(self):
        # E[Delta_{t+1}] = (3/2 - 2 delta^2) Delta_t  (Lemma 15 quotes the 3/2 part)
        n = 6000
        for imbalance in (10, 100, 500, n / 6):
            delta = imbalance / n
            assert lemma15_growth_factor(n, imbalance) == pytest.approx(1.5 - 2 * delta**2)

    def test_growth_factor_close_to_three_halves_in_regime(self):
        n = 6000
        for imbalance in (10, 100, 500, n / 6):
            assert lemma15_growth_factor(n, imbalance) >= 1.4

    def test_growth_factor_shrinks_near_saturation(self):
        n = 6000
        assert lemma15_growth_factor(n, 0.45 * n) < 1.5

    def test_expected_imbalance_consistency(self):
        # expected_imbalance_next and expected_minority_next describe the same round
        n = 2000
        minority = 700
        imbalance = n / 2 - minority
        assert expected_imbalance_next(n, imbalance) == pytest.approx(
            n / 2 - expected_minority_next(n, minority), rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lemma15_growth_factor(100, 0)
        with pytest.raises(ValueError):
            expected_imbalance_next(100, 60)


class TestEmpiricalDrift:
    def test_matches_prediction(self):
        rng = np.random.default_rng(0)
        obs = measure_empirical_drift(n=800, minority=250, samples=300, rng=rng)
        assert obs.relative_error < 0.02

    def test_fields(self):
        rng = np.random.default_rng(1)
        obs = measure_empirical_drift(n=200, minority=50, samples=50, rng=rng)
        assert obs.n == 200 and obs.minority_before == 50 and obs.samples == 50

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            measure_empirical_drift(100, 30, 0, np.random.default_rng(0))


class TestOccupancyExpectedDrift:
    """Exact E[c'|c] = cᵀQ from the O(m²) transition matrix — the finite-n
    refinement of the mean-field cdf_map, for every occupancy-kernel rule."""

    def test_two_bin_median_reduces_to_closed_form(self):
        from repro.core.median_rule import MedianRule

        n, minority = 500, 180
        expected = occupancy_expected_counts(
            MedianRule(), np.array([minority, n - minority]))
        assert expected[0] == pytest.approx(expected_minority_next(n, minority))
        assert expected.sum() == pytest.approx(n)

    def test_refines_mean_field_cdf_map(self):
        from repro.analysis.meanfield import cdf_map
        from repro.core.median_rule import MedianRule

        counts = np.array([100, 250, 150, 80])
        n = counts.sum()
        lhs = np.cumsum(occupancy_expected_counts(MedianRule(), counts)) / n
        np.testing.assert_allclose(lhs, cdf_map(np.cumsum(counts) / n),
                                   atol=1e-12)

    def test_drift_conserves_population(self):
        from repro.core.rules import get_rule

        counts = np.array([60, 0, 25, 15])
        for name in ("median", "voter", "minimum", "maximum",
                     "three-majority", "two-choices-majority"):
            drift = occupancy_expected_drift(get_rule(name), counts)
            assert drift.sum() == pytest.approx(0.0, abs=1e-9), name

    @pytest.mark.parametrize("rule_name", ["median", "three-majority",
                                           "two-choices-majority"])
    def test_matches_monte_carlo_within_clt_bounds(self, rule_name):
        from repro.core.rules import get_rule

        counts = np.array([100, 250, 150])
        obs = measure_empirical_occupancy_drift(
            get_rule(rule_name), counts, samples=4000,
            rng=np.random.default_rng(42))
        z = np.abs(obs["mean"] - obs["predicted"]) / np.maximum(
            obs["standard_error"], 1e-9)
        assert float(z.max()) <= 6.0, f"{rule_name}: max z = {z.max():.2f}"
        np.testing.assert_allclose(obs["predicted"].sum(), counts.sum())

    def test_invalid_samples(self):
        from repro.core.median_rule import MedianRule

        with pytest.raises(ValueError):
            measure_empirical_occupancy_drift(
                MedianRule(), np.array([5, 5]), 0, np.random.default_rng(0))


class TestLemma14CLT:
    def test_std_formula(self):
        assert imbalance_std_after_balanced_round(1600) == pytest.approx(np.sqrt(300.0))

    def test_gaussian_sandwich_order(self):
        for x in (0.0, 0.5, 1.0, 2.0, 4.0):
            lo, hi = gaussian_tail_bounds(x)
            assert lo <= hi
            from scipy.stats import norm
            assert lo <= 1 - norm.cdf(x) <= hi + 1e-12

    def test_lower_bound_below_asymptotic_probability(self):
        for c in (0.1, 0.5, 1.0, 2.0):
            assert lemma14_lower_bound(c) <= lemma14_asymptotic_probability(c) + 1e-12

    def test_epsilon_subtracted(self):
        assert lemma14_lower_bound(0.5, epsilon=1.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lemma14_lower_bound(-1)
        with pytest.raises(ValueError):
            gaussian_tail_bounds(-0.1)
        with pytest.raises(ValueError):
            imbalance_std_after_balanced_round(0)

    def test_simulated_imbalance_matches_normal_approximation(self):
        rng = np.random.default_rng(2)
        samples = 3000
        with pytest.raises(ValueError):
            simulate_balanced_round_imbalance(901, samples, rng)   # odd n rejected
        n = 1000
        psi = simulate_balanced_round_imbalance(n, samples, rng)
        assert abs(psi.mean()) < 1.5
        assert psi.std() == pytest.approx(imbalance_std_after_balanced_round(n), rel=0.06)

    def test_lemma14_bound_holds_empirically(self):
        rng = np.random.default_rng(3)
        n, samples = 1024, 4000
        psi = simulate_balanced_round_imbalance(n, samples, rng)
        for c in (0.25, 0.5, 1.0):
            freq = np.mean(psi >= c * np.sqrt(n))
            assert freq >= lemma14_lower_bound(c) - 0.03
