"""Tests for repro.engine.vectorized.simulate and its stop rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.base import AdversaryTiming
from repro.adversary.strategies import BalancingAdversary, StickyAdversary
from repro.core.baseline_rules import MinimumRule
from repro.core.consensus import AlmostStableCriterion
from repro.core.median_rule import MedianRule
from repro.core.state import Configuration
from repro.engine.trajectory import RecordLevel
from repro.engine.vectorized import default_max_rounds, simulate


class TestDefaults:
    def test_default_max_rounds_scales_with_log(self):
        assert default_max_rounds(2) >= 200
        assert default_max_rounds(1 << 20) == int(np.ceil(40 * 20))

    def test_default_max_rounds_floor(self):
        assert default_max_rounds(1) == 200


class TestSimulateNoAdversary:
    def test_reaches_consensus_from_all_distinct(self):
        res = simulate(Configuration.all_distinct(128), seed=0)
        assert res.reached_consensus
        assert res.consensus_round is not None and res.consensus_round > 0
        assert res.final.is_consensus

    def test_consensus_value_is_an_initial_value(self):
        init = Configuration.all_distinct(100)
        res = simulate(init, seed=1)
        assert res.winning_value in set(init.values.tolist())

    def test_deterministic_given_seed(self):
        init = Configuration.all_distinct(64)
        a = simulate(init, seed=42)
        b = simulate(init, seed=42)
        assert a.consensus_round == b.consensus_round
        assert a.winning_value == b.winning_value
        assert a.final == b.final

    def test_different_seeds_usually_differ(self):
        init = Configuration.all_distinct(64)
        results = {simulate(init, seed=s).winning_value for s in range(6)}
        assert len(results) > 1

    def test_already_consensus_input(self):
        res = simulate(Configuration.from_values([7] * 10), seed=0)
        assert res.reached_consensus and res.consensus_round == 0
        assert res.rounds_executed <= 1

    def test_stops_at_consensus_by_default(self):
        res = simulate(Configuration.all_distinct(128), seed=0)
        assert res.rounds_executed == res.consensus_round

    def test_run_to_horizon(self):
        res = simulate(Configuration.all_distinct(32), seed=0, max_rounds=50,
                       run_to_horizon=True)
        assert res.rounds_executed == 50

    def test_horizon_zero(self):
        init = Configuration.all_distinct(16)
        res = simulate(init, seed=0, max_rounds=0)
        assert res.rounds_executed == 0
        assert res.final == init

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            simulate(Configuration.all_distinct(8), max_rounds=-1)

    def test_metrics_trajectory_recorded(self):
        res = simulate(Configuration.all_distinct(32), seed=0,
                       record=RecordLevel.METRICS)
        assert len(res.trajectory.metrics) == res.rounds_executed + 1
        # support size never increases for the median rule
        support = res.trajectory.support_series()
        assert np.all(np.diff(support) <= 0)

    def test_full_trajectory_recorded(self):
        res = simulate(Configuration.all_distinct(16), seed=0, record=RecordLevel.FULL)
        assert len(res.trajectory.configurations) == res.rounds_executed + 1
        assert res.trajectory.configurations[-1] == res.final

    def test_no_recording(self):
        res = simulate(Configuration.all_distinct(16), seed=0, record=RecordLevel.NONE)
        assert res.trajectory.metrics == []
        assert res.trajectory.configurations == []

    def test_accepts_raw_value_vector(self):
        res = simulate(np.arange(32), seed=3)
        assert res.reached_consensus

    def test_summary_is_flat_dict(self):
        res = simulate(Configuration.all_distinct(16), seed=0)
        summary = res.summary()
        assert summary["n"] == 16
        assert summary["rule"] == "median"
        assert summary["consensus_reached"] is True


class TestSimulateWithAdversary:
    def test_almost_stable_reached_with_weak_adversary(self):
        n = 512
        adv = BalancingAdversary(budget=4)
        res = simulate(Configuration.two_bins(n, minority=n // 2), adversary=adv,
                       seed=0, max_rounds=500)
        assert res.reached_almost_stable
        assert res.almost_stable_round is not None
        assert res.final_agreement_fraction > 0.9

    def test_budget_ledger_never_exceeded(self):
        adv = BalancingAdversary(budget=5)
        res = simulate(Configuration.two_bins(256, minority=128), adversary=adv,
                       seed=1, max_rounds=200)
        assert res.meta["budget_ledger_ok"] is True

    def test_default_criterion_derived_from_budget(self):
        adv = StickyAdversary(budget=3, pinned_value=1)
        res = simulate(Configuration.two_bins(128, minority=40), adversary=adv,
                       seed=2, max_rounds=300)
        assert res.criterion.tolerance == 12
        assert res.criterion.window == 10

    def test_sticky_adversary_keeps_minority_bounded(self):
        adv = StickyAdversary(budget=3, pinned_value=0)
        res = simulate(Configuration.two_bins(256, minority=40), adversary=adv,
                       seed=3, max_rounds=300)
        assert res.reached_almost_stable
        # the pinned processes keep disagreeing: no exact consensus expected
        assert res.final.num_values <= 2

    def test_custom_criterion(self):
        adv = StickyAdversary(budget=2, pinned_value=0)
        crit = AlmostStableCriterion(tolerance=2, window=5)
        res = simulate(Configuration.two_bins(128, minority=30), adversary=adv,
                       criterion=crit, seed=4, max_rounds=300)
        assert res.criterion is crit

    def test_after_sampling_timing(self):
        adv = BalancingAdversary(budget=4, timing=AdversaryTiming.AFTER_SAMPLING)
        res = simulate(Configuration.two_bins(256, minority=128), adversary=adv,
                       seed=5, max_rounds=400)
        assert res.meta["budget_ledger_ok"] is True
        assert res.reached_almost_stable

    def test_admissible_values_default_to_initial_support(self):
        adv = StickyAdversary(budget=2)   # pins to max admissible value
        init = Configuration.two_bins(64, minority=20, low=5, high=9)
        res = simulate(init, adversary=adv, seed=6, max_rounds=100)
        assert set(res.final.support.tolist()) <= {5, 9}

    def test_minimum_rule_destabilized_by_reviving_adversary(self):
        # the Section 1.1 counterexample in miniature: minimum rule + a late
        # re-introduction of the smallest value eventually drags everyone down
        from repro.adversary.strategies import RevivingAdversary

        n = 256
        init = Configuration.two_bins(n, minority=1, low=0, high=1)
        adv = RevivingAdversary(budget=1, delay=20, target_value=0)
        res = simulate(init, rule=MinimumRule(), adversary=adv, seed=7,
                       max_rounds=300, run_to_horizon=True)
        # by the end everyone has been dragged to 0 even though value 1 had
        # overwhelming majority at the start
        assert res.final.majority_value() == 0
        assert res.final.count_value(0) > n * 0.9

    def test_median_rule_absorbs_reviving_adversary(self):
        from repro.adversary.strategies import RevivingAdversary

        n = 256
        init = Configuration.two_bins(n, minority=1, low=0, high=1)
        adv = RevivingAdversary(budget=1, delay=20, target_value=0)
        res = simulate(init, rule=MedianRule(), adversary=adv, seed=8,
                       max_rounds=300, run_to_horizon=True)
        assert res.final.majority_value() == 1
        assert res.final.count_value(1) >= n - 4


class TestStopRules:
    """Exhaustive coverage of the engine's stop-rule matrix (ISSUE satellite)."""

    def test_run_to_horizon_executes_exactly_max_rounds(self):
        res = simulate(Configuration.all_distinct(64), seed=0, max_rounds=37,
                       run_to_horizon=True)
        assert res.rounds_executed == 37
        assert len(res.trajectory.metrics) == 38  # initial state + 37 rounds

    def test_run_to_horizon_overrides_stable_stop_with_adversary(self):
        # without run_to_horizon this run stops early once the almost-stable
        # window fires; with it, every round of the horizon must execute
        adv = BalancingAdversary(budget=4)
        early = simulate(Configuration.two_bins(512, minority=256),
                         adversary=adv, seed=1, max_rounds=300)
        assert early.rounds_executed < 300
        adv2 = BalancingAdversary(budget=4)
        full = simulate(Configuration.two_bins(512, minority=256),
                        adversary=adv2, seed=1, max_rounds=300,
                        run_to_horizon=True)
        assert full.rounds_executed == 300

    def test_trailing_streak_shorter_than_window_reports_not_reached(self):
        # the tolerance is met quickly, but the run ends long before the
        # streak can span the (deliberately huge) stability window
        adv = StickyAdversary(budget=2, pinned_value=0)
        crit = AlmostStableCriterion(tolerance=8, window=100)
        res = simulate(Configuration.two_bins(256, minority=16), adversary=adv,
                       criterion=crit, seed=2, max_rounds=20, run_to_horizon=True)
        assert res.trajectory.minority_series()[-1] <= crit.tolerance
        assert not res.reached_almost_stable
        assert res.almost_stable_round is None

    def test_streak_broken_before_horizon_end_reports_not_reached(self):
        # a switching adversary strong enough to keep kicking the system out
        # of the tolerance band: any mid-run streak must not count
        from repro.adversary.strategies import SwitchingAdversary

        adv = SwitchingAdversary(budget=40)
        crit = AlmostStableCriterion(tolerance=2, window=5)
        res = simulate(Configuration.two_bins(64, minority=32), adversary=adv,
                       criterion=crit, seed=3, max_rounds=30, run_to_horizon=True)
        if res.trajectory.minority_series()[-1] > crit.tolerance:
            assert not res.reached_almost_stable

    def test_max_rounds_zero_executes_nothing(self):
        init = Configuration.two_bins(64, minority=20)
        adv = BalancingAdversary(budget=3)
        res = simulate(init, adversary=adv, seed=4, max_rounds=0)
        assert res.rounds_executed == 0
        assert res.final == init
        assert res.meta["budget_ledger_total"] == 0  # adversary never acted

    def test_max_rounds_zero_already_at_consensus(self):
        res = simulate(Configuration.from_values([3] * 12), seed=5, max_rounds=0)
        assert res.rounds_executed == 0
        assert res.reached_consensus and res.consensus_round == 0

    def test_already_at_consensus_stops_immediately_without_adversary(self):
        res = simulate(Configuration.from_values([9] * 30), seed=6, max_rounds=50)
        assert res.reached_consensus and res.consensus_round == 0
        assert res.rounds_executed <= 1

    def test_already_at_consensus_keeps_running_with_adversary(self):
        # with a positive budget the consensus stop rule must not fire: the
        # adversary can (and does) perturb the agreed state
        adv = BalancingAdversary(budget=4)
        res = simulate(Configuration.from_values([1] * 128), adversary=adv,
                       seed=7, max_rounds=40, stop_when_stable=False,
                       admissible_values=np.array([0, 1]))
        assert res.consensus_round == 0
        assert res.rounds_executed == 40
        assert res.meta["budget_ledger_total"] > 0

    def test_stop_at_consensus_disabled_runs_to_horizon(self):
        res = simulate(Configuration.all_distinct(32), seed=8, max_rounds=80,
                       stop_at_consensus=False)
        assert res.reached_consensus
        assert res.rounds_executed == 80
