"""Property-based tests (hypothesis) for core invariants.

These cover the algebraic and probabilistic invariants the paper's analysis
relies on:

* the median of three is one of its arguments and lies between the min and
  max (so value-preserving rules never invent values);
* the median commutes with monotone maps (the engine of Lemma 17);
* one median-rule round never enlarges the support and never moves values
  outside the initial [min, max] interval;
* the fineness relation is reflexive, the all-one assignment is finer than
  everything, and refinement maps reproduce the coarse loads;
* adversary enforcement never exceeds the budget and never writes
  inadmissible values, for arbitrary proposals;
* Configuration encodings round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.adversary.base import Adversary, Corruption
from repro.core.consensus import is_consensus
from repro.core.fineness import is_finer, refinement_map
from repro.core.median_rule import MedianRule, median_of_three_scalar
from repro.core.metrics import agreement_count, minority_count, support_size
from repro.core.state import Configuration, loads_from_values, values_from_loads

# bounded integer values so tests stay fast and overflow-free
value_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=80),
    elements=st.integers(min_value=-1000, max_value=1000),
)

triples = st.tuples(
    st.integers(min_value=-10**6, max_value=10**6),
    st.integers(min_value=-10**6, max_value=10**6),
    st.integers(min_value=-10**6, max_value=10**6),
)


class TestMedianAlgebraProperties:
    @given(triples)
    def test_median_is_one_of_inputs(self, abc):
        a, b, c = abc
        assert median_of_three_scalar(a, b, c) in (a, b, c)

    @given(triples)
    def test_median_between_min_and_max(self, abc):
        a, b, c = abc
        m = median_of_three_scalar(a, b, c)
        assert min(a, b, c) <= m <= max(a, b, c)

    @given(triples)
    def test_median_permutation_invariant(self, abc):
        a, b, c = abc
        ref = median_of_three_scalar(a, b, c)
        assert ref == median_of_three_scalar(b, c, a)
        assert ref == median_of_three_scalar(c, a, b)
        assert ref == median_of_three_scalar(b, a, c)

    @given(triples, st.integers(min_value=-5, max_value=5),
           st.integers(min_value=0, max_value=100))
    def test_median_commutes_with_monotone_affine_map(self, abc, shift, scale):
        # f(x) = scale*x + shift is monotone (non-decreasing) for scale >= 0
        a, b, c = abc
        f = lambda x: scale * x + shift
        assert f(median_of_three_scalar(a, b, c)) == median_of_three_scalar(f(a), f(b), f(c))


class TestMedianRoundProperties:
    @given(value_arrays, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_round_never_enlarges_support(self, values, seed):
        rng = np.random.default_rng(seed)
        rule = MedianRule()
        before = set(np.unique(values).tolist())
        after = rule.step(values, rng)
        assert set(np.unique(after).tolist()) <= before

    @given(value_arrays, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_round_respects_value_interval(self, values, seed):
        rng = np.random.default_rng(seed)
        after = MedianRule().step(values, rng)
        assert after.min() >= values.min()
        assert after.max() <= values.max()

    @given(value_arrays, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_consensus_is_absorbing(self, values, seed):
        rng = np.random.default_rng(seed)
        consensus = np.full_like(values, values[0])
        after = MedianRule().step(consensus, rng)
        assert np.array_equal(after, consensus)

    @given(value_arrays, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_metrics_consistency(self, values, seed):
        rng = np.random.default_rng(seed)
        after = MedianRule().step(values, rng)
        n = after.shape[0]
        assert agreement_count(after) + minority_count(after) == n
        assert 1 <= support_size(after) <= support_size(values)
        if is_consensus(after):
            assert minority_count(after) == 0


class TestConfigurationProperties:
    @given(value_arrays)
    def test_loads_roundtrip(self, values):
        loads = loads_from_values(values)
        assert sum(loads.values()) == values.shape[0]
        rebuilt = values_from_loads(loads)
        assert np.array_equal(np.sort(values), rebuilt)

    @given(value_arrays)
    def test_canonicalization_preserves_load_multiset(self, values):
        cfg = Configuration.from_values(values)
        canon = cfg.canonicalized()
        assert sorted(cfg.loads.values()) == sorted(canon.loads.values())
        assert canon.support.tolist() == list(range(canon.num_values))

    @given(value_arrays)
    def test_median_value_is_an_existing_value(self, values):
        cfg = Configuration.from_values(values)
        assert cfg.median_value() in set(values.tolist())


class TestFinenessProperties:
    load_lists = st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=10)

    @given(load_lists)
    def test_reflexive(self, loads):
        assert is_finer(loads, loads)

    @given(load_lists)
    def test_all_one_is_finest(self, loads):
        n = sum(loads)
        assert is_finer([1] * n, loads)

    @given(load_lists)
    def test_total_collapse_is_coarsest(self, loads):
        assert is_finer(loads, [sum(loads)])

    @given(load_lists)
    def test_refinement_map_reproduces_coarse_loads(self, loads):
        n = sum(loads)
        assignment = refinement_map([1] * n, loads)
        assert assignment is not None
        rebuilt = [assignment.count(i) for i in range(len(loads))]
        assert rebuilt == loads


class _ChaoticAdversary(Adversary):
    """Proposes arbitrary (possibly invalid) writes supplied by hypothesis."""

    def __init__(self, budget: int, indices, values) -> None:
        super().__init__(budget=budget)
        self._idx = np.asarray(indices, dtype=np.int64)
        self._val = np.asarray(values, dtype=np.int64)

    def propose(self, values, round_index, admissible_values, rng):
        return Corruption(indices=self._idx, values=self._val)


class TestAdversaryEnforcementProperties:
    @given(
        st.integers(min_value=0, max_value=5),                       # budget
        st.lists(st.integers(min_value=-5, max_value=40), min_size=0, max_size=15),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_and_admissibility_always_enforced(self, budget, raw_indices, seed):
        rng = np.random.default_rng(seed)
        n = 20
        values = np.zeros(n, dtype=np.int64)
        admissible = np.array([0, 1, 2])
        proposals_vals = [(i * 7) % 5 for i in range(len(raw_indices))]  # some inadmissible
        adv = _ChaoticAdversary(budget, raw_indices, proposals_vals)
        out = adv.corrupt(values, 1, admissible, rng)
        changed = np.flatnonzero(out != values)
        assert changed.shape[0] <= budget
        assert set(out[changed].tolist()) <= set(admissible.tolist())
        assert adv.ledger.verify()
