"""Property-based tests (hypothesis) for core invariants.

These cover the algebraic and probabilistic invariants the paper's analysis
relies on:

* the median of three is one of its arguments and lies between the min and
  max (so value-preserving rules never invent values);
* the median commutes with monotone maps (the engine of Lemma 17);
* one median-rule round never enlarges the support and never moves values
  outside the initial [min, max] interval;
* the fineness relation is reflexive, the all-one assignment is finer than
  everything, and refinement maps reproduce the coarse loads;
* adversary enforcement never exceeds the budget and never writes
  inadmissible values, for arbitrary proposals;
* Configuration encodings round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.adversary.base import Adversary, Corruption, CountCorruption
from repro.core.consensus import is_consensus
from repro.core.fineness import is_finer, refinement_map
from repro.core.median_rule import (
    MedianRule,
    MedianRuleWithoutReplacement,
    median_of_three,
    median_of_three_scalar,
)
from repro.core.metrics import agreement_count, minority_count, support_size
from repro.core.state import Configuration, loads_from_values, values_from_loads

# bounded integer values so tests stay fast and overflow-free
value_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=80),
    elements=st.integers(min_value=-1000, max_value=1000),
)

triples = st.tuples(
    st.integers(min_value=-10**6, max_value=10**6),
    st.integers(min_value=-10**6, max_value=10**6),
    st.integers(min_value=-10**6, max_value=10**6),
)


class TestMedianAlgebraProperties:
    @given(triples)
    def test_median_is_one_of_inputs(self, abc):
        a, b, c = abc
        assert median_of_three_scalar(a, b, c) in (a, b, c)

    @given(triples)
    def test_median_between_min_and_max(self, abc):
        a, b, c = abc
        m = median_of_three_scalar(a, b, c)
        assert min(a, b, c) <= m <= max(a, b, c)

    @given(triples)
    def test_median_permutation_invariant(self, abc):
        a, b, c = abc
        ref = median_of_three_scalar(a, b, c)
        assert ref == median_of_three_scalar(b, c, a)
        assert ref == median_of_three_scalar(c, a, b)
        assert ref == median_of_three_scalar(b, a, c)

    @given(triples, st.integers(min_value=-5, max_value=5),
           st.integers(min_value=0, max_value=100))
    def test_median_commutes_with_monotone_affine_map(self, abc, shift, scale):
        # f(x) = scale*x + shift is monotone (non-decreasing) for scale >= 0
        a, b, c = abc
        f = lambda x: scale * x + shift
        assert f(median_of_three_scalar(a, b, c)) == median_of_three_scalar(f(a), f(b), f(c))


class TestMedianRoundProperties:
    @given(value_arrays, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_round_never_enlarges_support(self, values, seed):
        rng = np.random.default_rng(seed)
        rule = MedianRule()
        before = set(np.unique(values).tolist())
        after = rule.step(values, rng)
        assert set(np.unique(after).tolist()) <= before

    @given(value_arrays, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_round_respects_value_interval(self, values, seed):
        rng = np.random.default_rng(seed)
        after = MedianRule().step(values, rng)
        assert after.min() >= values.min()
        assert after.max() <= values.max()

    @given(value_arrays, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_consensus_is_absorbing(self, values, seed):
        rng = np.random.default_rng(seed)
        consensus = np.full_like(values, values[0])
        after = MedianRule().step(consensus, rng)
        assert np.array_equal(after, consensus)

    @given(value_arrays, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_metrics_consistency(self, values, seed):
        rng = np.random.default_rng(seed)
        after = MedianRule().step(values, rng)
        n = after.shape[0]
        assert agreement_count(after) + minority_count(after) == n
        assert 1 <= support_size(after) <= support_size(values)
        if is_consensus(after):
            assert minority_count(after) == 0


class TestConfigurationProperties:
    @given(value_arrays)
    def test_loads_roundtrip(self, values):
        loads = loads_from_values(values)
        assert sum(loads.values()) == values.shape[0]
        rebuilt = values_from_loads(loads)
        assert np.array_equal(np.sort(values), rebuilt)

    @given(value_arrays)
    def test_canonicalization_preserves_load_multiset(self, values):
        cfg = Configuration.from_values(values)
        canon = cfg.canonicalized()
        assert sorted(cfg.loads.values()) == sorted(canon.loads.values())
        assert canon.support.tolist() == list(range(canon.num_values))

    @given(value_arrays)
    def test_median_value_is_an_existing_value(self, values):
        cfg = Configuration.from_values(values)
        assert cfg.median_value() in set(values.tolist())


class TestFinenessProperties:
    load_lists = st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=10)

    @given(load_lists)
    def test_reflexive(self, loads):
        assert is_finer(loads, loads)

    @given(load_lists)
    def test_all_one_is_finest(self, loads):
        n = sum(loads)
        assert is_finer([1] * n, loads)

    @given(load_lists)
    def test_total_collapse_is_coarsest(self, loads):
        assert is_finer(loads, [sum(loads)])

    @given(load_lists)
    def test_refinement_map_reproduces_coarse_loads(self, loads):
        n = sum(loads)
        assignment = refinement_map([1] * n, loads)
        assert assignment is not None
        rebuilt = [assignment.count(i) for i in range(len(loads))]
        assert rebuilt == loads


class _ChaoticAdversary(Adversary):
    """Proposes arbitrary (possibly invalid) writes supplied by hypothesis."""

    def __init__(self, budget: int, indices, values) -> None:
        super().__init__(budget=budget)
        self._idx = np.asarray(indices, dtype=np.int64)
        self._val = np.asarray(values, dtype=np.int64)

    def propose(self, values, round_index, admissible_values, rng):
        return Corruption(indices=self._idx, values=self._val)


class TestAdversaryEnforcementProperties:
    @given(
        st.integers(min_value=0, max_value=5),                       # budget
        st.lists(st.integers(min_value=-5, max_value=40), min_size=0, max_size=15),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_and_admissibility_always_enforced(self, budget, raw_indices, seed):
        rng = np.random.default_rng(seed)
        n = 20
        values = np.zeros(n, dtype=np.int64)
        admissible = np.array([0, 1, 2])
        proposals_vals = [(i * 7) % 5 for i in range(len(raw_indices))]  # some inadmissible
        adv = _ChaoticAdversary(budget, raw_indices, proposals_vals)
        out = adv.corrupt(values, 1, admissible, rng)
        changed = np.flatnonzero(out != values)
        assert changed.shape[0] <= budget
        assert set(out[changed].tolist()) <= set(admissible.tolist())
        assert adv.ledger.verify()


class _ChaoticCountAdversary(Adversary):
    """Proposes arbitrary (possibly invalid) count edits supplied by hypothesis."""

    def __init__(self, budget: int, src, dst, amounts) -> None:
        super().__init__(budget=budget)
        self._src = np.asarray(src, dtype=np.int64)
        self._dst = np.asarray(dst, dtype=np.int64)
        self._amt = np.asarray(amounts, dtype=np.int64)

    def propose(self, values, round_index, admissible_values, rng):
        return Corruption.empty()

    def propose_counts(self, support, counts, round_index, admissible_values, rng):
        return CountCorruption(src_values=self._src, dst_values=self._dst,
                               amounts=self._amt)


class TestCountCorruptionEnforcementProperties:
    @given(
        st.integers(min_value=0, max_value=5),                       # budget
        st.lists(st.tuples(st.integers(min_value=-2, max_value=6),   # src value
                           st.integers(min_value=-2, max_value=6),   # dst value
                           st.integers(min_value=-3, max_value=12)), # amount
                 min_size=0, max_size=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_count_edits_always_enforced(self, budget, moves, seed):
        rng = np.random.default_rng(seed)
        support = np.array([0, 1, 2, 3], dtype=np.int64)
        counts = np.array([4, 0, 7, 9], dtype=np.int64)
        admissible = np.array([0, 1, 2])  # value 3 may be drained, not filled
        src = [m[0] for m in moves]
        dst = [m[1] for m in moves]
        amt = [m[2] for m in moves]
        adv = _ChaoticCountAdversary(budget, src, dst, amt)
        out = adv.corrupt_counts(support, counts, 1, admissible, rng)
        assert int(out.sum()) == int(counts.sum())          # mass conserved
        assert np.all(out >= 0)                             # no negative bins
        moved = int(np.abs(out - counts).sum()) // 2
        assert moved <= budget                              # T-bound holds
        grew = np.flatnonzero(out > counts)
        assert set(support[grew].tolist()) <= set(admissible.tolist())
        assert adv.ledger.verify()


class TestSamplingKernelProperties:
    """Randomized guarantees of the contact-sampling kernels (ISSUE satellite)."""

    @given(st.integers(min_value=3, max_value=200),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_noreplace_contacts_never_self_never_duplicate(self, n, seed):
        rng = np.random.default_rng(seed)
        rule = MedianRuleWithoutReplacement()
        samples = rule.sample_contacts(n, rng)
        own = np.arange(n)
        assert samples.shape == (n, 2)
        assert np.all((samples >= 0) & (samples < n))
        assert np.all(samples[:, 0] != own)
        assert np.all(samples[:, 1] != own)
        assert np.all(samples[:, 0] != samples[:, 1])

    @pytest.mark.parametrize("column", [0, 1])
    def test_noreplace_contacts_marginally_uniform(self, column):
        # chi-square sanity bound: for each process the sampled contact is
        # uniform over the other n−1 processes.  Aggregate over processes and
        # rounds with a fixed seed; dof = n·(n−1) − n cells-ish, so we just
        # bound the normalized statistic generously.
        n, rounds = 10, 4000
        rng = np.random.default_rng(321 + column)
        rule = MedianRuleWithoutReplacement()
        counts = np.zeros((n, n), dtype=np.int64)
        for _ in range(rounds):
            s = rule.sample_contacts(n, rng)
            np.add.at(counts, (np.arange(n), s[:, column]), 1)
        assert np.all(np.diag(counts) == 0)
        expected = rounds / (n - 1)
        off = counts[~np.eye(n, dtype=bool)].astype(np.float64)
        chi2 = float(((off - expected) ** 2 / expected).sum())
        dof = n * (n - 1) - 1
        # chi2 concentrates around dof with std ~ sqrt(2·dof); 6 sigma bound
        assert chi2 < dof + 6.0 * np.sqrt(2.0 * dof), (chi2, dof)

    @given(st.lists(st.tuples(st.integers(min_value=-10**6, max_value=10**6),
                              st.integers(min_value=-10**6, max_value=10**6),
                              st.integers(min_value=-10**6, max_value=10**6)),
                    min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_median_of_three_agrees_with_np_median(self, triples_list):
        a = np.array([t[0] for t in triples_list], dtype=np.int64)
        b = np.array([t[1] for t in triples_list], dtype=np.int64)
        c = np.array([t[2] for t in triples_list], dtype=np.int64)
        ours = median_of_three(a, b, c)
        ref = np.median(np.stack([a, b, c]), axis=0).astype(np.int64)
        assert np.array_equal(ours, ref)

    def test_median_of_three_equal_and_negative_values(self):
        rng = np.random.default_rng(7)
        # heavy tie mass: draws from a tiny negative/positive pool
        pool = np.array([-3, -1, 0, 0, 2])
        a, b, c = (pool[rng.integers(0, pool.size, 500)] for _ in range(3))
        ref = np.median(np.stack([a, b, c]), axis=0).astype(np.int64)
        assert np.array_equal(median_of_three(a, b, c), ref)
