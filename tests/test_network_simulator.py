"""Tests for the agent-level NetworkSimulator and its agreement with the vectorized engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.strategies import BalancingAdversary, StickyAdversary
from repro.core.baseline_rules import MinimumRule, VoterRule
from repro.core.median_rule import MedianRule
from repro.core.state import Configuration
from repro.engine.trajectory import RecordLevel
from repro.engine.vectorized import simulate
from repro.network.simulator import NetworkSimulator
from repro.network.topology import CompleteTopology, ring_topology


class TestNetworkSimulatorBasics:
    def test_initial_values_preserved(self):
        init = Configuration.from_values([3, 1, 4, 1, 5])
        sim = NetworkSimulator(init, seed=0)
        assert np.array_equal(sim.values(), init.values)

    def test_step_returns_new_values(self):
        sim = NetworkSimulator(Configuration.all_distinct(16), seed=1)
        out = sim.step()
        assert out.shape == (16,)
        assert set(np.unique(out)) <= set(range(16))

    def test_reaches_consensus(self):
        sim = NetworkSimulator(Configuration.all_distinct(48), seed=2)
        res = sim.run(max_rounds=400)
        assert res.reached_consensus
        assert res.final.is_consensus
        assert res.winning_value in range(48)

    def test_message_budget_two_requests_per_process_per_round(self):
        n = 32
        sim = NetworkSimulator(Configuration.all_distinct(n), seed=3)
        sim.step()
        assert sim.message_stats.requests_sent == 2 * n

    def test_messages_accounted_in_result_meta(self):
        sim = NetworkSimulator(Configuration.all_distinct(24), seed=4)
        res = sim.run(max_rounds=200)
        msgs = res.meta["messages"]
        assert msgs["requests_sent"] == 2 * 24 * res.rounds_executed
        assert msgs["responses_sent"] <= msgs["requests_sent"]

    def test_capacity_cap_causes_drops(self):
        # capacity 1 with 2 requests per process guarantees many drops
        sim = NetworkSimulator(Configuration.all_distinct(32), capacity=1, seed=5)
        sim.step()
        assert sim.message_stats.requests_dropped > 0

    def test_still_converges_with_tight_capacity(self):
        sim = NetworkSimulator(Configuration.all_distinct(32), capacity=1, seed=6)
        res = sim.run(max_rounds=600)
        assert res.reached_consensus

    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NetworkSimulator(Configuration.all_distinct(8), topology=CompleteTopology(9))

    def test_works_on_ring_topology(self):
        sim = NetworkSimulator(Configuration.from_values([0] * 8 + [1] * 8),
                               topology=ring_topology(16), seed=7)
        res = sim.run(max_rounds=800)
        # on a ring the rule still reaches agreement on one of the two values
        assert res.final.num_values <= 2
        assert res.final.agreement_fraction() >= 0.5

    def test_alternative_rule(self):
        sim = NetworkSimulator(Configuration.from_values([5, 3, 9, 1, 7, 2, 8, 4]),
                               rule=MinimumRule(), seed=8)
        res = sim.run(max_rounds=300)
        assert res.reached_consensus
        assert res.winning_value == 1

    def test_voter_rule_runs(self):
        sim = NetworkSimulator(Configuration.from_values([0, 0, 1, 1]),
                               rule=VoterRule(), seed=9)
        res = sim.run(max_rounds=500)
        assert res.final.num_values <= 2

    def test_full_trajectory(self):
        sim = NetworkSimulator(Configuration.all_distinct(16), seed=10)
        res = sim.run(max_rounds=200, record=RecordLevel.FULL)
        assert len(res.trajectory.configurations) == res.rounds_executed + 1


class TestNetworkSimulatorWithAdversary:
    def test_budget_respected(self):
        adv = BalancingAdversary(budget=3)
        sim = NetworkSimulator(Configuration.two_bins(64, minority=32), adversary=adv, seed=11)
        res = sim.run(max_rounds=300)
        assert adv.ledger.verify()
        assert res.meta["adversary_budget"] == 3

    def test_almost_stable_with_sticky_adversary(self):
        adv = StickyAdversary(budget=2, pinned_value=0)
        sim = NetworkSimulator(Configuration.two_bins(96, minority=20), adversary=adv, seed=12)
        res = sim.run(max_rounds=400)
        assert res.reached_almost_stable
        assert res.final.agreement_fraction() > 0.9


class TestCrossSimulatorAgreement:
    def test_convergence_time_statistically_similar(self):
        """Agent-level and vectorized engines sample the same process."""
        n, runs = 48, 6
        init = Configuration.all_distinct(n)
        net_rounds = []
        vec_rounds = []
        for s in range(runs):
            net = NetworkSimulator(init, seed=100 + s).run(max_rounds=500)
            vec = simulate(init, seed=200 + s, max_rounds=500)
            assert net.reached_consensus and vec.reached_consensus
            net_rounds.append(net.consensus_round)
            vec_rounds.append(vec.consensus_round)
        # same distribution: means within a factor of two of each other
        assert 0.5 <= np.mean(net_rounds) / np.mean(vec_rounds) <= 2.0

    def test_both_respect_value_preservation(self):
        init = Configuration.from_values([2, 4, 6, 8] * 8)
        net = NetworkSimulator(init, seed=5).run(max_rounds=300)
        vec = simulate(init, seed=5, max_rounds=300)
        initial_values = set(init.values.tolist())
        assert set(net.final.support.tolist()) <= initial_values
        assert set(vec.final.support.tolist()) <= initial_values
