"""Reusable seeded chaos harness for execution-stack certification.

Mirrors :mod:`equivalence` (the statistical-equivalence harness): a single
reusable entry point that tests and the CI smoke leg share, so every fault
schedule is certified against the same invariants.

:func:`run_chaos_trial` executes one real sharded sweep under a fault
schedule (either a pinned :class:`~repro.robustness.FaultPlan` or a
randomized one fully derived from an integer seed), with a generous per-cell
attempt budget so the repeat-N-then-heal contract lets every plan complete.
:func:`assert_chaos_invariants` then certifies the outcome:

1. the chaos-run report equals a clean serial reference run — faults change
   *how* the sweep executed, never *what* it reports;
2. the execution ledger shows no cell computed (or attempted) more times
   than the retry budget — recovery never degenerates into a retry storm;
3. no lease or failure-marker files survive the run — every code path
   releases or reclaims what it holds;
4. after a ``gc`` pass (which quarantines any torn payload whose final
   write was never re-read), a warm faults-off run over the same store
   still equals the clean reference — quarantine is self-healing, not data
   loss.

A trial's full schedule reproduces from its seed alone, so a CI failure is
one ``FaultPlan.random(seed)`` away from a local repro.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.results import ExperimentReport
from repro.robustness import (
    FaultPlan,
    RetryPolicy,
    activate,
    deactivate,
    read_fault_journal,
)
from repro.store import (
    CachedSweepRunner,
    ResultStore,
    ShardBackend,
    read_execution_log,
)

__all__ = ["ChaosOutcome", "chaos_sweep", "clean_reference",
           "run_chaos_trial", "assert_chaos_invariants"]

#: Generous per-cell attempt budget: the worst randomized schedule (raise
#: ``times<=2`` per process, at most one stale-clock and one kill-worker)
#: stays strictly inside it, so budget exhaustion under chaos is a bug.
CHAOS_RETRY = RetryPolicy(max_attempts=6, base_delay_s=0.005,
                          max_delay_s=0.02)


def chaos_sweep() -> SweepConfig:
    """A small but real sweep: 4 cells, sidecar-sized rounds, distinct keys."""
    sweep = SweepConfig(name="chaos", description="seeded chaos certification")
    for n in (24, 32, 40, 48):
        sweep.add(ExperimentConfig(name=f"n={n}", workload="all-distinct",
                                   workload_params={"n": n},
                                   num_runs=2, seed=11))
    return sweep


def clean_reference(root: Path) -> ExperimentReport:
    """The faults-off serial baseline every chaos report must equal."""
    runner = CachedSweepRunner(ResultStore(Path(root) / "clean-store"),
                               backend="serial")
    return runner.run(chaos_sweep())


@dataclass
class ChaosOutcome:
    """Everything one chaos trial produced, for invariant checks and repro."""

    seed: int
    plan: FaultPlan
    report: ExperimentReport
    clean: ExperimentReport
    warm: ExperimentReport                 # faults-off rerun after gc
    store_root: Path
    ledger: List[Dict[str, Any]] = field(default_factory=list)
    journal: List[Dict[str, Any]] = field(default_factory=list)
    gc_counts: Dict[str, int] = field(default_factory=dict)
    leftover_leases: List[str] = field(default_factory=list)

    def fired_seams(self) -> Counter:
        return Counter(record["seam"] for record in self.journal)


def run_chaos_trial(root: Path, seed: int, workers: int = 2,
                    plan: Optional[FaultPlan] = None,
                    clean: Optional[ExperimentReport] = None,
                    retry: RetryPolicy = CHAOS_RETRY) -> ChaosOutcome:
    """One full trial: clean reference, faulted shard run, gc, warm rerun.

    ``plan`` defaults to ``FaultPlan.random(seed)`` journaling into
    ``root/journal.jsonl``; pass a pinned plan (CI smoke leg) to control the
    schedule exactly.  ``clean`` lets callers amortize the reference run
    across many seeds.  Fault injection is always disarmed on exit, even
    when the trial raises.
    """
    root = Path(root)
    if clean is None:
        clean = clean_reference(root)
    if plan is None:
        plan = FaultPlan.random(seed, journal=root / "journal.jsonl")
    store = ResultStore(root / "store", rounds_sidecar_at=1)
    sweep = chaos_sweep()

    activate(plan)   # env handoff arms the spawned shard workers too
    try:
        runner = CachedSweepRunner(
            store,
            backend=ShardBackend(workers=workers, stale_after=2.0,
                                 poll_interval=0.02),
            retry=retry)
        report = runner.run(sweep)
    finally:
        deactivate()

    leftover = sorted(p.name for p in
                      (store.root / "shard" / "leases").glob("*.json"))
    ledger = read_execution_log(store.root)
    journal = read_fault_journal(plan.journal) if plan.journal else []
    gc_counts = store.gc()
    warm = CachedSweepRunner(store, backend="serial").run(sweep)
    return ChaosOutcome(seed=seed, plan=plan, report=report, clean=clean,
                        warm=warm, store_root=store.root, ledger=ledger,
                        journal=journal, gc_counts=gc_counts,
                        leftover_leases=leftover)


def assert_chaos_invariants(outcome: ChaosOutcome,
                            budget: Optional[RetryPolicy] = None) -> None:
    """Certify one trial (see the module docstring for the invariant list)."""
    budget = budget or CHAOS_RETRY
    label = (f"chaos seed {outcome.seed}: "
             f"plan={json.loads(outcome.plan.to_json())['specs']}")

    assert outcome.report == outcome.clean, \
        f"{label} — faulted report diverged from the clean serial reference"

    per_key = Counter(record["key"] for record in outcome.ledger)
    storms = {k: c for k, c in per_key.items() if c > budget.max_attempts}
    assert not storms, f"{label} — retry storm: {storms}"
    overdrawn = [record for record in outcome.ledger
                 if int(record.get("attempts", 1)) > budget.max_attempts]
    assert not overdrawn, f"{label} — ledger attempts exceed budget: {overdrawn}"

    assert not outcome.leftover_leases, \
        f"{label} — orphan lease/marker files: {outcome.leftover_leases}"

    assert outcome.warm == outcome.clean, \
        f"{label} — post-gc warm rerun diverged (quarantine lost data)"
