"""Tests for repro.analysis.chernoff (Lemmas 5-7 and the Hoeffding bound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.chernoff import (
    chernoff_exponential_tail_sum,
    chernoff_geometric_sum,
    chernoff_lower_bernoulli,
    chernoff_lower_bernoulli_exact,
    chernoff_upper_bernoulli,
    chernoff_upper_bernoulli_exact,
    hoeffding_bound,
)


class TestBernoulliBounds:
    def test_bounds_at_most_one(self):
        for mu in (0.1, 1, 10, 100):
            for delta in (0.01, 0.5, 1.0, 3.0):
                assert chernoff_upper_bernoulli(mu, delta) <= 1.0
                assert chernoff_upper_bernoulli_exact(mu, delta) <= 1.0

    def test_monotone_decreasing_in_mu(self):
        vals = [chernoff_upper_bernoulli(mu, 0.5) for mu in (1, 10, 100, 1000)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_monotone_decreasing_in_delta(self):
        vals = [chernoff_upper_bernoulli(50, d) for d in (0.1, 0.5, 1.0, 2.0)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_exact_form_tighter_or_equal_for_small_delta(self):
        # for delta <= 1 the simplified e^{-delta^2 mu / 3} is weaker (larger)
        for delta in (0.1, 0.4, 0.9):
            assert (chernoff_upper_bernoulli_exact(40, delta)
                    <= chernoff_upper_bernoulli(40, delta) + 1e-12)

    def test_nonpositive_delta_trivial(self):
        assert chernoff_upper_bernoulli(10, 0) == 1.0
        assert chernoff_upper_bernoulli_exact(10, -1) == 1.0

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            chernoff_upper_bernoulli(-1, 0.5)

    def test_lower_tail_delta_domain(self):
        with pytest.raises(ValueError):
            chernoff_lower_bernoulli(10, 0.0)
        with pytest.raises(ValueError):
            chernoff_lower_bernoulli(10, 1.0)

    def test_lower_tail_bounds_empirical_frequency(self):
        # empirical check of Lemma 5: tail frequency never exceeds the bound
        rng = np.random.default_rng(0)
        n, p, trials = 400, 0.3, 4000
        mu = n * p
        samples = rng.binomial(n, p, size=trials)
        for delta in (0.2, 0.4):
            freq = np.mean(samples <= (1 - delta) * mu)
            assert freq <= chernoff_lower_bernoulli(mu, delta) + 0.02

    def test_upper_tail_bounds_empirical_frequency(self):
        rng = np.random.default_rng(1)
        n, p, trials = 400, 0.3, 4000
        mu = n * p
        samples = rng.binomial(n, p, size=trials)
        for delta in (0.2, 0.4):
            freq = np.mean(samples >= (1 + delta) * mu)
            assert freq <= chernoff_upper_bernoulli_exact(mu, delta) + 0.02

    def test_exact_lower_bound_formula(self):
        # spot check against the closed form
        mu, delta = 20.0, 0.5
        expected = (np.exp(-delta) / (1 - delta) ** (1 - delta)) ** mu
        assert chernoff_lower_bernoulli_exact(mu, delta) == pytest.approx(expected)


class TestGeometricAndExponentialTails:
    def test_geometric_bound_at_most_one(self):
        assert chernoff_geometric_sum(10, 0.5, 0.1) <= 1.0

    def test_geometric_bound_monotone_in_epsilon(self):
        vals = [chernoff_geometric_sum(50, 0.3, eps) for eps in (0.1, 0.5, 1.0, 2.0)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_geometric_bound_empirical(self):
        rng = np.random.default_rng(2)
        n, delta, trials = 100, 0.4, 3000
        sums = rng.geometric(delta, size=(trials, n)).sum(axis=1)
        for eps in (0.2, 0.5):
            freq = np.mean(sums >= (1 + eps) * n / delta)
            assert freq <= chernoff_geometric_sum(n, delta, eps) + 0.02

    def test_geometric_invalid_inputs(self):
        with pytest.raises(ValueError):
            chernoff_geometric_sum(0, 0.5, 0.1)
        with pytest.raises(ValueError):
            chernoff_geometric_sum(10, 1.5, 0.1)

    def test_exponential_tail_matches_geometric_shape(self):
        # Lemma 7's bound has the same exponential form as Lemma 6's
        assert chernoff_exponential_tail_sum(50, 0.3, 1.0, 0.5) == pytest.approx(
            chernoff_geometric_sum(50, 0.3, 0.5))

    def test_exponential_tail_invalid(self):
        with pytest.raises(ValueError):
            chernoff_exponential_tail_sum(10, 0.3, -1.0, 0.5)


class TestHoeffding:
    def test_at_most_one(self):
        assert hoeffding_bound(10, 0.0) == 1.0
        assert hoeffding_bound(10, 0.1) <= 1.0

    def test_decreasing_in_t(self):
        vals = [hoeffding_bound(100, t) for t in (1, 5, 10, 20)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_empirical(self):
        rng = np.random.default_rng(3)
        n, trials = 200, 3000
        sums = rng.random((trials, n)).sum(axis=1)
        t = 15.0
        freq = np.mean(np.abs(sums - n / 2) >= t)
        assert freq <= hoeffding_bound(n, t) + 0.02

    def test_invalid(self):
        with pytest.raises(ValueError):
            hoeffding_bound(0, 1.0)
        with pytest.raises(ValueError):
            hoeffding_bound(10, 1.0, value_range=0)
