"""Tests for repro.engine.rng and repro.engine.trajectory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import Configuration
from repro.engine.rng import RngPool, make_rng, spawn_rngs, spawn_seeds
from repro.engine.trajectory import RecordLevel, Trajectory, TrajectoryRecorder


class TestRngHelpers:
    def test_make_rng_from_int(self):
        a = make_rng(1)
        b = make_rng(1)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_make_rng_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_make_rng_from_seedsequence(self):
        ss = np.random.SeedSequence(5)
        rng = make_rng(ss)
        assert isinstance(rng, np.random.Generator)

    def test_make_rng_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(0, 7)) == 7

    def test_spawn_seeds_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_spawned_rngs_are_independent_streams(self):
        rngs = spawn_rngs(42, 3)
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(draws)) == 3

    def test_spawned_rngs_reproducible(self):
        a = [r.integers(0, 10**9) for r in spawn_rngs(42, 3)]
        b = [r.integers(0, 10**9) for r in spawn_rngs(42, 3)]
        assert a == b

    def test_rng_pool_issues_and_counts(self):
        pool = RngPool(seed=1)
        r1 = pool.next()
        batch = pool.take(4)
        assert pool.issued == 5
        assert isinstance(r1, np.random.Generator)
        assert len(batch) == 4

    def test_rng_pool_reproducible_for_fixed_order(self):
        p1, p2 = RngPool(seed=9), RngPool(seed=9)
        a = [g.integers(0, 10**9) for g in (p1.next(), p1.next())]
        b = [g.integers(0, 10**9) for g in (p2.next(), p2.next())]
        assert a == b


class TestTrajectoryRecorder:
    def test_metrics_level_records_metrics_only(self):
        rec = TrajectoryRecorder(RecordLevel.METRICS)
        rec.record(np.array([0, 1, 1]), 0)
        rec.record(np.array([1, 1, 1]), 1)
        traj = rec.finish()
        assert len(traj.metrics) == 2
        assert traj.configurations == []
        assert traj.rounds == 1

    def test_full_level_records_configurations(self):
        rec = TrajectoryRecorder(RecordLevel.FULL)
        rec.record(np.array([0, 1]), 0)
        traj = rec.finish()
        assert len(traj.configurations) == 1
        assert traj.configurations[0] == Configuration.from_values([0, 1])
        assert len(traj.metrics) == 1

    def test_none_level_records_nothing(self):
        rec = TrajectoryRecorder(RecordLevel.NONE)
        rec.record(np.array([0, 1]), 0)
        traj = rec.finish()
        assert traj.metrics == [] and traj.configurations == []
        assert traj.rounds == 0


class TestTrajectorySeries:
    def _make(self) -> Trajectory:
        rec = TrajectoryRecorder(RecordLevel.METRICS)
        rec.record(np.array([0, 1, 2, 2]), 0)
        rec.record(np.array([2, 2, 2, 1]), 1)
        rec.record(np.array([2, 2, 2, 2]), 2)
        return rec.finish()

    def test_support_series(self):
        traj = self._make()
        assert traj.support_series().tolist() == [3, 2, 1]

    def test_minority_series(self):
        traj = self._make()
        assert traj.minority_series().tolist() == [2, 1, 0]

    def test_agreement_fraction_series(self):
        traj = self._make()
        series = traj.series("agreement_fraction")
        assert series[-1] == pytest.approx(1.0)

    def test_unknown_series_name(self):
        with pytest.raises(KeyError):
            self._make().series("nonsense")

    def test_empty_trajectory_series(self):
        assert Trajectory().series("support_size").shape == (0,)
