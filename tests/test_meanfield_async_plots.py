"""Tests for repro.analysis.meanfield, repro.engine.asynchronous and repro.io.plots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.meanfield import (
    cdf_map,
    cdf_to_loads,
    compare_with_simulation,
    fixed_points,
    iterate_fractions,
    loads_to_cdf,
    predict_convergence_rounds,
    step_fractions,
)
from repro.core.baseline_rules import MinimumRule
from repro.core.state import Configuration
from repro.engine.asynchronous import ACTIVATION_ORDERS, simulate_asynchronous
from repro.engine.vectorized import simulate
from repro.io.plots import ascii_plot, histogram, sparkline


# --------------------------------------------------------------------------- #
# mean-field model
# --------------------------------------------------------------------------- #
class TestMeanFieldMap:
    def test_cdf_map_formula(self):
        F = np.array([0.3, 1.0])
        out = cdf_map(F)
        assert out[0] == pytest.approx(0.3**2 * (3 - 2 * 0.3))
        assert out[-1] == pytest.approx(1.0)

    def test_fixed_points(self):
        lo, mid, hi = fixed_points()
        for x in (lo, mid, hi):
            assert cdf_map(np.array([x, 1.0]))[0] == pytest.approx(x)

    def test_half_is_unstable(self):
        # perturb the unstable fixed point slightly: it moves away from 1/2
        up = cdf_map(np.array([0.51, 1.0]))[0]
        down = cdf_map(np.array([0.49, 1.0]))[0]
        assert up > 0.51
        assert down < 0.49

    def test_map_preserves_monotonicity(self, rng):
        p = rng.dirichlet(np.ones(8))
        F = loads_to_cdf(p)
        out = cdf_map(F)
        assert np.all(np.diff(out) >= -1e-12)
        assert out[-1] == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            cdf_map(np.array([1.2]))

    def test_loads_roundtrip(self, rng):
        p = rng.dirichlet(np.ones(5))
        assert np.allclose(cdf_to_loads(loads_to_cdf(p)), p)

    def test_loads_must_sum_to_one(self):
        with pytest.raises(ValueError):
            loads_to_cdf([0.5, 0.4])
        with pytest.raises(ValueError):
            loads_to_cdf([])
        with pytest.raises(ValueError):
            loads_to_cdf([-0.1, 1.1])

    def test_step_fractions_conserves_mass(self, rng):
        p = rng.dirichlet(np.ones(6))
        out = step_fractions(p)
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out >= -1e-12)

    def test_matches_lemma11_two_bin_map(self):
        # the prefix map specialized to two bins is exactly p^2(3-2p)
        for p0 in (0.1, 0.25, 0.4):
            out = step_fractions([p0, 1 - p0])
            assert out[0] == pytest.approx(p0**2 * (3 - 2 * p0))


class TestMeanFieldTrajectories:
    def test_dominant_bin_wins(self):
        traj = iterate_fractions([0.2, 0.5, 0.3])
        assert traj.winner() == 1
        assert traj.fractions[-1][1] > 0.999

    def test_support_shrinks(self):
        traj = iterate_fractions([0.2, 0.5, 0.3])
        sizes = traj.support_sizes(threshold=1e-3)
        assert sizes[0] == 3 and sizes[-1] == 1

    def test_balanced_two_bins_stall(self):
        traj = iterate_fractions([0.5, 0.5], rounds=50)
        # stuck on the unstable fixed point: iteration stops early, no winner > 0.999
        assert traj.rounds < 5
        assert traj.fractions[-1][0] == pytest.approx(0.5)

    def test_odd_uniform_middle_bin_wins(self):
        # uniform over odd m: the middle bin is the unique winner (Theorem 21 intuition)
        m = 5
        traj = iterate_fractions([1 / m] * m)
        assert traj.winner() == m // 2

    def test_even_uniform_stalls_at_tie(self):
        m = 4
        traj = iterate_fractions([1 / m] * m, rounds=80)
        final = traj.fractions[-1]
        # mass collapses onto the two middle bins but the 50/50 tie persists
        assert final[1] == pytest.approx(0.5, abs=1e-6)
        assert final[2] == pytest.approx(0.5, abs=1e-6)

    def test_convergence_prediction_grows_slowly_with_n(self):
        # from a biased start the deterministic map converges doubly
        # exponentially (the Lemma 11 collapse), so growing n by 16x adds at
        # most a few rounds to the prediction
        r_small = predict_convergence_rounds([0.3, 0.7], 256)
        r_large = predict_convergence_rounds([0.3, 0.7], 4096)
        assert r_small <= r_large <= r_small + 12

    def test_tied_start_prediction_includes_log_n_tiebreak(self):
        # an exactly tied start stalls the deterministic map, so the predictor
        # adds the Theta(log n) stochastic tie-breaking time — which grows with n
        r_small = predict_convergence_rounds([0.5, 0.5], 256)
        r_large = predict_convergence_rounds([0.5, 0.5], 4096)
        assert r_large > r_small

    def test_prediction_tracks_simulation_within_factor(self):
        predicted, simulated = compare_with_simulation([0.2, 0.3, 0.5], 512, num_runs=4, seed=3)
        assert simulated > 0
        assert 0.3 <= predicted / simulated <= 4.0

    def test_prediction_trivial_cases(self):
        assert predict_convergence_rounds([1.0], 1) == 0.0
        assert predict_convergence_rounds([1.0], 1024) <= 1.0


# --------------------------------------------------------------------------- #
# asynchronous execution
# --------------------------------------------------------------------------- #
class TestAsynchronous:
    def test_reaches_consensus_uniform(self):
        res = simulate_asynchronous(Configuration.all_distinct(128), seed=1)
        assert res.reached_consensus
        assert res.final.is_consensus
        assert res.consensus_sweep is not None and res.consensus_sweep > 0

    def test_activation_count_matches_sweeps(self):
        res = simulate_asynchronous(Configuration.all_distinct(64), seed=2)
        assert res.activations_executed == res.sweeps_executed * 64

    @pytest.mark.parametrize("order", ACTIVATION_ORDERS)
    def test_all_orders_converge(self, order):
        res = simulate_asynchronous(Configuration.all_distinct(96), order=order, seed=3,
                                    max_sweeps=600)
        assert res.reached_consensus, order

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            simulate_asynchronous(Configuration.all_distinct(16), order="nope", seed=0)

    def test_value_preservation(self):
        init = Configuration.from_values([3, 7, 11, 3, 7, 11] * 10)
        res = simulate_asynchronous(init, seed=4)
        assert res.consensus.value in {3, 7, 11}

    def test_already_consensus(self):
        res = simulate_asynchronous(Configuration.from_values([5] * 10), seed=0)
        assert res.consensus_sweep == 0

    def test_other_rules_supported(self):
        init = Configuration.from_values([9, 2, 5, 7, 1, 8] * 8)
        res = simulate_asynchronous(init, rule=MinimumRule(), seed=5)
        assert res.reached_consensus
        assert res.consensus.value == 1

    def test_sweeps_comparable_to_synchronous_rounds(self):
        init = Configuration.all_distinct(256)
        async_res = simulate_asynchronous(init, seed=6)
        sync_res = simulate(init, seed=6)
        assert async_res.reached_consensus and sync_res.reached_consensus
        # asynchronous sweeps are within a small factor of synchronous rounds
        assert async_res.consensus_sweep <= 3 * sync_res.consensus_round + 5

    def test_deterministic_given_seed(self):
        init = Configuration.all_distinct(64)
        a = simulate_asynchronous(init, seed=7)
        b = simulate_asynchronous(init, seed=7)
        assert a.consensus_sweep == b.consensus_sweep
        assert a.final == b.final


# --------------------------------------------------------------------------- #
# ASCII plots
# --------------------------------------------------------------------------- #
class TestPlots:
    def test_sparkline_monotone_series(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_sparkline_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_empty_and_nan(self):
        assert sparkline([]) == ""
        assert sparkline([float("nan")]) == ""

    def test_sparkline_downsampling(self):
        out = sparkline(list(range(100)), width=10)
        assert len(out) == 10

    def test_ascii_plot_contains_points(self):
        out = ascii_plot([1, 2, 3], [10, 20, 15], width=20, height=5, label="demo")
        assert "demo" in out
        assert out.count("*") == 3

    def test_ascii_plot_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], [1], width=10, height=5)
        with pytest.raises(ValueError):
            ascii_plot([1, 2], [1, 2], width=1, height=5)
        assert ascii_plot([], []) == "(no data)"

    def test_histogram_counts(self):
        out = histogram([1, 1, 1, 5, 9], bins=2, title="h")
        assert "h" in out
        assert out.count("\n") == 2
        assert "3" in out and "2" in out

    def test_histogram_validation(self):
        assert histogram([]) == "(no data)"
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)
