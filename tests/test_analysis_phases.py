"""Tests for repro.analysis.phases: Theorem 20 phase-structure detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.phases import (
    candidate_window,
    detect_phases,
    expected_phase_count,
)
from repro.core.state import Configuration
from repro.engine.trajectory import RecordLevel
from repro.engine.vectorized import simulate
from repro.experiments.workloads import blocks_workload


class TestCandidateWindow:
    def test_consensus_window_is_single_value(self):
        cfg = Configuration.from_values([7] * 50)
        lo, hi = candidate_window(cfg)
        assert lo == hi == 7

    def test_window_contains_median_value(self, rng):
        cfg = Configuration.uniform_random(500, 9, rng)
        lo, hi = candidate_window(cfg)
        assert lo <= cfg.median_value() <= hi

    def test_dominant_bin_pins_window(self):
        # one bin holds 90% of the balls: the window collapses onto it
        values = np.array([5] * 900 + [0] * 50 + [9] * 50, dtype=np.int64)
        lo, hi = candidate_window(Configuration.from_values(values))
        assert lo == hi == 5

    def test_margin_widens_window(self, rng):
        cfg = Configuration.uniform_random(400, 15, rng)
        lo_s, hi_s = candidate_window(cfg, margin=1.0)
        lo_l, hi_l = candidate_window(cfg, margin=150.0)
        assert (hi_l - lo_l) >= (hi_s - lo_s)

    def test_balanced_two_bins_window_covers_both(self):
        cfg = Configuration.two_bins(1000, minority=500)
        lo, hi = candidate_window(cfg, margin=50.0)
        assert lo == 0 and hi == 1


class TestDetectPhases:
    def test_empty_trajectory(self):
        assert detect_phases([]) == []

    def test_phase_records_on_converging_run(self):
        init = blocks_workload(n=512, m=16)
        res = simulate(init, seed=1, record=RecordLevel.FULL)
        records = detect_phases(res.trajectory.configurations)
        assert records, "expected at least one phase halving"
        # phase indices increase and window sizes shrink to 1 by the end
        assert [r.phase_index for r in records] == list(range(1, len(records) + 1))
        assert records[-1].window_values == 1
        # rounds are non-decreasing
        rounds = [r.end_round for r in records]
        assert all(a <= b for a, b in zip(rounds, rounds[1:]))

    def test_phase_count_bounded_by_log_m(self):
        m = 16
        init = blocks_workload(n=512, m=m)
        res = simulate(init, seed=2, record=RecordLevel.FULL)
        records = detect_phases(res.trajectory.configurations)
        assert len(records) <= expected_phase_count(m) + 2

    def test_consensus_trajectory_single_phase(self):
        traj = [Configuration.from_values([3] * 20)] * 5
        records = detect_phases(traj)
        assert len(records) >= 1
        assert records[0].window_values == 1


class TestExpectedPhaseCount:
    def test_values(self):
        assert expected_phase_count(2) == 2
        assert expected_phase_count(16) == 5
        assert expected_phase_count(1) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            expected_phase_count(0)
