"""Shared helpers for the benchmark harness (imported by every bench module).

``BENCH_SCALE`` scales problem sizes (set ``REPRO_BENCH_SCALE=1.0`` for the
full-size figures used in EXPERIMENTS.md); ``BENCH_RUNS`` sets the Monte-Carlo
runs per cell; ``run_once`` executes a whole experiment exactly once under
pytest-benchmark timing (Monte-Carlo regenerations are not micro-benchmarks).
"""

from __future__ import annotations

import os

#: scale factor applied to problem sizes (override with REPRO_BENCH_SCALE)
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
#: Monte-Carlo runs per cell (override with REPRO_BENCH_RUNS)
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "5"))


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func(*args, **kwargs)`` exactly once under benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
