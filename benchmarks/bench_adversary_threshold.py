"""ADVBOUND — tightness of the √n adversary bound.

Paper artifact: the remark after Theorem 2 that the bound on T is essentially
tight — "T = Ω~(√n) would not allow the median rule to stabilize any more
w.h.p. because the adversary could keep two groups of processes with equal
values in perfect balance for at least a polynomially long time."

What we measure: convergence of the median rule from the balanced two-bin
state against the balancing adversary with T = c·√n for increasing c, at a
fixed horizon.  Shape assertions: weak adversaries (small c) are always
beaten within the horizon; making c larger monotonically (weakly) increases
the convergence time; and a strongly super-√n adversary (c·√n comparable to
the CLT fluctuation scale times a large factor) prevents convergence within
the horizon entirely.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.adversary.strategies import BalancingAdversary
from repro.core.state import Configuration
from repro.engine.batch import run_batch

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


def _measure(n, constants, runs, horizon):
    rows = []
    for c in constants:
        budget = max(0, int(round(c * math.sqrt(n))))
        factory = (lambda b=budget: BalancingAdversary(budget=b)) if budget else None
        batch = run_batch(
            Configuration.two_bins(n, minority=n // 2),
            num_runs=runs,
            adversary_factory=factory,
            seed=707,
            max_rounds=horizon,
        )
        rows.append({
            "c": c, "T": budget,
            "converged_fraction": batch.convergence_fraction,
            "mean_rounds": batch.mean_rounds,
        })
    return rows


@pytest.mark.benchmark(group="adversary-threshold")
def test_adversary_threshold(benchmark):
    n = max(1024, int(4096 * BENCH_SCALE))
    constants = (0.0, 0.1, 0.25, 0.5, 4.0)
    horizon = 800
    rows = run_once(benchmark, _measure, n, constants, max(BENCH_RUNS, 4), horizon)

    print(f"\n=== Adversary threshold: balancing adversary with T = c*sqrt(n), n={n} ===")
    for row in rows:
        mean = "-" if np.isnan(row["mean_rounds"]) else f"{row['mean_rounds']:.1f}"
        print(f"  c={row['c']:4.2f}  T={row['T']:4d}  converged={row['converged_fraction']:.2f}"
              f"  mean rounds={mean}")

    by_c = {row["c"]: row for row in rows}
    # weak adversaries are always beaten
    for c in (0.0, 0.1, 0.25):
        assert by_c[c]["converged_fraction"] == 1.0
    # convergence time weakly increases with the adversary constant
    means = [by_c[c]["mean_rounds"] for c in (0.0, 0.1, 0.25) ]
    assert means[0] <= means[1] * 1.2 + 5 and means[1] <= means[2] * 1.2 + 5
    # a strongly super-threshold adversary pins the system within this horizon
    assert by_c[4.0]["converged_fraction"] < 1.0
