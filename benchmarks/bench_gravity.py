"""GRAVITY — Equation (1): g(i) = 6 i (n−i)/n² + O(1/n).

Paper artifact: the gravity function of Section 4.2 and the 4/3-threshold
structure behind Lemmas 18/19 (bins whose heavy balls all have gravity ≥ 4/3
grow; bins with a heavy ball of gravity < 4/3 die).

What we measure: the empirical expected number of balls choosing each rank as
their median (Monte-Carlo over single rounds from the all-distinct state)
against the exact formula and the Eq.-(1) approximation; plus the location of
the 4/3 crossing.  Shape assertions: max deviation from the exact gravity is
Monte-Carlo-small, the Eq.-(1) approximation error is O(1/n), the curve peaks
at the median ball, and the 4/3 threshold sits at i ≈ n/3 and ≈ 2n/3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gravity import empirical_gravity, exact_gravity, gravity_array

from _bench_utils import BENCH_SCALE, run_once


@pytest.mark.benchmark(group="gravity")
def test_gravity_equation1(benchmark):
    n = max(200, int(600 * BENCH_SCALE))
    rounds = 400
    rng = np.random.default_rng(11)

    emp = run_once(benchmark, empirical_gravity, n, rounds, rng)
    exact = np.array([exact_gravity(i, n) for i in range(1, n + 1)])
    approx = gravity_array(n)

    max_mc_err = float(np.max(np.abs(emp - exact)))
    max_approx_err = float(np.max(np.abs(approx - exact)))
    peak_rank = int(np.argmax(emp)) + 1

    print(f"\n=== Gravity (Equation 1) at n={n}, {rounds} Monte-Carlo rounds ===")
    print(f"  max |empirical - exact|       = {max_mc_err:.4f}")
    print(f"  max |Eq.(1) approx - exact|   = {max_approx_err:.4f}  (should be O(1/n) = {6.5/n:.4f})")
    print(f"  empirical peak at rank {peak_rank} (median ball at {(n + 1) // 2})")
    print(f"  gravity at n/2: {approx[n // 2 - 1]:.3f};  at n/3: {approx[n // 3 - 1]:.3f};"
          f"  at n/6: {approx[n // 6 - 1]:.3f}")

    # Monte-Carlo noise per rank ~ sqrt(1.5/rounds) ≈ 0.06; allow generous slack
    assert max_mc_err < 0.4
    assert max_approx_err <= 6.5 / n + 1e-9
    assert abs(peak_rank - n / 2) < 0.1 * n

    # 4/3-threshold structure: gravity exceeds 4/3 strictly between ~n/3 and ~2n/3
    above = np.flatnonzero(exact > 4 / 3) + 1
    assert above.size > 0
    assert abs(above.min() - n / 3) < 0.05 * n + 3
    assert abs(above.max() - 2 * n / 3) < 0.05 * n + 3
