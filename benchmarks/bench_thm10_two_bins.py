"""THM10 — two bins with a √n-bounded adversary: O(log n) rounds, n−O(√n) agree.

Paper artifact: Theorem 10 (and, via the exact chain, Lemmas 11/12 regimes).

What we measure: almost-stable rounds of the majority/median rule from the
perfectly balanced two-bin state against the balancing adversary
(T = 0.25·√n), across a ladder of n; plus the final agreement level.  Shape
assertions: all runs converge, final agreement is at least n − 8√n, the
growth is logarithmic, and the exact Markov chain (no adversary) confirms
the log-like growth of the expected absorption time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.strategies import BalancingAdversary
from repro.analysis.markov import expected_absorption_time
from repro.analysis.statistics import compare_predictors
from repro.core.state import Configuration
from repro.engine.batch import run_batch
from repro.engine.vectorized import simulate

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


def _measure(ns, runs):
    rows = []
    for n in ns:
        budget = max(1, int(0.25 * np.sqrt(n)))
        batch = run_batch(
            Configuration.two_bins(n, minority=n // 2),
            num_runs=runs,
            adversary_factory=lambda b=budget: BalancingAdversary(budget=b),
            seed=505 + n,
            max_rounds=1500,
        )
        res = simulate(Configuration.two_bins(n, minority=n // 2),
                       adversary=BalancingAdversary(budget=budget),
                       seed=9999 + n, max_rounds=1500)
        rows.append({
            "n": n, "T": budget,
            "mean_rounds": batch.mean_rounds,
            "converged": batch.convergence_fraction,
            "final_agreement": res.final.agreement_fraction(),
        })
    return rows


@pytest.mark.benchmark(group="theorem10")
def test_theorem10_two_bins_with_adversary(benchmark):
    base = (256, 1024, 4096)
    ns = [max(128, int(n * BENCH_SCALE)) for n in base]
    rows = run_once(benchmark, _measure, ns, BENCH_RUNS)

    print("\n=== Theorem 10: balanced two bins vs balancing adversary (T=0.25*sqrt n) ===")
    for row in rows:
        print(f"  n={row['n']:6d} T={row['T']:3d}  mean rounds={row['mean_rounds']:7.2f}  "
              f"final agreement={row['final_agreement']:.4f}")
        assert row["converged"] == 1.0
        assert row["final_agreement"] >= 1.0 - 8 * np.sqrt(row["n"]) / row["n"]

    fits = compare_predictors([r["n"] for r in rows], [2] * len(rows),
                              [r["mean_rounds"] for r in rows],
                              ["log_n", "sqrt_n", "linear_n"])
    print("  best-fit predictor:", fits[0].predictor_name)
    assert fits[0].predictor_name == "log_n"


@pytest.mark.benchmark(group="theorem10")
def test_theorem10_exact_chain_cross_check(benchmark):
    """Exact expected absorption times of the adversary-free two-bin chain."""
    ns = (16, 32, 64, 128)

    def _exact():
        return [expected_absorption_time(n, n // 2) for n in ns]

    times = run_once(benchmark, _exact)
    print("\n=== Exact two-bin chain: E[rounds to consensus] from the balanced state ===")
    for n, t in zip(ns, times):
        print(f"  n={n:4d}   E[T]={t:7.3f}   E[T]/log2(n)={t / np.log2(n):.3f}")
    ratios = [b / a for a, b in zip(times, times[1:])]
    # doubling n multiplies the expected time by much less than 2 (log growth)
    assert all(r < 1.6 for r in ratios)
