"""MULTINOMIAL — the exact-multinomial kernel seam, timed and recorded.

Both occupancy engines bottom out in exact multinomial scatters, drawn
through one seam (:mod:`repro.engine._multinomial`) with a ``numpy`` backend
(``Generator.multinomial``, the historical bit stream) and a ``compiled``
backend (numba/cc conditional-binomial cascade plus the pooled *banded*
O(m)-draw sampler for built-in rules).  This benchmark measures what the
seam buys at the m = 64 wall, two ways:

* **kernel micro-bench** — one dense batched scatter (R·m multinomial rows
  through a real median-rule outcome tensor) per backend, plus the banded
  sampler, at the acceptance cell's shape;
* **engine-level** — full convergence batches through ``run_batch`` /
  ``run_batch_fused_occupancy`` with the backend pinned per timing, so the
  recorded ratio is end-to-end wall clock, not a kernel best case.

The headline number (``acceptance`` block): compiled-backend fused engine
vs the *looped occupancy engine on the numpy backend* at (n=10⁶, m=64,
R=256) — the cell where ``BENCH_batch_fused.json`` (PR 2) recorded the
honest ~3–4× wall.  Results land in ``BENCH_multinomial.json`` at the repo
root (ARTIFACTS.json-stamped), same idiom as the other bench artifacts.

Run modes
---------
``python benchmarks/bench_multinomial.py``            full grid (~2 min)
``python benchmarks/bench_multinomial.py --reduced``  one small m=64 cell;
    **fails** if the resolved backend is not compiled (catching CI legs
    where the compiled provider silently fell back) and asserts the fused
    compiled engine beats the looped numpy path by ≥3× (the real margin is
    far larger; the floor only absorbs CI timer noise).  Set
    ``REPRO_MULTINOMIAL_KERNEL=numpy`` legs should simply not run this.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine import _multinomial as mnk
from repro.engine.batch import run_batch, run_batch_fused_occupancy
from repro.engine.occupancy import (
    occupancy_outcome_profiles,
    occupancy_transition_matrix_batch,
)
from repro.core.median_rule import MedianRule
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import make_workload_for_engine
from repro.store.artifacts import ArtifactRegistry, build_provenance
from repro.store.hashing import cell_key

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_multinomial.json"
REGISTRY = REPO_ROOT / "ARTIFACTS.json"
BASE_SEED = 20260808

#: (n, m, R) grid; the (10**6, 64, 256) row is ISSUE 6's acceptance cell.
FULL_GRID: List[Tuple[int, int, int]] = [
    (10 ** 6, 16, 256),
    (10 ** 6, 64, 256),
    (10 ** 8, 64, 256),
]

REDUCED_GRID: List[Tuple[int, int, int]] = [
    (10 ** 5, 64, 64),
]


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return time.perf_counter() - t0, out


def _with_backend(backend: str, fn, *args, **kwargs):
    mnk.set_multinomial_backend(backend)
    try:
        return fn(*args, **kwargs)
    finally:
        mnk.set_multinomial_backend(None)


# ---------------------------------------------------------------------- #
# kernel micro-bench: one dense round's sampling, isolated from the engine
# ---------------------------------------------------------------------- #
def bench_kernel(n: int, m: int, R: int, reps: int = 3) -> Dict[str, object]:
    """Time one batched scatter through a real median outcome tensor."""
    rng = np.random.default_rng(BASE_SEED)
    # a plausible mid-run occupancy: all bins occupied, blocks-like skew
    counts = rng.multinomial(n, rng.dirichlet(np.ones(m)), size=R)
    rule = MedianRule()
    Q = occupancy_transition_matrix_batch(rule, counts)
    lo, hi, diag = occupancy_outcome_profiles(rule, counts)

    out: Dict[str, object] = {"reps": reps}
    for backend in ("numpy", "compiled"):
        secs = []
        for rep in range(reps):
            t, _ = _timed(mnk.scatter_column_sums_batch, counts, Q,
                          np.random.default_rng(BASE_SEED + rep),
                          backend=backend)
            secs.append(t)
        out[f"dense_{backend}_s"] = round(min(secs), 4)
    secs = []
    for rep in range(reps):
        t, _ = _timed(mnk.sample_scatter_banded, counts, lo, hi, diag,
                      np.random.default_rng(BASE_SEED + rep),
                      backend="compiled")
        secs.append(t)
    out["banded_compiled_s"] = round(min(secs), 4)
    out["dense_speedup_compiled_vs_numpy"] = round(
        out["dense_numpy_s"] / out["dense_compiled_s"], 2)
    out["banded_speedup_vs_numpy_dense"] = round(
        out["dense_numpy_s"] / out["banded_compiled_s"], 2)
    return out


# ---------------------------------------------------------------------- #
# engine-level: full convergence batches, backend pinned per timing
# ---------------------------------------------------------------------- #
def bench_cell(n: int, m: int, R: int, seed: int = BASE_SEED
               ) -> Dict[str, object]:
    times: Dict[str, float] = {}
    mean_rounds: Dict[str, float] = {}

    def record(name: str, secs: float, batch) -> None:
        times[name] = round(secs, 4)
        mean_rounds[name] = round(float(batch.mean_rounds), 2)
        assert batch.convergence_fraction == 1.0, (
            f"{name} at (n={n}, m={m}, R={R}): "
            f"only {batch.convergence_fraction:.2f} of runs converged"
        )

    init = make_workload_for_engine("blocks", "occupancy", n=n, m=m)

    secs, batch = _with_backend(
        "numpy", _timed, run_batch, init, R, seed=seed, engine="occupancy")
    record("occupancy/numpy", secs, batch)
    secs, batch = _with_backend(
        "numpy", _timed, run_batch_fused_occupancy, init, R, seed=seed + 1)
    record("occupancy-fused/numpy", secs, batch)

    if mnk.use_compiled("compiled"):
        secs, batch = _with_backend(
            "compiled", _timed, run_batch, init, R, seed=seed + 2,
            engine="occupancy")
        record("occupancy/compiled", secs, batch)
        secs, batch = _with_backend(
            "compiled", _timed, run_batch_fused_occupancy, init, R,
            seed=seed + 3)
        record("occupancy-fused/compiled", secs, batch)

    cell: Dict[str, object] = {
        "n": n,
        "m": m,
        "R": R,
        "workload": "blocks",
        "rule": "median",
        "times_s": times,
        "mean_rounds": mean_rounds,
    }
    if "occupancy-fused/compiled" in times:
        cell["speedup_fused_compiled_vs_looped_numpy"] = round(
            times["occupancy/numpy"] / times["occupancy-fused/compiled"], 2)
        cell["speedup_fused_compiled_vs_fused_numpy"] = round(
            times["occupancy-fused/numpy"] / times["occupancy-fused/compiled"],
            2)
        cell["speedup_looped_compiled_vs_looped_numpy"] = round(
            times["occupancy/numpy"] / times["occupancy/compiled"], 2)
    return cell


def run_grid(grid: List[Tuple[int, int, int]], mode: str) -> Dict[str, object]:
    resolved = mnk.resolve_multinomial_backend("compiled")
    cells = []
    for n, m, R in grid:
        cell = bench_cell(n, m, R)
        cells.append(cell)
        ratio = cell.get("speedup_fused_compiled_vs_looped_numpy", "n/a")
        print(f"n={n:>10,} m={m:>3} R={R:>4}: "
              + "  ".join(f"{k}={v:.3f}s" for k, v in cell["times_s"].items())
              + f"  [fused-compiled vs looped-numpy: {ratio}x]")

    report: Dict[str, object] = {
        "bench": "multinomial",
        "schema": 1,
        "mode": mode,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "compiled_kernel": resolved.kernel_id,
        "cells": cells,
    }
    if mode == "full":
        n, m, R = FULL_GRID[1]
        report["kernel_micro"] = {"n": n, "m": m, "R": R,
                                  **bench_kernel(n, m, R)}
    acceptance = next((c for c in cells
                       if (c["n"], c["m"], c["R"]) == (10 ** 6, 64, 256)), None)
    if acceptance is not None:
        report["acceptance"] = {
            "cell": {"n": 10 ** 6, "m": 64, "R": 256},
            "target_speedup_vs_looped_occupancy": 10.0,
            "measured_speedup_vs_looped_occupancy":
                acceptance.get("speedup_fused_compiled_vs_looped_numpy"),
            "compiled_kernel": resolved.kernel_id,
            "note": (
                "Both engines draw the same exact multinomial law; the "
                "compiled backend replaces ~R*m^2 sequential binomial draws "
                "per dense round (Generator.multinomial) with the banded "
                "O(m)-draw pooled sampler, which is what breaks the m=64 "
                "wall recorded honestly in BENCH_batch_fused.json."
            ),
        }
    return report


def bench_cell_config(n: int, m: int, R: int) -> ExperimentConfig:
    """The experiment-cell description of one timed (n, m, R) bench point."""
    return ExperimentConfig(
        name=f"bench:n={n},m={m},R={R}",
        workload="blocks",
        workload_params={"n": int(n), "m": int(m)},
        rule="median",
        num_runs=int(R),
        seed=BASE_SEED,
    )


def stamp_report(report: Dict[str, object]) -> Dict[str, object]:
    """Attach store keys + git provenance to a bench report (in place).

    Cell keys are kernel-independent by construction (the backend is
    provenance, not key material), so one key covers every backend timed on
    the cell.
    """
    keys = {}
    for cell in report["cells"]:
        cfg = bench_cell_config(cell["n"], cell["m"], cell["R"])
        key = cell_key(cfg)
        cell["cell_key"] = key
        keys[cfg.name] = key
    report["provenance"] = build_provenance(
        keys, extra={"base_seed": BASE_SEED,
                     "seed_note": "engine/backend timings use per-timing "
                                  "offsets (base_seed .. base_seed+3)"})
    return report


def write_artifact(report: Dict[str, object], path: Path = ARTIFACT) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")
    if report.get("mode") == "full":
        ArtifactRegistry(REGISTRY).register(
            path, kind="benchmark",
            cell_keys=report.get("provenance", {}).get("cell_keys", {}),
            extra={"bench": report.get("bench"), "mode": report.get("mode"),
                   "compiled_kernel": report.get("compiled_kernel")})
        print(f"wrote {path} (registered in {REGISTRY.name})")
    else:
        print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reduced", action="store_true",
                        help="small single-cell smoke: fails if the compiled "
                             "backend silently fell back to numpy, and "
                             "asserts fused-compiled >= 3x looped-numpy")
    parser.add_argument("--out", type=Path, default=None,
                        help="artifact path (default: repo-root "
                             "BENCH_multinomial.json; reduced mode writes "
                             "BENCH_multinomial.reduced.json so the committed "
                             "full-grid baseline is never clobbered)")
    parser.add_argument("--stamp-only", action="store_true",
                        help="re-stamp an existing artifact with cell keys + "
                             "git provenance without re-timing anything")
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = (ARTIFACT.with_suffix(".reduced.json") if args.reduced
                    else ARTIFACT)

    if args.stamp_only:
        report = json.loads(args.out.read_text())
        write_artifact(stamp_report(report), args.out)
        return 0
    if args.reduced:
        resolved = mnk.resolve_multinomial_backend("compiled")
        assert resolved.resolved == "compiled", (
            "compiled multinomial backend silently fell back to numpy "
            f"({resolved.detail or 'no provider'}) — this CI leg expects a "
            "working compiled kernel"
        )
        report = run_grid(REDUCED_GRID, mode="reduced")
        speedup = report["cells"][0]["speedup_fused_compiled_vs_looped_numpy"]
        assert speedup >= 3.0, (
            f"compiled multinomial kernel regression: only {speedup}x over "
            "the looped numpy-backend occupancy path (expected >=3x)"
        )
        print(f"reduced-mode smoke ok: kernel={resolved.kernel_id}, "
              f"{speedup}x >= 3x")
    else:
        report = run_grid(FULL_GRID, mode="full")
    write_artifact(stamp_report(report), args.out)
    return 0


# ---------------------------------------------------------------------- #
# pytest entry points (collected by the CI benchmark smoke)
# ---------------------------------------------------------------------- #
def test_perf_compiled_fused_occupancy(benchmark):
    """pytest-benchmark row: the fused engine, compiled backend, m=64."""
    if not mnk.use_compiled("compiled"):
        import pytest
        pytest.skip("no compiled multinomial backend available")
    init = make_workload_for_engine("blocks", "occupancy", n=10 ** 6, m=64)

    def fused():
        return _with_backend("compiled", run_batch_fused_occupancy,
                             init, 64, seed=7)

    batch = benchmark.pedantic(fused, rounds=1, iterations=1)
    assert batch.convergence_fraction == 1.0


def test_compiled_beats_looped_numpy_at_m64():
    """The headline claim as an assertion (wide floor for loaded CI boxes)."""
    if not mnk.use_compiled("compiled"):
        import pytest
        pytest.skip("no compiled multinomial backend available")
    cell = bench_cell(10 ** 5, 64, 64)
    assert cell["speedup_fused_compiled_vs_looped_numpy"] >= 3.0, cell


if __name__ == "__main__":
    sys.exit(main())
