"""Pytest configuration for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a Figure-1 cell, a
theorem's data series, a lemma's drift curve) at a laptop-friendly scale and
asserts the *shape* finding the paper claims (who wins, how the rounds grow).
Raw tables are printed, so ``pytest benchmarks/ --benchmark-only -s`` doubles
as the data source for EXPERIMENTS.md.

Problem sizes and run counts are controlled by the environment variables
``REPRO_BENCH_SCALE`` (default 0.5) and ``REPRO_BENCH_RUNS`` (default 5); see
``benchmarks/_bench_utils.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# make `import _bench_utils` work regardless of how pytest was invoked
sys.path.insert(0, str(Path(__file__).parent))

from _bench_utils import BENCH_RUNS, BENCH_SCALE  # noqa: E402


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Problem-size scale factor shared by all benchmarks."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_runs() -> int:
    """Monte-Carlo runs per experiment cell."""
    return BENCH_RUNS
