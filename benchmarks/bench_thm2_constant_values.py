"""THM2 — Theorem 2: constant number of values + √n-bounded adversary, O(log n).

Paper artifact: Theorem 2 (any initial state with a constant number of
different values; T ≤ √n).

What we measure: almost-stable-consensus round of the median rule against a
balancing adversary with T = 0.25·√n (see DESIGN.md on the constant) for a
ladder of n at several constant m.  Shape assertions: every cell converges
and the rounds grow like log n, not like a power of n.
"""

from __future__ import annotations

import numpy as np
import pytest


from repro.experiments.runner import run_sweep
from repro.experiments.sweep import theorem2_sweep

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


@pytest.mark.benchmark(group="theorem2")
def test_theorem2_constant_m_with_adversary(benchmark):
    base = (256, 1024, 4096)
    ns = tuple(max(128, int(n * BENCH_SCALE)) for n in base)
    sweep = theorem2_sweep(ns=ns, ms=(2, 4), num_runs=BENCH_RUNS, seed=202)
    report = run_once(benchmark, run_sweep, sweep)

    print("\n=== Theorem 2: almost-stable rounds, constant m, balancing adversary ===")
    for cell in report.cells:
        print(f"  {cell.config.name:24s} mean={cell.mean_rounds:7.2f} "
              f"converged={cell.convergence_fraction:.2f}")
        assert cell.convergence_fraction == 1.0

    # Shape check: rounds grow far more slowly than any power of n.  (The
    # adversarial waiting time is noisy at small run counts, so we assert a
    # robust ratio bound rather than a regression winner: multiplying n by
    # n_max/n_min must multiply the rounds by far less than sqrt(n_max/n_min).)
    by_n = {}
    for cell in report.cells:
        by_n.setdefault(cell.n, []).append(cell.mean_rounds)
    ns_sorted = sorted(by_n)
    small, large = np.mean(by_n[ns_sorted[0]]), np.mean(by_n[ns_sorted[-1]])
    size_ratio = ns_sorted[-1] / ns_sorted[0]
    print(f"  rounds({ns_sorted[-1]}) / rounds({ns_sorted[0]}) = {large / small:.2f} "
          f"(sqrt of size ratio = {np.sqrt(size_ratio):.2f})")
    assert large / small < 0.75 * np.sqrt(size_ratio), (
        "convergence rounds grow polynomially in n — contradicts Theorem 2")
