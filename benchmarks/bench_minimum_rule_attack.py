"""MINRULE — the Section 1.1 counterexample: minimum rule vs median rule.

Paper artifact: the introduction's argument that the minimum rule is not
stabilizing under a 1-bounded adversary, which motivates the median rule.

What we measure: both rules run from a state where value 1 holds all but one
process; after a delay the adversary re-introduces value 0 at a single
process each round.  Shape assertions: the minimum rule ends up flipped to
value 0 (so its apparent agreement was not stable); the median rule stays on
value 1 with all but O(T) processes.
"""

from __future__ import annotations

import numpy as np
import pytest


from repro.adversary.strategies import RevivingAdversary
from repro.core.baseline_rules import MinimumRule
from repro.core.median_rule import MedianRule
from repro.core.state import Configuration
from repro.engine.vectorized import simulate

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


def _attack(n, runs):
    rows = []
    for rule_cls, label in ((MinimumRule, "minimum"), (MedianRule, "median")):
        flipped = 0
        final_fracs = []
        for s in range(runs):
            init = Configuration.two_bins(n, minority=1, low=0, high=1)
            adv = RevivingAdversary(budget=1, delay=30, target_value=0)
            res = simulate(init, rule=rule_cls(), adversary=adv, seed=606 + s,
                           max_rounds=400, run_to_horizon=True)
            if res.final.majority_value() == 0:
                flipped += 1
            final_fracs.append(res.final.count_value(1) / n)
        rows.append({"rule": label, "flipped_runs": flipped, "runs": runs,
                     "mean_final_share_of_1": float(np.mean(final_fracs))})
    return rows


@pytest.mark.benchmark(group="minimum-rule")
def test_minimum_rule_attack(benchmark):
    n = max(256, int(1024 * BENCH_SCALE))
    rows = run_once(benchmark, _attack, n, max(BENCH_RUNS, 4))

    print(f"\n=== Minimum-rule counterexample (n={n}, 1-bounded reviving adversary) ===")
    for row in rows:
        print(f"  {row['rule']:8s} rule: flipped in {row['flipped_runs']}/{row['runs']} runs, "
              f"mean final share of value 1 = {row['mean_final_share_of_1']:.3f}")

    minimum = next(r for r in rows if r["rule"] == "minimum")
    median = next(r for r in rows if r["rule"] == "median")
    # the minimum rule is flipped every time; the median rule never is
    assert minimum["flipped_runs"] == minimum["runs"]
    assert median["flipped_runs"] == 0
    assert median["mean_final_share_of_1"] > 0.98
    assert minimum["mean_final_share_of_1"] < 0.1
