"""THM1 — Theorem 1: stable consensus in O(log n) rounds, no adversary.

Paper artifact: Theorem 1 (worst-case initial state = all-distinct values).

What we measure: mean consensus round of the median rule from the all-one
assignment for a geometric ladder of n, fitted against log n, sqrt n and
linear n.  Shape assertions: every run converges, the log-n predictor wins
the fit, and doubling n adds far less than 2× to the rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import compare_predictors, growth_ratio
from repro.core.state import Configuration
from repro.engine.batch import run_batch_fused

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


def _measure(ns, runs):
    means = []
    for n in ns:
        batch = run_batch_fused(Configuration.all_distinct(n), runs, seed=1000 + n)
        assert batch.convergence_fraction == 1.0
        means.append(batch.mean_rounds)
    return means


@pytest.mark.benchmark(group="theorem1")
def test_theorem1_log_n_scaling(benchmark):
    base = (128, 256, 512, 1024, 2048, 4096)
    ns = [max(64, int(n * BENCH_SCALE)) for n in base]
    runs = max(BENCH_RUNS, 5)
    means = run_once(benchmark, _measure, ns, runs)

    print("\n=== Theorem 1: consensus rounds vs n (all-distinct start, no adversary) ===")
    for n, mean in zip(ns, means):
        print(f"  n={n:6d}   mean rounds={mean:7.2f}   rounds/log2(n)={mean / np.log2(n):.2f}")

    fits = compare_predictors(ns, [2] * len(ns), means, ["log_n", "sqrt_n", "linear_n"])
    print("  best-fit predictor:", fits[0].predictor_name,
          f"(R^2={fits[0].r_squared:.4f})")
    assert fits[0].predictor_name == "log_n"

    ratios = [r for _, _, r in growth_ratio(ns, means)]
    print("  doubling ratios:", [round(r, 2) for r in ratios])
    assert all(r < 1.6 for r in ratios), "rounds nearly double when n doubles — not logarithmic"
