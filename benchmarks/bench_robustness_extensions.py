"""Robustness & future-work extensions (paper's conclusion: "higher dimensions"
and "the robustness of the protocol deserves further studies").

Not part of the paper's evaluation — these benches probe the open directions
the conclusion lists, using the extension modules of this library:

* **higher dimensions**: coordinate-wise and Tukey-style median rules on
  vector values (``repro.core.multidim``) — do they keep the O(log n)-like
  convergence of the 1-D rule?
* **asynchrony**: sequential activation instead of synchronous rounds
  (``repro.engine.asynchronous``) — does the rule still converge in O(log n)
  *sweeps* under uniform, shuffled and adversarial schedules?
* **sparse topologies**: the median rule on rings, tori and random regular
  graphs instead of the complete graph (``repro.network``) — where does the
  complete-graph analysis stop applying?
* **mean-field skeleton**: the deterministic prefix-mass recursion
  (``repro.analysis.meanfield``) against the stochastic engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.meanfield import compare_with_simulation, iterate_fractions
from repro.core.multidim import (
    CoordinatewiseMedianRule,
    TukeyMedianRule,
    VectorConfiguration,
    simulate_vector,
)
from repro.core.state import Configuration
from repro.engine.asynchronous import ACTIVATION_ORDERS, simulate_asynchronous
from repro.engine.vectorized import simulate
from repro.network.simulator import NetworkSimulator
from repro.network.topology import random_regular_topology, ring_topology, torus_topology

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


@pytest.mark.benchmark(group="extensions")
def test_higher_dimensions(benchmark):
    """Coordinate-wise vs Tukey median rules in d = 1, 2, 4 dimensions."""
    n = max(128, int(512 * BENCH_SCALE))
    repeats = max(BENCH_RUNS, 4)

    def _measure():
        rows = []
        for d in (1, 2, 4):
            for rule, label in ((CoordinatewiseMedianRule(), "coordinatewise"),
                                (TukeyMedianRule(), "tukey")):
                rounds, preserved = [], 0
                for s in range(repeats):
                    rng = np.random.default_rng(1000 + s)
                    vc = VectorConfiguration.random(n, d, 0, 10**6, rng)
                    res = simulate_vector(vc, rule=rule, seed=s, max_rounds=4000)
                    assert res.reached_consensus
                    rounds.append(res.consensus_round)
                    if vc.contains_vector(res.final_vector):
                        preserved += 1
                rows.append({"d": d, "rule": label, "mean_rounds": float(np.mean(rounds)),
                             "initial_vector_preserved": preserved, "repeats": repeats})
        return rows

    rows = run_once(benchmark, _measure)
    print(f"\n=== Higher dimensions (n={n}) ===")
    for row in rows:
        print(f"  d={row['d']}  {row['rule']:15s} mean rounds={row['mean_rounds']:7.1f}  "
              f"limit was an initial vector in {row['initial_vector_preserved']}/{row['repeats']} runs")

    coord = {r["d"]: r["mean_rounds"] for r in rows if r["rule"] == "coordinatewise"}
    tukey = {r["d"]: r["mean_rounds"] for r in rows if r["rule"] == "tukey"}
    # coordinate-wise: dimension costs essentially nothing (coordinates evolve in parallel)
    assert coord[4] < 2.5 * coord[1]
    # Tukey keeps value preservation but is slower as d grows; it must still finish
    assert all(np.isfinite(v) for v in tukey.values())
    # in d=1 both coincide with the scalar median rule up to noise
    assert tukey[1] < 3 * coord[1] + 10
    # Tukey always returns one of the initial vectors
    for row in rows:
        if row["rule"] == "tukey":
            assert row["initial_vector_preserved"] == row["repeats"]


@pytest.mark.benchmark(group="extensions")
def test_asynchronous_schedules(benchmark):
    """Sequential activation: uniform, per-sweep shuffle, adversarial ordering."""
    n = max(256, int(1024 * BENCH_SCALE))
    repeats = max(BENCH_RUNS, 4)
    init = Configuration.all_distinct(n)

    def _measure():
        sync_rounds = [simulate(init, seed=s).consensus_round for s in range(repeats)]
        out = {"synchronous rounds": float(np.mean(sync_rounds))}
        for order in ACTIVATION_ORDERS:
            sweeps = []
            for s in range(repeats):
                res = simulate_asynchronous(init, order=order, seed=100 + s, max_sweeps=2000)
                assert res.reached_consensus
                sweeps.append(res.consensus_sweep)
            out[f"async sweeps ({order})"] = float(np.mean(sweeps))
        return out

    results = run_once(benchmark, _measure)
    print(f"\n=== Asynchronous activation (n={n}) ===")
    for label, mean in results.items():
        print(f"  {label:28s} {mean:7.2f}")
    sync = results["synchronous rounds"]
    for order in ACTIVATION_ORDERS:
        assert results[f"async sweeps ({order})"] < 4 * sync + 10


@pytest.mark.benchmark(group="extensions")
def test_sparse_topologies(benchmark):
    """The median rule restricted to ring / torus / random-regular neighbourhoods."""
    side = max(8, int(16 * np.sqrt(BENCH_SCALE)))
    n = side * side

    def _measure():
        rows = []
        for label, topo in (
            ("complete", None),
            ("random 8-regular", random_regular_topology(n, 8, seed=1)),
            ("torus (degree 4)", torus_topology(side)),
            ("ring (degree 2)", ring_topology(n)),
        ):
            sim = NetworkSimulator(Configuration.two_bins(n, minority=n // 3),
                                   topology=topo, seed=5)
            res = sim.run(max_rounds=600)
            rows.append({
                "topology": label,
                "consensus": res.reached_consensus,
                "rounds": res.consensus_round,
                "final_agreement": res.final.agreement_fraction(),
            })
        return rows

    rows = run_once(benchmark, _measure)
    print(f"\n=== Sparse topologies (n={n}, 1/3-2/3 two-value start) ===")
    for row in rows:
        rounds = row["rounds"] if row["rounds"] is not None else "-"
        print(f"  {row['topology']:18s} consensus={str(row['consensus']):5s} "
              f"rounds={rounds}  agreement={row['final_agreement']:.3f}")
    by_label = {r["topology"]: r for r in rows}
    # complete graph and expander-like random regular graphs behave alike
    assert by_label["complete"]["consensus"]
    assert by_label["random 8-regular"]["final_agreement"] > 0.95
    # low-degree lattices still make progress towards large agreement
    assert by_label["torus (degree 4)"]["final_agreement"] > 0.75


@pytest.mark.benchmark(group="extensions")
def test_meanfield_skeleton(benchmark):
    """Deterministic prefix-mass recursion vs the stochastic engine."""
    n = max(512, int(2048 * BENCH_SCALE))

    def _measure():
        rows = []
        for label, fractions in (
            ("60/40 two bins", [0.4, 0.6]),
            ("uniform 5 bins", [0.2] * 5),
            ("skewed 4 bins", [0.1, 0.2, 0.3, 0.4]),
        ):
            predicted, simulated = compare_with_simulation(fractions, n, num_runs=max(BENCH_RUNS, 4),
                                                           seed=9)
            winner = iterate_fractions(fractions).winner()
            rows.append({"workload": label, "predicted": predicted, "simulated": simulated,
                         "meanfield_winner": winner})
        return rows

    rows = run_once(benchmark, _measure)
    print(f"\n=== Mean-field skeleton vs simulation (n={n}) ===")
    for row in rows:
        print(f"  {row['workload']:16s} mean-field rounds={row['predicted']:6.1f}  "
              f"simulated rounds={row['simulated']:6.1f}  winner bin={row['meanfield_winner']}")
        # the deterministic skeleton tracks the stochastic process within a small factor
        assert 0.2 <= row["predicted"] / row["simulated"] <= 5.0
