"""Ablations — design choices called out in DESIGN.md §5.

* power of two choices: median (2 choices) vs voter (1 choice) vs 3-majority;
* median vs mean rule (the mean rule converges but to a non-initial value);
* sampling with vs without replacement / with vs without self;
* adversary placement before vs after the sampling step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.base import AdversaryTiming
from repro.adversary.strategies import BalancingAdversary
from repro.core.baseline_rules import MeanRule, TwoChoicesMajorityRule, VoterRule
from repro.core.median_rule import MedianRule, MedianRuleWithoutReplacement
from repro.core.state import Configuration
from repro.engine.batch import run_batch
from repro.engine.vectorized import simulate
from repro.experiments.workloads import blocks_workload

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


@pytest.mark.benchmark(group="ablation")
def test_power_of_two_choices(benchmark):
    """Median (two choices) vs voter (one choice) vs classical 3-majority."""
    n = max(128, int(512 * BENCH_SCALE))
    init = blocks_workload(n, 16)
    runs = max(BENCH_RUNS, 4)

    def _measure():
        out = {}
        for label, rule, horizon in (
            ("median (2 choices)", MedianRule(), 400),
            ("3-majority", TwoChoicesMajorityRule(), 400),
            ("voter (1 choice)", VoterRule(), 12 * n),
        ):
            batch = run_batch(init, num_runs=runs, rule=rule, seed=111, max_rounds=horizon)
            out[label] = (batch.convergence_fraction, batch.mean_rounds)
        return out

    results = run_once(benchmark, _measure)
    print(f"\n=== Power of two choices (n={n}, 16 initial values) ===")
    for label, (frac, mean) in results.items():
        mean_s = "-" if np.isnan(mean) else f"{mean:.1f}"
        print(f"  {label:20s} converged={frac:.2f}  mean rounds={mean_s}")

    med_frac, med_mean = results["median (2 choices)"]
    vot_frac, vot_mean = results["voter (1 choice)"]
    assert med_frac == 1.0
    # the voter model is dramatically slower (Θ(n) vs O(log n))
    if vot_frac == 1.0:
        assert vot_mean > 5 * med_mean
    maj_frac, maj_mean = results["3-majority"]
    assert maj_frac == 1.0


@pytest.mark.benchmark(group="ablation")
def test_median_vs_mean_rule(benchmark):
    """The mean rule converges, but not necessarily to an initial value."""
    n = max(128, int(512 * BENCH_SCALE))
    initial_values = np.array([0, 10], dtype=np.int64)
    init = Configuration.from_values(np.repeat(initial_values, n // 2))

    def _measure():
        med = simulate(init, rule=MedianRule(), seed=22, max_rounds=600)
        mean = simulate(init, rule=MeanRule(), seed=22, max_rounds=600)
        return med, mean

    med, mean = run_once(benchmark, _measure)
    print(f"\n=== Median vs mean rule (n={n}, initial values {{0, 10}}) ===")
    print(f"  median rule: consensus={med.reached_consensus} value={med.winning_value}")
    print(f"  mean rule:   consensus={mean.reached_consensus} value={mean.winning_value} "
          f"support={sorted(mean.final.support.tolist())[:5]}")
    assert med.reached_consensus
    assert med.winning_value in (0, 10)
    # the mean rule contracts towards the average ~5, which is NOT an initial value
    if mean.reached_consensus:
        assert mean.winning_value not in (0, 10)
    else:
        assert not set(mean.final.support.tolist()) <= {0, 10}


@pytest.mark.benchmark(group="ablation")
def test_sampling_with_vs_without_replacement(benchmark):
    """Excluding self / forcing distinct contacts changes nothing measurable."""
    n = max(256, int(1024 * BENCH_SCALE))
    init = Configuration.all_distinct(n)
    runs = max(BENCH_RUNS, 5)

    def _measure():
        a = run_batch(init, num_runs=runs, rule=MedianRule(), seed=33)
        b = run_batch(init, num_runs=runs, rule=MedianRuleWithoutReplacement(), seed=34)
        return a.mean_rounds, b.mean_rounds

    with_mean, without_mean = run_once(benchmark, _measure)
    print(f"\n=== Sampling ablation (n={n}) ===")
    print(f"  with replacement / self allowed : {with_mean:.2f} rounds")
    print(f"  without replacement / no self   : {without_mean:.2f} rounds")
    assert with_mean == pytest.approx(without_mean, rel=0.4)


@pytest.mark.benchmark(group="ablation")
def test_adversary_timing_before_vs_after_sampling(benchmark):
    """Section 1.1 (before sampling) vs Section 3 (after sampling) placement."""
    n = max(512, int(1024 * BENCH_SCALE))
    budget = max(1, int(0.25 * np.sqrt(n)))
    init = Configuration.two_bins(n, minority=n // 2)
    runs = max(BENCH_RUNS, 4)

    def _measure():
        out = {}
        for timing in (AdversaryTiming.BEFORE_SAMPLING, AdversaryTiming.AFTER_SAMPLING):
            batch = run_batch(
                init, num_runs=runs,
                adversary_factory=lambda t=timing: BalancingAdversary(budget=budget, timing=t),
                seed=44, max_rounds=1200)
            out[timing.value] = (batch.convergence_fraction, batch.mean_rounds)
        return out

    results = run_once(benchmark, _measure)
    print(f"\n=== Adversary placement ablation (n={n}, T={budget}) ===")
    for timing, (frac, mean) in results.items():
        print(f"  {timing:18s} converged={frac:.2f}  mean rounds={mean:.1f}")
    for frac, _ in results.values():
        assert frac == 1.0
    before = results["before-sampling"][1]
    after = results["after-sampling"][1]
    assert before == pytest.approx(after, rel=0.75)
