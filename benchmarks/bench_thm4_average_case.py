"""THM4/THM21/COR22 — average case: odd m beats even m.

Paper artifact: Theorem 4, Theorem 21, Corollary 22 (uniform random initial
assignment to m bins: O(log m + log log n) rounds for odd m, Θ(log n) for
even m, with or without a √n-bounded adversary).

What we measure: mean convergence rounds for interleaved odd/even m at a
fixed n, with and without the balancing adversary.  Shape assertions: every
cell converges, and the average over odd m is smaller than the average over
even m in both settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import run_sweep
from repro.experiments.sweep import theorem4_sweep

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


def _run_both(n, ms, runs):
    no_adv = run_sweep(theorem4_sweep(n=n, ms=ms, with_adversary=False,
                                      num_runs=runs, seed=404))
    with_adv = run_sweep(theorem4_sweep(n=n, ms=ms, with_adversary=True,
                                        num_runs=runs, seed=405))
    return no_adv, with_adv


@pytest.mark.benchmark(group="theorem4")
def test_theorem4_odd_even_average_case(benchmark):
    n = max(512, int(4096 * BENCH_SCALE))
    ms = (4, 5, 8, 9, 16, 17)
    runs = max(BENCH_RUNS, 5)
    no_adv, with_adv = run_once(benchmark, _run_both, n, ms, runs)

    for label, report in (("without adversary", no_adv), ("with adversary", with_adv)):
        print(f"\n=== Theorem 4 / 21 / Cor 22: average case {label}, n={n} ===")
        odd, even = [], []
        for cell in report.cells:
            parity = "odd" if cell.m % 2 else "even"
            print(f"  m={cell.m:3d} ({parity:4s})  mean rounds={cell.mean_rounds:7.2f}")
            assert cell.convergence_fraction == 1.0
            (odd if cell.m % 2 else even).append(cell.mean_rounds)
        print(f"  mean over odd m:  {np.mean(odd):.2f}")
        print(f"  mean over even m: {np.mean(even):.2f}")
        # the paper's split: odd m is strictly easier than even m
        assert np.mean(odd) < np.mean(even), f"odd m not faster than even m ({label})"
