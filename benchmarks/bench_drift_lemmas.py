"""LEM11-16 — the two-bin drift structure (Lemmas 11, 12, 14, 15) and phases (Thm 20).

Paper artifacts: the lemma chain behind Theorem 10 and the phase argument of
Theorem 20.

What we measure:
* the empirical one-round drift of the minority load at several imbalances,
  against the exact expectation and the Lemma 11/12 bounds;
* the empirical distribution of the post-balanced-round imbalance against the
  Lemma 14 normal approximation and explicit lower bound;
* the empirical number of candidate-window halvings (phases) on a many-value
  adversarial run, against the Theorem 20 budget of log2(m)+1 phases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.clt import (
    imbalance_std_after_balanced_round,
    lemma14_lower_bound,
    simulate_balanced_round_imbalance,
)
from repro.analysis.drift import (
    expected_minority_next,
    lemma11_quadratic_bound,
    lemma12_contraction_factor,
    measure_empirical_drift,
)
from repro.analysis.phases import detect_phases, expected_phase_count
from repro.engine.trajectory import RecordLevel
from repro.engine.vectorized import simulate
from repro.experiments.workloads import blocks_workload

from _bench_utils import BENCH_SCALE, run_once


@pytest.mark.benchmark(group="drift")
def test_lemma11_12_drift_curve(benchmark):
    n = max(1000, int(4000 * BENCH_SCALE))
    minorities = [int(f * n) for f in (0.05, 0.15, 0.25, 0.35, 0.45)]
    rng = np.random.default_rng(77)

    def _measure():
        return [measure_empirical_drift(n, x, samples=200, rng=rng) for x in minorities]

    observations = run_once(benchmark, _measure)
    print(f"\n=== Lemmas 11/12: one-round minority drift at n={n} ===")
    print("  minority   empirical E[X']   exact E[X']   (1-d/2)X bound   3X^2/n bound")
    for obs in observations:
        x = obs.minority_before
        delta = (n / 2 - x) / n
        l12 = (1 - delta / 2) * x
        l11 = lemma11_quadratic_bound(n, x)
        print(f"  {x:8d}   {obs.minority_after_mean:13.1f}   {obs.predicted_mean:11.1f}"
              f"   {l12:14.1f}   {l11:12.1f}")
        assert obs.relative_error < 0.03
        # Lemma 12 bound holds whenever delta < 1/3
        if delta < 1 / 3:
            assert obs.predicted_mean <= l12 + 1e-9
        # Lemma 11 bound holds once the minority is at most n/4
        if x <= n / 4:
            assert obs.predicted_mean <= l11 + 1e-9

    # the contraction factor improves (gets smaller) as the minority shrinks
    factors = [lemma12_contraction_factor(n, x) for x in minorities]
    assert all(a <= b + 1e-12 for a, b in zip(factors, factors[1:]))


@pytest.mark.benchmark(group="drift")
def test_lemma14_clt_kickstart(benchmark):
    n = max(1024, int(4096 * BENCH_SCALE))
    if n % 2:
        n += 1
    samples = 3000
    rng = np.random.default_rng(78)

    psi = run_once(benchmark, simulate_balanced_round_imbalance, n, samples, rng)
    predicted_std = imbalance_std_after_balanced_round(n)
    print(f"\n=== Lemma 14: imbalance after one round from the balanced state, n={n} ===")
    print(f"  empirical std = {psi.std():.2f}   predicted sqrt(3n/16) = {predicted_std:.2f}")
    assert psi.std() == pytest.approx(predicted_std, rel=0.08)

    for c in (0.25, 0.5, 1.0):
        freq = float(np.mean(psi >= c * np.sqrt(n)))
        bound = lemma14_lower_bound(c)
        print(f"  P[Psi >= {c:.2f} sqrt(n)]  empirical={freq:.4f}   lemma lower bound={bound:.4f}")
        assert freq >= bound - 0.03


@pytest.mark.benchmark(group="drift")
def test_theorem20_phase_structure(benchmark):
    n = max(512, int(2048 * BENCH_SCALE))
    m = 16
    init = blocks_workload(n, m)

    def _run():
        res = simulate(init, seed=79, record=RecordLevel.FULL)
        return detect_phases(res.trajectory.configurations)

    records = run_once(benchmark, _run)
    print(f"\n=== Theorem 20 phase structure: n={n}, m={m} ===")
    for rec in records:
        print(f"  phase {rec.phase_index}: ends round {rec.end_round}, "
              f"candidate window has {rec.window_values} values")
    budget = expected_phase_count(m)
    print(f"  detected {len(records)} phases; Theorem 20 budget = {budget}")
    assert records and records[-1].window_values == 1
    assert len(records) <= budget + 2
