"""BATCH-FUSED — the batch-engine speedup matrix, recorded as a JSON artifact.

Times the four ways this library produces a convergence-round distribution —

* ``run_batch`` looping the vectorized engine (O(R·n) per round),
* ``run_batch(engine="occupancy")`` looping the occupancy engine
  (O(R·m²) per round plus R interpreter round trips per round),
* ``run_batch_fused`` (the (R, n) value-space tensor program),
* ``run_batch_fused_occupancy`` (the (R, m) count-tensor program) —

across an (n, m, R) grid, and writes ``BENCH_batch_fused.json`` at the repo
root so later PRs can diff kernel regressions against a committed baseline.

Run modes
---------
``python benchmarks/bench_batch_fused.py``            full grid (~1 min)
``python benchmarks/bench_batch_fused.py --reduced``  one small cell; asserts
    the fused occupancy engine beats the looped occupancy path by ≥2× so CI
    fails fast when the fused kernels regress (the real margin there is >20×).

What to expect (and why): the fused occupancy engine removes the per-run
*interpreter* overhead, which dominates the looped path whenever the O(m²)
kernel is cheap — at m ≤ 32 the measured speedup is well beyond 10×.  At
m = 64, n = 10⁶ the cost of both engines is dominated by the *same* exact
multinomial sampling (~R·m² elementary binomial draws per dense round, a few
hundred ms of C time that fusion cannot remove), so the ratio compresses to
~4–5×.  The JSON records both regimes; the acceptance cell (R=256, m=64,
n=10⁶) carries the measured ratio plus the sampling-bound context.

The pytest entry points below follow the repo's benchmark idiom
(``pytest benchmarks/bench_batch_fused.py``): one pytest-benchmark group plus
a wall-clock speedup assertion sized for loaded CI machines.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.batch import (
    run_batch,
    run_batch_fused,
    run_batch_fused_occupancy,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import make_workload_for_engine
from repro.store.artifacts import ArtifactRegistry, build_provenance
from repro.store.hashing import cell_key

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_batch_fused.json"
#: provenance ledger of repo-root bench artifacts (repro.store.artifacts)
REGISTRY = REPO_ROOT / "ARTIFACTS.json"
#: base seed of every timed cell (engines use small offsets from it)
BASE_SEED = 1234

#: value-space engines materialize (R, n) tensors; skip them beyond this
VALUE_SPACE_ELEM_LIMIT = 2 ** 24

#: (n, m, R) cells of the full grid; the (10**6, 64, 256) row is the
#: acceptance cell tracked by ISSUE 2
FULL_GRID: List[Tuple[int, int, int]] = [
    (10 ** 4, 16, 64),
    (10 ** 4, 64, 64),
    (10 ** 5, 32, 128),
    (10 ** 6, 8, 256),
    (10 ** 6, 16, 256),
    (10 ** 6, 64, 256),
    (10 ** 8, 64, 256),
]

REDUCED_GRID: List[Tuple[int, int, int]] = [
    (10 ** 5, 16, 96),
]


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return time.perf_counter() - t0, out


def bench_cell(n: int, m: int, R: int, seed: int = 1234,
               include_value_space: bool = True) -> Dict[str, object]:
    """Time every applicable batch engine on one (n, m, R) cell.

    ``include_value_space=False`` restricts the cell to the two occupancy
    engines (the pair whose ratio the smoke asserts) — the value-space
    engines cost O(R·n) per round and would dominate a reduced-mode run.
    """
    times: Dict[str, float] = {}
    mean_rounds: Dict[str, float] = {}

    def record(name: str, secs: float, batch) -> None:
        times[name] = round(secs, 4)
        mean_rounds[name] = round(float(batch.mean_rounds), 2)
        assert batch.convergence_fraction == 1.0, (
            f"{name} at (n={n}, m={m}, R={R}): "
            f"only {batch.convergence_fraction:.2f} of runs converged"
        )

    occ_init = make_workload_for_engine("blocks", "occupancy", n=n, m=m)
    secs, batch = _timed(run_batch, occ_init, R, seed=seed, engine="occupancy")
    record("occupancy", secs, batch)

    secs, batch = _timed(run_batch_fused_occupancy, occ_init, R, seed=seed + 1)
    record("occupancy-fused", secs, batch)

    if include_value_space and n * R <= VALUE_SPACE_ELEM_LIMIT:
        vec_init = make_workload_for_engine("blocks", "vectorized", n=n, m=m)
        secs, batch = _timed(run_batch, vec_init, R, seed=seed + 2,
                             engine="vectorized")
        record("vectorized", secs, batch)
        secs, batch = _timed(run_batch_fused, vec_init, R, seed=seed + 3)
        record("fused", secs, batch)

    cell: Dict[str, object] = {
        "n": n,
        "m": m,
        "R": R,
        "workload": "blocks",
        "rule": "median",
        "times_s": times,
        "mean_rounds": mean_rounds,
        "speedup_fused_occupancy_vs_occupancy": round(
            times["occupancy"] / times["occupancy-fused"], 2),
    }
    if "vectorized" in times:
        cell["speedup_fused_occupancy_vs_vectorized"] = round(
            times["vectorized"] / times["occupancy-fused"], 2)
    return cell


def run_grid(grid: List[Tuple[int, int, int]], mode: str) -> Dict[str, object]:
    cells = []
    for n, m, R in grid:
        cell = bench_cell(n, m, R, include_value_space=(mode == "full"))
        cells.append(cell)
        print(f"n={n:>10,} m={m:>3} R={R:>4}: "
              + "  ".join(f"{k}={v:.3f}s" for k, v in cell["times_s"].items())
              + f"  [occ-fused vs occ: {cell['speedup_fused_occupancy_vs_occupancy']}x]")

    report: Dict[str, object] = {
        "bench": "batch_fused",
        "schema": 1,
        "mode": mode,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cells": cells,
    }
    acceptance = next((c for c in cells
                       if (c["n"], c["m"], c["R"]) == (10 ** 6, 64, 256)), None)
    if acceptance is not None:
        report["acceptance"] = {
            "cell": {"n": 10 ** 6, "m": 64, "R": 256},
            "target_speedup_vs_occupancy": 10.0,
            "measured_speedup_vs_occupancy":
                acceptance["speedup_fused_occupancy_vs_occupancy"],
            "note": (
                "At m=64 both occupancy engines are bound by the same exact "
                "multinomial sampling (~R*m^2 elementary binomial draws per "
                "dense round); fusion removes the interpreter overhead, which "
                "dominates only for m <= 32 — see the m=8/16 rows for the "
                ">=10x regime."
            ),
        }
    return report


def bench_cell_config(n: int, m: int, R: int) -> ExperimentConfig:
    """The experiment-cell description of one timed (n, m, R) bench point."""
    return ExperimentConfig(
        name=f"bench:n={n},m={m},R={R}",
        workload="blocks",
        workload_params={"n": int(n), "m": int(m)},
        rule="median",
        num_runs=int(R),
        seed=BASE_SEED,
    )


def stamp_report(report: Dict[str, object]) -> Dict[str, object]:
    """Attach store keys + git provenance to a bench report (in place).

    Each timed (n, m, R) point maps to the content-addressed key of its
    experiment cell (:func:`repro.store.hashing.cell_key` — engine excluded
    by construction, so one key covers all engines timed on the cell), and
    the report records the git SHA / package version that produced the
    numbers, making every perf trajectory traceable to an exact config.
    """
    keys = {}
    for cell in report["cells"]:
        cfg = bench_cell_config(cell["n"], cell["m"], cell["R"])
        key = cell_key(cfg)
        cell["cell_key"] = key
        keys[cfg.name] = key
    report["provenance"] = build_provenance(
        keys, extra={"base_seed": BASE_SEED,
                     "seed_note": "engines are timed with per-engine offsets "
                                  "(base_seed .. base_seed+3)"})
    return report


def write_artifact(report: Dict[str, object], path: Path = ARTIFACT) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")
    if report.get("mode") == "full":
        # only the committed full-grid baseline enters the committed ledger;
        # reduced-mode CI smoke artifacts are ephemeral
        ArtifactRegistry(REGISTRY).register(
            path, kind="benchmark",
            cell_keys=report.get("provenance", {}).get("cell_keys", {}),
            extra={"bench": report.get("bench"), "mode": report.get("mode")})
        print(f"wrote {path} (registered in {REGISTRY.name})")
    else:
        print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reduced", action="store_true",
                        help="small single-cell mode for CI kernel-regression "
                             "smoke (asserts fused >= 2x looped occupancy)")
    parser.add_argument("--out", type=Path, default=None,
                        help="artifact path (default: repo-root "
                             "BENCH_batch_fused.json; reduced mode writes "
                             "BENCH_batch_fused.reduced.json so the committed "
                             "full-grid baseline is never clobbered)")
    parser.add_argument("--stamp-only", action="store_true",
                        help="re-stamp an existing artifact with cell keys + "
                             "git provenance without re-timing anything")
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = (ARTIFACT.with_suffix(".reduced.json") if args.reduced
                    else ARTIFACT)

    if args.stamp_only:
        report = json.loads(args.out.read_text())
        write_artifact(stamp_report(report), args.out)
        return 0
    if args.reduced:
        report = run_grid(REDUCED_GRID, mode="reduced")
        speedup = report["cells"][0]["speedup_fused_occupancy_vs_occupancy"]
        assert speedup >= 2.0, (
            f"fused occupancy kernel regression: only {speedup}x over the "
            "looped occupancy path (expected >=2x, typically >20x)"
        )
        print(f"reduced-mode smoke ok: {speedup}x >= 2x")
    else:
        report = run_grid(FULL_GRID, mode="full")
    write_artifact(stamp_report(report), args.out)
    return 0


# ---------------------------------------------------------------------- #
# pytest entry points (collected by the CI benchmark smoke)
# ---------------------------------------------------------------------- #
def test_perf_fused_occupancy_batch(benchmark):
    """pytest-benchmark row: the fused engine at a mid-size cell."""
    init = make_workload_for_engine("blocks", "occupancy", n=10 ** 6, m=32)

    def fused():
        return run_batch_fused_occupancy(init, 64, seed=7)

    batch = benchmark.pedantic(fused, rounds=1, iterations=1)
    assert batch.convergence_fraction == 1.0


def test_fused_occupancy_beats_looped_occupancy():
    """The headline claim as an assertion, at a cell where interpreter
    overhead dominates: fused must beat the looped occupancy path by a wide
    margin (real ratio >20x; the 2x floor only absorbs CI timer noise)."""
    cell = bench_cell(10 ** 5, 16, 96, include_value_space=False)
    assert cell["speedup_fused_occupancy_vs_occupancy"] >= 2.0, cell


if __name__ == "__main__":
    sys.exit(main())
