"""FIG1 — regenerate the paper's Figure 1 summary table.

Paper artifact: the 2×3 table of convergence bounds (worst-case 2 bins,
worst-case m bins, average-case m bins × with/without √n adversary).

What we measure: the empirical mean convergence round of every cell at one
fixed n, printed in the same layout.  Shape assertions: every cell converges,
and all cells sit within a small multiple of log2(n) rounds (the paper's
worst bound at fixed n is O(log m·log log n + log n), which at these sizes is
a constant factor of log n).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import reproduce_figure1

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


@pytest.mark.benchmark(group="figure1")
def test_figure1_table(benchmark):
    figure = run_once(benchmark, reproduce_figure1, scale=BENCH_SCALE,
                      num_runs=BENCH_RUNS, seed=808)
    print("\n=== Figure 1 (empirical mean rounds to (almost) stable consensus) ===")
    print(figure.table)

    report = figure.report
    n = report.cells[0].n
    bound = 12 * np.log2(n) + 40
    for cell in report.cells:
        assert cell.convergence_fraction == 1.0, f"cell {cell.config.name} did not converge"
        assert cell.mean_rounds <= bound, (
            f"cell {cell.config.name} took {cell.mean_rounds} rounds (> {bound})")

    # no-adversary cells should not be slower than their adversarial twins
    for prefix in ("worst-2bins", "avg-"):
        noadv = [c.mean_rounds for c in report.cells
                 if c.config.name.startswith(prefix) and c.config.name.endswith("/noadv")]
        adv = [c.mean_rounds for c in report.cells
               if c.config.name.startswith(prefix) and c.config.name.endswith("/adv")]
        if noadv and adv:
            assert np.mean(noadv) <= np.mean(adv) * 1.5 + 10
