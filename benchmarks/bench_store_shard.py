"""STORE-SHARD — sharded sweep execution vs serial, recorded as an artifact.

Times the store-routed execution backends on one moderate sweep —

* ``serial``: cold in-process execution through ``CachedSweepRunner``,
* ``shard``: the same sweep cold on a fresh store with K lease-based worker
  processes (coordination overhead + real parallelism),
* ``http``: the same sweep cold through a localhost coordinator with K
  store-less workers (the shard protocol plus an HTTP round-trip per lease
  op and per result upload — the disjoint-filesystem tax),
* ``warm``: the identical sweep against the populated store (all hits —
  the zero-recompute floor),
* ``offline``: warm replay with execution forbidden (figure regeneration) —

and writes ``BENCH_store_shard.json`` at the repo root (provenance-stamped in
``ARTIFACTS.json``) so later PRs can diff scheduler/lease overhead against a
committed baseline.  The interesting number is ``shard_overhead_s``: the gap
between sharded wall-clock and ideal serial/K, which is what the lease
protocol + process startup cost.

Run modes
---------
``python benchmarks/bench_store_shard.py``            full run (~30 s)
``python benchmarks/bench_store_shard.py --reduced``  tiny sweep; asserts the
    invariants (exactly-once compute log, warm executes nothing, offline
    replay equals the cold report) so CI fails fast on scheduler regressions.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.obs import trace as obs_trace
from repro.obs.export import merge_trace
from repro.store import (
    ArtifactRegistry,
    CachedSweepRunner,
    CoordinatorServer,
    CoordinatorStore,
    HttpBackend,
    ResultStore,
    build_provenance,
    read_execution_log,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_store_shard.json"
REGISTRY = REPO_ROOT / "ARTIFACTS.json"

WORKERS = 2


def _sweep(ns, num_runs) -> SweepConfig:
    # deliberately *vectorized* cells (~0.5–1.5 s each at full size): the
    # shard backend is built for expensive cells, where lease + process
    # startup overhead (~tens of ms) amortizes away; fused-occupancy cells
    # are so cheap that serial always wins and nothing is learned
    sweep = SweepConfig(name="bench-shard", description="shard bench sweep")
    for n in ns:
        sweep.add(ExperimentConfig(
            name=f"n={n}", workload="uniform-random",
            workload_params={"n": n, "m": 8}, rule="median",
            num_runs=num_runs, seed=1234, engine="vectorized"))
    return sweep


def _timed(func):
    t0 = time.perf_counter()
    out = func()
    return out, time.perf_counter() - t0


def run(reduced: bool = False) -> dict:
    ns = (49152, 65536, 98304, 131072) if not reduced else (256, 512)
    num_runs = 32 if not reduced else 4
    sweep = _sweep(ns, num_runs)

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # every stage runs under a bench.stage span in one trace: the
        # per-stage breakdown below comes from the merged spans (the same
        # telemetry an operator gets from `sweep --trace`), with the sweep
        # stack's own spans/metrics nested underneath
        trace_dir = tmp / "obs"
        obs_trace.activate(trace_dir)
        try:
            serial_runner = CachedSweepRunner(ResultStore(tmp / "serial"),
                                              backend="serial")
            with obs_trace.span("bench.stage", key="serial-cold",
                                stage="serial-cold"):
                serial_report, serial_s = _timed(
                    lambda: serial_runner.run(sweep))

            shard_store = ResultStore(tmp / "shard")
            shard_runner = CachedSweepRunner(shard_store, backend="shard",
                                             max_workers=WORKERS)
            with obs_trace.span("bench.stage", key="shard-cold",
                                stage="shard-cold"):
                shard_report, shard_s = _timed(
                    lambda: shard_runner.run(sweep))
            log = read_execution_log(shard_store.root)
            keys = [r["key"] for r in log]
            assert sorted(keys) == sorted(set(keys)), "duplicate computation!"
            assert len(keys) == len(sweep), "lost cells!"
            assert shard_report == serial_report, \
                "shard report != serial report"

            http_store = ResultStore(tmp / "http")
            with CoordinatorServer(http_store) as coord:
                http_runner = CachedSweepRunner(
                    CoordinatorStore(coord.url),
                    backend=HttpBackend(coord.url, workers=WORKERS))
                with obs_trace.span("bench.stage", key="http-cold",
                                    stage="http-cold"):
                    http_report, http_s = _timed(
                        lambda: http_runner.run(sweep))
            http_keys = [r["key"] for r in read_execution_log(http_store.root)]
            assert sorted(http_keys) == sorted(set(http_keys)), \
                "duplicate computation over http!"
            assert len(http_keys) == len(sweep), "lost cells over http!"
            assert http_report == serial_report, \
                "http report != serial report"

            with obs_trace.span("bench.stage", key="warm", stage="warm"):
                _, warm_s = _timed(lambda: shard_runner.run(sweep))
            assert shard_runner.last_stats.misses == 0
            assert not shard_runner.last_stats.executed

            offline_runner = CachedSweepRunner(shard_store, offline=True)
            with obs_trace.span("bench.stage", key="offline",
                                stage="offline"):
                offline_report, offline_s = _timed(
                    lambda: offline_runner.run(sweep))
            assert offline_report == shard_report
        finally:
            obs_trace.deactivate()

        merged = merge_trace(trace_dir)
        stages = {
            node.attrs.get("stage", node.span_id): round(node.dur_s, 4)
            for node in merged.spans_named("bench.stage")
        }
        telemetry = {
            "processes": len(merged.processes),
            "counters": merged.counters,
            "cell_elapsed_s": merged.histograms.get("cell.elapsed_s"),
        }

    # the achievable cold speedup is bounded by physical cores: on a 1-CPU
    # runner, shard ≈ serial is the *expected* good outcome (it shows the
    # lease protocol + worker processes cost ~nothing); real speedup needs
    # cpu_count >= workers
    import os

    cpus = os.cpu_count() or 1
    ideal = serial_s / min(WORKERS, cpus)
    return {
        "sweep": {"ns": list(ns), "num_runs": num_runs,
                  "cells": len(sweep), "workers": WORKERS},
        "cpu_count": cpus,
        "serial_cold_s": round(serial_s, 4),
        "shard_cold_s": round(shard_s, 4),
        "http_cold_s": round(http_s, 4),
        "shard_overhead_s": round(shard_s - ideal, 4),
        "http_overhead_s": round(http_s - ideal, 4),
        "warm_s": round(warm_s, 4),
        "offline_s": round(offline_s, 4),
        "speedup_cold": round(serial_s / shard_s, 3) if shard_s else None,
        "stages": stages,
        "telemetry": telemetry,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reduced", action="store_true",
                        help="tiny sweep, invariants only (CI smoke)")
    args = parser.parse_args(argv)

    payload = run(reduced=args.reduced)
    print(json.dumps(payload, indent=2))
    if args.reduced:
        print("reduced shard bench ok (exactly-once, warm=0, offline==cold)")
        return 0
    payload["provenance"] = build_provenance(extra={"benchmark": "store-shard"})
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    ArtifactRegistry(REGISTRY).register(ARTIFACT, kind="benchmark-json",
                                        extra={"benchmark": "store-shard"})
    print(f"\nwrote {ARTIFACT}")
    return 0


# ---------------------------------------------------------------------- #
# pytest entry point (repo benchmark idiom)
# ---------------------------------------------------------------------- #
def test_shard_invariants_reduced(benchmark=None):
    """Exactly-once compute, warm zero-execute, offline == cold (tiny sweep)."""
    payload = run(reduced=True)
    assert payload["sweep"]["cells"] == 2
    assert set(payload["stages"]) == {"serial-cold", "shard-cold",
                                      "http-cold", "warm", "offline"}
    # serial, shard and http cold runs each computed the whole sweep; the
    # traced counters see every one of those executions
    assert payload["telemetry"]["counters"]["cells.computed"] == 6


if __name__ == "__main__":
    sys.exit(main())
