"""ENGINE-OCCUPANCY — round cost of the occupancy engine is flat in n.

The acceptance claim of the occupancy engine (ISSUE 1) is that one round
costs O(m²) *independent of n*: the same per-round time at n = 10⁴ and
n = 10⁸ for fixed m.  The benchmark group below parameterizes one median
round over n ∈ {10⁴, 10⁶, 10⁸} at m = 64 — the three rows of the
pytest-benchmark table should coincide — and `test_round_cost_flat_in_n`
asserts the flatness directly with wall-clock medians so the claim is
enforced, not just displayed.

Also benchmarked: a full n = 10⁸ run to consensus, an adversarial n = 10⁷
run, and (for scale contrast) the vectorized engine's O(n) round at n = 10⁵.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.adversary.strategies import BalancingAdversary
from repro.core.median_rule import MedianRule
from repro.core.occupancy_state import OccupancyState
from repro.engine.occupancy import occupancy_round, simulate_occupancy
from repro.experiments.workloads import make_occupancy_workload

M_FIXED = 64


def _blocks_counts(n: int, m: int = M_FIXED) -> np.ndarray:
    return np.asarray(make_occupancy_workload("blocks", n=n, m=m).counts)


@pytest.mark.benchmark(group="engine-occupancy-round")
@pytest.mark.parametrize("n", [10**4, 10**6, 10**8],
                         ids=["n=1e4", "n=1e6", "n=1e8"])
def test_perf_occupancy_round_flat_in_n(benchmark, n):
    counts = _blocks_counts(n)
    rule = MedianRule()
    rng = np.random.default_rng(0)

    def one_round():
        return occupancy_round(counts, rule, rng)

    out = benchmark(one_round)
    assert int(out.sum()) == n


@pytest.mark.benchmark(group="engine-occupancy-round")
def test_perf_vectorized_round_for_contrast(benchmark):
    # the O(n) substrate at a mere n = 10⁵, for scale against the rows above
    n = 10**5
    rule = MedianRule()
    values = (np.arange(n, dtype=np.int64) * M_FIXED) // n
    rng = np.random.default_rng(0)

    def one_round():
        return rule.step(values, rng)

    out = benchmark(one_round)
    assert out.shape == (n,)


@pytest.mark.benchmark(group="engine-occupancy-run")
def test_perf_full_run_n_1e8(benchmark):
    init = OccupancyState(support=np.arange(32, dtype=np.int64),
                          counts=_blocks_counts(10**8, 32))

    def full_run():
        return simulate_occupancy(init, seed=1)

    res = benchmark(full_run)
    assert res.reached_consensus


@pytest.mark.benchmark(group="engine-occupancy-run")
def test_perf_adversarial_run_n_1e7(benchmark):
    n = 10**7
    init = OccupancyState(support=np.array([0, 1], dtype=np.int64),
                          counts=np.array([n // 2, n - n // 2], dtype=np.int64))

    def adversarial_run():
        adv = BalancingAdversary(budget=int(np.sqrt(n) // 4))
        return simulate_occupancy(init, adversary=adv, seed=2, max_rounds=400)

    res = benchmark(adversarial_run)
    assert res.reached_almost_stable
    assert res.meta["budget_ledger_ok"] is True


def test_round_cost_flat_in_n():
    """The acceptance criterion as an assertion: median per-round wall time at
    n = 10⁸ is within a small factor of n = 10⁴ (identical code path — the
    generous factor only absorbs timer noise on loaded CI machines)."""
    rule = MedianRule()

    def median_round_time(n: int, reps: int = 30) -> float:
        counts = _blocks_counts(n)
        rng = np.random.default_rng(42)
        occupancy_round(counts, rule, rng)  # warm-up
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            occupancy_round(counts, rule, rng)
            times.append(time.perf_counter() - t0)
        return float(np.median(times))

    t_small = median_round_time(10**4)
    t_huge = median_round_time(10**8)
    assert t_huge <= 10.0 * t_small, (
        f"occupancy round not flat in n: {t_small * 1e6:.0f}µs at n=1e4 vs "
        f"{t_huge * 1e6:.0f}µs at n=1e8"
    )
