"""ENGINE-OCCUPANCY — round cost of the occupancy engine is flat in n.

The acceptance claim of the occupancy engine (ISSUE 1) is that one round
costs O(m²) *independent of n*: the same per-round time at n = 10⁴ and
n = 10⁸ for fixed m.  The benchmark group below parameterizes one median
round over n ∈ {10⁴, 10⁶, 10⁸} at m = 64 — the three rows of the
pytest-benchmark table should coincide — and `test_round_cost_flat_in_n`
asserts the flatness directly with wall-clock medians so the claim is
enforced, not just displayed.

Also benchmarked: a full n = 10⁸ run to consensus, an adversarial n = 10⁷
run, and (for scale contrast) the vectorized engine's O(n) round at n = 10⁵.

Rule × adversary baseline artifact (ISSUE 4)
--------------------------------------------
Run as a script, this module times the widened kernel matrix — the median
and majority families crossed with the count-space adversaries, including
the victim-occupancy forms of sticky/hiding — through the fused occupancy
engine at n = 10⁶, checks each rule's exact expected drift
(:func:`repro.analysis.drift.occupancy_expected_counts`) against a Monte
Carlo estimate within CLT bounds, and writes ``BENCH_occupancy_rules.json``
at the repo root (full mode registers it in the ``ARTIFACTS.json`` ledger
with per-cell store keys + git provenance):

``python benchmarks/bench_engine_occupancy.py``            full grid
``python benchmarks/bench_engine_occupancy.py --reduced``  one
    three-majority + sticky cell for CI smoke; asserts full convergence and
    a clean budget ledger, writes ``BENCH_occupancy_rules.reduced.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.adversary.strategies import BalancingAdversary, make_adversary
from repro.analysis.drift import measure_empirical_occupancy_drift
from repro.core.median_rule import MedianRule
from repro.core.occupancy_state import OccupancyState
from repro.core.rules import get_rule
from repro.engine.batch import run_batch_fused_occupancy
from repro.engine.occupancy import occupancy_round, simulate_occupancy
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import make_occupancy_workload

M_FIXED = 64


def _blocks_counts(n: int, m: int = M_FIXED) -> np.ndarray:
    return np.asarray(make_occupancy_workload("blocks", n=n, m=m).counts)


@pytest.mark.benchmark(group="engine-occupancy-round")
@pytest.mark.parametrize("n", [10**4, 10**6, 10**8],
                         ids=["n=1e4", "n=1e6", "n=1e8"])
def test_perf_occupancy_round_flat_in_n(benchmark, n):
    counts = _blocks_counts(n)
    rule = MedianRule()
    rng = np.random.default_rng(0)

    def one_round():
        return occupancy_round(counts, rule, rng)

    out = benchmark(one_round)
    assert int(out.sum()) == n


@pytest.mark.benchmark(group="engine-occupancy-round")
def test_perf_vectorized_round_for_contrast(benchmark):
    # the O(n) substrate at a mere n = 10⁵, for scale against the rows above
    n = 10**5
    rule = MedianRule()
    values = (np.arange(n, dtype=np.int64) * M_FIXED) // n
    rng = np.random.default_rng(0)

    def one_round():
        return rule.step(values, rng)

    out = benchmark(one_round)
    assert out.shape == (n,)


@pytest.mark.benchmark(group="engine-occupancy-run")
def test_perf_full_run_n_1e8(benchmark):
    init = OccupancyState(support=np.arange(32, dtype=np.int64),
                          counts=_blocks_counts(10**8, 32))

    def full_run():
        return simulate_occupancy(init, seed=1)

    res = benchmark(full_run)
    assert res.reached_consensus


@pytest.mark.benchmark(group="engine-occupancy-run")
def test_perf_adversarial_run_n_1e7(benchmark):
    n = 10**7
    init = OccupancyState(support=np.array([0, 1], dtype=np.int64),
                          counts=np.array([n // 2, n - n // 2], dtype=np.int64))

    def adversarial_run():
        adv = BalancingAdversary(budget=int(np.sqrt(n) // 4))
        return simulate_occupancy(init, adversary=adv, seed=2, max_rounds=400)

    res = benchmark(adversarial_run)
    assert res.reached_almost_stable
    assert res.meta["budget_ledger_ok"] is True


def test_round_cost_flat_in_n():
    """The acceptance criterion as an assertion: median per-round wall time at
    n = 10⁸ is within a small factor of n = 10⁴ (identical code path — the
    generous factor only absorbs timer noise on loaded CI machines)."""
    rule = MedianRule()

    def median_round_time(n: int, reps: int = 30) -> float:
        counts = _blocks_counts(n)
        rng = np.random.default_rng(42)
        occupancy_round(counts, rule, rng)  # warm-up
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            occupancy_round(counts, rule, rng)
            times.append(time.perf_counter() - t0)
        return float(np.median(times))

    t_small = median_round_time(10**4)
    t_huge = median_round_time(10**8)
    assert t_huge <= 10.0 * t_small, (
        f"occupancy round not flat in n: {t_small * 1e6:.0f}µs at n=1e4 vs "
        f"{t_huge * 1e6:.0f}µs at n=1e8"
    )


# ---------------------------------------------------------------------- #
# rule × adversary baseline artifact (BENCH_occupancy_rules.json)
# ---------------------------------------------------------------------- #
REPO_ROOT = Path(__file__).resolve().parents[1]
RULES_ARTIFACT = REPO_ROOT / "BENCH_occupancy_rules.json"
REGISTRY = REPO_ROOT / "ARTIFACTS.json"
RULES_BASE_SEED = 4321

#: (rule, adversary) grid of the full baseline; every pair runs on the fused
#: occupancy engine (the point of ISSUE 4: none of these fall back anymore).
RULES_FULL_GRID: List[Tuple[str, str]] = [
    (rule, adv)
    for rule in ("median", "three-majority", "two-choices-majority")
    for adv in ("null", "sticky", "hiding")
]

RULES_REDUCED_GRID: List[Tuple[str, str]] = [("three-majority", "sticky")]

#: geometry of every timed cell: n is irrelevant to the occupancy engines'
#: cost (that is the point), m/R sized so the full grid runs in seconds
RULES_N, RULES_M, RULES_R = 10 ** 6, 16, 128


def _rules_adversary_factory(adversary: str, budget: int):
    if adversary == "null" or budget == 0:
        return None
    return lambda: make_adversary(adversary, budget=budget)


def rules_cell_config(rule: str, adversary: str, budget: int) -> ExperimentConfig:
    """The experiment-cell description of one timed (rule, adversary) point."""
    return ExperimentConfig(
        name=f"rules:rule={rule},adv={adversary}",
        workload="blocks",
        workload_params={"n": RULES_N, "m": RULES_M},
        rule=rule,
        adversary=adversary if budget > 0 else "null",
        adversary_budget=budget,
        num_runs=RULES_R,
        seed=RULES_BASE_SEED,
        engine="occupancy-fused",
    )


def _rules_drift_max_z(rule: str) -> float:
    """Exact one-round expected drift vs Monte Carlo, CLT-bounded (z <= 6).

    Depends only on the rule (fixed initial counts and seed), so
    :func:`run_rules_grid` computes it once per rule, not once per cell.
    """
    init = make_occupancy_workload("blocks", n=RULES_N, m=RULES_M)
    drift = measure_empirical_occupancy_drift(
        get_rule(rule), np.asarray(init.counts), samples=2000,
        rng=np.random.default_rng(RULES_BASE_SEED + 7))
    z = np.abs(drift["mean"] - drift["predicted"]) / np.maximum(
        drift["standard_error"], 1e-9)
    max_z = float(z.max())
    assert max_z <= 6.0, (
        f"{rule}: exact drift vs Monte Carlo beyond CLT bounds (max z={max_z:.2f})"
    )
    return max_z


def bench_rules_cell(rule: str, adversary: str,
                     drift_max_z: Optional[float] = None) -> Dict[str, object]:
    """Time one rule × adversary cell through the fused occupancy engine and
    cross-check the rule's exact expected drift against Monte Carlo."""
    budget = 0 if adversary == "null" else int(np.sqrt(RULES_N) // 4)
    init = make_occupancy_workload("blocks", n=RULES_N, m=RULES_M)
    t0 = time.perf_counter()
    batch = run_batch_fused_occupancy(
        init, RULES_R, rule=get_rule(rule),
        adversary_factory=_rules_adversary_factory(adversary, budget),
        seed=RULES_BASE_SEED, max_rounds=1200)
    secs = time.perf_counter() - t0
    assert batch.meta["budget_ledger_ok"] is True

    max_z = drift_max_z if drift_max_z is not None else _rules_drift_max_z(rule)

    return {
        "rule": rule,
        "adversary": adversary,
        "adversary_budget": budget,
        "n": RULES_N,
        "m": RULES_M,
        "R": RULES_R,
        "engine": "occupancy-fused",
        "time_s": round(secs, 4),
        "mean_rounds": round(float(batch.mean_rounds), 2),
        "convergence_fraction": float(batch.convergence_fraction),
        "drift_max_z": round(max_z, 3),
    }


def run_rules_grid(grid: List[Tuple[str, str]], mode: str) -> Dict[str, object]:
    cells = []
    drift_by_rule: Dict[str, float] = {}
    for rule, adversary in grid:
        if rule not in drift_by_rule:
            drift_by_rule[rule] = _rules_drift_max_z(rule)
        cell = bench_rules_cell(rule, adversary, drift_max_z=drift_by_rule[rule])
        cells.append(cell)
        print(f"rule={rule:>22} adv={adversary:>7}: {cell['time_s']:.3f}s "
              f"mean_rounds={cell['mean_rounds']} "
              f"converged={cell['convergence_fraction']:.2f} "
              f"drift_z={cell['drift_max_z']}")
    return {
        "bench": "occupancy_rules",
        "schema": 1,
        "mode": mode,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "geometry": {"n": RULES_N, "m": RULES_M, "R": RULES_R},
        "cells": cells,
    }


def stamp_rules_report(report: Dict[str, object]) -> Dict[str, object]:
    """Attach content-addressed store keys + git provenance (in place)."""
    from repro.store.artifacts import build_provenance
    from repro.store.hashing import cell_key

    keys = {}
    for cell in report["cells"]:
        cfg = rules_cell_config(cell["rule"], cell["adversary"],
                                cell["adversary_budget"])
        key = cell_key(cfg)
        cell["cell_key"] = key
        keys[cfg.name] = key
    report["provenance"] = build_provenance(
        keys, extra={"base_seed": RULES_BASE_SEED})
    return report


def write_rules_artifact(report: Dict[str, object],
                         path: Path = RULES_ARTIFACT) -> None:
    from repro.store.artifacts import ArtifactRegistry

    path.write_text(json.dumps(report, indent=2) + "\n")
    if report.get("mode") == "full":
        # only the committed full-grid baseline enters the committed ledger
        ArtifactRegistry(REGISTRY).register(
            path, kind="benchmark",
            cell_keys=report.get("provenance", {}).get("cell_keys", {}),
            extra={"bench": report.get("bench"), "mode": report.get("mode")})
        print(f"wrote {path} (registered in {REGISTRY.name})")
    else:
        print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="rule × adversary occupancy baseline artifact")
    parser.add_argument("--reduced", action="store_true",
                        help="single three-majority + sticky cell through the "
                             "fused engine for CI smoke")
    parser.add_argument("--out", type=Path, default=None,
                        help="artifact path (default: repo-root "
                             "BENCH_occupancy_rules.json; reduced mode writes "
                             "BENCH_occupancy_rules.reduced.json so the "
                             "committed baseline is never clobbered)")
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = (RULES_ARTIFACT.with_suffix(".reduced.json") if args.reduced
                    else RULES_ARTIFACT)
    if args.reduced:
        report = run_rules_grid(RULES_REDUCED_GRID, mode="reduced")
        cell = report["cells"][0]
        assert cell["convergence_fraction"] == 1.0, (
            "reduced-mode smoke: three-majority + sticky via the fused "
            f"engine converged only {cell['convergence_fraction']:.2f}"
        )
        print("reduced-mode smoke ok: three-majority + sticky fused cell "
              f"converged in {cell['mean_rounds']} mean rounds")
    else:
        report = run_rules_grid(RULES_FULL_GRID, mode="full")
    write_rules_artifact(stamp_rules_report(report), args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
