"""FINENESS — Lemma 17: finer assignments converge no faster (monotone coupling).

Paper artifact: Lemma 17 and the partial order of Section 4.1, which justify
analysing only the all-one (all-distinct) worst case.

What we measure: coupled runs (shared randomness) of the all-distinct
assignment against successively coarser block assignments.  Shape assertions:
in every coupled run the coarser process is the monotone image of the finer
one at every round and reaches consensus no later; and the mean consensus
time is monotone along the chain all-distinct ≥ 16 blocks ≥ 4 blocks ≥ 2
blocks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fineness import coupled_run
from repro.core.state import Configuration
from repro.engine.batch import run_batch_fused
from repro.experiments.workloads import blocks_workload

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


def _coupled(n, repeats):
    fine = Configuration.all_distinct(n)
    coarse = blocks_workload(n, 4)
    violations = 0
    pairs = []
    for s in range(repeats):
        rng = np.random.default_rng(900 + s)
        out = coupled_run(fine, coarse, rounds=800, rng=rng)
        assert out.fine_consensus_round is not None
        assert out.coarse_consensus_round is not None
        if out.coarse_consensus_round > out.fine_consensus_round:
            violations += 1
        pairs.append((out.fine_consensus_round, out.coarse_consensus_round))
    return violations, pairs


@pytest.mark.benchmark(group="fineness")
def test_lemma17_coupling(benchmark):
    n = max(128, int(256 * BENCH_SCALE))
    repeats = max(BENCH_RUNS, 5)
    violations, pairs = run_once(benchmark, _coupled, n, repeats)

    print(f"\n=== Lemma 17 coupling (n={n}, {repeats} coupled runs) ===")
    for fine_r, coarse_r in pairs:
        print(f"  fine (all-distinct) consensus at {fine_r:4d}   coarse (4 blocks) at {coarse_r:4d}")
    print(f"  dominance violations: {violations}")
    assert violations == 0, "Lemma 17 coupling violated: coarser run finished later"


@pytest.mark.benchmark(group="fineness")
def test_mean_consensus_time_monotone_in_fineness(benchmark):
    n = max(256, int(512 * BENCH_SCALE))
    runs = max(BENCH_RUNS * 3, 12)

    def _means():
        out = {}
        for label, cfg in (
            ("all-distinct", Configuration.all_distinct(n)),
            ("16 blocks", blocks_workload(n, 16)),
            ("4 blocks", blocks_workload(n, 4)),
            ("2 blocks", blocks_workload(n, 2)),
        ):
            batch = run_batch_fused(cfg, runs, seed=hash(label) % (2**31))
            assert batch.convergence_fraction == 1.0
            out[label] = batch.mean_rounds
        return out

    means = run_once(benchmark, _means)
    print(f"\n=== Mean consensus rounds by fineness (n={n}, {runs} runs each) ===")
    for label, mean in means.items():
        print(f"  {label:14s} {mean:7.2f}")
    # unconditional stochastic dominance implies ordering of the means,
    # up to Monte-Carlo noise (hence the small slack)
    assert means["all-distinct"] >= means["4 blocks"] - 2.0
    assert means["16 blocks"] >= means["2 blocks"] - 2.0
