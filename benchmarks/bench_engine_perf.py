"""ENGINE — throughput of the simulation substrates (ours, not from the paper).

Micro-benchmarks of the three execution surfaces so regressions in the hot
path are visible:

* one vectorized median-rule round at large n;
* a full vectorized run to consensus at moderate n;
* a fused batch of runs;
* the agent-level message-passing simulator (per-round cost, small n).

These use pytest-benchmark's normal repetition (not pedantic single shots)
because they are genuine micro-benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.median_rule import MedianRule
from repro.core.state import Configuration
from repro.engine.batch import run_batch_fused
from repro.engine.vectorized import simulate
from repro.network.simulator import NetworkSimulator


@pytest.mark.benchmark(group="engine-perf")
def test_perf_single_vectorized_round(benchmark):
    n = 1 << 16
    rule = MedianRule()
    values = np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(0)

    def one_round():
        return rule.step(values, rng)

    out = benchmark(one_round)
    assert out.shape == (n,)


@pytest.mark.benchmark(group="engine-perf")
def test_perf_full_run_to_consensus(benchmark):
    init = Configuration.all_distinct(4096)

    def full_run():
        return simulate(init, seed=1)

    res = benchmark(full_run)
    assert res.reached_consensus


@pytest.mark.benchmark(group="engine-perf")
def test_perf_fused_batch(benchmark):
    init = Configuration.all_distinct(1024)

    def batch():
        return run_batch_fused(init, 8, seed=2)

    out = benchmark(batch)
    assert out.convergence_fraction == 1.0


@pytest.mark.benchmark(group="engine-perf")
def test_perf_network_simulator_round(benchmark):
    sim = NetworkSimulator(Configuration.all_distinct(256), seed=3)

    def one_round():
        return sim.step()

    out = benchmark(one_round)
    assert out.shape == (256,)
