"""THM3 — Theorem 3: m values + √n-bounded adversary, O(log m·log log n + log n).

Paper artifact: Theorem 3 / Theorem 20.

What we measure: (a) rounds vs m at fixed n, and (b) rounds vs n at fixed m,
with a balancing adversary at T = 0.25·√n.  Shape assertions: every cell
converges; the m-dependence is sub-linear (multiplying m by 32 multiplies
rounds by far less); the n-dependence is logarithmic.
"""

from __future__ import annotations

import numpy as np
import pytest


from repro.experiments.runner import run_sweep
from repro.experiments.sweep import theorem3_sweep

from _bench_utils import BENCH_RUNS, BENCH_SCALE, run_once


@pytest.mark.benchmark(group="theorem3")
def test_theorem3_m_and_n_scaling(benchmark):
    n_fixed = max(256, int(2048 * BENCH_SCALE))
    ns = tuple(max(128, int(x * BENCH_SCALE)) for x in (512, 1024, 2048, 4096))
    ms = (2, 8, 32, 64)
    sweep = theorem3_sweep(n=n_fixed, ms=ms, ns=ns, m_for_n_sweep=16,
                           num_runs=BENCH_RUNS, seed=303)
    report = run_once(benchmark, run_sweep, sweep)

    m_cells = [c for c in report.cells if c.config.name.startswith("m-sweep")]
    n_cells = [c for c in report.cells if c.config.name.startswith("n-sweep")]

    print("\n=== Theorem 3: rounds vs m (fixed n) ===")
    for cell in m_cells:
        print(f"  m={cell.m:4d}  mean rounds={cell.mean_rounds:7.2f}")
        assert cell.convergence_fraction == 1.0
    print("=== Theorem 3: rounds vs n (fixed m) ===")
    for cell in n_cells:
        print(f"  n={cell.n:6d}  mean rounds={cell.mean_rounds:7.2f}")
        assert cell.convergence_fraction == 1.0

    # m-dependence: going from m=2 to m=64 should cost far less than 32x
    m_rounds = {c.m: c.mean_rounds for c in m_cells}
    assert m_rounds[max(m_rounds)] < 6 * m_rounds[min(m_rounds)] + 20

    # n-dependence at fixed m: far below polynomial growth.  (Adversarial
    # waiting times are noisy at small run counts, so assert a robust ratio
    # bound instead of a regression winner.)
    n_rounds = {c.n: c.mean_rounds for c in n_cells}
    ns_sorted = sorted(n_rounds)
    size_ratio = ns_sorted[-1] / ns_sorted[0]
    growth = n_rounds[ns_sorted[-1]] / n_rounds[ns_sorted[0]]
    print(f"  n-sweep growth factor {growth:.2f} over a {size_ratio:.0f}x size increase "
          f"(sqrt bound {np.sqrt(size_ratio):.2f})")
    assert growth < 0.75 * np.sqrt(size_ratio), (
        "convergence rounds grow polynomially in n — contradicts Theorem 3")

    # the paper's combined predictor at these sizes predicts a narrow range of
    # rounds across all cells; confirm the spread of measured means is small
    all_means = [c.mean_rounds for c in report.cells]
    assert max(all_means) < 4 * min(all_means) + 20
