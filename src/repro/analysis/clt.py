"""Central-limit-theorem kick-start of Lemma 14.

Lemma 14: from a perfectly balanced two-bin state (labelled imbalance
``Ψ_t = 0``) one round of the majority rule produces an imbalance of at least
``c·sqrt(n)`` with probability at least

    1 / (sqrt(2π)·(1 + 4c/sqrt(3))) · exp(−8c²/3)  −  ε .

The fluctuation driving this is ``Ψ_{t+1} = Σ_{left} X_i − Σ_{right} X_i``
where each ``X_i ~ Bernoulli(1/4)`` indicates a ball switching sides, so
``Ψ_{t+1}`` is asymptotically normal with mean 0 and variance ``3n/16``.

This module provides the exact asymptotic probability, the paper's explicit
lower bound, and the Gaussian-tail sandwich used in the proof; tests verify
the sandwich ordering and compare the bound against Monte-Carlo estimates.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

__all__ = [
    "imbalance_std_after_balanced_round",
    "lemma14_lower_bound",
    "lemma14_asymptotic_probability",
    "gaussian_tail_bounds",
    "simulate_balanced_round_imbalance",
]


def imbalance_std_after_balanced_round(n: int) -> float:
    """Standard deviation of ``Ψ_{t+1}`` after one round from ``Ψ_t = 0``.

    Each of the ``n`` balls independently switches sides with probability
    1/4, contributing ±1/... — more precisely ``Ψ_{t+1}`` is a centred sum of
    ``n`` Bernoulli(1/4) variables with signs, giving variance
    ``n · (3/16)`` (the paper's σ² = 3/8 for the normalized √(2/n)·Ψ).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return math.sqrt(3.0 * n / 16.0)


def lemma14_asymptotic_probability(c: float) -> float:
    """Asymptotic value of ``P[Ψ_{t+1} ≥ c·sqrt(n)]`` from a balanced state.

    By the CLT this converges to ``1 − Φ(c·sqrt(16/3))`` where Φ is the
    standard-normal CDF (the paper's expression with x = c·√(16/3)).
    """
    if c < 0:
        raise ValueError("c must be non-negative")
    return float(1.0 - norm.cdf(c * math.sqrt(16.0 / 3.0)))


def lemma14_lower_bound(c: float, epsilon: float = 0.0) -> float:
    """The explicit lower bound of Lemma 14.

    ``1/(sqrt(2π)(1 + 4c/sqrt(3))) · exp(−8c²/3) − ε``.
    """
    if c < 0:
        raise ValueError("c must be non-negative")
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    bound = math.exp(-8.0 * c * c / 3.0) / (math.sqrt(2.0 * math.pi) * (1.0 + 4.0 * c / math.sqrt(3.0)))
    return max(0.0, bound - epsilon)


def gaussian_tail_bounds(x: float) -> tuple[float, float]:
    """The sandwich ``e^{-x²/2}/(sqrt(2π)(1+x)) ≤ 1 − Φ(x) ≤ e^{-x²/2}/(sqrt(π)(1+x))``.

    Quoted in the proof of Lemma 14 (from Itô–McKean / Johnson–Kotz).
    Returns ``(lower, upper)``; valid for ``x ≥ 0``.
    """
    if x < 0:
        raise ValueError("x must be non-negative")
    core = math.exp(-x * x / 2.0) / (1.0 + x)
    return core / math.sqrt(2.0 * math.pi), core / math.sqrt(math.pi)


def simulate_balanced_round_imbalance(n: int, samples: int,
                                      rng: np.random.Generator) -> np.ndarray:
    """Monte-Carlo draw of ``Ψ_{t+1}`` from the balanced two-bin state.

    Runs ``samples`` independent single rounds of the majority rule from the
    50/50 configuration and returns the resulting labelled imbalances
    ``(R_{t+1} − L_{t+1}) / 2``.  Used by the DRIFT benchmark to overlay the
    empirical distribution on the Lemma 14 normal approximation.
    """
    if n % 2 != 0:
        raise ValueError("the balanced state needs even n")
    if samples <= 0:
        raise ValueError("samples must be positive")
    values = np.zeros((samples, n), dtype=np.int64)
    values[:, n // 2:] = 1
    contacts = rng.integers(0, n, size=(samples, n, 2))
    vj = np.take_along_axis(values, contacts[:, :, 0], axis=1)
    vk = np.take_along_axis(values, contacts[:, :, 1], axis=1)
    lo = np.minimum(values, vj)
    hi = np.maximum(values, vj)
    new_values = np.maximum(lo, np.minimum(hi, vk))
    right = new_values.sum(axis=1)
    left = n - right
    return (right - left) / 2.0
