"""Empirical statistics of convergence times and scaling-shape fits.

The reproduction's claims are *shape* claims: measured convergence rounds
grow like the theorem's predictor (log n, log m·log log n + log n, ...), the
adversary threshold sits near sqrt(n), odd m beats even m in the average
case.  This module turns batches of measured rounds into those statements:

* :func:`summarize_rounds` — robust summary statistics of a round sample;
* :func:`fit_scaling` — least-squares fit of ``rounds ≈ a·predictor(n,m)+b``
  with the coefficient of determination, so "grows like log n" becomes an
  R² number;
* :func:`compare_predictors` — fit several candidate growth laws and rank
  them (the reproduction passes when the paper's predictor wins or ties);
* :func:`growth_ratio` — the doubling-ratio diagnostic: for x doubling, how
  much do rounds grow?  ≈ additive-constant for log-growth, ≈ ×2 for linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.theory import PREDICTORS, Predictor

__all__ = [
    "RoundsSummary",
    "summarize_rounds",
    "ScalingFit",
    "fit_scaling",
    "compare_predictors",
    "growth_ratio",
    "empirical_success_probability",
]


@dataclass(frozen=True)
class RoundsSummary:
    """Summary statistics of a sample of convergence rounds."""

    count: int
    converged: int
    mean: float
    median: float
    std: float
    q10: float
    q90: float
    maximum: float

    @property
    def convergence_fraction(self) -> float:
        return self.converged / self.count if self.count else 0.0


def summarize_rounds(rounds: Sequence[float]) -> RoundsSummary:
    """Summarize a sample of convergence rounds; NaN entries mean "did not converge"."""
    arr = np.asarray(rounds, dtype=np.float64)
    ok = arr[~np.isnan(arr)]
    if ok.size == 0:
        return RoundsSummary(count=arr.size, converged=0, mean=float("nan"),
                             median=float("nan"), std=float("nan"), q10=float("nan"),
                             q90=float("nan"), maximum=float("nan"))
    return RoundsSummary(
        count=int(arr.size),
        converged=int(ok.size),
        mean=float(ok.mean()),
        median=float(np.median(ok)),
        std=float(ok.std(ddof=1)) if ok.size > 1 else 0.0,
        q10=float(np.quantile(ok, 0.1)),
        q90=float(np.quantile(ok, 0.9)),
        maximum=float(ok.max()),
    )


@dataclass(frozen=True)
class ScalingFit:
    """Result of fitting ``rounds ≈ slope · predictor + intercept``."""

    predictor_name: str
    slope: float
    intercept: float
    r_squared: float
    points: int

    def predict(self, predictor_value: float) -> float:
        return self.slope * predictor_value + self.intercept


def fit_scaling(
    ns: Sequence[int],
    ms: Sequence[int],
    rounds: Sequence[float],
    predictor: Predictor | str,
) -> ScalingFit:
    """Least-squares fit of measured rounds against a theoretical predictor.

    Parameters
    ----------
    ns, ms:
        Per-measurement problem sizes (m may be a constant sequence when the
        predictor ignores it).
    rounds:
        Measured convergence rounds (NaN entries are dropped).
    predictor:
        A :class:`~repro.analysis.theory.Predictor` or its registry name.
    """
    pred = PREDICTORS[predictor] if isinstance(predictor, str) else predictor
    ns = np.asarray(ns, dtype=np.float64)
    ms = np.asarray(ms, dtype=np.float64)
    y = np.asarray(rounds, dtype=np.float64)
    if not (ns.shape == ms.shape == y.shape):
        raise ValueError("ns, ms and rounds must have equal length")
    mask = ~np.isnan(y)
    ns, ms, y = ns[mask], ms[mask], y[mask]
    if y.size < 2:
        raise ValueError("need at least two converged measurements to fit")
    x = np.array([pred(int(n), int(m)) for n, m in zip(ns, ms)], dtype=np.float64)
    A = np.stack([x, np.ones_like(x)], axis=1)
    coef, *_ = np.linalg.lstsq(A, y, rcond=None)
    slope, intercept = float(coef[0]), float(coef[1])
    fitted = A @ coef
    ss_res = float(np.sum((y - fitted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ScalingFit(predictor_name=pred.name, slope=slope, intercept=intercept,
                      r_squared=r2, points=int(y.size))


def compare_predictors(
    ns: Sequence[int],
    ms: Sequence[int],
    rounds: Sequence[float],
    candidates: Optional[Sequence[str]] = None,
) -> List[ScalingFit]:
    """Fit several candidate growth laws and return them sorted by R² (best first)."""
    names = list(candidates) if candidates is not None else list(PREDICTORS)
    fits = []
    for name in names:
        try:
            fits.append(fit_scaling(ns, ms, rounds, name))
        except (ValueError, np.linalg.LinAlgError):
            continue
    return sorted(fits, key=lambda f: -f.r_squared)


def growth_ratio(sizes: Sequence[int], rounds: Sequence[float]) -> List[Tuple[int, int, float]]:
    """Doubling diagnostics: for consecutive sizes, the ratio of mean rounds.

    Logarithmic growth shows ratios drifting towards 1 as sizes double;
    linear growth shows ratios near 2.  Returns ``(size_a, size_b, ratio)``
    triples for consecutive size pairs.
    """
    sizes = list(sizes)
    rounds = list(rounds)
    if len(sizes) != len(rounds):
        raise ValueError("sizes and rounds must have equal length")
    order = np.argsort(sizes)
    out = []
    for a, b in zip(order[:-1], order[1:]):
        ra, rb = rounds[a], rounds[b]
        if ra and not np.isnan(ra) and not np.isnan(rb):
            out.append((int(sizes[a]), int(sizes[b]), float(rb / ra)))
    return out


def empirical_success_probability(converged: Sequence[bool]) -> Tuple[float, float]:
    """Estimate ``P[success]`` with a normal-approximation 95% half-width.

    Used to state "w.h.p."-style findings ("all 200 runs converged; the 95%
    CI for the failure probability is below x") in EXPERIMENTS.md.
    """
    arr = np.asarray(converged, dtype=bool)
    if arr.size == 0:
        return float("nan"), float("nan")
    p = float(arr.mean())
    half_width = 1.96 * np.sqrt(max(p * (1 - p), 1e-12) / arr.size)
    return p, float(half_width)
