"""Deterministic mean-field model of the median-rule load dynamics.

In the limit ``n → ∞`` with bin-load *fractions* ``p_1, ..., p_m`` (in value
order), one round of the median rule updates the fractions deterministically:
a process currently in bin ``v`` with cumulative mass ``L = Σ_{w<v} p_w``
below it and ``R = Σ_{w>v} p_w`` above it leaves downwards iff both samples
fall strictly below (probability ``L²``) and leaves upwards iff both fall
strictly above (``R²``); a process outside bin ``v`` enters it iff one sample
lands in ``v``-or-below and the other in ``v``-or-above in the right pattern.
Working with the cumulative distribution ``F_v = Σ_{w ≤ v} p_w`` the whole
round collapses to the remarkably clean map

    F'_v  =  F_v² · (3 − 2·F_v)

applied independently to every prefix (the same cubic that appears in the
proof of Lemma 11 for the two-bin case: ``p ↦ p²(3−2p)``).

This module provides the exact map, its fixed-point analysis (0, 1/2, 1 with
1/2 unstable), trajectory iteration, a convergence-time predictor, and a
validation helper against the stochastic engine.  It is the deterministic
skeleton of the paper's drift arguments and is used by tests and the
mean-field benchmark/ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.state import Configuration

__all__ = [
    "cdf_map",
    "loads_to_cdf",
    "cdf_to_loads",
    "step_fractions",
    "iterate_fractions",
    "MeanFieldTrajectory",
    "predict_convergence_rounds",
    "fixed_points",
    "compare_with_simulation",
]


def cdf_map(F: np.ndarray) -> np.ndarray:
    """One mean-field round applied to a cumulative load-fraction vector.

    ``F'_v = F_v² (3 − 2 F_v)`` — each prefix mass evolves like the two-bin
    minority fraction of Lemma 11/12 (it is exactly the probability that the
    median of one old-prefix member and two uniform samples stays in the
    prefix, integrated over the prefix).
    """
    F = np.asarray(F, dtype=np.float64)
    if np.any(F < -1e-12) or np.any(F > 1 + 1e-12):
        raise ValueError("cumulative fractions must lie in [0, 1]")
    out = F * F * (3.0 - 2.0 * F)
    # enforce monotonicity / range against floating-point drift
    np.clip(out, 0.0, 1.0, out=out)
    return np.maximum.accumulate(out)


def loads_to_cdf(fractions: Sequence[float]) -> np.ndarray:
    """Cumulative sums of per-bin load fractions (must sum to 1)."""
    p = np.asarray(fractions, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("need a non-empty 1-D fraction vector")
    if np.any(p < -1e-12):
        raise ValueError("fractions must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-9):
        raise ValueError(f"fractions must sum to 1 (got {total})")
    return np.cumsum(p)


def cdf_to_loads(F: np.ndarray) -> np.ndarray:
    """Per-bin fractions from a cumulative vector."""
    F = np.asarray(F, dtype=np.float64)
    return np.diff(np.concatenate([[0.0], F]))


def step_fractions(fractions: Sequence[float]) -> np.ndarray:
    """One mean-field round on per-bin fractions."""
    return cdf_to_loads(cdf_map(loads_to_cdf(fractions)))


@dataclass
class MeanFieldTrajectory:
    """Deterministic trajectory of per-bin load fractions."""

    fractions: List[np.ndarray]

    @property
    def rounds(self) -> int:
        return len(self.fractions) - 1

    def winner(self) -> int:
        """Index of the bin holding (almost) all mass at the end."""
        return int(np.argmax(self.fractions[-1]))

    def support_sizes(self, threshold: float = 1e-6) -> List[int]:
        """Number of bins above ``threshold`` mass, per round."""
        return [int(np.count_nonzero(p > threshold)) for p in self.fractions]


def iterate_fractions(fractions: Sequence[float], rounds: Optional[int] = None,
                      tolerance: float = 1e-9) -> MeanFieldTrajectory:
    """Iterate the mean-field map until one bin holds ``1 − tolerance`` of the mass.

    ``rounds`` caps the iteration count (default: 10·log2(1/tolerance) + 50,
    ample for any non-tied start).  Exactly tied starts (a prefix mass of
    exactly 1/2) sit on the unstable fixed point and never move — mirroring
    the Θ(log n) even-m lower bound, where only stochastic fluctuations break
    the tie.
    """
    p = np.asarray(fractions, dtype=np.float64)
    horizon = rounds if rounds is not None else int(10 * np.log2(1.0 / tolerance)) + 50
    traj = [p.copy()]
    for _ in range(horizon):
        if np.max(p) >= 1.0 - tolerance:
            break
        new_p = step_fractions(p)
        if np.allclose(new_p, p, atol=1e-15):
            # stalled on the unstable fixed point (exactly tied prefix mass):
            # the deterministic map cannot break the tie, stop iterating
            break
        p = new_p
        traj.append(p.copy())
    return MeanFieldTrajectory(fractions=traj)


def fixed_points() -> Tuple[float, float, float]:
    """Fixed points of the scalar map ``x ↦ x²(3−2x)``: 0 and 1 stable, 1/2 unstable."""
    return 0.0, 0.5, 1.0


def predict_convergence_rounds(fractions: Sequence[float], n: int) -> float:
    """Mean-field estimate of the rounds until the winning bin holds all but O(1) of n balls.

    Iterates the deterministic map until the winner's mass exceeds
    ``1 − 1/(2n)`` (below half a ball of mass).  For exactly tied prefixes the
    map never moves, so the estimate adds the Θ(log n) tie-breaking time of
    the stochastic process (with the empirical constant 2 from THM1) — this
    mirrors the paper's even-m analysis.
    """
    if n <= 1:
        return 0.0
    p = np.asarray(fractions, dtype=np.float64)
    F = loads_to_cdf(p)
    tie = np.any(np.isclose(F[:-1], 0.5, atol=1e-12))
    tolerance = 1.0 / (2.0 * n)
    traj = iterate_fractions(p, rounds=int(40 * np.log2(n)) + 50, tolerance=tolerance)
    rounds = traj.rounds
    if tie:
        rounds += 2.0 * np.log2(n)
    return float(rounds)


def compare_with_simulation(fractions: Sequence[float], n: int, num_runs: int,
                            seed: int = 0) -> Tuple[float, float]:
    """(mean-field prediction, simulated mean rounds) for a block workload of ``n`` balls.

    Builds the deterministic block configuration with loads proportional to
    ``fractions`` and runs the stochastic engine; used by tests and the
    mean-field ablation to check the deterministic skeleton tracks the
    stochastic process.
    """
    from repro.engine.batch import run_batch

    p = np.asarray(fractions, dtype=np.float64)
    counts = np.floor(p * n).astype(int)
    counts[0] += n - counts.sum()          # assign rounding remainder to bin 0
    values = np.repeat(np.arange(counts.size), counts)
    cfg = Configuration.from_values(values)
    batch = run_batch(cfg, num_runs=num_runs, seed=seed)
    return predict_convergence_rounds(p, n), batch.mean_rounds
