"""Predicted round counts of the paper's theorems.

The theorems give asymptotic bounds (O(log n), O(log m·log log n + log n),
...).  For plotting and for the "shape" comparison in EXPERIMENTS.md we need
concrete *predictor functions* of (n, m, adversary) that measured round
counts can be regressed against.  This module provides them, together with
the little helpers the proofs use (phase counts, thresholds like Φ and the
√n adversary bound).

Nothing here claims to predict constants — the point of the reproduction is
to check that measured convergence times grow like the predictor (and that
the odd/even-m and adversary/no-adversary distinctions fall the way the
theorems say), which :mod:`repro.analysis.statistics` quantifies by fitting
``rounds ≈ a · predictor + b``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = [
    "log2",
    "loglog",
    "theorem1_predictor",
    "theorem3_predictor",
    "theorem4_predictor",
    "theorem10_predictor",
    "theorem20_predictor",
    "theorem21_predictor",
    "adversary_budget_sqrt_n",
    "phase_count",
    "heavy_set_size",
    "PREDICTORS",
    "predictor_for",
]


def log2(x: float) -> float:
    """Safe base-2 logarithm with ``log2(x ≤ 1) = 1`` to avoid degenerate fits."""
    return math.log2(x) if x > 2.0 else 1.0


def loglog(x: float) -> float:
    """``log2(log2 x)`` with the same guard (≥ 1)."""
    return max(1.0, math.log2(max(math.log2(max(x, 2.0)), 2.0)))


def theorem1_predictor(n: int, m: Optional[int] = None) -> float:
    """Theorem 1 (no adversary, any initial state): O(log n)."""
    return log2(n)


def theorem3_predictor(n: int, m: int) -> float:
    """Theorem 3 (adversary, m values): O(log m · log log n + log n)."""
    return log2(m) * loglog(n) + log2(n)


def theorem4_predictor(n: int, m: int) -> float:
    """Theorem 4 (average case): O(log m + log log n) for odd m, Θ(log n) for even m."""
    if m % 2 == 1:
        return log2(m) + loglog(n)
    return log2(n)


def theorem10_predictor(n: int, m: Optional[int] = None) -> float:
    """Theorem 10 (two bins, adversary): O(log n)."""
    return log2(n)


def theorem20_predictor(n: int, m: int) -> float:
    """Theorem 20 — same bound as Theorem 3 (it is its formal statement)."""
    return theorem3_predictor(n, m)


def theorem21_predictor(n: int, m: int) -> float:
    """Theorem 21 (average case, no adversary) — same split as Theorem 4."""
    return theorem4_predictor(n, m)


def adversary_budget_sqrt_n(n: int, constant: float = 1.0) -> int:
    """The paper's adversary strength ``T = c·sqrt(n)`` (floored, at least 1)."""
    return max(1, int(constant * math.isqrt(n)))


def phase_count(m: int) -> int:
    """Number of phases in the Theorem 20 argument: ``log2(m) + 1``."""
    if m < 1:
        raise ValueError("m must be positive")
    return int(math.ceil(math.log2(max(m, 2)))) + 1


def heavy_set_size(n: int, constant: float = 1.0) -> int:
    """``Φ = C · sqrt(n log n)`` (Section 4.2)."""
    if n <= 1:
        return n
    return max(1, int(math.ceil(constant * math.sqrt(n * math.log(n)))))


@dataclass(frozen=True)
class Predictor:
    """A named predictor function of (n, m)."""

    name: str
    description: str
    func: Callable[[int, int], float]

    def __call__(self, n: int, m: int) -> float:
        return self.func(n, m)


PREDICTORS: Dict[str, Predictor] = {
    "log_n": Predictor("log_n", "O(log n)", lambda n, m: log2(n)),
    "log_m": Predictor("log_m", "O(log m)", lambda n, m: log2(m)),
    "loglog_n": Predictor("loglog_n", "O(log log n)", lambda n, m: loglog(n)),
    "log_m_loglog_n_plus_log_n": Predictor(
        "log_m_loglog_n_plus_log_n", "O(log m · log log n + log n)",
        lambda n, m: log2(m) * loglog(n) + log2(n)),
    "log_m_plus_loglog_n": Predictor(
        "log_m_plus_loglog_n", "O(log m + log log n)",
        lambda n, m: log2(m) + loglog(n)),
    "linear_n": Predictor("linear_n", "Θ(n)", lambda n, m: float(n)),
    "sqrt_n": Predictor("sqrt_n", "Θ(sqrt n)", lambda n, m: math.sqrt(n)),
}


def predictor_for(theorem: str) -> Predictor:
    """Look up the canonical predictor for a theorem id ('thm1', 'thm3', ...)."""
    mapping = {
        "thm1": "log_n",
        "thm2": "log_n",
        "thm3": "log_m_loglog_n_plus_log_n",
        "thm4_odd": "log_m_plus_loglog_n",
        "thm4_even": "log_n",
        "thm10": "log_n",
        "thm20": "log_m_loglog_n_plus_log_n",
        "thm21_odd": "log_m_plus_loglog_n",
        "thm21_even": "log_n",
    }
    key = theorem.lower()
    if key not in mapping:
        raise KeyError(f"unknown theorem id {theorem!r}; known: {sorted(mapping)}")
    return PREDICTORS[mapping[key]]
