"""Exact Markov-chain analysis of the two-bin process (Sections 2.3 and 3).

The two-bin median/majority process is a Markov chain on the minority load
``X_t ∈ {0, ..., n}`` (or, labelled, on the left-bin load ``L_t``): given
``L_t = l``, the next left-bin load is the sum of two independent binomials
(see :func:`repro.core.majority_rule.two_bin_step_distribution`).  For small
and moderate ``n`` we can therefore compute *exactly*:

* the full ``(n+1) × (n+1)`` transition matrix,
* absorption probabilities into the two consensus states ``{0, n}``,
* expected absorption (consensus) times from any start, and
* the distribution of the consensus time (by powering the chain).

These exact numbers are what the Monte-Carlo engines are validated against in
the tests, and they also serve as a numerical check of the absorbing-chain
Lemmas 8–9 (exponential-tail hitting-time behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.majority_rule import two_bin_step_distribution

__all__ = [
    "two_bin_transition_matrix",
    "TwoBinChain",
    "absorption_probabilities",
    "expected_absorption_time",
    "consensus_time_distribution",
    "verify_growth_condition",
]


def two_bin_transition_matrix(n: int) -> np.ndarray:
    """Exact transition matrix of the left-bin load chain for ``n`` balls.

    ``P[l, l']`` is the probability that a configuration with ``l`` balls in
    the left bin transitions to ``l'`` balls in the left bin after one round
    of the majority (= two-bin median) rule.  States 0 and n are absorbing.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    P = np.zeros((n + 1, n + 1))
    P[0, 0] = 1.0
    P[n, n] = 1.0
    for l in range(1, n):
        P[l] = two_bin_step_distribution(n, l)
    return P


@dataclass
class TwoBinChain:
    """Wrapper bundling the exact two-bin chain and its derived quantities."""

    n: int
    matrix: np.ndarray

    @classmethod
    def build(cls, n: int) -> "TwoBinChain":
        return cls(n=n, matrix=two_bin_transition_matrix(n))

    @property
    def transient_states(self) -> np.ndarray:
        return np.arange(1, self.n)

    def q_matrix(self) -> np.ndarray:
        """Transient-to-transient block Q of the canonical form."""
        return self.matrix[1:self.n, 1:self.n]

    def r_matrix(self) -> np.ndarray:
        """Transient-to-absorbing block R (columns: absorb at 0, absorb at n)."""
        return self.matrix[1:self.n][:, [0, self.n]]

    def fundamental_matrix(self) -> np.ndarray:
        """``N = (I - Q)^{-1}``: expected visits to each transient state."""
        Q = self.q_matrix()
        identity = np.eye(Q.shape[0])
        return np.linalg.solve(identity - Q, identity)

    def absorption_probabilities(self) -> np.ndarray:
        """``B = N·R``; row ``l-1`` gives P[absorb at 0], P[absorb at n] from load l."""
        return self.fundamental_matrix() @ self.r_matrix()

    def expected_absorption_times(self) -> np.ndarray:
        """Expected number of rounds to consensus from each transient load."""
        N = self.fundamental_matrix()
        return N @ np.ones(N.shape[0])

    def step_distribution(self, dist: np.ndarray) -> np.ndarray:
        """Push a distribution over loads through one round."""
        dist = np.asarray(dist, dtype=np.float64)
        if dist.shape != (self.n + 1,):
            raise ValueError(f"distribution must have shape ({self.n + 1},)")
        return dist @ self.matrix


def absorption_probabilities(n: int, left_load: int) -> Tuple[float, float]:
    """Exact probabilities the left bin dies out / takes over, starting from ``left_load``."""
    if not 0 <= left_load <= n:
        raise ValueError("left_load must lie in [0, n]")
    if left_load == 0:
        return 1.0, 0.0
    if left_load == n:
        return 0.0, 1.0
    chain = TwoBinChain.build(n)
    B = chain.absorption_probabilities()
    row = B[left_load - 1]
    return float(row[0]), float(row[1])


def expected_absorption_time(n: int, left_load: int) -> float:
    """Exact expected consensus time of the two-bin process from ``left_load``."""
    if left_load in (0, n):
        return 0.0
    chain = TwoBinChain.build(n)
    times = chain.expected_absorption_times()
    return float(times[left_load - 1])


def consensus_time_distribution(n: int, left_load: int, horizon: int) -> np.ndarray:
    """``P[consensus by round t]`` for ``t = 0..horizon`` (exact, by chain powering)."""
    chain = TwoBinChain.build(n)
    dist = np.zeros(n + 1)
    dist[left_load] = 1.0
    out = np.empty(horizon + 1)
    out[0] = dist[0] + dist[n]
    for t in range(1, horizon + 1):
        dist = chain.step_distribution(dist)
        out[t] = dist[0] + dist[n]
    return out


def verify_growth_condition(n: int, c1: float = 1.2,
                            region: Optional[Tuple[int, int]] = None) -> dict:
    """Numerically check the Lemma 8/9 drift condition on the exact chain.

    For the imbalance-like statistic ``D(l) = |n - 2l| / 2`` the lemmas need
    ``P[D_{t+1} ≥ min(max_state, c1 · D_t)]`` to be at least ``1 - exp(-c2·D_t)``
    for some constants c1 > 1, c2 > 0.  This helper evaluates the left-hand
    probability for every transient state of the exact chain (restricted to
    ``region`` of minority loads if given) and returns the implied per-state
    ``c2`` values, letting tests confirm a uniform positive c2 exists in the
    drift region ``Δ ≥ c·sqrt(n)`` used by the paper.
    """
    chain = TwoBinChain.build(n)
    lo, hi = region if region is not None else (1, n - 1)
    records = {}
    for l in range(max(1, lo), min(n - 1, hi) + 1):
        d = abs(n - 2 * l) / 2.0
        if d <= 0:
            continue
        target = min(n / 2.0, c1 * d)
        dist = chain.matrix[l]
        loads = np.arange(n + 1)
        next_d = np.abs(n - 2 * loads) / 2.0
        prob = float(dist[next_d >= target].sum())
        fail = max(1.0 - prob, 1e-300)
        implied_c2 = -np.log(fail) / d
        records[l] = {"delta": d, "prob_grow": prob, "implied_c2": implied_c2}
    return records
