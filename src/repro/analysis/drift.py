"""Expected-drift formulas of the two-bin analysis (Lemmas 11, 12 and 15).

The proofs of Section 3 rest on three regimes of the minority load
``X_t = n/2 − Δ_t``:

* **Lemma 12 regime** (``c·sqrt(n log n) ≤ Δ < n/3``): the expected next
  minority load satisfies ``E[X_{t+1}] ≤ (1 − δ_t/2)·X_t`` with
  ``δ_t = Δ_t/n``, i.e. the imbalance grows by a constant factor
  (``Δ_{t+1} ≥ (10/9)·Δ_t`` w.h.p. after accounting for the adversary).
* **Lemma 15 regime** (``Δ ≥ c·sqrt(n)``): ``E[Δ_{t+1}] ≥ (3/2)·Δ_t`` and
  ``Δ_{t+1} ≥ (4/3)·Δ_t`` with probability ``1 − exp(−Θ(Δ_t²/n))``.
* **Lemma 11 regime** (``X_t ≤ n/4``): quadratic collapse,
  ``E[X_{t+1}] ≤ 3·X_t²/n``, so the minority dies out in O(log log n) rounds.

All three expectations follow from the exact per-ball switch probabilities
(:func:`repro.core.majority_rule.exact_two_bin_transition`); this module
exposes them in the paper's notation and provides empirical-drift
measurement helpers used by the DRIFT benchmark and the tests.

Beyond the two-bin closed forms, :func:`occupancy_expected_counts` /
:func:`occupancy_expected_drift` compute the exact one-round expected
occupancy ``E[c' | c] = cᵀQ`` for *any* rule with an occupancy-space kernel
(median family, voter/min/max, three-majority, two-choices-majority) at any
support width, by reusing the O(m²) transition matrix of
:mod:`repro.engine.occupancy`.  This is the finite-n refinement of the
mean-field iteration (:func:`repro.analysis.meanfield.cdf_map`): dividing by
n and taking cumulative sums recovers the mean-field CDF map as n → ∞, while
at finite n the matrix carries the exact per-class probabilities (e.g. the
without-replacement corrections).  The two-bin closed forms above are the
m = 2 special case, which the tests pin against the general machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.majority_rule import exact_two_bin_transition
from repro.core.rules import Rule

__all__ = [
    "expected_minority_next",
    "expected_imbalance_next",
    "lemma12_contraction_factor",
    "lemma11_quadratic_bound",
    "lemma15_growth_factor",
    "occupancy_expected_counts",
    "occupancy_expected_drift",
    "DriftObservation",
    "measure_empirical_drift",
    "measure_empirical_occupancy_drift",
]


def expected_minority_next(n: int, minority: int) -> float:
    """``E[X_{t+1}]`` given ``X_t = minority`` (exact, no adversary).

    Equals ``minority · (1 − p_leave) + (n − minority) · p_join`` where the
    two probabilities come from the exact two-bin transition.  The closed
    form matches the paper's ``(1/2 − (3/2)δ + 2δ³)·n`` (proof of Lemma 12).
    """
    p_leave, p_join = exact_two_bin_transition(n, minority)
    return minority * (1.0 - p_leave) + (n - minority) * p_join


def expected_imbalance_next(n: int, imbalance: float) -> float:
    """``E[Δ_{t+1}]`` given ``Δ_t`` (exact, no adversary)."""
    minority = n / 2.0 - imbalance
    if minority < 0 or minority > n:
        raise ValueError("imbalance out of range for this n")
    # work with the continuous extension of the switch probabilities
    x = minority / n
    p_leave = (1.0 - x) ** 2
    p_join = x * x
    expected_minority = minority * (1.0 - p_leave) + (n - minority) * p_join
    return n / 2.0 - expected_minority


def lemma12_contraction_factor(n: int, minority: int) -> float:
    """The factor ``E[X_{t+1}] / X_t`` in the Lemma 12 regime.

    The paper shows it is at most ``1 − δ_t/2`` for ``δ_t < 1/3``; callers
    (tests, the drift benchmark) compare the exact value against that bound.
    """
    if minority <= 0:
        raise ValueError("minority must be positive")
    return expected_minority_next(n, minority) / minority


def lemma11_quadratic_bound(n: int, minority: int) -> float:
    """Lemma 11's quadratic-collapse bound ``E[X_{t+1}] ≤ 3·X_t²/n``.

    Valid once the minority is at most ``n/4``; returns the bound value.
    """
    return 3.0 * minority * minority / n


def lemma15_growth_factor(n: int, imbalance: float) -> float:
    """The exact factor ``E[Δ_{t+1}] / Δ_t`` (Lemma 15 states it is ≥ 3/2).

    Exactly, ``E[Δ_{t+1}] = (3/2 − 2δ_t²)·Δ_t`` with ``δ_t = Δ_t/n``, so the
    factor sits just below 3/2 for small imbalances and decreases towards 1
    as the process saturates at consensus (Lemma 15's "(3/2)Δ_t" drops the
    lower-order ``2δ²`` term).
    """
    if imbalance <= 0:
        raise ValueError("imbalance must be positive")
    return expected_imbalance_next(n, imbalance) / imbalance


# ---------------------------------------------------------------------- #
# exact expected drift in occupancy space (any kernel rule, any m)
# ---------------------------------------------------------------------- #
def occupancy_expected_counts(rule: Rule, counts: np.ndarray) -> np.ndarray:
    """Exact ``E[c' | c]`` for one synchronous round of ``rule``.

    One round scatters each value class ``a`` as ``Multinomial(c_a, Q[a])``
    (see :func:`repro.engine.occupancy.occupancy_round`), so the expected
    next occupancy is the linear image ``E[c'] = cᵀQ`` of the current counts
    through the O(m²) transition matrix — exact at finite n, no mean-field
    approximation.  Returns a float vector summing to ``n``.

    This refines :func:`repro.analysis.meanfield.cdf_map`: for the median
    rule, ``cumsum(occupancy_expected_counts(rule, c)) / n`` equals
    ``cdf_map(cumsum(c) / n)`` exactly (the map is already written in load
    fractions); for finite-n kernels such as the without-replacement median
    the matrix additionally carries the O(1/n) corrections the mean-field
    limit drops.
    """
    from repro.engine.occupancy import occupancy_transition_matrix

    counts = np.asarray(counts, dtype=np.int64)
    Q = occupancy_transition_matrix(rule, counts)
    return counts.astype(np.float64) @ Q


def occupancy_expected_drift(rule: Rule, counts: np.ndarray) -> np.ndarray:
    """Exact one-round expected drift ``E[c' − c | c]`` per value class.

    Componentwise difference of :func:`occupancy_expected_counts` and the
    current counts; sums to zero (population conservation).  For m = 2 and
    the median rule its first component reduces to
    ``expected_minority_next(n, c₀) − c₀`` — the Lemma 11/12/15 drifts are
    the two-bin special case of this vector.
    """
    counts = np.asarray(counts, dtype=np.int64)
    return occupancy_expected_counts(rule, counts) - counts


@dataclass(frozen=True)
class DriftObservation:
    """One empirical drift measurement: observed vs. predicted next state."""

    n: int
    minority_before: int
    minority_after_mean: float
    predicted_mean: float
    samples: int

    @property
    def relative_error(self) -> float:
        denom = max(abs(self.predicted_mean), 1e-12)
        return abs(self.minority_after_mean - self.predicted_mean) / denom


def measure_empirical_drift(
    n: int,
    minority: int,
    samples: int,
    rng: np.random.Generator,
) -> DriftObservation:
    """Monte-Carlo estimate of ``E[X_{t+1}]`` from a fixed two-bin state.

    Runs ``samples`` independent single rounds of the majority rule from the
    configuration with ``minority`` balls in bin 0 and compares the empirical
    mean of the next minority-bin load to :func:`expected_minority_next`.
    The simulation is fused across samples (one ``(samples, n)`` array), so
    the measurement is cheap even for large ``n``.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    values = np.zeros((samples, n), dtype=np.int64)
    values[:, minority:] = 1
    contacts = rng.integers(0, n, size=(samples, n, 2))
    vj = np.take_along_axis(values, contacts[:, :, 0], axis=1)
    vk = np.take_along_axis(values, contacts[:, :, 1], axis=1)
    lo = np.minimum(values, vj)
    hi = np.maximum(values, vj)
    new_values = np.maximum(lo, np.minimum(hi, vk))
    next_minority = (new_values == 0).sum(axis=1)
    return DriftObservation(
        n=n,
        minority_before=minority,
        minority_after_mean=float(next_minority.mean()),
        predicted_mean=expected_minority_next(n, minority),
        samples=samples,
    )


def measure_empirical_occupancy_drift(
    rule: Rule,
    counts: np.ndarray,
    samples: int,
    rng: np.random.Generator,
) -> Dict[str, np.ndarray]:
    """Monte-Carlo check of :func:`occupancy_expected_counts` from a fixed state.

    Draws ``samples`` independent single occupancy rounds from ``counts`` (one
    batched ``(samples, m)`` program) and returns the empirical mean next
    occupancy, the exact prediction, and the per-bin standard error — callers
    assert ``|mean − predicted| ≤ k·SE`` (a CLT bound; used by the drift tests
    and the occupancy-rules benchmark).
    """
    from repro.engine.occupancy import occupancy_round_batch

    if samples <= 0:
        raise ValueError("samples must be positive")
    counts = np.asarray(counts, dtype=np.int64)
    tiled = np.tile(counts, (samples, 1))
    out = occupancy_round_batch(tiled, rule, rng).astype(np.float64)
    mean = out.mean(axis=0)
    se = out.std(axis=0, ddof=1) / np.sqrt(samples)
    return {
        "mean": mean,
        "predicted": occupancy_expected_counts(rule, counts),
        "standard_error": se,
    }
