"""Phase-structure detection for the Theorem 20 argument.

Theorem 20 divides a run with ``m`` initial values and a √n-bounded adversary
into ``log m + 1`` phases.  At the end of phase ``i`` there is a small set
``S_i`` of at most ``m/2^i + 1`` *candidate bins* such that both the total
load of ``S_i``-and-everything-to-its-left and of ``S_i``-and-everything-to-
its-right exceed ``n/2 + C·sqrt(n log n)`` — i.e. the eventual winner is
already known to lie inside ``S_i``, and ``S_i`` halves every phase.

:func:`candidate_window` computes, for a single configuration, the smallest
contiguous window of values satisfying that two-sided load condition;
:func:`detect_phases` tracks the window width along a trajectory and reports
when it halves, giving an empirical view of the phase structure (the number
of detected phases should be ≈ log2(m), each lasting ≈ O(log log n) rounds —
the PHASES part of the drift benchmark checks this shape).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.state import Configuration

__all__ = ["candidate_window", "PhaseRecord", "detect_phases", "expected_phase_count"]


def candidate_window(config: Configuration, margin: Optional[float] = None
                     ) -> Tuple[int, int]:
    """Smallest contiguous value window [lo, hi] satisfying the Theorem 20 condition.

    The condition: the balls with value ≤ hi number at least
    ``n/2 + margin`` and the balls with value ≥ lo number at least
    ``n/2 + margin`` (so the "winner bin" provably lies in [lo, hi] if the
    margin exceeds the adversary's per-round influence).  ``margin`` defaults
    to ``sqrt(n · log n)``.

    Returns the (lo, hi) pair of values; for a consensus configuration the
    window is the single agreed value.
    """
    n = config.n
    if margin is None:
        margin = math.sqrt(n * math.log(max(n, 2)))
    target = n / 2.0 + margin

    values = np.sort(config.values)
    uniq = np.unique(values)
    # cumulative counts: how many balls have value <= v  /  >= v
    counts = np.searchsorted(values, uniq, side="right")          # <= v
    counts_ge = n - np.searchsorted(values, uniq, side="left")    # >= v

    # hi = smallest value with at least `target` balls <= hi (clip to max value)
    hi_candidates = np.flatnonzero(counts >= target)
    hi = int(uniq[hi_candidates[0]]) if hi_candidates.size else int(uniq[-1])
    # lo = largest value with at least `target` balls >= lo (clip to min value)
    lo_candidates = np.flatnonzero(counts_ge >= target)
    lo = int(uniq[lo_candidates[-1]]) if lo_candidates.size else int(uniq[0])
    if lo > hi:
        # margins overlap past each other — the winner is pinned to one value
        lo = hi = int(config.median_value())
    return lo, hi


@dataclass(frozen=True)
class PhaseRecord:
    """One detected phase: the round it ended and the candidate-window size then."""

    phase_index: int
    end_round: int
    window_values: int
    window_lo: int
    window_hi: int


def detect_phases(trajectory: Sequence[Configuration],
                  margin: Optional[float] = None) -> List[PhaseRecord]:
    """Detect the rounds at which the candidate window (in distinct values) halves.

    Parameters
    ----------
    trajectory:
        Full configuration snapshots (``RecordLevel.FULL`` trajectories).
    margin:
        Two-sided load margin; default ``sqrt(n log n)`` as in the paper.

    Returns
    -------
    list of PhaseRecord
        One record per halving of the candidate-window size, in order.  The
        number of records is ≈ log2(initial window size).
    """
    if not trajectory:
        return []
    records: List[PhaseRecord] = []
    lo, hi = candidate_window(trajectory[0], margin)
    support0 = trajectory[0].support
    current_size = int(np.count_nonzero((support0 >= lo) & (support0 <= hi)))
    current_size = max(current_size, 1)
    threshold = max(current_size // 2, 1)
    phase = 0

    for t, cfg in enumerate(trajectory):
        lo, hi = candidate_window(cfg, margin)
        support = cfg.support
        size = int(np.count_nonzero((support >= lo) & (support <= hi)))
        size = max(size, 1)
        while size <= threshold and threshold >= 1:
            phase += 1
            records.append(PhaseRecord(phase_index=phase, end_round=t,
                                       window_values=size, window_lo=lo, window_hi=hi))
            if threshold == 1:
                return records
            threshold = max(threshold // 2, 1)
    return records


def expected_phase_count(m: int) -> int:
    """The Theorem 20 phase budget, ``log2(m) + 1``."""
    if m < 1:
        raise ValueError("m must be positive")
    return int(math.ceil(math.log2(max(m, 2)))) + 1
