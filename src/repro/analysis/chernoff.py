"""Probabilistic toolkit of Section 2.2: Chernoff-type tail bounds.

These are the exact bounds stated as Lemmas 5–7 of the paper.  They are used
in two ways by the reproduction:

* the drift/phase analyses (:mod:`repro.analysis.drift`,
  :mod:`repro.analysis.theory`) evaluate them to produce the failure
  probabilities the proofs quote, and
* the test-suite checks them *empirically*: simulated tail frequencies never
  exceed the bound (up to Monte-Carlo noise), and the bounds are internally
  consistent (monotone in their parameters, at most 1, etc.).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "chernoff_upper_bernoulli",
    "chernoff_lower_bernoulli",
    "chernoff_upper_bernoulli_exact",
    "chernoff_lower_bernoulli_exact",
    "chernoff_geometric_sum",
    "chernoff_exponential_tail_sum",
    "hoeffding_bound",
]


def chernoff_upper_bernoulli(mu: float, delta: float) -> float:
    """Lemma 5 (upper tail, simplified form): ``P[X ≥ (1+δ)μ] ≤ exp(-min(δ², δ)·μ/3)``.

    Parameters
    ----------
    mu:
        Mean of the sum of independent Bernoulli variables.
    delta:
        Relative deviation, ``δ > 0``.
    """
    if mu < 0:
        raise ValueError("mu must be non-negative")
    if delta <= 0:
        return 1.0
    return min(1.0, math.exp(-min(delta * delta, delta) * mu / 3.0))


def chernoff_upper_bernoulli_exact(mu: float, delta: float) -> float:
    """Lemma 5 (upper tail, tight form): ``(e^δ / (1+δ)^{1+δ})^μ``."""
    if mu < 0:
        raise ValueError("mu must be non-negative")
    if delta <= 0:
        return 1.0
    log_bound = mu * (delta - (1.0 + delta) * math.log1p(delta))
    return min(1.0, math.exp(log_bound))


def chernoff_lower_bernoulli(mu: float, delta: float) -> float:
    """Lemma 5 (lower tail, simplified form): ``P[X ≤ (1-δ)μ] ≤ exp(-δ²μ/2)``."""
    if mu < 0:
        raise ValueError("mu must be non-negative")
    if not 0 < delta < 1:
        raise ValueError("lower-tail delta must lie in (0, 1)")
    return min(1.0, math.exp(-delta * delta * mu / 2.0))


def chernoff_lower_bernoulli_exact(mu: float, delta: float) -> float:
    """Lemma 5 (lower tail, tight form): ``(e^{-δ} / (1-δ)^{1-δ})^μ``."""
    if mu < 0:
        raise ValueError("mu must be non-negative")
    if not 0 < delta < 1:
        raise ValueError("lower-tail delta must lie in (0, 1)")
    log_bound = mu * (-delta - (1.0 - delta) * math.log(1.0 - delta))
    return min(1.0, math.exp(log_bound))


def chernoff_geometric_sum(n: int, delta: float, epsilon: float) -> float:
    """Lemma 6: sum of n geometric(δ) variables.

    ``P[X ≥ (1+ε)·n/δ] ≤ exp(-ε²·n / (2(1+ε)))``.

    Used by Theorem 20 to add up the O(log m) phases of expected length
    O(log log n) each.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    if epsilon <= 0:
        return 1.0
    return min(1.0, math.exp(-epsilon * epsilon * n / (2.0 * (1.0 + epsilon))))


def chernoff_exponential_tail_sum(n: int, delta: float, gamma: float, epsilon: float) -> float:
    """Lemma 7: sum of n variables with exponential tails ``P[X_i = k] ≤ γ(1-δ)^{k-1}``.

    ``P[X ≥ (1+ε)μ + O(n)] ≤ exp(-ε²·n / (2(1+ε)))`` — the bound itself does
    not depend on γ (γ only shifts the additive O(n) term), matching the
    lemma's statement.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    if epsilon <= 0:
        return 1.0
    return min(1.0, math.exp(-epsilon * epsilon * n / (2.0 * (1.0 + epsilon))))


def hoeffding_bound(n: int, t: float, value_range: float = 1.0) -> float:
    """Two-sided Hoeffding bound ``P[|X − E X| ≥ t] ≤ 2·exp(-2t²/(n·range²))``.

    Used in the proof of Lemma 15 ("Using Hoeffding's bound ...").
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if value_range <= 0:
        raise ValueError("value_range must be positive")
    if t <= 0:
        return 1.0
    return min(1.0, 2.0 * math.exp(-2.0 * t * t / (n * value_range * value_range)))
