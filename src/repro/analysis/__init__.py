"""Analytical substrate: tail bounds, exact chains, drift formulas, scaling fits."""

from repro.analysis.chernoff import (
    chernoff_exponential_tail_sum,
    chernoff_geometric_sum,
    chernoff_lower_bernoulli,
    chernoff_lower_bernoulli_exact,
    chernoff_upper_bernoulli,
    chernoff_upper_bernoulli_exact,
    hoeffding_bound,
)
from repro.analysis.clt import (
    gaussian_tail_bounds,
    imbalance_std_after_balanced_round,
    lemma14_asymptotic_probability,
    lemma14_lower_bound,
    simulate_balanced_round_imbalance,
)
from repro.analysis.drift import (
    DriftObservation,
    expected_imbalance_next,
    expected_minority_next,
    lemma11_quadratic_bound,
    lemma12_contraction_factor,
    lemma15_growth_factor,
    measure_empirical_drift,
    measure_empirical_occupancy_drift,
    occupancy_expected_counts,
    occupancy_expected_drift,
)
from repro.analysis.meanfield import (
    MeanFieldTrajectory,
    cdf_map,
    compare_with_simulation,
    fixed_points,
    iterate_fractions,
    predict_convergence_rounds,
    step_fractions,
)
from repro.analysis.markov import (
    TwoBinChain,
    absorption_probabilities,
    consensus_time_distribution,
    expected_absorption_time,
    two_bin_transition_matrix,
    verify_growth_condition,
)
from repro.analysis.phases import (
    PhaseRecord,
    candidate_window,
    detect_phases,
    expected_phase_count,
)
from repro.analysis.statistics import (
    RoundsSummary,
    ScalingFit,
    compare_predictors,
    empirical_success_probability,
    fit_scaling,
    growth_ratio,
    summarize_rounds,
)
from repro.analysis.theory import (
    PREDICTORS,
    Predictor,
    adversary_budget_sqrt_n,
    heavy_set_size,
    phase_count,
    predictor_for,
    theorem1_predictor,
    theorem3_predictor,
    theorem4_predictor,
    theorem10_predictor,
    theorem20_predictor,
    theorem21_predictor,
)

__all__ = [
    # chernoff
    "chernoff_upper_bernoulli",
    "chernoff_upper_bernoulli_exact",
    "chernoff_lower_bernoulli",
    "chernoff_lower_bernoulli_exact",
    "chernoff_geometric_sum",
    "chernoff_exponential_tail_sum",
    "hoeffding_bound",
    # clt
    "imbalance_std_after_balanced_round",
    "lemma14_lower_bound",
    "lemma14_asymptotic_probability",
    "gaussian_tail_bounds",
    "simulate_balanced_round_imbalance",
    # drift
    "expected_minority_next",
    "expected_imbalance_next",
    "lemma12_contraction_factor",
    "lemma11_quadratic_bound",
    "lemma15_growth_factor",
    "DriftObservation",
    "measure_empirical_drift",
    "measure_empirical_occupancy_drift",
    "occupancy_expected_counts",
    "occupancy_expected_drift",
    # meanfield
    "cdf_map",
    "step_fractions",
    "iterate_fractions",
    "MeanFieldTrajectory",
    "predict_convergence_rounds",
    "fixed_points",
    "compare_with_simulation",
    # markov
    "two_bin_transition_matrix",
    "TwoBinChain",
    "absorption_probabilities",
    "expected_absorption_time",
    "consensus_time_distribution",
    "verify_growth_condition",
    # phases
    "candidate_window",
    "PhaseRecord",
    "detect_phases",
    "expected_phase_count",
    # statistics
    "RoundsSummary",
    "summarize_rounds",
    "ScalingFit",
    "fit_scaling",
    "compare_predictors",
    "growth_ratio",
    "empirical_success_probability",
    # theory
    "PREDICTORS",
    "Predictor",
    "predictor_for",
    "theorem1_predictor",
    "theorem3_predictor",
    "theorem4_predictor",
    "theorem10_predictor",
    "theorem20_predictor",
    "theorem21_predictor",
    "adversary_budget_sqrt_n",
    "phase_count",
    "heavy_set_size",
]
