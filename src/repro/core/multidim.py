"""Higher-dimensional median rules (the paper's future-work direction).

The conclusion of the paper singles out one open problem: "It would be very
interesting though probably very challenging to prove a time bound of
O(log n) also for higher dimensions."  This module provides the natural
higher-dimensional generalisations so the question can at least be explored
empirically:

* :class:`CoordinatewiseMedianRule` — values are integer vectors in Z^d; a
  process samples two others and takes the *coordinate-wise* median.  Each
  coordinate evolves exactly as a 1-D median process (driven by the same
  contact choices), so convergence per coordinate is O(log n); however the
  agreed vector need not be one of the initial vectors (only each coordinate
  is an initial coordinate value), which is the precise sense in which the
  1-D consensus guarantee is lost.
* :class:`TukeyMedianRule` — picks, among the three candidate vectors
  {own, sample 1, sample 2}, the one minimising the sum of L1 distances to
  the other two (the 1-D median's variational characterisation).  This rule
  *does* preserve the initial value set, at the cost of weaker contraction.

Both operate on a :class:`VectorConfiguration` (an ``(n, d)`` integer array)
and are exercised by the higher-dimension ablation benchmark and the
``examples``/tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "VectorConfiguration",
    "CoordinatewiseMedianRule",
    "TukeyMedianRule",
    "simulate_vector",
    "VectorSimulationResult",
]


@dataclass(frozen=True)
class VectorConfiguration:
    """A snapshot of the d-dimensional process: one integer vector per process."""

    values: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=np.int64)
        if arr.ndim != 2:
            raise ValueError(f"expected an (n, d) value matrix, got shape {arr.shape}")
        arr = np.ascontiguousarray(arr)
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)

    @classmethod
    def random(cls, n: int, d: int, low: int, high: int,
               rng: np.random.Generator) -> "VectorConfiguration":
        """Each process draws a uniform integer vector in ``[low, high)^d``."""
        if n <= 0 or d <= 0:
            raise ValueError("n and d must be positive")
        if high <= low:
            raise ValueError("high must exceed low")
        return cls(values=rng.integers(low, high, size=(n, d)))

    @property
    def n(self) -> int:
        return int(self.values.shape[0])

    @property
    def d(self) -> int:
        return int(self.values.shape[1])

    @property
    def is_consensus(self) -> bool:
        """All processes hold the same vector."""
        return bool(np.all(self.values == self.values[0]))

    def agreement_fraction(self) -> float:
        """Fraction of processes holding the most common vector."""
        _, counts = np.unique(self.values, axis=0, return_counts=True)
        return float(counts.max()) / self.n

    def distinct_vectors(self) -> int:
        """Number of distinct vectors present."""
        return int(np.unique(self.values, axis=0).shape[0])

    def contains_vector(self, vector: Sequence[int]) -> bool:
        """Is ``vector`` currently held by some process?"""
        target = np.asarray(vector, dtype=np.int64)
        return bool(np.any(np.all(self.values == target, axis=1)))

    def copy_values(self) -> np.ndarray:
        return np.array(self.values, dtype=np.int64)


class CoordinatewiseMedianRule:
    """Coordinate-wise median of {own vector, two sampled vectors}.

    Every coordinate performs the 1-D median rule with shared contacts, so
    each coordinate converges in O(log n) rounds; the limit vector mixes
    coordinates from different initial vectors, so the rule solves
    *coordinate-wise* consensus but not vector consensus.
    """

    name = "median-coordinatewise"
    preserves_vectors = False

    def step(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One synchronous round on an ``(n, d)`` matrix."""
        values = np.asarray(values, dtype=np.int64)
        n = values.shape[0]
        samples = rng.integers(0, n, size=(n, 2))
        vj = values[samples[:, 0]]
        vk = values[samples[:, 1]]
        lo = np.minimum(values, vj)
        hi = np.maximum(values, vj)
        return np.maximum(lo, np.minimum(hi, vk))


class TukeyMedianRule:
    """Pick the candidate vector minimising the total L1 distance to the others.

    Among the three vectors ``{v_i, v_j, v_k}`` the rule adopts
    ``argmin_x Σ_y ||x − y||_1`` (ties broken towards the process's own
    vector, then the first sample).  In one dimension this *is* the median;
    in higher dimensions it always outputs one of the three input vectors, so
    the reachable set never grows — the property the coordinate-wise rule
    gives up.
    """

    name = "median-tukey"
    preserves_vectors = True

    def step(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        n = values.shape[0]
        samples = rng.integers(0, n, size=(n, 2))
        a = values
        b = values[samples[:, 0]]
        c = values[samples[:, 1]]
        dist_ab = np.abs(a - b).sum(axis=1)
        dist_ac = np.abs(a - c).sum(axis=1)
        dist_bc = np.abs(b - c).sum(axis=1)
        cost_a = dist_ab + dist_ac
        cost_b = dist_ab + dist_bc
        cost_c = dist_ac + dist_bc
        costs = np.stack([cost_a, cost_b, cost_c], axis=1)
        choice = np.argmin(costs, axis=1)          # ties -> smallest index (own first)
        out = np.where(choice[:, None] == 0, a, np.where(choice[:, None] == 1, b, c))
        return np.ascontiguousarray(out)


@dataclass
class VectorSimulationResult:
    """Outcome of a d-dimensional run."""

    initial: VectorConfiguration
    final: VectorConfiguration
    rounds_executed: int
    consensus_round: Optional[int]

    @property
    def reached_consensus(self) -> bool:
        return self.consensus_round is not None

    @property
    def final_vector(self) -> Optional[Tuple[int, ...]]:
        if not self.final.is_consensus:
            return None
        return tuple(int(x) for x in self.final.values[0])


def simulate_vector(
    initial: VectorConfiguration,
    rule: CoordinatewiseMedianRule | TukeyMedianRule | None = None,
    *,
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> VectorSimulationResult:
    """Run a d-dimensional median-rule variant to consensus or the horizon."""
    rule = rule or CoordinatewiseMedianRule()
    rng = np.random.default_rng(seed)
    n = initial.n
    horizon = max_rounds if max_rounds is not None else max(200, int(40 * np.log2(max(n, 2))))

    values = initial.copy_values()
    consensus_round: Optional[int] = 0 if initial.is_consensus else None
    rounds = 0
    for t in range(1, horizon + 1):
        values = rule.step(values, rng)
        rounds = t
        if consensus_round is None and bool(np.all(values == values[0])):
            consensus_round = t
            break

    return VectorSimulationResult(
        initial=initial,
        final=VectorConfiguration(values=values),
        rounds_executed=rounds,
        consensus_round=consensus_round,
    )
