"""Baseline update rules the paper discusses or compares against.

* :class:`MinimumRule` — the *minimum rule* of Section 1.1: contact one
  random process and take the minimum.  Converges in O(log n) rounds without
  an adversary, but is **not** stabilizing: a 1-bounded adversary can
  re-introduce a smaller value arbitrarily late and flip the whole system
  (the counterexample that motivates the median rule).
* :class:`MaximumRule` — symmetric variant (take the maximum).
* :class:`VoterRule` — the single-choice voter model: copy one random
  process's value.  Demonstrates the "power of two choices" gap: the voter
  model needs Θ(n) rounds in expectation to reach consensus from the
  all-distinct state, versus O(log n) for the median rule.
* :class:`MeanRule` — the mean-of-three rule of Dolev et al. [17] cited in
  Section 1.2: converges towards a common number but that number need not be
  one of the initial values, so it does not solve consensus in the paper's
  sense (``preserves_values = False``).
* :class:`TwoChoicesMajorityRule` — classic 3-majority without self (each
  process polls three random processes and adopts their majority, ties broken
  at random); included for cross-comparison with the gossip literature.
* :class:`TwoChoicesRule` — the classic "2-Choices" dynamics (registry name
  ``two-choices-majority``): poll two random processes and adopt their value
  iff the two agree, otherwise keep the own value.  The second standard
  majority-family comparison point from the gossip literature.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.rules import Rule, register_rule

__all__ = [
    "MinimumRule",
    "MaximumRule",
    "VoterRule",
    "MeanRule",
    "TwoChoicesMajorityRule",
    "TwoChoicesRule",
]


@register_rule
class MinimumRule(Rule):
    """``v_i <- min(v_i, v_j)`` with one uniformly random contact ``j``.

    Section 1.1: "In each round, every process i contacts some random process
    j in the system and updates its own value to min{v_i, v_j}."
    """

    name = "minimum"
    num_choices = 1
    preserves_values = True

    def apply_vectorized(
        self, values: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        self.validate_samples(values.shape[0], samples)
        return np.minimum(values, values[samples[:, 0]])

    def apply_single(
        self, own_value: int, sampled_values: Sequence[int], rng: np.random.Generator
    ) -> int:
        if len(sampled_values) != 1:
            raise ValueError("minimum rule needs exactly one sampled value")
        return min(int(own_value), int(sampled_values[0]))


@register_rule
class MaximumRule(Rule):
    """``v_i <- max(v_i, v_j)`` with one uniformly random contact ``j``."""

    name = "maximum"
    num_choices = 1
    preserves_values = True

    def apply_vectorized(
        self, values: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        self.validate_samples(values.shape[0], samples)
        return np.maximum(values, values[samples[:, 0]])

    def apply_single(
        self, own_value: int, sampled_values: Sequence[int], rng: np.random.Generator
    ) -> int:
        if len(sampled_values) != 1:
            raise ValueError("maximum rule needs exactly one sampled value")
        return max(int(own_value), int(sampled_values[0]))


@register_rule
class VoterRule(Rule):
    """Single-choice voter model: copy the value of one random contact.

    This is the natural "one choice" counterpart of the median rule; the gap
    between its Θ(n) consensus time (from the all-distinct state) and the
    median rule's O(log n) is the "power of two choices" the title refers to.
    """

    name = "voter"
    num_choices = 1
    preserves_values = True

    def apply_vectorized(
        self, values: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        self.validate_samples(values.shape[0], samples)
        return np.ascontiguousarray(values[samples[:, 0]])

    def apply_single(
        self, own_value: int, sampled_values: Sequence[int], rng: np.random.Generator
    ) -> int:
        if len(sampled_values) != 1:
            raise ValueError("voter rule needs exactly one sampled value")
        return int(sampled_values[0])


@register_rule
class MeanRule(Rule):
    """``v_i <- round(mean(v_i, v_j, v_k))`` — the Dolev et al. style mean rule.

    Values converge towards a common number, but the limit is generally *not*
    one of the initial values, so the rule does not solve the consensus
    problem in the paper's sense.  Kept as a baseline for the ablation
    benchmark (median vs. mean).
    """

    name = "mean"
    num_choices = 2
    preserves_values = False

    def apply_vectorized(
        self, values: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        self.validate_samples(values.shape[0], samples)
        vj = values[samples[:, 0]]
        vk = values[samples[:, 1]]
        total = values + vj + vk
        # round-half-to-even on the rational mean total/3
        return np.rint(total / 3.0).astype(np.int64)

    def apply_single(
        self, own_value: int, sampled_values: Sequence[int], rng: np.random.Generator
    ) -> int:
        if len(sampled_values) != 2:
            raise ValueError("mean rule needs exactly two sampled values")
        total = int(own_value) + int(sampled_values[0]) + int(sampled_values[1])
        return int(np.rint(total / 3.0))


@register_rule
class TwoChoicesMajorityRule(Rule):
    """Classic 3-majority: poll three random processes, adopt their majority.

    Unlike the paper's rule the process's own value does not participate; if
    all three polled values are distinct, one of them is adopted uniformly at
    random.  This is the standard "3-majority" dynamics from the gossip
    literature and serves as an external comparison point.
    """

    name = "three-majority"
    num_choices = 3
    preserves_values = True

    def apply_vectorized(
        self, values: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        self.validate_samples(values.shape[0], samples)
        a = values[samples[:, 0]]
        b = values[samples[:, 1]]
        c = values[samples[:, 2]]
        # If at least two agree, that value wins; otherwise pick one of the
        # three uniformly at random.
        out = np.where(a == b, a, np.where(a == c, a, np.where(b == c, b, a)))
        all_distinct = (a != b) & (a != c) & (b != c)
        if np.any(all_distinct):
            idx = np.flatnonzero(all_distinct)
            pick = rng.integers(0, 3, size=idx.shape[0])
            stacked = np.stack([a[idx], b[idx], c[idx]], axis=1)
            out = np.array(out, dtype=np.int64)
            out[idx] = stacked[np.arange(idx.shape[0]), pick]
        return np.ascontiguousarray(out)

    def apply_single(
        self, own_value: int, sampled_values: Sequence[int], rng: np.random.Generator
    ) -> int:
        if len(sampled_values) != 3:
            raise ValueError("three-majority rule needs exactly three sampled values")
        a, b, c = (int(v) for v in sampled_values)
        if a == b or a == c:
            return a
        if b == c:
            return b
        return int((a, b, c)[rng.integers(0, 3)])


@register_rule
class TwoChoicesRule(Rule):
    """Classic 2-Choices dynamics: adopt the sampled value iff two samples agree.

    Each process polls two random processes; if both hold the same value the
    process adopts it, otherwise it keeps its own value.  (Note the majority
    of {sample, sample, self} *is* this rule: two agreeing samples outvote the
    own value, a split sample leaves the own value the plurality — hence the
    registry name ``two-choices-majority``.)  The standard "2-Choices" voting
    dynamics from the gossip literature; like :class:`TwoChoicesMajorityRule`
    it serves as an external majority-family comparison point for the paper's
    median rule.
    """

    name = "two-choices-majority"
    num_choices = 2
    preserves_values = True

    def apply_vectorized(
        self, values: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        self.validate_samples(values.shape[0], samples)
        vj = values[samples[:, 0]]
        vk = values[samples[:, 1]]
        return np.where(vj == vk, vj, values)

    def apply_single(
        self, own_value: int, sampled_values: Sequence[int], rng: np.random.Generator
    ) -> int:
        if len(sampled_values) != 2:
            raise ValueError("two-choices-majority rule needs exactly two sampled values")
        a, b = int(sampled_values[0]), int(sampled_values[1])
        return a if a == b else int(own_value)
