"""Fineness partial order and the monotone coupling of Lemma 17 (Section 4.1).

An assignment with bin loads ``(k_i)`` is *finer* than one with loads
``(k~_i)`` if there is a monotone map ``f`` of bins to bins with
``k~_i = sum_{j in f^{-1}(i)} k_j``.  The all-one assignment (every ball in
its own bin) is finer than every other assignment.

Lemma 17 couples two runs of the median rule started from a finer and a
coarser assignment using the *same* random choices: because a monotone map
commutes with the median, the coarser run is at every round the image of the
finer run under ``f``, so the finer run's convergence time point-wise
dominates the coarser one's.  This module provides

* :func:`is_finer` / :func:`refinement_map` — decide the partial order and
  construct a witnessing monotone map;
* :func:`refine_configuration` — apply a refinement map to a configuration;
* :func:`coupled_step` / :func:`coupled_run` — execute the shared-randomness
  coupling of Lemma 17, returning both trajectories; the test-suite and the
  FINENESS benchmark verify that the coarser state remains the image of the
  finer one and that it reaches consensus no later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.median_rule import MedianRule
from repro.core.rules import Rule
from repro.core.state import Configuration

__all__ = [
    "sorted_loads",
    "is_finer",
    "refinement_map",
    "refine_configuration",
    "CoupledTrajectories",
    "coupled_step",
    "coupled_run",
]


def sorted_loads(config: Configuration) -> List[int]:
    """Bin loads listed in increasing bin (value) order, non-empty bins only."""
    return [count for _, count in sorted(config.loads.items())]


def refinement_map(fine: Sequence[int], coarse: Sequence[int]) -> Optional[List[int]]:
    """Find a monotone grouping of ``fine`` loads that produces ``coarse`` loads.

    Both arguments are load sequences in bin order (non-empty bins).  Returns
    a list ``assignment`` with ``assignment[j] = i`` meaning fine bin ``j``
    maps to coarse bin ``i`` (0-based, monotone non-decreasing), or ``None``
    if no such map exists.

    The greedy left-to-right scan is correct because a monotone map must send
    a *prefix* of fine bins onto each coarse bin, and prefix sums are
    uniquely determined.
    """
    fine = [int(x) for x in fine]
    coarse = [int(x) for x in coarse]
    if sum(fine) != sum(coarse):
        return None
    assignment: List[int] = []
    j = 0
    for i, target in enumerate(coarse):
        acc = 0
        while acc < target:
            if j >= len(fine):
                return None
            acc += fine[j]
            assignment.append(i)
            j += 1
        if acc != target:
            return None
        if target == 0:
            # a coarse bin with zero load absorbs no fine bins; nothing to do
            continue
    if j != len(fine):
        return None
    return assignment


def is_finer(fine: Configuration | Sequence[int], coarse: Configuration | Sequence[int]) -> bool:
    """Is the first assignment finer than the second (Section 4.1)?

    Arguments may be :class:`Configuration` objects or load sequences in bin
    order.  Every assignment is finer than itself (the identity map is
    monotone), making this a partial order.
    """
    fine_loads = sorted_loads(fine) if isinstance(fine, Configuration) else list(fine)
    coarse_loads = sorted_loads(coarse) if isinstance(coarse, Configuration) else list(coarse)
    return refinement_map(fine_loads, coarse_loads) is not None


def refine_configuration(fine: Configuration, coarse_support: Sequence[int],
                         assignment: Sequence[int]) -> Configuration:
    """Map a fine configuration onto coarse bins via a bin-to-bin assignment.

    ``assignment[j] = i`` sends the ``j``-th non-empty fine bin (in value
    order) to coarse value ``coarse_support[i]``.  Used to construct the
    coupled coarse run of Lemma 17 from the fine run.
    """
    fine_support = sorted(int(v) for v in fine.support)
    if len(assignment) != len(fine_support):
        raise ValueError("assignment length must equal the number of fine bins")
    mapping = {fine_support[j]: int(coarse_support[int(assignment[j])])
               for j in range(len(fine_support))}
    return fine.mapped(mapping)


@dataclass(frozen=True)
class CoupledTrajectories:
    """Result of a shared-randomness coupled run (Lemma 17).

    Attributes
    ----------
    fine / coarse:
        Per-round configurations of the two coupled processes.
    fine_consensus_round / coarse_consensus_round:
        First round of exact consensus (``None`` if not reached within the
        horizon).  Lemma 17 guarantees ``coarse <= fine`` whenever both are
        defined, and that ``fine`` reaching consensus forces ``coarse`` to
        have reached it too.
    """

    fine: Tuple[Configuration, ...]
    coarse: Tuple[Configuration, ...]
    fine_consensus_round: Optional[int]
    coarse_consensus_round: Optional[int]


def coupled_step(fine_values: np.ndarray, coarse_values: np.ndarray,
                 samples: np.ndarray, rule: Rule) -> Tuple[np.ndarray, np.ndarray]:
    """Advance both coupled configurations one round with shared samples."""
    rng = np.random.default_rng(0)  # rules used here are deterministic given samples
    return (rule.apply_vectorized(fine_values, samples, rng),
            rule.apply_vectorized(coarse_values, samples, rng))


def coupled_run(
    fine: Configuration,
    coarse: Configuration,
    rounds: int,
    rng: np.random.Generator,
    rule: Rule | None = None,
) -> CoupledTrajectories:
    """Run the Lemma 17 coupling for ``rounds`` rounds.

    Both configurations must have the same number of processes, and ``fine``
    must be finer than ``coarse`` for the lemma's guarantees to apply (this is
    validated).  The same contact samples drive both runs each round.
    """
    if fine.n != coarse.n:
        raise ValueError("coupled configurations must have the same number of processes")
    if not is_finer(fine, coarse):
        raise ValueError("first configuration is not finer than the second")
    rule = rule or MedianRule()

    fine_vals = fine.copy_values()
    coarse_vals = coarse.copy_values()
    fine_traj = [Configuration.from_values(fine_vals)]
    coarse_traj = [Configuration.from_values(coarse_vals)]

    fine_round: Optional[int] = 0 if fine.is_consensus else None
    coarse_round: Optional[int] = 0 if coarse.is_consensus else None

    for t in range(1, rounds + 1):
        samples = rule.sample_contacts(fine.n, rng)
        fine_vals, coarse_vals = coupled_step(fine_vals, coarse_vals, samples, rule)
        fine_traj.append(Configuration.from_values(fine_vals))
        coarse_traj.append(Configuration.from_values(coarse_vals))
        if fine_round is None and fine_traj[-1].is_consensus:
            fine_round = t
        if coarse_round is None and coarse_traj[-1].is_consensus:
            coarse_round = t
        if fine_round is not None and coarse_round is not None:
            break

    return CoupledTrajectories(
        fine=tuple(fine_traj),
        coarse=tuple(coarse_traj),
        fine_consensus_round=fine_round,
        coarse_consensus_round=coarse_round,
    )
