"""Gravity of a ball and heavy-ball sets (Section 4.2, Equation 1).

The paper orders balls so that balls with higher numbers sit in higher bins,
and associates with each ball ``i`` its *gravity* ``g(i)``: the expected
number of balls that choose ball ``i``'s position as their median in the next
step.  Equation (1) gives

    g(i) = 6 * (n - i) * i / n**2 + O(1/n)

(using 1-based ball numbering; the maximum ~3/2 is attained by the median
ball ``i ≈ n/2``).  Bins whose heavy balls all have gravity ≥ 4/3 keep growing
(Lemma 19); bins that contain a heavy ball with gravity < 4/3 eventually die
(Lemma 18).  This module provides:

* :func:`gravity` — the closed-form approximation of Eq. (1);
* :func:`exact_gravity` — the exact expected number of choosers, derived by
  summing, over every ball ``j``, the probability that the median of
  ``{rank(j), I, J}`` equals ball ``i``'s rank (no ``O(1/n)`` slack), used to
  validate the approximation empirically;
* :func:`empirical_gravity` — a Monte-Carlo estimate obtained by actually
  running rounds, used by the GRAVITY experiment;
* :func:`heavy_balls` — the heavy-ball sets ``H_{t,j}`` (the ``Φ = C·sqrt(n log n)``
  balls of largest gravity in each bin).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.state import Configuration

__all__ = [
    "gravity",
    "gravity_array",
    "exact_gravity",
    "empirical_gravity",
    "heavy_ball_threshold",
    "heavy_balls",
    "median_ball_rank",
]


def gravity(i: int | np.ndarray, n: int) -> float | np.ndarray:
    """Equation (1): ``g(i) ≈ 6 i (n−i) / n²`` for 1-based ball rank ``i``.

    ``i`` may be a scalar or array of ranks in ``[1, n]``.
    """
    i_arr = np.asarray(i, dtype=np.float64)
    out = 6.0 * (n - i_arr) * i_arr / float(n) ** 2
    if np.isscalar(i):
        return float(out)
    return out


def gravity_array(n: int) -> np.ndarray:
    """Gravity of every ball rank ``1..n`` as an array (index 0 ↔ rank 1)."""
    return gravity(np.arange(1, n + 1), n)


def median_ball_rank(n: int) -> int:
    """Rank of the median ball, ``ceil(n/2)`` in the paper's 1-based ordering."""
    return (n + 1) // 2


def exact_gravity(i: int, n: int) -> float:
    """Exact expected number of balls choosing rank ``i`` as their median.

    For the all-distinct (all-one) assignment with balls at ranks ``1..n``,
    ball ``j`` updates to the median of ``{j, I_j, J_j}`` where ``I_j, J_j``
    are uniform on ``[1, n]``.  The probability that this median equals ``i``
    decomposes by the position of ``j`` relative to ``i``:

    * ``j < i``: the median is ``i`` iff exactly one of the two samples is
      ``i`` and the other is ``> i`` ... plus the case both samples are ``i``.
    * ``j > i``: symmetric with "``< i``".
    * ``j = i``: the median is ``i`` unless both samples fall strictly on the
      same side of ``i``.

    Summing these over all ``j`` gives the exact gravity, which Eq. (1)
    approximates as ``6 i (n - i) / n²``.
    """
    if not 1 <= i <= n:
        raise ValueError("rank i must lie in [1, n]")
    below = i - 1          # number of ranks < i
    above = n - i          # number of ranks > i
    p_i = 1.0 / n          # probability one uniform sample equals i exactly
    p_above = above / n
    p_below = below / n

    # j strictly below i: need median == i.
    # Both samples >= i is not enough (median would be min(samples) which may
    # exceed i); we need the *second smallest* of {j, s1, s2} to be i, i.e.
    # at least one sample == i and the other >= i, or both samples == i.
    p_from_below = 2.0 * p_i * p_above + p_i * p_i
    # j strictly above i: symmetric.
    p_from_above = 2.0 * p_i * p_below + p_i * p_i
    # j == i: median stays at i unless both samples are < i or both are > i.
    p_stay = 1.0 - p_below ** 2 - p_above ** 2

    return below * p_from_below + above * p_from_above + p_stay


def empirical_gravity(n: int, rounds: int, rng: np.random.Generator) -> np.ndarray:
    """Monte-Carlo estimate of the gravity of each rank in the all-one state.

    Repeats ``rounds`` independent single-round experiments from the
    all-distinct configuration and counts, for every rank ``i``, how many
    balls chose ``i`` as their new value; returns the per-round average.
    This directly estimates the quantity that Eq. (1) approximates.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    values = np.arange(1, n + 1, dtype=np.int64)
    counts = np.zeros(n, dtype=np.float64)
    for _ in range(rounds):
        samples = rng.integers(0, n, size=(n, 2))
        vj = values[samples[:, 0]]
        vk = values[samples[:, 1]]
        lo = np.minimum(values, vj)
        hi = np.maximum(values, vj)
        med = np.maximum(lo, np.minimum(hi, vk))
        counts += np.bincount(med - 1, minlength=n)
    return counts / rounds


def heavy_ball_threshold(n: int, constant: float = 1.0) -> int:
    """``Φ = C · sqrt(n log n)`` — the heavy-ball set size of Section 4.2."""
    if n <= 1:
        return n
    return max(1, int(math.ceil(constant * math.sqrt(n * math.log(n)))))


def heavy_balls(config: Configuration, constant: float = 1.0
                ) -> Dict[int, np.ndarray]:
    """Heavy-ball sets ``H_{t,j}``: per bin, the ≤Φ balls of largest gravity.

    Balls are ranked by the paper's ordering (sorted by value, ties by index);
    gravity is evaluated with Eq. (1) at each ball's rank.  Returns a mapping
    from bin value to the array of *process indices* forming that bin's
    heavy-ball set.
    """
    n = config.n
    phi = heavy_ball_threshold(n, constant)
    order = np.argsort(config.values, kind="stable")      # process index by rank
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(1, n + 1)                     # rank of each process
    grav = gravity(ranks, n)

    out: Dict[int, np.ndarray] = {}
    for value in config.support:
        members = np.flatnonzero(config.values == value)
        if members.shape[0] == 0:
            continue
        member_grav = grav[members]
        if members.shape[0] <= phi:
            chosen = members[np.argsort(-member_grav, kind="stable")]
        else:
            top = np.argsort(-member_grav, kind="stable")[:phi]
            chosen = members[top]
        out[int(value)] = chosen
    return out
