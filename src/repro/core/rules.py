"""Update-rule framework.

A *rule* describes how every process updates its value in one synchronous
round, given (a) its own current value and (b) the values of the processes it
sampled this round.  The paper's contribution is the :class:`~repro.core.median_rule.MedianRule`
(sample two, take the median of three); the baselines of Section 1
(minimum rule, mean rule, single-choice voter) are in
:mod:`repro.core.baseline_rules`.

Two execution surfaces are supported by every rule:

``apply_vectorized(values, samples, rng)``
    One whole round at once: ``values`` is the length-``n`` value vector and
    ``samples`` is an ``(n, k)`` integer array whose row ``j`` lists the
    indices of the ``k`` processes sampled by process ``j``.  This is the hot
    path used by :mod:`repro.engine.vectorized`.

``apply_single(own_value, sampled_values, rng)``
    One process at a time, used by the agent-level message-passing simulator
    in :mod:`repro.network.simulator`.

Rules are registered by name in :data:`RULE_REGISTRY` so experiments can be
configured with plain strings.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Sequence, Type

import numpy as np

__all__ = ["Rule", "RULE_REGISTRY", "register_rule", "get_rule", "available_rules"]


class Rule(abc.ABC):
    """Abstract base class for per-round value-update rules.

    Attributes
    ----------
    name:
        Registry name of the rule (class attribute, overridden by subclasses).
    num_choices:
        How many other processes each process samples per round (``k``).
    preserves_values:
        True iff the rule can only ever output one of its input values
        (median, minimum, voter...).  The mean rule sets this to False; it is
        the property that makes a rule solve *consensus* rather than mere
        convergence (Section 1.2).
    """

    name: str = "abstract"
    num_choices: int = 2
    preserves_values: bool = True

    # ------------------------------------------------------------------ #
    # core interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def apply_vectorized(
        self,
        values: np.ndarray,
        samples: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Compute the next value vector for a whole round.

        Parameters
        ----------
        values:
            Current value vector of shape ``(n,)``.
        samples:
            Index array of shape ``(n, k)``; row ``j`` holds the indices of
            the processes sampled by process ``j`` this round.
        rng:
            Source of randomness for rules that need tie-breaking coins.

        Returns
        -------
        numpy.ndarray
            New value vector of shape ``(n,)``.  Must not alias ``values``.
        """

    @abc.abstractmethod
    def apply_single(
        self,
        own_value: int,
        sampled_values: Sequence[int],
        rng: np.random.Generator,
    ) -> int:
        """Compute one process's next value from its own and sampled values."""

    # ------------------------------------------------------------------ #
    # conveniences shared by all rules
    # ------------------------------------------------------------------ #
    def sample_contacts(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw the round's contacts: ``(n, k)`` uniform indices in ``[0, n)``.

        The paper samples *uniformly and independently at random among all
        processes (including itself)*, i.e. with replacement; subclasses may
        override for ablations (e.g. excluding self).
        """
        return rng.integers(0, n, size=(n, self.num_choices), dtype=np.int64)

    def step(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One full synchronous round: sample contacts then apply the rule."""
        values = np.asarray(values, dtype=np.int64)
        samples = self.sample_contacts(values.shape[0], rng)
        return self.apply_vectorized(values, samples, rng)

    def validate_samples(self, n: int, samples: np.ndarray) -> None:
        """Raise ``ValueError`` if a sample matrix is malformed for this rule."""
        samples = np.asarray(samples)
        if samples.ndim != 2 or samples.shape[1] != self.num_choices:
            raise ValueError(
                f"{self.name}: expected samples of shape (n, {self.num_choices}), "
                f"got {samples.shape}"
            )
        if samples.shape[0] != n:
            raise ValueError(f"{self.name}: samples rows {samples.shape[0]} != n={n}")
        if samples.size and (samples.min() < 0 or samples.max() >= n):
            raise ValueError(f"{self.name}: sample indices out of range [0, {n})")

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY` under ``cls.name``."""
    if not issubclass(cls, Rule):
        raise TypeError("register_rule expects a Rule subclass")
    if cls.name in RULE_REGISTRY and RULE_REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    RULE_REGISTRY[cls.name] = cls
    return cls


def get_rule(name: str, **kwargs) -> Rule:
    """Instantiate a registered rule by name.

    >>> get_rule("median").name
    'median'
    """
    # Import lazily so that importing this module alone does not force the
    # whole rule zoo, but string lookup always works for library users.
    from repro.core import baseline_rules, majority_rule, median_rule  # noqa: F401

    try:
        cls = RULE_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown rule {name!r}; available: {sorted(RULE_REGISTRY)}"
        ) from exc
    return cls(**kwargs)


def available_rules() -> Dict[str, Type[Rule]]:
    """Return a copy of the rule registry (after loading built-in rules)."""
    from repro.core import baseline_rules, majority_rule, median_rule  # noqa: F401

    return dict(RULE_REGISTRY)
