"""Configuration state for the balls-into-bins view of stabilizing consensus.

The paper (Section 2.1) identifies processes with *balls* and values with
*bins*: ``b_{t,j}`` is the bin (value) held by ball (process) ``j`` after
round ``t``.  This module provides :class:`Configuration`, the canonical
in-memory representation of one such assignment, together with conversion
helpers between the two natural encodings:

* the *value vector* ``values[j] = b_{t,j}`` of length ``n`` (one entry per
  process), and
* the *load vector* ``loads[v] = |{j : b_{t,j} = v}|`` (one entry per bin).

Values are arbitrary integers (the paper assumes they fit in ``O(log n)``
bits); internally they are stored as ``numpy.int64``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "Configuration",
    "loads_from_values",
    "values_from_loads",
    "support",
    "canonicalize_values",
]


def _as_int_array(values: Sequence[int] | np.ndarray) -> np.ndarray:
    """Return ``values`` as a 1-D contiguous ``int64`` array (copying if needed)."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D value vector, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def loads_from_values(values: Sequence[int] | np.ndarray) -> Dict[int, int]:
    """Compute the bin-load dictionary ``{value: count}`` of a value vector.

    >>> loads_from_values([1, 1, 2, 5])
    {1: 2, 2: 1, 5: 1}
    """
    arr = _as_int_array(values)
    uniq, counts = np.unique(arr, return_counts=True)
    return {int(v): int(c) for v, c in zip(uniq, counts)}


def values_from_loads(loads: Mapping[int, int]) -> np.ndarray:
    """Expand a ``{value: count}`` mapping into a sorted value vector.

    The resulting vector lists each value ``count`` times, in increasing value
    order, which matches the paper's convention of numbering balls so that
    balls in lower bins get lower indices.

    >>> values_from_loads({2: 1, 1: 2}).tolist()
    [1, 1, 2]
    """
    if any(c < 0 for c in loads.values()):
        raise ValueError("bin loads must be non-negative")
    parts = [np.full(int(count), int(value), dtype=np.int64)
             for value, count in sorted(loads.items()) if count > 0]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def support(values: Sequence[int] | np.ndarray) -> np.ndarray:
    """Return the sorted set of distinct values (the non-empty bins)."""
    return np.unique(_as_int_array(values))


def canonicalize_values(values: Sequence[int] | np.ndarray) -> np.ndarray:
    """Relabel values to ``0..m-1`` preserving order.

    The median rule is equivariant under monotone (order-preserving)
    relabelling of the values (this is the heart of Lemma 17), so analyses
    frequently canonicalize a configuration to densely packed small integers.

    >>> canonicalize_values([10, 3, 10, 99]).tolist()
    [1, 0, 1, 2]
    """
    arr = _as_int_array(values)
    _, inverse = np.unique(arr, return_inverse=True)
    return inverse.astype(np.int64)


@dataclass(frozen=True)
class Configuration:
    """A snapshot of the consensus process: one value per process.

    Parameters
    ----------
    values:
        Length-``n`` integer array; ``values[j]`` is the value currently held
        by process ``j``.

    Notes
    -----
    ``Configuration`` is immutable (frozen dataclass with a read-only array)
    so that snapshots stored in trajectories cannot be mutated accidentally
    by later rounds.
    """

    values: np.ndarray = field()

    def __post_init__(self) -> None:
        arr = _as_int_array(self.values)
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: Sequence[int] | np.ndarray) -> "Configuration":
        """Build a configuration from an explicit per-process value vector."""
        return cls(values=_as_int_array(values))

    @classmethod
    def from_loads(cls, loads: Mapping[int, int]) -> "Configuration":
        """Build a configuration from bin loads ``{value: count}``."""
        return cls(values=values_from_loads(loads))

    @classmethod
    def all_distinct(cls, n: int) -> "Configuration":
        """The *all-one* assignment of the paper: process ``i`` holds value ``i``.

        This is the finest possible assignment (Section 4.1) and therefore the
        worst case for convergence time (Lemma 17).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        return cls(values=np.arange(n, dtype=np.int64))

    @classmethod
    def two_bins(cls, n: int, minority: int, low: int = 0, high: int = 1) -> "Configuration":
        """A two-value split with ``minority`` processes on ``low``.

        Used throughout Section 3 (two bins with adversary).
        """
        if not 0 <= minority <= n:
            raise ValueError("minority must lie in [0, n]")
        values = np.full(n, int(high), dtype=np.int64)
        values[:minority] = int(low)
        return cls(values=values)

    @classmethod
    def uniform_random(
        cls, n: int, m: int, rng: np.random.Generator, values: Sequence[int] | None = None
    ) -> "Configuration":
        """Each process draws one of ``m`` values independently and uniformly.

        This is the average-case initial state of Section 5.
        """
        if m <= 0 or n <= 0:
            raise ValueError("n and m must be positive")
        pool = np.arange(m, dtype=np.int64) if values is None else _as_int_array(values)
        if len(pool) != m:
            raise ValueError("values pool must have length m")
        picks = rng.integers(0, m, size=n)
        return cls(values=pool[picks])

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of processes (balls)."""
        return int(self.values.shape[0])

    @property
    def loads(self) -> Dict[int, int]:
        """Bin loads ``{value: count}`` over non-empty bins."""
        return loads_from_values(self.values)

    @property
    def support(self) -> np.ndarray:
        """Sorted distinct values currently present."""
        return support(self.values)

    @property
    def num_values(self) -> int:
        """Number of distinct values (non-empty bins)."""
        return int(self.support.shape[0])

    @property
    def is_consensus(self) -> bool:
        """True iff every process holds the same value (a fixed point)."""
        return self.num_values <= 1

    def sorted_values(self) -> np.ndarray:
        """The value vector sorted ascending (the paper's ball ordering)."""
        return np.sort(self.values)

    def median_value(self) -> int:
        """The value held by the median ball ``m_t`` (Section 2.1).

        The median ball is the ball at position ``ceil(n/2)`` in the sorted
        ordering; for even ``n`` we take the lower of the two central balls,
        which satisfies both defining inequalities of Section 2.1.
        """
        srt = self.sorted_values()
        return int(srt[(self.n - 1) // 2])

    def count_value(self, value: int) -> int:
        """Number of processes currently holding ``value``."""
        return int(np.count_nonzero(self.values == int(value)))

    def majority_value(self) -> int:
        """The most frequent value (ties broken towards the smaller value)."""
        uniq, counts = np.unique(self.values, return_counts=True)
        return int(uniq[int(np.argmax(counts))])

    def agreement_fraction(self) -> float:
        """Fraction of processes holding the most frequent value."""
        _, counts = np.unique(self.values, return_counts=True)
        return float(counts.max()) / float(self.n)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def canonicalized(self) -> "Configuration":
        """Relabel values to ``0..m-1``, preserving order."""
        return Configuration(values=canonicalize_values(self.values))

    def with_values(self, indices: Sequence[int] | np.ndarray,
                    new_values: Sequence[int] | np.ndarray) -> "Configuration":
        """Return a copy with ``values[indices] = new_values`` (adversary writes)."""
        arr = np.array(self.values, dtype=np.int64)
        arr[np.asarray(indices, dtype=np.int64)] = np.asarray(new_values, dtype=np.int64)
        return Configuration(values=arr)

    def mapped(self, mapping: Mapping[int, int]) -> "Configuration":
        """Apply a value-to-value mapping (used for fineness refinement maps)."""
        arr = np.array([mapping[int(v)] for v in self.values], dtype=np.int64)
        return Configuration(values=arr)

    def copy_values(self) -> np.ndarray:
        """A mutable copy of the value vector (for engine-internal updates)."""
        return np.array(self.values, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return bool(np.array_equal(self.values, other.values))

    def __hash__(self) -> int:
        return hash(self.values.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        loads = self.loads
        if len(loads) > 6:
            head = dict(list(loads.items())[:6])
            return f"Configuration(n={self.n}, bins={self.num_values}, loads~{head}...)"
        return f"Configuration(n={self.n}, loads={loads})"
