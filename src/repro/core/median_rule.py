"""The median rule — the paper's primary contribution (Section 1.2).

    In each round, every process ``i`` picks two processes ``j`` and ``k``
    uniformly and independently at random among all processes (including
    itself).  It then updates ``v_i`` to the median of ``v_i``, ``v_j`` and
    ``v_k``.

The median of three integers is computed without sorting via
``a + b + c - min - max``-free logic: we use element-wise
``np.minimum``/``np.maximum`` identities, which keeps the vectorized round
at three ufunc passes over the value arrays (the guides' "vectorize the
loop" idiom).

Variants used for ablations are provided:

* :class:`MedianRule` — the paper's rule (with replacement, self included).
* :class:`MedianRuleWithoutReplacement` — samples two *distinct* other
  processes.
* :class:`BestOfKMedianRule` — samples ``k`` processes and takes the median
  of the multiset ``{own} ∪ samples`` (``k=2`` recovers the paper's rule;
  larger ``k`` probes the "more choices" regime).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.rules import Rule, register_rule

__all__ = [
    "median_of_three",
    "median_of_three_scalar",
    "MedianRule",
    "MedianRuleWithoutReplacement",
    "BestOfKMedianRule",
]


def median_of_three(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Element-wise median of three integer arrays.

    Uses the identity ``median(a,b,c) = max(min(a,b), min(max(a,b), c))``,
    which needs four ufunc calls and no sort.

    >>> median_of_three(np.array([10]), np.array([12]), np.array([100]))[0]
    12
    """
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    return np.maximum(lo, np.minimum(hi, c))


def median_of_three_scalar(a: int, b: int, c: int) -> int:
    """Median of three Python integers (agent-level simulator kernel)."""
    if a > b:
        a, b = b, a
    # now a <= b
    if c <= a:
        return a
    if c >= b:
        return b
    return c


@register_rule
class MedianRule(Rule):
    """The paper's median rule: ``v_i <- median(v_i, v_j, v_k)``.

    ``j`` and ``k`` are sampled uniformly at random with replacement from all
    ``n`` processes (self included), exactly as defined in Section 2.1.
    """

    name = "median"
    num_choices = 2
    preserves_values = True

    def apply_vectorized(
        self, values: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        self.validate_samples(values.shape[0], samples)
        vj = values[samples[:, 0]]
        vk = values[samples[:, 1]]
        return median_of_three(values, vj, vk)

    def apply_single(
        self, own_value: int, sampled_values: Sequence[int], rng: np.random.Generator
    ) -> int:
        if len(sampled_values) != 2:
            raise ValueError("median rule needs exactly two sampled values")
        return median_of_three_scalar(int(own_value), int(sampled_values[0]),
                                      int(sampled_values[1]))


@register_rule
class MedianRuleWithoutReplacement(MedianRule):
    """Ablation: sample two *distinct* processes, excluding self.

    The analysis of the paper does not depend on self-inclusion (the
    probability of sampling oneself is ``O(1/n)``), so this variant should
    behave identically at scale; the ablation benchmark verifies this.
    """

    name = "median-noreplace"

    def sample_contacts(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 3:
            # With fewer than three processes distinct "two others" may not
            # exist; fall back to with-replacement sampling.
            return rng.integers(0, n, size=(n, 2), dtype=np.int64)
        # Draw first choice uniformly among the other n-1 processes, second
        # among the remaining n-2, using shifted uniform draws (vectorized
        # rejection-free scheme).
        own = np.arange(n, dtype=np.int64)
        first = rng.integers(0, n - 1, size=n, dtype=np.int64)
        first = first + (first >= own)  # skip self
        second = rng.integers(0, n - 2, size=n, dtype=np.int64)
        # skip both self and first (order the two excluded indices)
        low = np.minimum(own, first)
        high = np.maximum(own, first)
        second = second + (second >= low)
        second = second + (second >= high)
        return np.stack([first, second], axis=1)


@register_rule
class BestOfKMedianRule(Rule):
    """Generalized median rule with ``k`` sampled contacts.

    Each process samples ``k`` contacts (with replacement, self included) and
    adopts the median of the ``k + 1`` values ``{v_i, v_{j_1}, ..., v_{j_k}}``.
    For even ``k + 1`` the lower of the two central order statistics is used,
    so the rule still always outputs one of its inputs
    (``preserves_values`` stays True).

    ``k = 2`` recovers :class:`MedianRule` semantics exactly.
    """

    name = "median-k"
    preserves_values = True

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)
        self.num_choices = int(k)

    def apply_vectorized(
        self, values: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        self.validate_samples(values.shape[0], samples)
        stacked = np.concatenate([values[:, None], values[samples]], axis=1)
        stacked.sort(axis=1)
        # lower median of k+1 values
        return np.ascontiguousarray(stacked[:, (self.k) // 2])

    def apply_single(
        self, own_value: int, sampled_values: Sequence[int], rng: np.random.Generator
    ) -> int:
        pool = sorted([int(own_value)] + [int(v) for v in sampled_values])
        return pool[(len(pool) - 1) // 2]

    def __repr__(self) -> str:  # pragma: no cover
        return f"BestOfKMedianRule(k={self.k})"
