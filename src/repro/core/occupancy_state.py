"""Occupancy-vector state: counts over the value support instead of per-ball values.

The median-rule dynamics (and every other anonymous, symmetric rule in this
library) depend on a configuration only through its *occupancy vector*: how
many of the ``n`` processes hold each of the ``m`` distinct values.  Storing
one count per value instead of one value per process turns the state from
O(n) to O(m) memory, which is what makes n = 10⁸–10⁹ simulations feasible —
see :mod:`repro.engine.occupancy` for the matching O(m²)-per-round engine.

:class:`OccupancyState` deliberately mirrors the query API of
:class:`~repro.core.state.Configuration` (``n``, ``num_values``, ``support``,
``loads``, ``is_consensus``, ``median_value()``, ``majority_value()``,
``agreement_fraction()``, ``count_value()``) so that result records and
analysis code can hold either representation without caring which substrate
produced it.  Unlike ``Configuration``, an occupancy state may carry *empty*
bins: the engine keeps the support fixed over a run (initial support ∪
admissible adversary values) so that the adversary can re-introduce extinct
values by pure count edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.metrics import ConfigurationMetrics
from repro.core.state import Configuration, values_from_loads

__all__ = [
    "OccupancyState",
    "occupancy_from_values",
    "occupancy_metrics",
]

#: Above this many processes, expanding an occupancy state to a per-process
#: value vector is considered a mistake (8 bytes/process: 10⁸ ≈ 800 MB).
MATERIALIZE_LIMIT_DEFAULT = 1_000_000


@dataclass(frozen=True)
class OccupancyState:
    """Counts over a sorted value support: ``counts[i]`` balls hold ``support[i]``.

    Parameters
    ----------
    support:
        Strictly increasing 1-D int64 array of value labels (bins).
    counts:
        Non-negative int64 array of the same length; ``counts[i]`` is the
        number of processes currently holding ``support[i]``.  Zero entries
        are allowed (empty bins kept for adversary re-introduction).
    """

    support: np.ndarray = field()
    counts: np.ndarray = field()

    def __post_init__(self) -> None:
        sup = np.ascontiguousarray(np.asarray(self.support, dtype=np.int64))
        cnt = np.ascontiguousarray(np.asarray(self.counts, dtype=np.int64))
        if sup.ndim != 1 or cnt.ndim != 1:
            raise ValueError("support and counts must be 1-D arrays")
        if sup.shape[0] != cnt.shape[0]:
            raise ValueError(
                f"support ({sup.shape[0]}) and counts ({cnt.shape[0]}) lengths differ"
            )
        if sup.shape[0] > 1 and np.any(np.diff(sup) <= 0):
            raise ValueError("support must be strictly increasing")
        if np.any(cnt < 0):
            raise ValueError("counts must be non-negative")
        sup.setflags(write=False)
        cnt.setflags(write=False)
        object.__setattr__(self, "support", sup)
        object.__setattr__(self, "counts", cnt)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_configuration(cls, config: Configuration) -> "OccupancyState":
        """Count the bin loads of a per-process configuration."""
        uniq, counts = np.unique(config.values, return_counts=True)
        return cls(support=uniq, counts=counts)

    @classmethod
    def from_values(cls, values: Sequence[int] | np.ndarray) -> "OccupancyState":
        """Count the bin loads of a raw per-process value vector."""
        uniq, counts = np.unique(np.asarray(values, dtype=np.int64), return_counts=True)
        return cls(support=uniq, counts=counts)

    @classmethod
    def from_loads(cls, loads: Mapping[int, int]) -> "OccupancyState":
        """Build from a ``{value: count}`` mapping (zero counts are kept)."""
        items = sorted((int(v), int(c)) for v, c in loads.items())
        support = np.array([v for v, _ in items], dtype=np.int64)
        counts = np.array([c for _, c in items], dtype=np.int64)
        return cls(support=support, counts=counts)

    # ------------------------------------------------------------------ #
    # Configuration-compatible queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of processes (balls)."""
        return int(self.counts.sum())

    @property
    def num_bins(self) -> int:
        """Number of tracked bins, including empty ones."""
        return int(self.support.shape[0])

    @property
    def num_values(self) -> int:
        """Number of *non-empty* bins (distinct values currently present)."""
        return int(np.count_nonzero(self.counts))

    @property
    def loads(self) -> Dict[int, int]:
        """Bin loads ``{value: count}`` over non-empty bins."""
        nz = np.flatnonzero(self.counts)
        return {int(self.support[i]): int(self.counts[i]) for i in nz}

    @property
    def is_consensus(self) -> bool:
        """True iff at most one bin is non-empty."""
        return self.num_values <= 1

    @property
    def fractions(self) -> np.ndarray:
        """Load fractions ``counts / n`` (the mean-field state)."""
        n = self.n
        if n == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts.astype(np.float64) / float(n)

    def count_value(self, value: int) -> int:
        """Number of processes currently holding ``value``."""
        idx = np.searchsorted(self.support, int(value))
        if idx < self.support.shape[0] and self.support[idx] == int(value):
            return int(self.counts[idx])
        return 0

    def median_value(self) -> int:
        """The value of the median ball (lower of the two central balls)."""
        n = self.n
        if n == 0:
            raise ValueError("median of an empty occupancy state")
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, (n - 1) // 2 + 1))
        return int(self.support[idx])

    def majority_value(self) -> int:
        """The most loaded value (ties broken towards the smaller value)."""
        if self.n == 0:
            raise ValueError("majority of an empty occupancy state")
        return int(self.support[int(np.argmax(self.counts))])

    def agreement_count(self) -> int:
        """Load of the most populated bin."""
        return int(self.counts.max()) if self.counts.size else 0

    def minority_count(self) -> int:
        """Number of balls outside the most populated bin."""
        return self.n - self.agreement_count()

    def agreement_fraction(self) -> float:
        """Fraction of processes holding the most loaded value."""
        n = self.n
        return float(self.agreement_count()) / float(n) if n else 0.0

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def with_counts(self, counts: np.ndarray) -> "OccupancyState":
        """Same support, new counts (engine round updates)."""
        return OccupancyState(support=self.support, counts=np.asarray(counts))

    def with_support(self, support: Sequence[int] | np.ndarray) -> "OccupancyState":
        """Re-align to a superset support (new bins start empty)."""
        new_sup = np.unique(np.asarray(support, dtype=np.int64))
        missing = np.setdiff1d(self.support[self.counts > 0], new_sup)
        if missing.size:
            raise ValueError(f"new support drops non-empty bins {missing.tolist()}")
        new_cnt = np.zeros(new_sup.shape[0], dtype=np.int64)
        pos = np.searchsorted(new_sup, self.support)
        keep = (pos < new_sup.shape[0])
        keep &= new_sup[np.minimum(pos, new_sup.shape[0] - 1)] == self.support
        new_cnt[pos[keep]] = self.counts[keep]
        return OccupancyState(support=new_sup, counts=new_cnt)

    def compacted(self) -> "OccupancyState":
        """Drop empty bins."""
        nz = self.counts > 0
        return OccupancyState(support=self.support[nz], counts=self.counts[nz])

    def to_configuration(self, limit: int = MATERIALIZE_LIMIT_DEFAULT) -> Configuration:
        """Expand to a per-process :class:`Configuration` (sorted ball order).

        Refuses to materialize more than ``limit`` processes — expanding an
        n = 10⁹ state would defeat the point of the representation.  Pass a
        larger ``limit`` explicitly if you really want the array.
        """
        n = self.n
        if n > limit:
            raise ValueError(
                f"refusing to materialize n={n} processes (limit {limit}); "
                "raise `limit` explicitly if this is intentional"
            )
        return Configuration(values=values_from_loads(self.loads))

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OccupancyState):
            return NotImplemented
        a, b = self.compacted(), other.compacted()
        return bool(np.array_equal(a.support, b.support)
                    and np.array_equal(a.counts, b.counts))

    def __hash__(self) -> int:
        c = self.compacted()
        return hash((c.support.tobytes(), c.counts.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        loads = self.loads
        if len(loads) > 6:
            head = dict(list(loads.items())[:6])
            return f"OccupancyState(n={self.n}, bins={self.num_values}, loads~{head}...)"
        return f"OccupancyState(n={self.n}, loads={loads})"


def occupancy_from_values(values: Sequence[int] | np.ndarray) -> OccupancyState:
    """Convenience alias for :meth:`OccupancyState.from_values`."""
    return OccupancyState.from_values(values)


def occupancy_metrics(state: OccupancyState, round_index: int = 0) -> ConfigurationMetrics:
    """The standard per-round metrics record, computed in O(m) from counts.

    Produces exactly the same :class:`ConfigurationMetrics` as
    :func:`repro.core.metrics.configuration_metrics` would on the expanded
    configuration, without ever materializing it.
    """
    return ConfigurationMetrics(
        round=int(round_index),
        support_size=state.num_values,
        agreement=state.agreement_count(),
        minority=state.minority_count(),
        median_value=state.median_value(),
        majority_value=state.majority_value(),
    )
