"""Core of the reproduction: the median rule and its companions.

This subpackage contains the paper's primary contribution (the median rule),
the baseline rules it is compared against, the configuration/state model, the
quantities its analysis tracks (imbalance, gravity, heavy balls), consensus
detection, and the fineness coupling of Lemma 17.
"""

from repro.core.baseline_rules import (
    MaximumRule,
    MeanRule,
    MinimumRule,
    TwoChoicesMajorityRule,
    TwoChoicesRule,
    VoterRule,
)
from repro.core.consensus import (
    AlmostStableCriterion,
    ConsensusStatus,
    consensus_value,
    detect_almost_stable_round,
    detect_consensus_round,
    is_consensus,
)
from repro.core.fineness import (
    CoupledTrajectories,
    coupled_run,
    is_finer,
    refinement_map,
)
from repro.core.gravity import (
    empirical_gravity,
    exact_gravity,
    gravity,
    gravity_array,
    heavy_ball_threshold,
    heavy_balls,
)
from repro.core.majority_rule import (
    MajorityRule,
    exact_two_bin_transition,
    two_bin_step_distribution,
)
from repro.core.median_rule import (
    BestOfKMedianRule,
    MedianRule,
    MedianRuleWithoutReplacement,
    median_of_three,
    median_of_three_scalar,
)
from repro.core.multidim import (
    CoordinatewiseMedianRule,
    TukeyMedianRule,
    VectorConfiguration,
    simulate_vector,
)
from repro.core.metrics import (
    ConfigurationMetrics,
    TwoBinStats,
    agreement_count,
    configuration_metrics,
    imbalance,
    labelled_imbalance,
    minority_count,
    superbin_split,
    support_size,
    two_bin_stats,
)
from repro.core.occupancy_state import OccupancyState, occupancy_metrics
from repro.core.rules import RULE_REGISTRY, Rule, available_rules, get_rule, register_rule
from repro.core.state import Configuration

__all__ = [
    # state
    "Configuration",
    "OccupancyState",
    "occupancy_metrics",
    # rules
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "get_rule",
    "available_rules",
    "MedianRule",
    "MedianRuleWithoutReplacement",
    "BestOfKMedianRule",
    "MajorityRule",
    "MinimumRule",
    "MaximumRule",
    "VoterRule",
    "MeanRule",
    "TwoChoicesMajorityRule",
    "TwoChoicesRule",
    "median_of_three",
    "median_of_three_scalar",
    "exact_two_bin_transition",
    "two_bin_step_distribution",
    # consensus
    "is_consensus",
    "consensus_value",
    "ConsensusStatus",
    "AlmostStableCriterion",
    "detect_consensus_round",
    "detect_almost_stable_round",
    # metrics
    "TwoBinStats",
    "two_bin_stats",
    "imbalance",
    "labelled_imbalance",
    "support_size",
    "agreement_count",
    "minority_count",
    "superbin_split",
    "ConfigurationMetrics",
    "configuration_metrics",
    # multidim
    "VectorConfiguration",
    "CoordinatewiseMedianRule",
    "TukeyMedianRule",
    "simulate_vector",
    # gravity
    "gravity",
    "gravity_array",
    "exact_gravity",
    "empirical_gravity",
    "heavy_ball_threshold",
    "heavy_balls",
    # fineness
    "is_finer",
    "refinement_map",
    "coupled_run",
    "CoupledTrajectories",
]
