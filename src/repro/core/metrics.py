"""Quantities tracked by the paper's analysis.

Section 3 works with the two-bin quantities

* ``L_t`` / ``R_t``      — loads of the left and right bin,
* ``X_t = min(L, R)``, ``Y_t = max(L, R)``,
* the *imbalance*        ``Δ_t = (Y_t − X_t) / 2``,
* the *labelled imbalance* ``Ψ_t = (R_t − L_t) / 2``;

Section 4 adds, for general configurations,

* the number of non-empty bins (support size),
* the load of the bin containing the *median ball* ``m_t``,
* the *gravity* ``g(i)`` of each ball (see :mod:`repro.core.gravity`), and
* superbin consolidations (merging a contiguous range of bins into one),
  used in the proofs of Theorems 1, 20 and 21.

This module computes all of these from a value vector or
:class:`~repro.core.state.Configuration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.state import Configuration

__all__ = [
    "TwoBinStats",
    "two_bin_stats",
    "imbalance",
    "labelled_imbalance",
    "support_size",
    "bin_loads_array",
    "agreement_count",
    "minority_count",
    "superbin_split",
    "ConfigurationMetrics",
    "configuration_metrics",
]


@dataclass(frozen=True)
class TwoBinStats:
    """Loads and imbalances of a two-value configuration.

    Attributes mirror the notation of Section 3: ``left``/``right`` are the
    loads of the smaller-value and larger-value bins, ``minority``/``majority``
    are ``X_t``/``Y_t``, ``imbalance`` is ``Δ_t`` and ``labelled_imbalance``
    is ``Ψ_t`` (positive when the right/larger-value bin leads).
    """

    n: int
    left_value: int
    right_value: int
    left: int
    right: int

    @property
    def minority(self) -> int:
        return min(self.left, self.right)

    @property
    def majority(self) -> int:
        return max(self.left, self.right)

    @property
    def imbalance(self) -> float:
        """``Δ_t = (Y_t − X_t)/2``."""
        return (self.majority - self.minority) / 2.0

    @property
    def labelled_imbalance(self) -> float:
        """``Ψ_t = (R_t − L_t)/2`` (sign carries which bin leads)."""
        return (self.right - self.left) / 2.0

    @property
    def delta_fraction(self) -> float:
        """``δ_t = Δ_t / n`` as used in Lemma 12."""
        return self.imbalance / self.n


def two_bin_stats(values: np.ndarray | Configuration) -> TwoBinStats:
    """Compute :class:`TwoBinStats` for a configuration with ≤ 2 distinct values.

    If only one value is present the "other" bin is reported with load zero
    and the same value label (so ``imbalance == n/2`` only when two real bins
    exist; a consensus state reports imbalance ``n/2`` with a degenerate
    right bin).
    """
    vals = values.values if isinstance(values, Configuration) else np.asarray(values)
    uniq, counts = np.unique(vals, return_counts=True)
    if uniq.shape[0] > 2:
        raise ValueError(f"two_bin_stats needs at most 2 distinct values, got {uniq.shape[0]}")
    n = int(vals.shape[0])
    if uniq.shape[0] == 1:
        return TwoBinStats(n=n, left_value=int(uniq[0]), right_value=int(uniq[0]),
                           left=n, right=0)
    return TwoBinStats(
        n=n,
        left_value=int(uniq[0]),
        right_value=int(uniq[1]),
        left=int(counts[0]),
        right=int(counts[1]),
    )


def imbalance(values: np.ndarray | Configuration) -> float:
    """``Δ_t`` for a ≤2-value configuration (see :class:`TwoBinStats`)."""
    return two_bin_stats(values).imbalance


def labelled_imbalance(values: np.ndarray | Configuration) -> float:
    """``Ψ_t`` for a ≤2-value configuration (see :class:`TwoBinStats`)."""
    return two_bin_stats(values).labelled_imbalance


def support_size(values: np.ndarray | Configuration) -> int:
    """Number of distinct values (non-empty bins)."""
    vals = values.values if isinstance(values, Configuration) else np.asarray(values)
    return int(np.unique(vals).shape[0])


def bin_loads_array(values: np.ndarray | Configuration,
                    bins: Sequence[int] | None = None) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(bin_labels, loads)`` arrays, optionally over a fixed bin list.

    When ``bins`` is given, the returned load array is aligned to it (zero for
    bins with no balls); otherwise only non-empty bins are listed.
    """
    vals = values.values if isinstance(values, Configuration) else np.asarray(values)
    uniq, counts = np.unique(vals, return_counts=True)
    if bins is None:
        return uniq.astype(np.int64), counts.astype(np.int64)
    bins_arr = np.asarray(bins, dtype=np.int64)
    loads = np.zeros(bins_arr.shape[0], dtype=np.int64)
    lookup = {int(v): int(c) for v, c in zip(uniq, counts)}
    for i, b in enumerate(bins_arr):
        loads[i] = lookup.get(int(b), 0)
    return bins_arr, loads


def agreement_count(values: np.ndarray | Configuration) -> int:
    """Load of the most populated bin (``n`` at consensus)."""
    vals = values.values if isinstance(values, Configuration) else np.asarray(values)
    _, counts = np.unique(vals, return_counts=True)
    return int(counts.max())


def minority_count(values: np.ndarray | Configuration) -> int:
    """Number of balls *outside* the most populated bin (0 at consensus).

    This is the quantity that must drop to ``O(T)`` (and stay there) for an
    almost stable consensus.
    """
    vals = values.values if isinstance(values, Configuration) else np.asarray(values)
    return int(vals.shape[0]) - agreement_count(vals)


def superbin_split(values: np.ndarray | Configuration,
                   threshold: int) -> Tuple[int, int, int]:
    """Consolidate bins into (left superbin, middle bin, right superbin) loads.

    ``threshold`` is the value of the dividing bin: the middle "bin" is the
    set of balls with value exactly ``threshold``, the left superbin holds all
    balls with smaller values and the right superbin all balls with larger
    values.  This is the superbin consolidation used in the proofs of
    Theorem 1 (cases on the position of the median ball) and Theorem 21.

    Returns
    -------
    (left_load, middle_load, right_load)
    """
    vals = values.values if isinstance(values, Configuration) else np.asarray(values)
    left = int(np.count_nonzero(vals < threshold))
    mid = int(np.count_nonzero(vals == threshold))
    right = int(np.count_nonzero(vals > threshold))
    return left, mid, right


@dataclass(frozen=True)
class ConfigurationMetrics:
    """A per-round metrics record stored in trajectories."""

    round: int
    support_size: int
    agreement: int
    minority: int
    median_value: int
    majority_value: int

    @property
    def agreement_fraction(self) -> float:
        return self.agreement / max(self.agreement + self.minority, 1)


def configuration_metrics(values: np.ndarray | Configuration, round_index: int = 0
                          ) -> ConfigurationMetrics:
    """Compute the standard per-round metrics for a configuration."""
    cfg = values if isinstance(values, Configuration) else Configuration.from_values(values)
    return ConfigurationMetrics(
        round=int(round_index),
        support_size=cfg.num_values,
        agreement=agreement_count(cfg),
        minority=minority_count(cfg),
        median_value=cfg.median_value(),
        majority_value=cfg.majority_value(),
    )
