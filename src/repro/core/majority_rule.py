"""Two-value majority rule (Section 3).

For configurations with only two distinct values the median rule coincides
with the *majority rule*: a ball's next bin is the majority bin among itself
and two random balls.  Section 3 of the paper analyzes exactly this process
(it is also the classical "3-majority" / "two-choices" voting dynamics), and
the many-bin proofs repeatedly reduce to it through superbin arguments.

This module provides

* :class:`MajorityRule` — a rule restricted to binary configurations that is
  *bit-exact equivalent* to :class:`~repro.core.median_rule.MedianRule` on
  two-value inputs (a property tested in the suite), and
* :func:`exact_two_bin_transition` — the exact per-ball transition
  probabilities used by the drift lemmas: a ball in the minority bin stays
  with probability ``1 - (1/2 + δ)²`` etc. (see the proof of Lemma 12).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.rules import Rule, register_rule

__all__ = ["MajorityRule", "exact_two_bin_transition", "two_bin_step_distribution"]


@register_rule
class MajorityRule(Rule):
    """Majority of {self, two uniform samples}, for two-value configurations.

    The rule is defined for arbitrary integer values but its semantics (and
    its equivalence to the median rule) assume at most two distinct values
    are present.  ``strict=True`` (default) raises if more than two distinct
    values are encountered, which catches accidental misuse in experiments.
    """

    name = "majority"
    num_choices = 2
    preserves_values = True

    def __init__(self, strict: bool = True) -> None:
        self.strict = bool(strict)

    def _check_binary(self, values: np.ndarray) -> None:
        if self.strict and np.unique(values).shape[0] > 2:
            raise ValueError(
                "MajorityRule applied to a configuration with more than two "
                "distinct values; use MedianRule instead"
            )

    def apply_vectorized(
        self, values: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        self.validate_samples(values.shape[0], samples)
        self._check_binary(values)
        vj = values[samples[:, 0]]
        vk = values[samples[:, 1]]
        # Majority of three == median of three for any totally ordered domain
        # restricted to two values; we use the median identity so that the
        # equivalence with MedianRule is literal.
        lo = np.minimum(values, vj)
        hi = np.maximum(values, vj)
        return np.maximum(lo, np.minimum(hi, vk))

    def apply_single(
        self, own_value: int, sampled_values: Sequence[int], rng: np.random.Generator
    ) -> int:
        if len(sampled_values) != 2:
            raise ValueError("majority rule needs exactly two sampled values")
        a, b, c = int(own_value), int(sampled_values[0]), int(sampled_values[1])
        if a == b or a == c:
            return a
        if b == c:
            return b
        # Three distinct values: fall back to the median (only reachable when
        # strict=False and the caller feeds a non-binary configuration).
        return sorted((a, b, c))[1]


def exact_two_bin_transition(n: int, minority: int) -> Tuple[float, float]:
    """Per-ball switch probabilities in the two-bin process.

    With ``x = minority / n`` the fraction of balls in the minority bin
    (so the majority fraction is ``1 - x``), one round of the majority rule
    moves

    * a minority ball to the majority bin with probability ``(1 - x)²``
      (both sampled balls fall in the majority bin), and
    * a majority ball to the minority bin with probability ``x²``.

    These are the exact probabilities underlying Lemma 12 (where the paper
    writes them in terms of ``δ_t = Δ_t / n``: minority stays with probability
    ``3/4 - δ - δ²`` and majority defects with probability ``1/4 - δ + δ²``).

    Returns
    -------
    (p_min_to_maj, p_maj_to_min)
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= minority <= n:
        raise ValueError("minority must lie in [0, n]")
    x = minority / n
    return (1.0 - x) ** 2, x * x


def two_bin_step_distribution(n: int, minority: int) -> np.ndarray:
    """Exact distribution of the next minority load in the two-bin process.

    The next number of balls in the (current) minority bin is the sum of two
    independent binomials:

    ``Binom(minority, 1 - (1-x)²)  +  Binom(n - minority, x²)``

    (minority balls that stay plus majority balls that defect).  Returns the
    full probability vector over ``{0, ..., n}``; used by
    :mod:`repro.analysis.markov` to build the exact Markov chain.
    """
    from scipy.stats import binom

    p_leave, p_join = exact_two_bin_transition(n, minority)
    stay = binom.pmf(np.arange(minority + 1), minority, 1.0 - p_leave)
    join = binom.pmf(np.arange(n - minority + 1), n - minority, p_join)
    dist = np.convolve(stay, join)
    out = np.zeros(n + 1)
    out[: dist.shape[0]] = dist
    # guard against tiny negative values from floating-point convolution
    np.clip(out, 0.0, None, out=out)
    out /= out.sum()
    return out
