"""Consensus and almost-stable-consensus detection.

The paper distinguishes two notions:

* **Stable consensus** (no adversary): a round ``t`` at which
  ``b_{t,1} = ... = b_{t,n}``.  Because every rule in this library that sets
  ``preserves_values`` can only output one of its input values, such a state
  is a fixed point — once reached the process never leaves it.

* **Almost stable consensus** (with a T-bounded adversary): a round ``r`` and
  value ``v`` such that *for every round after* ``r``, all but up to
  ``O(T)`` processes hold ``v``.  The "for every round after" clause is what
  rules out the minimum-rule pathology (a configuration that looks agreed but
  will later be flipped by the adversary).

A simulation of finite length can only certify the second notion up to its
horizon; :class:`AlmostStableCriterion` therefore checks the condition over a
trailing *stability window* and reports the earliest round from which it held
through the end of the observed trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.state import Configuration

__all__ = [
    "is_consensus",
    "consensus_value",
    "ConsensusStatus",
    "AlmostStableCriterion",
    "detect_consensus_round",
    "detect_almost_stable_round",
]


def is_consensus(values: np.ndarray | Configuration) -> bool:
    """True iff all processes hold the same value."""
    vals = values.values if isinstance(values, Configuration) else np.asarray(values)
    if vals.shape[0] == 0:
        return True
    return bool(np.all(vals == vals[0]))


def consensus_value(values: np.ndarray | Configuration) -> Optional[int]:
    """The agreed value if at consensus, else ``None``."""
    vals = values.values if isinstance(values, Configuration) else np.asarray(values)
    if vals.shape[0] == 0:
        return None
    if np.all(vals == vals[0]):
        return int(vals[0])
    return None


@dataclass(frozen=True)
class ConsensusStatus:
    """Outcome of consensus detection on a trajectory.

    Attributes
    ----------
    reached:
        Whether the criterion was satisfied within the observed horizon.
    round:
        The first round at which the criterion held (and kept holding until
        the end of the trajectory), or ``None``.
    value:
        The winning value, or ``None`` if not reached / ambiguous.
    """

    reached: bool
    round: Optional[int]
    value: Optional[int]


@dataclass(frozen=True)
class AlmostStableCriterion:
    """Parameters of the almost-stable-consensus check.

    Parameters
    ----------
    tolerance:
        Maximum number of disagreeing processes allowed (the paper's
        ``O(T)``; callers typically pass ``c * T`` for a small constant c, or
        ``0`` to require exact consensus).
    window:
        Number of trailing rounds over which the condition must hold
        continuously for the detection to fire.  ``window=1`` reduces to a
        point-in-time check.
    """

    tolerance: int = 0
    window: int = 1

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if self.window < 1:
            raise ValueError("window must be at least 1")

    def holds(self, values: np.ndarray | Configuration, value: int) -> bool:
        """Does the configuration have ≤ tolerance processes not holding ``value``?"""
        vals = values.values if isinstance(values, Configuration) else np.asarray(values)
        return int(np.count_nonzero(vals != int(value))) <= self.tolerance


def detect_consensus_round(trajectory: Sequence[np.ndarray | Configuration]) -> ConsensusStatus:
    """First round of exact consensus in a trajectory of configurations.

    The trajectory is indexed by round, with index 0 the initial state.
    """
    for t, cfg in enumerate(trajectory):
        v = consensus_value(cfg)
        if v is not None:
            return ConsensusStatus(reached=True, round=t, value=v)
    return ConsensusStatus(reached=False, round=None, value=None)


def detect_almost_stable_round(
    trajectory: Sequence[np.ndarray | Configuration],
    criterion: AlmostStableCriterion,
    value: Optional[int] = None,
) -> ConsensusStatus:
    """Earliest round from which the almost-stable criterion holds to the end.

    Parameters
    ----------
    trajectory:
        Configurations indexed by round (index 0 = initial state).
    criterion:
        Tolerance and stability-window parameters.
    value:
        The value agreement is measured against.  If ``None``, the plurality
        value of the final configuration is used (the natural candidate for
        the stabilized value).

    Returns
    -------
    ConsensusStatus
        ``round`` is the first index ``r`` such that the criterion holds at
        every round in ``[r, end]`` and the trailing window is at least
        ``criterion.window`` rounds long.  If the window is longer than the
        trajectory the status is "not reached".
    """
    configs = [c if isinstance(c, Configuration) else Configuration.from_values(c)
               for c in trajectory]
    if not configs:
        return ConsensusStatus(reached=False, round=None, value=None)

    if value is None:
        value = configs[-1].majority_value()
    value = int(value)

    ok = np.array([criterion.holds(c, value) for c in configs], dtype=bool)
    if not ok[-1]:
        return ConsensusStatus(reached=False, round=None, value=None)

    # walk backwards to find the start of the trailing run of True
    start = len(ok) - 1
    while start > 0 and ok[start - 1]:
        start -= 1
    run_length = len(ok) - start
    if run_length < criterion.window:
        return ConsensusStatus(reached=False, round=None, value=None)
    return ConsensusStatus(reached=True, round=start, value=value)
