"""Network topologies.

The paper's model is an *anonymous complete network*: every process can
contact every other process, but no global IDs exist — each process only has
its own private numbering of the others.  :class:`CompleteTopology` models
this; :class:`GraphTopology` generalizes to arbitrary connected graphs
(random regular, ring, torus, ...) for the "higher dimensions / robustness"
extensions the conclusion section calls out as future work.

A topology answers one question for the simulator: *which processes may
process ``i`` sample this round?*  For the complete topology the answer is
"everyone (including ``i`` itself)", matching the paper's sampling model.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

__all__ = ["Topology", "CompleteTopology", "GraphTopology", "ring_topology",
           "random_regular_topology", "torus_topology"]


class Topology(abc.ABC):
    """Abstract sampling-neighbourhood structure over ``n`` processes."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("topology needs at least one process")
        self.n = int(n)

    @abc.abstractmethod
    def sample_neighbors(self, process: int, k: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``k`` contact indices for ``process`` (with replacement)."""

    @abc.abstractmethod
    def neighbors(self, process: int) -> np.ndarray:
        """All processes that ``process`` may contact."""

    def degree(self, process: int) -> int:
        """Number of potential contacts of ``process``."""
        return int(self.neighbors(process).shape[0])

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(n={self.n})"


class CompleteTopology(Topology):
    """The paper's anonymous complete network.

    ``include_self=True`` (default) reproduces the paper's sampling model
    where a process may sample itself.
    """

    def __init__(self, n: int, include_self: bool = True) -> None:
        super().__init__(n)
        self.include_self = bool(include_self)

    def neighbors(self, process: int) -> np.ndarray:
        if not 0 <= process < self.n:
            raise IndexError("process index out of range")
        if self.include_self:
            return np.arange(self.n, dtype=np.int64)
        return np.concatenate(
            [np.arange(process, dtype=np.int64),
             np.arange(process + 1, self.n, dtype=np.int64)]
        )

    def sample_neighbors(self, process: int, k: int, rng: np.random.Generator) -> np.ndarray:
        if not 0 <= process < self.n:
            raise IndexError("process index out of range")
        if self.include_self:
            return rng.integers(0, self.n, size=k, dtype=np.int64)
        # sample uniformly among the other n-1 processes
        draws = rng.integers(0, self.n - 1, size=k, dtype=np.int64)
        return draws + (draws >= process)

    def sample_all(self, k: int, rng: np.random.Generator) -> np.ndarray:
        """Sample an ``(n, k)`` contact matrix for every process at once."""
        if self.include_self:
            return rng.integers(0, self.n, size=(self.n, k), dtype=np.int64)
        own = np.arange(self.n, dtype=np.int64)[:, None]
        draws = rng.integers(0, self.n - 1, size=(self.n, k), dtype=np.int64)
        return draws + (draws >= own)


class GraphTopology(Topology):
    """Sampling restricted to the neighbours of a (connected) graph.

    The process itself is always added to its own neighbourhood so that every
    neighbourhood is non-empty and the median rule's "including itself"
    convention carries over.
    """

    def __init__(self, graph: nx.Graph) -> None:
        n = graph.number_of_nodes()
        super().__init__(n)
        if set(graph.nodes) != set(range(n)):
            raise ValueError("graph nodes must be labelled 0..n-1")
        if n > 1 and not nx.is_connected(graph):
            raise ValueError("topology graph must be connected")
        self.graph = graph
        self._neighbors: List[np.ndarray] = [
            np.array(sorted(set(graph.neighbors(i)) | {i}), dtype=np.int64)
            for i in range(n)
        ]

    def neighbors(self, process: int) -> np.ndarray:
        return self._neighbors[process]

    def sample_neighbors(self, process: int, k: int, rng: np.random.Generator) -> np.ndarray:
        nbrs = self._neighbors[process]
        picks = rng.integers(0, nbrs.shape[0], size=k)
        return nbrs[picks]


def ring_topology(n: int) -> GraphTopology:
    """A cycle of ``n`` processes (the 1-D 'higher dimensions' testbed)."""
    return GraphTopology(nx.cycle_graph(n))


def random_regular_topology(
    n: int, degree: int,
    seed: Optional[int | np.random.Generator] = None,
) -> GraphTopology:
    """A random ``degree``-regular graph on ``n`` processes.

    The draw is always driven by a local ``numpy.random.Generator`` —
    ``seed=None`` means fresh OS entropy, never the ``random`` module's
    global state (rng-discipline: the process-wide stream stays untouched,
    and an integer ``seed`` fully determines the edge set).
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    graph = nx.random_regular_graph(degree, n, seed=rng)
    graph = nx.convert_node_labels_to_integers(graph)
    return GraphTopology(graph)


def torus_topology(side: int) -> GraphTopology:
    """A 2-D ``side × side`` torus (periodic grid)."""
    graph = nx.grid_2d_graph(side, side, periodic=True)
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    return GraphTopology(graph)
