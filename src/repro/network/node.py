"""The process (node) object of the agent-level simulator.

Each :class:`Process` holds exactly the local state the paper's model allows:

* its current value ``v_i`` (an integer of O(log n) bits),
* a *private numbering* of the other processes — a random permutation that
  maps local port numbers to global simulator indices.  The process itself
  only ever reasons in terms of ports; the simulator translates.  This
  implements the anonymity assumption: "no unique process IDs are known, but
  rather each process has its own, private numbering of the other processes."

Per round, a process

1. draws ``k`` ports uniformly at random (``choose_contacts``),
2. sends a :class:`~repro.network.messages.ValueRequest` to each,
3. answers the (capped) requests it received (``respond``), and
4. on receiving the responses, applies its rule (``update``).

Missing responses (dropped by the capacity cap) are substituted with the
process's own value — the most conservative local fallback, equivalent to the
process having sampled itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.rules import Rule

__all__ = ["Process"]


class Process:
    """One process of the anonymous message-passing system."""

    def __init__(self, index: int, value: int, n: int, rule: Rule,
                 rng: np.random.Generator) -> None:
        self.index = int(index)
        self.value = int(value)
        self.n = int(n)
        self.rule = rule
        self._rng = rng
        # Private numbering: port p corresponds to global index _ports[p].
        # The permutation is private to this process and never shared.
        self._ports = rng.permutation(n).astype(np.int64)
        self._pending_values: List[int] = []
        self._expected_responses = 0

    # ------------------------------------------------------------------ #
    # round protocol
    # ------------------------------------------------------------------ #
    def choose_contacts(self) -> np.ndarray:
        """Draw this round's contacts, returned as *global* indices.

        The process draws ``k`` ports uniformly at random with replacement
        (matching the paper's "uniformly and independently at random among
        all processes (including itself)") and the private numbering
        translates them to simulator indices.
        """
        ports = self._rng.integers(0, self.n, size=self.rule.num_choices)
        contacts = self._ports[ports]
        self._expected_responses = int(contacts.shape[0])
        self._pending_values = []
        return contacts

    def respond(self, round_index: int) -> int:
        """Answer a value request: simply report the current value."""
        return self.value

    def receive_value(self, value: int) -> None:
        """Accumulate one response for this round."""
        self._pending_values.append(int(value))

    def update(self) -> int:
        """Apply the rule to (own value, received values) and adopt the result.

        If some responses were dropped, the process substitutes its own value
        for each missing response (a self-sample), keeping the rule's arity
        intact.
        """
        received = list(self._pending_values)
        while len(received) < self.rule.num_choices:
            received.append(self.value)
        received = received[: self.rule.num_choices]
        self.value = int(self.rule.apply_single(self.value, received, self._rng))
        self._pending_values = []
        self._expected_responses = 0
        return self.value

    # ------------------------------------------------------------------ #
    # adversarial interface
    # ------------------------------------------------------------------ #
    def corrupt(self, new_value: int) -> None:
        """Overwrite the local value (adversarial state change)."""
        self.value = int(new_value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Process(index={self.index}, value={self.value})"
