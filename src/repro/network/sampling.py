"""Two-choice sampling utilities shared by the simulators and analyses.

Small helpers around the sampling step of the protocol: building contact
matrices, converting contact matrices into "who chose whom" in-degree counts
(used to validate the gravity function), and adversarial manipulation of a
fixed set of choices (the Section 3 adversary changes *choices*, not values).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "sample_two_choices",
    "sample_k_choices",
    "choice_in_degrees",
    "override_choices",
]


def sample_two_choices(n: int, rng: np.random.Generator,
                       include_self: bool = True) -> np.ndarray:
    """An ``(n, 2)`` matrix of uniformly random contacts.

    ``include_self=True`` reproduces the paper's model (sampling with
    replacement over all processes, self included).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if include_self or n == 1:
        return rng.integers(0, n, size=(n, 2), dtype=np.int64)
    own = np.arange(n, dtype=np.int64)[:, None]
    draws = rng.integers(0, n - 1, size=(n, 2), dtype=np.int64)
    return draws + (draws >= own)


def sample_k_choices(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """An ``(n, k)`` matrix of uniformly random contacts with replacement."""
    if n <= 0 or k <= 0:
        raise ValueError("n and k must be positive")
    return rng.integers(0, n, size=(n, k), dtype=np.int64)


def choice_in_degrees(samples: np.ndarray, n: int) -> np.ndarray:
    """How many times each process was chosen as a contact this round.

    The expected in-degree of every process is exactly ``k`` (each of the
    ``n·k`` draws is uniform), a fact used by the sampling tests; the
    *median-choice* in-degree is what the gravity function describes.
    """
    samples = np.asarray(samples)
    return np.bincount(samples.ravel(), minlength=n)[:n]


def override_choices(samples: np.ndarray, victims: np.ndarray,
                     new_choices: np.ndarray) -> np.ndarray:
    """Replace the choice rows of ``victims`` with ``new_choices``.

    Implements the Section 3 adversary that, after all balls made their
    random choices, "is allowed to change the choices of at most sqrt(n)
    balls".  Returns a new array; the input is untouched.
    """
    samples = np.asarray(samples)
    victims = np.asarray(victims, dtype=np.int64)
    new_choices = np.asarray(new_choices, dtype=np.int64)
    if new_choices.shape != (victims.shape[0], samples.shape[1]):
        raise ValueError("new_choices must have shape (len(victims), k)")
    out = np.array(samples)
    out[victims] = new_choices
    return out
