"""Synchronous round scheduler with per-process request caps.

The paper's communication model: "In each round, every process can contact at
most a logarithmic number of other processes, exchange a logarithmic amount
of information with each of them ...  A process with more than a logarithmic
number of requests directed to it will only receive a logarithmic number of
them, possibly selected by an adversary, and the others are dropped."

The :class:`RoundScheduler` implements exactly this delivery semantics:

1. collect all :class:`~repro.network.messages.ValueRequest` messages of the
   round,
2. for every destination, keep at most ``capacity`` of them — either a random
   subset (default) or the subset chosen by a drop-selection callback (the
   "possibly selected by an adversary" clause),
3. deliver responses for the survivors and report the drops.

With the median rule each process issues only two requests per round, so for
the default capacity ``c·log2(n) ≥ 2`` drops are rare (they require ~log n
processes to all pick the same target); the statistics are still tracked and
exposed so the tests can exercise the overload path explicitly.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.messages import DroppedRequest, MessageStats, ValueRequest, ValueResponse

__all__ = ["RoundScheduler", "default_capacity"]

DropSelector = Callable[[int, List[ValueRequest], int, np.random.Generator],
                        List[ValueRequest]]


def default_capacity(n: int, constant: float = 4.0, floor: int = 2) -> int:
    """The per-round request cap ``max(floor, ceil(constant · log2 n))``."""
    if n <= 1:
        return floor
    return max(floor, int(math.ceil(constant * math.log2(n))))


class RoundScheduler:
    """Deliver one round of requests/responses under the capacity constraint.

    Parameters
    ----------
    n:
        Number of processes.
    capacity:
        Maximum number of requests any process serves per round; ``None``
        selects :func:`default_capacity`.
    drop_selector:
        Optional callback ``(destination, requests, capacity, rng) -> kept``
        deciding *which* requests survive when a process is overloaded; the
        default keeps a uniformly random subset.  Supplying an adversarial
        selector models the "possibly selected by an adversary" clause.
    """

    def __init__(self, n: int, capacity: Optional[int] = None,
                 drop_selector: Optional[DropSelector] = None) -> None:
        if n <= 0:
            raise ValueError("scheduler needs at least one process")
        self.n = int(n)
        self.capacity = default_capacity(n) if capacity is None else int(capacity)
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.drop_selector = drop_selector
        self.stats = MessageStats()

    # ------------------------------------------------------------------ #
    def deliver(
        self,
        requests: Sequence[ValueRequest],
        values: Sequence[int],
        round_index: int,
        rng: np.random.Generator,
    ) -> Tuple[List[ValueResponse], List[DroppedRequest]]:
        """Apply the capacity rule and produce responses for surviving requests.

        Parameters
        ----------
        requests:
            All requests issued this round.
        values:
            Current value of every process (indexed by process id); the
            responder's entry is copied into its responses.
        round_index:
            Current round number (stamped on the responses).

        Returns
        -------
        (responses, dropped)
        """
        by_destination: Dict[int, List[ValueRequest]] = {}
        for req in requests:
            if not 0 <= req.destination < self.n:
                raise ValueError(f"request destination {req.destination} out of range")
            by_destination.setdefault(req.destination, []).append(req)
            self.stats.record_request()

        responses: List[ValueResponse] = []
        dropped: List[DroppedRequest] = []
        for dest, dest_requests in by_destination.items():
            if len(dest_requests) > self.capacity:
                kept = self._select(dest, dest_requests, rng)
                kept_ids = {r.request_id for r in kept}
                for req in dest_requests:
                    if req.request_id not in kept_ids:
                        dropped.append(DroppedRequest(request=req))
                self.stats.record_drop(len(dest_requests) - len(kept))
            else:
                kept = dest_requests
            for req in kept:
                responses.append(ValueResponse(
                    responder=dest,
                    destination=req.sender,
                    round=round_index,
                    value=int(values[dest]),
                    request_id=req.request_id,
                ))
                self.stats.record_response()
        return responses, dropped

    def _select(self, destination: int, requests: List[ValueRequest],
                rng: np.random.Generator) -> List[ValueRequest]:
        if self.drop_selector is not None:
            kept = self.drop_selector(destination, list(requests), self.capacity, rng)
            if len(kept) > self.capacity:
                kept = kept[: self.capacity]
            return kept
        idx = rng.choice(len(requests), size=self.capacity, replace=False)
        return [requests[i] for i in sorted(idx)]
