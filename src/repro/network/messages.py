"""Message types of the synchronous message-passing model.

Each round of the paper's model is a pull-based exchange: a process contacts
two random processes, receives their current values, and updates locally.
The agent-level simulator makes this explicit with two message types:

* :class:`ValueRequest` — "please tell me your current value", addressed to a
  destination process, carrying the sender's *private* return handle (the
  receiver never learns a global ID — anonymity is preserved because the
  handle is opaque to it).
* :class:`ValueResponse` — the destination's reply carrying its value.

A :class:`DroppedRequest` record is produced when a process receives more
requests than the per-round cap (Θ(log n) in the paper's model) and the
scheduler — or an adversary acting as the scheduler — drops the excess.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ValueRequest", "ValueResponse", "DroppedRequest", "MessageStats"]

_message_counter = itertools.count()


@dataclass(frozen=True)
class ValueRequest:
    """A pull request for the destination's current value."""

    sender: int
    destination: int
    round: int
    request_id: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if self.sender < 0 or self.destination < 0:
            raise ValueError("process indices must be non-negative")


@dataclass(frozen=True)
class ValueResponse:
    """The reply to a :class:`ValueRequest`, carrying the responder's value."""

    responder: int
    destination: int
    round: int
    value: int
    request_id: int

    def __post_init__(self) -> None:
        if self.responder < 0 or self.destination < 0:
            raise ValueError("process indices must be non-negative")


@dataclass(frozen=True)
class DroppedRequest:
    """A request that exceeded the receiver's per-round capacity and was dropped."""

    request: ValueRequest
    reason: str = "capacity"


@dataclass
class MessageStats:
    """Per-run message accounting maintained by the scheduler."""

    requests_sent: int = 0
    responses_sent: int = 0
    requests_dropped: int = 0

    def record_request(self) -> None:
        self.requests_sent += 1

    def record_response(self) -> None:
        self.responses_sent += 1

    def record_drop(self, count: int = 1) -> None:
        self.requests_dropped += count

    @property
    def total_messages(self) -> int:
        return self.requests_sent + self.responses_sent

    def as_dict(self) -> dict:
        return {
            "requests_sent": self.requests_sent,
            "responses_sent": self.responses_sent,
            "requests_dropped": self.requests_dropped,
            "total_messages": self.total_messages,
        }
