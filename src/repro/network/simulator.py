"""Agent-level message-passing simulator.

This simulator executes the paper's model literally: ``n`` :class:`Process`
objects with private numberings exchange :class:`ValueRequest` /
:class:`ValueResponse` messages through a :class:`RoundScheduler` enforcing
the per-round contact cap, and an optional T-bounded adversary rewrites up to
``T`` states at the beginning of each round.

It is intentionally object-based and readable rather than fast — its role is
to validate protocol mechanics (anonymity, message budgets, drops, adversary
placement) and to cross-check the vectorized engine: both simulators produce
statistically indistinguishable convergence behaviour, and a test verifies
bit-exact agreement when the network simulator's sampling is replayed through
the vectorized kernel.

For large-n statistics use :mod:`repro.engine.vectorized` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.adversary.base import Adversary, AdversaryTiming, NullAdversary
from repro.core.consensus import AlmostStableCriterion, ConsensusStatus, is_consensus
from repro.core.median_rule import MedianRule
from repro.core.metrics import minority_count
from repro.core.rules import Rule
from repro.core.state import Configuration
from repro.engine.rng import make_rng
from repro.engine.run import SimulationResult
from repro.engine.trajectory import RecordLevel, TrajectoryRecorder
from repro.engine.vectorized import default_max_rounds
from repro.network.messages import MessageStats, ValueRequest
from repro.network.node import Process
from repro.network.scheduler import RoundScheduler
from repro.network.topology import CompleteTopology, Topology

__all__ = ["NetworkSimulator"]


class NetworkSimulator:
    """Round-based simulator of the anonymous message-passing system.

    Parameters
    ----------
    initial:
        Initial configuration (one value per process).
    rule:
        Update rule applied by every process (default: median rule).
    adversary:
        T-bounded adversary (default: none).
    topology:
        Contact structure (default: the paper's complete topology).
    capacity:
        Per-round request cap (default: Θ(log n), see
        :func:`repro.network.scheduler.default_capacity`).
    seed:
        Seed or generator for all the simulator's randomness.
    """

    def __init__(
        self,
        initial: Configuration | np.ndarray,
        rule: Rule | None = None,
        adversary: Adversary | None = None,
        topology: Topology | None = None,
        capacity: Optional[int] = None,
        seed: Optional[int | np.random.Generator] = None,
    ) -> None:
        cfg = initial if isinstance(initial, Configuration) else Configuration.from_values(initial)
        self.initial = cfg
        self.rule = rule or MedianRule()
        self.adversary = adversary or NullAdversary()
        self.topology = topology or CompleteTopology(cfg.n)
        if self.topology.n != cfg.n:
            raise ValueError("topology size must match the configuration size")
        self.rng = make_rng(seed)
        self.scheduler = RoundScheduler(cfg.n, capacity=capacity)
        self._admissible = np.array(cfg.support, dtype=np.int64)

        # Each process gets its own child generator so its private numbering
        # and sampling are independent of the others.
        children = np.random.SeedSequence(int(self.rng.integers(0, 2**63 - 1))).spawn(cfg.n)
        self.processes: List[Process] = [
            Process(index=i, value=int(cfg.values[i]), n=cfg.n, rule=self.rule,
                    rng=np.random.default_rng(children[i]))
            for i in range(cfg.n)
        ]
        self.round_index = 0

    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self.initial.n

    def values(self) -> np.ndarray:
        """Current value vector (a fresh array)."""
        return np.array([p.value for p in self.processes], dtype=np.int64)

    @property
    def message_stats(self) -> MessageStats:
        return self.scheduler.stats

    # ------------------------------------------------------------------ #
    def step(self) -> np.ndarray:
        """Execute one synchronous round; returns the new value vector."""
        self.round_index += 1
        t = self.round_index

        # 1. adversary at the beginning of the round (Section 1.1 placement)
        if self.adversary.budget > 0 and self.adversary.timing is AdversaryTiming.BEFORE_SAMPLING:
            corrupted = self.adversary.corrupt(self.values(), t, self._admissible, self.rng)
            for proc, val in zip(self.processes, corrupted):
                if proc.value != val:
                    proc.corrupt(int(val))

        # 2. every process draws contacts and issues requests
        requests: List[ValueRequest] = []
        for proc in self.processes:
            if isinstance(self.topology, CompleteTopology):
                contacts = proc.choose_contacts()
            else:
                contacts = self.topology.sample_neighbors(
                    proc.index, self.rule.num_choices, proc._rng)
                proc._expected_responses = int(contacts.shape[0])
                proc._pending_values = []
            for dest in contacts:
                requests.append(ValueRequest(sender=proc.index, destination=int(dest), round=t))

        # 3. scheduler applies the capacity cap and produces responses
        current_values = self.values()
        responses, _dropped = self.scheduler.deliver(requests, current_values, t, self.rng)

        # 4. deliver responses and update every process
        for resp in responses:
            self.processes[resp.destination].receive_value(resp.value)
        for proc in self.processes:
            proc.update()

        # 5. adversary acting after the random choices (Section 3 placement)
        if self.adversary.budget > 0 and self.adversary.timing is AdversaryTiming.AFTER_SAMPLING:
            corrupted = self.adversary.corrupt(self.values(), t, self._admissible, self.rng)
            for proc, val in zip(self.processes, corrupted):
                if proc.value != val:
                    proc.corrupt(int(val))

        return self.values()

    # ------------------------------------------------------------------ #
    def run(
        self,
        max_rounds: Optional[int] = None,
        criterion: Optional[AlmostStableCriterion] = None,
        record: RecordLevel = RecordLevel.METRICS,
        stop_at_consensus: bool = True,
    ) -> SimulationResult:
        """Run until consensus / stability / the horizon; mirror of ``simulate``."""
        horizon = max_rounds if max_rounds is not None else default_max_rounds(self.n)
        if criterion is None:
            tolerance = 4 * self.adversary.budget
            window = 10 if self.adversary.budget > 0 else 1
            criterion = AlmostStableCriterion(tolerance=tolerance, window=window)

        self.adversary.reset()
        recorder = TrajectoryRecorder(level=record)
        values = self.values()
        recorder.record(values, 0)

        consensus_status = ConsensusStatus(reached=False, round=None, value=None)
        if is_consensus(values):
            consensus_status = ConsensusStatus(reached=True, round=0, value=int(values[0]))
        streak = 1 if minority_count(values) <= criterion.tolerance else 0
        first_stable: Optional[int] = 0 if streak else None

        rounds_executed = 0
        for t in range(1, horizon + 1):
            values = self.step()
            rounds_executed = t
            recorder.record(values, t)

            if not consensus_status.reached and is_consensus(values):
                consensus_status = ConsensusStatus(reached=True, round=t, value=int(values[0]))
            if minority_count(values) <= criterion.tolerance:
                if streak == 0:
                    first_stable = t
                streak += 1
            else:
                streak = 0
                first_stable = None

            if stop_at_consensus and consensus_status.reached and self.adversary.budget == 0:
                break
            if self.adversary.budget > 0 and streak >= criterion.window:
                break

        if first_stable is not None and streak >= criterion.window:
            uniq, counts = np.unique(values, return_counts=True)
            almost = ConsensusStatus(reached=True, round=first_stable,
                                     value=int(uniq[int(np.argmax(counts))]))
        else:
            almost = ConsensusStatus(reached=False, round=None, value=None)

        return SimulationResult(
            initial=self.initial,
            final=Configuration.from_values(values),
            rounds_executed=rounds_executed,
            consensus=consensus_status,
            almost_stable=almost,
            trajectory=recorder.finish(),
            rule_name=self.rule.name,
            adversary_name=type(self.adversary).__name__,
            criterion=criterion,
            meta={
                "adversary_budget": self.adversary.budget,
                "horizon": horizon,
                "messages": self.message_stats.as_dict(),
                "simulator": "network",
            },
        )
