"""Message-passing substrate: topologies, processes, scheduler, simulator."""

from repro.network.messages import DroppedRequest, MessageStats, ValueRequest, ValueResponse
from repro.network.node import Process
from repro.network.sampling import (
    choice_in_degrees,
    override_choices,
    sample_k_choices,
    sample_two_choices,
)
from repro.network.scheduler import RoundScheduler, default_capacity
from repro.network.simulator import NetworkSimulator
from repro.network.topology import (
    CompleteTopology,
    GraphTopology,
    Topology,
    random_regular_topology,
    ring_topology,
    torus_topology,
)

__all__ = [
    "ValueRequest",
    "ValueResponse",
    "DroppedRequest",
    "MessageStats",
    "Process",
    "RoundScheduler",
    "default_capacity",
    "NetworkSimulator",
    "Topology",
    "CompleteTopology",
    "GraphTopology",
    "ring_topology",
    "random_regular_topology",
    "torus_topology",
    "sample_two_choices",
    "sample_k_choices",
    "choice_in_degrees",
    "override_choices",
]
