"""repro — Stabilizing Consensus with the Power of Two Choices.

A production-quality reproduction of Doerr, Goldberg, Minder, Sauerwald and
Scheideler, *Stabilizing Consensus with the Power of Two Choices* (SPAA 2011):
the median rule, the T-bounded adversary model, agent-level and vectorized
simulators, the paper's analytical toolkit (Chernoff bounds, absorbing
Markov chains, drift lemmas, gravity, fineness coupling), and an experiment
harness that regenerates the paper's results table and theorem-by-theorem
scaling behaviour.

Quickstart
----------

>>> import repro
>>> cfg = repro.Configuration.all_distinct(256)
>>> result = repro.simulate(cfg, rule=repro.MedianRule(), seed=0)
>>> result.reached_consensus
True
"""

from repro.adversary import (
    Adversary,
    AdversaryTiming,
    BalancingAdversary,
    HidingAdversary,
    NullAdversary,
    RandomCorruptionAdversary,
    RevivingAdversary,
    StickyAdversary,
    SwitchingAdversary,
    TargetedMedianAdversary,
    make_adversary,
)
from repro.core import (
    AlmostStableCriterion,
    BestOfKMedianRule,
    Configuration,
    MajorityRule,
    MaximumRule,
    MeanRule,
    MedianRule,
    MedianRuleWithoutReplacement,
    MinimumRule,
    Rule,
    TwoChoicesMajorityRule,
    TwoChoicesRule,
    VoterRule,
    available_rules,
    get_rule,
    is_consensus,
)
from repro.engine import (
    BatchResult,
    RecordLevel,
    SimulationResult,
    run_batch,
    run_batch_fused,
    simulate,
)
from repro.network import CompleteTopology, NetworkSimulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # state & rules
    "Configuration",
    "Rule",
    "MedianRule",
    "MedianRuleWithoutReplacement",
    "BestOfKMedianRule",
    "MajorityRule",
    "MinimumRule",
    "MaximumRule",
    "VoterRule",
    "MeanRule",
    "TwoChoicesMajorityRule",
    "TwoChoicesRule",
    "get_rule",
    "available_rules",
    "is_consensus",
    "AlmostStableCriterion",
    # adversaries
    "Adversary",
    "AdversaryTiming",
    "NullAdversary",
    "BalancingAdversary",
    "RevivingAdversary",
    "HidingAdversary",
    "SwitchingAdversary",
    "RandomCorruptionAdversary",
    "TargetedMedianAdversary",
    "StickyAdversary",
    "make_adversary",
    # engines
    "simulate",
    "SimulationResult",
    "BatchResult",
    "run_batch",
    "run_batch_fused",
    "RecordLevel",
    "NetworkSimulator",
    "CompleteTopology",
]
