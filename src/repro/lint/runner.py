"""The ``repro lint`` entry point: scan, baseline, report, exit code.

Exit codes (chosen to never collide with the sweep CLI's 0/1/2/3):

* ``0`` — tree is clean (modulo baselined + suppressed findings);
* ``4`` — new findings, parse errors, or a stale baseline;
* ``2`` — usage errors (unreadable baseline, bad root), via argparse
  conventions in :mod:`repro.cli`.

Defaults resolve from the installed package: the scan root is the
``repro`` package directory itself, and the baseline is
``lint-baseline.json`` at the repository root (two levels up from the
package, next to ``README.md``) — so a bare ``repro lint`` inside CI or a
checkout does the right thing with no flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline, BaselineOutcome, apply_baseline
from repro.lint.framework import LintResult, Rule, run_rules
from repro.lint.rules import default_rules

__all__ = ["EXIT_CLEAN", "EXIT_FINDINGS", "LintRun", "run_lint",
           "default_root", "default_baseline_path"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 4


def default_root() -> Path:
    """The installed ``repro`` package directory (the scan target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path(root: Optional[Path] = None) -> Path:
    """``<repo>/lint-baseline.json`` for a ``src/repro`` layout root."""
    root = root or default_root()
    return root.parent.parent / "lint-baseline.json"


@dataclass
class LintRun:
    """One complete lint pass: raw result, baseline partition, exit code."""

    result: LintResult
    outcome: BaselineOutcome
    exit_code: int
    root: Path
    baseline_path: Optional[Path] = None
    wrote_baseline: bool = False
    rules: List[Rule] = field(default_factory=list)


def run_lint(root: Optional[Path] = None,
             baseline_path: Optional[Path] = None,
             write_baseline: bool = False,
             rules: Optional[List[Rule]] = None) -> LintRun:
    """Scan ``root`` with the rule pack and apply the baseline ratchet.

    With ``write_baseline=True`` the current findings *become* the
    baseline (written to ``baseline_path``) and the run exits clean —
    the one sanctioned way to regenerate after ratcheting debt down.
    """
    root = (root or default_root()).resolve()
    if not root.is_dir():
        raise FileNotFoundError(f"lint root {root} is not a directory")
    if baseline_path is None:
        candidate = default_baseline_path(root)
        baseline_path = candidate
    rules = default_rules() if rules is None else rules
    result = run_rules(root, rules)
    findings = result.sorted_findings()

    if write_baseline:
        baseline = Baseline.from_findings(findings)
        baseline.save(baseline_path)
        outcome = apply_baseline(findings, baseline)
        exit_code = EXIT_FINDINGS if result.parse_errors else EXIT_CLEAN
        return LintRun(result=result, outcome=outcome, exit_code=exit_code,
                       root=root, baseline_path=baseline_path,
                       wrote_baseline=True, rules=rules)

    baseline = Baseline.load(baseline_path)
    outcome = apply_baseline(findings, baseline)
    fatal = outcome.fatal or bool(result.parse_errors)
    return LintRun(result=result, outcome=outcome,
                   exit_code=EXIT_FINDINGS if fatal else EXIT_CLEAN,
                   root=root, baseline_path=baseline_path, rules=rules)
