"""``repro lint`` — an AST-based invariant checker for this repository.

The repo's core contracts — bitwise seeded reproducibility, the
``allow_nan=False`` strict-JSON convention, the typed metrics catalog,
the warning taxonomy, atomic store writes, spawn-only fleet children, and
the fault-seam catalog — are enforced dynamically by the test suite and
the chaos harness.  This package is their *static* twin: a stdlib-``ast``
pass (no code is imported or executed) that fails a violating diff in
seconds at CI time, before any chaos schedule has to catch it at runtime.

Layout
------
* :mod:`repro.lint.framework` — file walker, ``Finding`` records, inline
  ``# repro-lint: disable=<rule>`` suppressions, rule base class;
* :mod:`repro.lint.rules` — the seven-rule pack encoding the invariants;
* :mod:`repro.lint.baseline` — the committed ratchet for legacy debt
  (shrinks or fails, never silently loosens);
* :mod:`repro.lint.report` — text output and the schema-versioned JSON
  artifact (diffable across commits by finding fingerprint);
* :mod:`repro.lint.runner` — the entry point behind ``repro lint``.

See the README "Static analysis" section for the rule catalog, the
suppression syntax, and the baseline workflow.
"""

from repro.lint.baseline import (
    BASELINE_SCHEMA_VERSION,
    Baseline,
    BaselineOutcome,
    apply_baseline,
)
from repro.lint.framework import (
    FileContext,
    Finding,
    LintResult,
    Rule,
    run_rules,
    suppressions_in,
    walk_files,
)
from repro.lint.report import (
    LINT_REPORT_SCHEMA_VERSION,
    diff_reports,
    load_report,
    render_json,
    render_text,
    to_json_doc,
)
from repro.lint.rules import ALL_RULES, WARNING_CATALOG, default_rules
from repro.lint.runner import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    LintRun,
    default_baseline_path,
    default_root,
    run_lint,
)

__all__ = [
    "ALL_RULES", "BASELINE_SCHEMA_VERSION", "Baseline", "BaselineOutcome",
    "EXIT_CLEAN", "EXIT_FINDINGS", "FileContext", "Finding",
    "LINT_REPORT_SCHEMA_VERSION", "LintResult", "LintRun", "Rule",
    "WARNING_CATALOG", "apply_baseline", "default_baseline_path",
    "default_root", "default_rules", "diff_reports", "load_report",
    "render_json", "render_text", "run_lint", "run_rules",
    "suppressions_in", "to_json_doc", "walk_files",
]
