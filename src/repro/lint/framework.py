"""Core machinery of ``repro lint``: files, findings, suppressions, rules.

The analyzer is a plain ``ast``-based pass over the package source tree —
no imports are executed, so linting a broken tree cannot crash on side
effects, and a violating diff fails in milliseconds instead of waiting for
a chaos schedule to catch it at runtime.

Anatomy of a run
----------------
1. :func:`walk_files` enumerates ``*.py`` files under the scan root and
   parses each one once into a :class:`FileContext` (source lines, AST,
   parent links, per-line suppressions).
2. Every rule in the registry gets :meth:`Rule.check_file` called per file;
   project-wide rules accumulate state and emit more findings from
   :meth:`Rule.finalize` once the whole tree has been seen (e.g. "cataloged
   metric with no emitter").
3. Findings on a line carrying ``# repro-lint: disable=<rule>[,<rule>]``
   are dropped as *suppressed* (counted, never fatal).  Suppression is the
   mechanism for deliberate, documented exceptions; the committed baseline
   (:mod:`repro.lint.baseline`) is the mechanism for *legacy debt being
   ratcheted down* — new code should never add baseline entries.

Findings carry a content-based :attr:`Finding.fingerprint` (path, rule and
the normalized source line — not the line *number*), so baseline entries
survive unrelated edits that shift code up or down a file.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "LintResult",
    "walk_files",
    "run_rules",
    "suppressions_in",
    "SUPPRESSION_RE",
]

#: Inline suppression syntax: ``# repro-lint: disable=rule-a,rule-b`` (or
#: ``disable=all``) anywhere on the offending line.
SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable="
    r"([A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``.

    ``path`` is always relative to the scan root and POSIX-separated, so
    fingerprints (and therefore baselines) are machine-independent.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""
    #: last line of the offending statement — an inline suppression anywhere
    #: in [line, end_line] applies (multi-line calls put the comment where
    #: it fits)
    end_line: int = 0

    @property
    def span(self) -> range:
        return range(self.line, max(self.line, self.end_line) + 1)

    @property
    def fingerprint(self) -> str:
        """Content-based identity: stable across line-number drift."""
        normalized = " ".join(self.snippet.split())
        raw = f"{self.path}|{self.rule}|{normalized}"
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:12]

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "end_line": max(self.line, self.end_line),
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def suppressions_in(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of rule ids disabled on that line."""
    out: Dict[int, Set[str]] = {}
    for i, text in enumerate(lines, start=1):
        match = SUPPRESSION_RE.search(text)
        if match:
            out[i] = {r.strip() for r in match.group(1).split(",") if r.strip()}
    return out


class FileContext:
    """One parsed source file handed to every rule.

    Exposes the AST (with parent links in ``parents``), the raw source
    lines, import aliases, and a :meth:`finding` helper that fills in the
    offending snippet from the node's location.
    """

    def __init__(self, root: Path, path: Path) -> None:
        self.root = root
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self.suppressions = suppressions_in(self.lines)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    # -- helpers rules lean on ----------------------------------------- #
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        # suppressions apply anywhere on the enclosing *statement*, so a
        # multi-line call can carry the comment on any continuation line
        stmt: ast.AST = node
        while stmt in self.parents and not isinstance(stmt, ast.stmt):
            stmt = self.parents[stmt]
        end_line = getattr(stmt, "end_lineno", None) or lineno
        return Finding(path=self.rel, line=lineno, col=col, rule=rule,
                       message=message, snippet=self.line_text(lineno),
                       end_line=max(lineno, end_line))

    def import_aliases(self, module: str) -> Set[str]:
        """Local names bound to ``module`` (``import x as y`` / ``from p import x``)."""
        names: Set[str] = set()
        dotted = module.rsplit(".", 1)
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == module and "." not in module:
                        names.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if len(dotted) == 2 and node.module == dotted[0]:
                    for alias in node.names:
                        if alias.name == dotted[1]:
                            names.add(alias.asname or alias.name)
        return names

    def imports_module(self, module: str) -> bool:
        """True iff the file has a plain ``import module`` (any alias)."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                if any(alias.name == module for alias in node.names):
                    return True
        return False

    def imported_names(self, module: str) -> Dict[str, str]:
        """``from module import a as b`` -> {"b": "a"}."""
        out: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module == module:
                for alias in node.names:
                    out[alias.asname or alias.name] = alias.name
        return out

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Nearest enclosing function/method definition, if any."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None


class Rule:
    """Base class: subclasses set ``id``/``doc`` and override the hooks.

    ``check_file`` runs once per file (return/yield findings); ``finalize``
    runs once per project after every file has been seen — the hook for
    cross-file invariants.  A fresh rule instance is created per run, so
    instance attributes are safe accumulator state.
    """

    id: str = ""
    doc: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        return ()


@dataclass
class LintResult:
    """Everything one lint pass produced (pre-baseline)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[Finding] = field(default_factory=list)

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings,
                      key=lambda f: (f.path, f.line, f.col, f.rule))


def walk_files(root: Path,
               exclude_parts: Tuple[str, ...] = ("__pycache__", "_build"),
               ) -> Iterator[Path]:
    """All ``*.py`` files under ``root``, deterministic order."""
    for path in sorted(root.rglob("*.py")):
        if any(part in exclude_parts for part in path.parts):
            continue
        yield path


def run_rules(root: Path, rules: List[Rule]) -> LintResult:
    """Parse every file under ``root`` once and apply ``rules``.

    Undecodable / unparsable files become findings of the pseudo-rule
    ``parse-error`` (always fatal, never baselineable) instead of crashing
    the pass.
    """
    result = LintResult()
    raw: List[Tuple[FileContext, Finding]] = []
    contexts: List[FileContext] = []
    for path in walk_files(root):
        try:
            ctx = FileContext(root, path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            rel = path.relative_to(root).as_posix()
            lineno = getattr(exc, "lineno", 1) or 1
            result.parse_errors.append(Finding(
                path=rel, line=lineno, col=0, rule="parse-error",
                message=f"cannot parse: {exc}"))
            continue
        contexts.append(ctx)
        result.files_scanned += 1
        for rule in rules:
            for finding in rule.check_file(ctx):
                raw.append((ctx, finding))
    # project-wide second pass
    by_rel = {ctx.rel: ctx for ctx in contexts}
    for rule in rules:
        for finding in rule.finalize():
            raw.append((by_rel.get(finding.path), finding))  # type: ignore[arg-type]
    for ctx, finding in raw:
        disabled: Set[str] = set()
        if ctx is not None:
            for lineno in finding.span:
                disabled |= ctx.suppressions.get(lineno, set())
        if finding.rule in disabled or "all" in disabled:
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result
