"""The rule pack: the repo's runtime invariants, encoded statically.

Each rule here is the static twin of a contract that is otherwise enforced
only dynamically (by the test suite, the chaos harness, or a runtime
``ValueError``).  The rules deliberately check only *statically resolvable*
sites — literal metric names, literal seam names, literal ``json.dumps``
keywords — and skip indirect ones; the dynamic enforcement remains the
backstop for those.

Rule catalog (ids are what ``# repro-lint: disable=<id>`` takes):

``rng-discipline``
    No legacy NumPy global-state RNG (``np.random.seed`` /
    ``np.random.rand`` ...), no stdlib ``random.*``, and no wall-clock /
    uuid entropy (``time.time()``, ``datetime.now()``, ``uuid4()``) inside
    the deterministic core (``engine/``, ``core/``, ``adversary/``,
    ``analysis/``, ``network/``).  All randomness must thread a
    ``numpy.random.Generator`` (seeded via ``engine/rng.py``).

``json-nan-discipline``
    Every ``json.dump``/``json.dumps`` call in the package passes
    ``allow_nan=False`` (the strict-JSON convention of
    ``io/serialization.py``, which is the one exempt module).  A NaN that
    reaches an encoder must fail loudly, never emit invalid JSON.

``metrics-catalog``
    Every statically-resolvable metric name passed to
    ``repro.obs.metrics.count`` / ``observe`` exists in
    ``obs/metrics.py::METRICS`` with the matching kind — and every
    cataloged metric has at least one emitter (no dead catalog entries).

``warning-taxonomy``
    ``warnings.warn`` always names a cataloged warning class
    (:data:`WARNING_CATALOG`) — never a bare string or ``UserWarning`` —
    so warnings stay filterable and the structured-telemetry twin
    (``obs.trace.warning_event``) stays enumerable.

``atomic-write-discipline``
    No bare ``open(..., "w")`` / ``Path.write_text`` under ``store/``
    outside functions that complete a temp-then-``os.replace`` dance.
    Append mode is exempt (O_APPEND single-write logs are the designed
    torn-tolerant pattern).

``spawn-context``
    Worker-process construction in coordinator/http-adjacent modules must
    request the ``spawn`` multiprocessing context — forked children
    inherit listening sockets and file descriptors (the PR 9
    zombie-listener bug class).

``fault-seam-coverage``
    Every literal seam name at a ``fault_point``/``maybe_torn`` call site
    (or a ``seam=`` keyword) exists in ``robustness/faults.py::SEAMS``,
    and every cataloged seam has at least one instrumented call site.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.framework import FileContext, Finding, Rule

__all__ = ["ALL_RULES", "default_rules", "WARNING_CATALOG"]

#: Directories (path prefixes under the package root) whose code must be
#: bitwise deterministic given a seed.
DETERMINISTIC_SCOPES = ("engine/", "core/", "adversary/", "analysis/",
                        "network/")

#: Files allowed to touch RNG construction / entropy primitives directly.
RNG_SEAM_FILES = ("engine/rng.py",)

#: ``np.random.<attr>`` names that are part of the *seeded* Generator API
#: (everything else on ``np.random`` is legacy global state).
NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
})

#: The repo's warning taxonomy (see README "Robustness"/"Observability").
WARNING_CATALOG = frozenset({
    "DegradedExecutionWarning",
    "StoreIntegrityWarning",
    "TornLogWarning",
    "MultinomialKernelWarning",
})

#: Modules that must construct worker processes with the spawn context.
SPAWN_SCOPED_FILES = ("store/coordinator.py",)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _str_const(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


# --------------------------------------------------------------------- #
# 1. rng-discipline
# --------------------------------------------------------------------- #
class RngDisciplineRule(Rule):
    id = "rng-discipline"
    doc = ("deterministic core must thread numpy.random.Generator objects; "
           "no legacy global RNG, stdlib random, wall clocks, or uuids")

    #: entropy / wall-clock chains that break seeded reproducibility
    BANNED_CHAINS = {
        "time.time": "wall-clock entropy",
        "time.time_ns": "wall-clock entropy",
        "datetime.now": "wall-clock entropy",
        "datetime.utcnow": "wall-clock entropy",
        "datetime.datetime.now": "wall-clock entropy",
        "datetime.datetime.utcnow": "wall-clock entropy",
        "date.today": "wall-clock entropy",
        "uuid.uuid1": "uuid entropy",
        "uuid.uuid4": "uuid entropy",
    }

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.rel.startswith(DETERMINISTIC_SCOPES):
            return
        if ctx.rel in RNG_SEAM_FILES:
            return
        numpy_aliases = ctx.import_aliases("numpy")
        random_aliases = (ctx.import_aliases("random")
                          if ctx.imports_module("random") else set())
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _dotted(node)
            if chain is None:
                continue
            head, _, rest = chain.partition(".")
            # legacy numpy global-state RNG: np.random.<legacy>
            if head in numpy_aliases and rest.startswith("random."):
                attr = rest.split(".", 2)[1]
                if attr not in NP_RANDOM_ALLOWED:
                    yield ctx.finding(
                        node, self.id,
                        f"legacy global-state RNG `{chain}`; thread a "
                        f"seeded numpy.random.Generator instead "
                        f"(see engine/rng.py)")
                continue
            # stdlib random module (module-level Mersenne Twister state)
            if head in random_aliases and "." not in rest and rest:
                yield ctx.finding(
                    node, self.id,
                    f"stdlib `{chain}` uses process-global RNG state; "
                    f"thread a seeded numpy.random.Generator instead")
                continue
            reason = self.BANNED_CHAINS.get(chain)
            if reason is not None:
                yield ctx.finding(
                    node, self.id,
                    f"`{chain}` is {reason}: forbidden in the "
                    f"deterministic core (derive values from the seeded "
                    f"run instead)")


# --------------------------------------------------------------------- #
# 2. json-nan-discipline
# --------------------------------------------------------------------- #
class JsonNanDisciplineRule(Rule):
    id = "json-nan-discipline"
    doc = ("every json.dump(s) call passes allow_nan=False (strict-JSON "
           "convention of io/serialization.py)")

    EXEMPT_FILES = ("io/serialization.py",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.rel in self.EXEMPT_FILES:
            return
        json_aliases = (ctx.import_aliases("json")
                        if ctx.imports_module("json") else set())
        direct = {local for local, orig in ctx.imported_names("json").items()
                  if orig in ("dump", "dumps")}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            is_dump = False
            if isinstance(node.func, ast.Attribute):
                chain = _dotted(node.func)
                if chain is not None:
                    head, _, attr = chain.partition(".")
                    is_dump = head in json_aliases and attr in ("dump",
                                                                "dumps")
            elif isinstance(node.func, ast.Name):
                is_dump = node.func.id in direct
            if not is_dump:
                continue
            allow_nan = _keyword(node, "allow_nan")
            if not (isinstance(allow_nan, ast.Constant)
                    and allow_nan.value is False):
                yield ctx.finding(
                    node, self.id,
                    "json.dump(s) without allow_nan=False: a NaN/inf that "
                    "slips through emits invalid JSON; encode via "
                    "io/serialization.to_jsonable and pass allow_nan=False")


# --------------------------------------------------------------------- #
# 3. metrics-catalog
# --------------------------------------------------------------------- #
class MetricsCatalogRule(Rule):
    id = "metrics-catalog"
    doc = ("statically-resolvable metric names must exist in "
           "obs/metrics.py::METRICS with the matching kind, and every "
           "cataloged metric must have an emitter")

    CATALOG_FILE = "obs/metrics.py"
    KIND_BY_CALL = {"count": "counter", "observe": "histogram"}

    def __init__(self) -> None:
        self.catalog: Dict[str, Tuple[str, int]] = {}
        self.catalog_seen = False
        self.emitters: List[Tuple[FileContext, ast.Call, str, str]] = []
        self._contexts: Dict[str, FileContext] = {}

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        self._contexts[ctx.rel] = ctx
        if ctx.rel == self.CATALOG_FILE:
            self._parse_catalog(ctx)
            return ()
        metric_aliases = {
            local for local, orig in ctx.imported_names("repro.obs").items()
            if orig == "metrics"}
        metric_aliases |= {
            local
            for local, orig in ctx.imported_names("repro.obs.metrics").items()
            if orig == "metrics"}
        direct = {local: orig
                  for local, orig in ctx.imported_names(
                      "repro.obs.metrics").items()
                  if orig in self.KIND_BY_CALL}
        if not metric_aliases and not direct:
            return ()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            call_kind: Optional[str] = None
            if (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in metric_aliases
                    and node.func.attr in self.KIND_BY_CALL):
                call_kind = self.KIND_BY_CALL[node.func.attr]
            elif (isinstance(node.func, ast.Name)
                    and node.func.id in direct):
                call_kind = self.KIND_BY_CALL[direct[node.func.id]]
            if call_kind is None or not node.args:
                continue
            name = _str_const(node.args[0])
            if name is None:
                continue   # dynamic name: the runtime check is the backstop
            self.emitters.append((ctx, node, name, call_kind))
        return ()

    def _parse_catalog(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            else:
                continue
            if not (isinstance(target, ast.Name) and target.id == "METRICS"
                    and isinstance(value, ast.Dict)):
                continue
            self.catalog_seen = True
            for key_node, val_node in zip(value.keys, value.values):
                name = _str_const(key_node)
                if name is None or not isinstance(val_node, ast.Dict):
                    continue
                kind = "counter"
                for k, v in zip(val_node.keys, val_node.values):
                    if _str_const(k) == "kind":
                        kind = _str_const(v) or "counter"
                self.catalog[name] = (kind, key_node.lineno)

    def finalize(self) -> Iterable[Finding]:
        if not self.catalog_seen:
            return   # fixture tree without a catalog: nothing to check
        emitted: Set[str] = set()
        for ctx, node, name, call_kind in self.emitters:
            emitted.add(name)
            spec = self.catalog.get(name)
            if spec is None:
                yield ctx.finding(
                    node, self.id,
                    f"metric {name!r} is not in obs/metrics.py::METRICS; "
                    f"catalog it (kind={call_kind!r}) before emitting")
            elif spec[0] != call_kind:
                yield ctx.finding(
                    node, self.id,
                    f"metric {name!r} is cataloged as a {spec[0]}, but "
                    f"emitted as a {call_kind}")
        catalog_ctx = self._contexts.get(self.CATALOG_FILE)
        for name, (kind, lineno) in sorted(self.catalog.items()):
            if name not in emitted and catalog_ctx is not None:
                yield Finding(
                    path=self.CATALOG_FILE, line=lineno, col=0, rule=self.id,
                    message=(f"cataloged {kind} {name!r} has no "
                             f"statically-resolvable emitter (dead metric); "
                             f"emit it or drop the catalog entry"),
                    snippet=catalog_ctx.line_text(lineno))


# --------------------------------------------------------------------- #
# 4. warning-taxonomy
# --------------------------------------------------------------------- #
class WarningTaxonomyRule(Rule):
    id = "warning-taxonomy"
    doc = ("warnings.warn must use a cataloged warning class, never a bare "
           "string or UserWarning")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        warn_aliases = (ctx.import_aliases("warnings")
                        if ctx.imports_module("warnings") else set())
        direct = {local
                  for local, orig in ctx.imported_names("warnings").items()
                  if orig == "warn"}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            is_warn = False
            if (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in warn_aliases
                    and node.func.attr == "warn"):
                is_warn = True
            elif isinstance(node.func, ast.Name) and node.func.id in direct:
                is_warn = True
            if not is_warn:
                continue
            category = (node.args[1] if len(node.args) > 1
                        else _keyword(node, "category"))
            if category is None:
                yield ctx.finding(
                    node, self.id,
                    "bare warnings.warn without a category: use one of the "
                    "cataloged classes "
                    f"({', '.join(sorted(WARNING_CATALOG))})")
                continue
            chain = _dotted(category)
            terminal = chain.rsplit(".", 1)[-1] if chain else None
            if terminal not in WARNING_CATALOG:
                shown = chain or ast.dump(category)[:40]
                yield ctx.finding(
                    node, self.id,
                    f"warning class `{shown}` is not in the taxonomy; use "
                    f"one of {', '.join(sorted(WARNING_CATALOG))} (or "
                    f"catalog a new class and add it to the rule)")


# --------------------------------------------------------------------- #
# 5. atomic-write-discipline
# --------------------------------------------------------------------- #
class AtomicWriteRule(Rule):
    id = "atomic-write-discipline"
    doc = ("no bare truncating writes under store/ outside "
           "temp-then-os.replace helpers (append mode is exempt)")

    SCOPE_PREFIX = ("store/",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.rel.startswith(self.SCOPE_PREFIX):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            write_kind: Optional[str] = None
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                mode_node = (node.args[1] if len(node.args) > 1
                             else _keyword(node, "mode"))
                mode = _str_const(mode_node)
                if mode is not None and "w" in mode:
                    write_kind = f"open(..., {mode!r})"
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("write_text", "write_bytes")):
                write_kind = f".{node.func.attr}(...)"
            if write_kind is None:
                continue
            if self._function_replaces(ctx, node):
                continue
            yield ctx.finding(
                node, self.id,
                f"bare {write_kind} in a store path: a crash mid-write "
                f"leaves a torn file behind; write to a temp name and "
                f"os.replace it (or append with mode 'a')")

    @staticmethod
    def _function_replaces(ctx: FileContext, node: ast.Call) -> bool:
        """True iff the enclosing function also calls ``os.replace``."""
        fn = ctx.enclosing_function(node)
        if fn is None:
            return False
        for sub in ast.walk(fn):
            if (isinstance(sub, ast.Call)
                    and _dotted(sub.func) == "os.replace"):
                return True
        return False


# --------------------------------------------------------------------- #
# 6. spawn-context
# --------------------------------------------------------------------- #
class SpawnContextRule(Rule):
    id = "spawn-context"
    doc = ("coordinator/http-adjacent modules must build worker processes "
           "from multiprocessing.get_context('spawn')")

    HTTP_MODULES = ("http.server", "http.client")

    def _in_scope(self, ctx: FileContext) -> bool:
        if ctx.rel in SPAWN_SCOPED_FILES:
            return True
        return any(ctx.imports_module(m) for m in self.HTTP_MODULES)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not self._in_scope(ctx):
            return
        mp_aliases = (ctx.import_aliases("multiprocessing")
                      if ctx.imports_module("multiprocessing") else set())
        get_ctx_direct = {
            local
            for local, orig in ctx.imported_names("multiprocessing").items()
            if orig == "get_context"}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            # direct multiprocessing.Process(...): inherits the default
            # start method (fork on Linux) and with it every open fd
            if (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in mp_aliases
                    and node.func.attr == "Process"):
                yield ctx.finding(
                    node, self.id,
                    "multiprocessing.Process() here inherits the fork "
                    "start method (and the coordinator's listening "
                    "socket); use get_context('spawn').Process")
                continue
            # get_context("not-spawn")
            is_get_ctx = (
                (isinstance(node.func, ast.Name)
                 and node.func.id in get_ctx_direct)
                or (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in mp_aliases
                    and node.func.attr == "get_context"))
            if is_get_ctx:
                method = (_str_const(node.args[0]) if node.args
                          else _str_const(_keyword(node, "method")))
                if method != "spawn":
                    yield ctx.finding(
                        node, self.id,
                        f"get_context({method!r}) in an http-adjacent "
                        f"module: forked children inherit listening "
                        f"sockets; request 'spawn'")
                continue
            # ProcessPoolExecutor without an explicit spawn context
            if chain is not None and chain.endswith("ProcessPoolExecutor"):
                if _keyword(node, "mp_context") is None:
                    yield ctx.finding(
                        node, self.id,
                        "ProcessPoolExecutor without mp_context= in an "
                        "http-adjacent module; pass "
                        "mp_context=get_context('spawn')")


# --------------------------------------------------------------------- #
# 7. fault-seam-coverage
# --------------------------------------------------------------------- #
class FaultSeamRule(Rule):
    id = "fault-seam-coverage"
    doc = ("literal seam names at fault_point/maybe_torn call sites must "
           "exist in robustness/faults.py::SEAMS, and every cataloged seam "
           "must be instrumented somewhere")

    CATALOG_FILE = "robustness/faults.py"
    ENTRY_POINTS = ("fault_point", "maybe_torn")

    def __init__(self) -> None:
        self.catalog: Dict[str, int] = {}
        self.catalog_lineno = 0
        self.catalog_seen = False
        self.sites: List[Tuple[FileContext, ast.AST, str]] = []
        self._contexts: Dict[str, FileContext] = {}

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        self._contexts[ctx.rel] = ctx
        if ctx.rel == self.CATALOG_FILE:
            self._parse_catalog(ctx)
            return ()
        entry_names = {
            local
            for module in ("repro.robustness.faults", "repro.robustness")
            for local, orig in ctx.imported_names(module).items()
            if orig in self.ENTRY_POINTS}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            seam: Optional[str] = None
            is_entry = (
                (isinstance(node.func, ast.Name)
                 and node.func.id in entry_names)
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.ENTRY_POINTS))
            if is_entry and node.args:
                seam = _str_const(node.args[0])
            if seam is None:
                seam = _str_const(_keyword(node, "seam"))
            if seam is not None:
                self.sites.append((ctx, node, seam))
        return ()

    def _parse_catalog(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id == "SEAMS"
                    and isinstance(node.value, (ast.Tuple, ast.List))):
                continue
            self.catalog_seen = True
            self.catalog_lineno = node.lineno
            for element in node.value.elts:
                name = _str_const(element)
                if name is not None:
                    self.catalog[name] = element.lineno

    def finalize(self) -> Iterable[Finding]:
        if not self.catalog_seen:
            return
        instrumented: Set[str] = set()
        for ctx, node, seam in self.sites:
            instrumented.add(seam)
            if seam not in self.catalog:
                yield ctx.finding(
                    node, self.id,
                    f"seam {seam!r} is not in robustness/faults.py::SEAMS; "
                    f"catalog it so fault plans can arm it")
        catalog_ctx = self._contexts.get(self.CATALOG_FILE)
        for seam, lineno in sorted(self.catalog.items()):
            if seam not in instrumented and catalog_ctx is not None:
                yield Finding(
                    path=self.CATALOG_FILE, line=lineno, col=0, rule=self.id,
                    message=(f"cataloged seam {seam!r} has no "
                             f"statically-resolvable fault_point/maybe_torn "
                             f"call site (dead seam)"),
                    snippet=catalog_ctx.line_text(lineno))


#: Rule registry: id -> factory.  ``default_rules()`` instantiates fresh
#: rule objects per run (cross-file rules keep accumulator state on self).
ALL_RULES = {
    RngDisciplineRule.id: RngDisciplineRule,
    JsonNanDisciplineRule.id: JsonNanDisciplineRule,
    MetricsCatalogRule.id: MetricsCatalogRule,
    WarningTaxonomyRule.id: WarningTaxonomyRule,
    AtomicWriteRule.id: AtomicWriteRule,
    SpawnContextRule.id: SpawnContextRule,
    FaultSeamRule.id: FaultSeamRule,
}


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in catalog order."""
    return [factory() for factory in ALL_RULES.values()]
