"""The committed lint baseline: legacy debt, ratcheted down — never up.

A baseline maps finding *fingerprints* (content hashes over path, rule and
the normalized offending line — see :attr:`repro.lint.framework.Finding.
fingerprint`) to the number of occurrences that are grandfathered.  On a
run:

* a finding whose fingerprint is in the baseline, within its grandfathered
  count, is **baselined** (reported separately, not fatal);
* any finding beyond that is **new** (fatal: exit code 4);
* a baseline entry with *fewer* matching findings than grandfathered is
  **stale** — the debt shrank, which is good, but the baseline must be
  regenerated (``repro lint --write-baseline``) in the same change so the
  ratchet can never silently loosen.  Stale entries are therefore fatal
  too: CI fails loudly until the smaller baseline is committed.

Fingerprints are line-number independent, so unrelated edits that shift a
grandfathered line up or down the file do not invalidate the baseline;
editing the offending line itself does (and the edit is exactly when the
finding should be fixed rather than re-grandfathered).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.lint.framework import Finding

__all__ = ["BASELINE_SCHEMA_VERSION", "Baseline", "BaselineOutcome",
           "apply_baseline"]

BASELINE_SCHEMA_VERSION = 1


@dataclass
class Baseline:
    """Grandfathered fingerprints with occurrence counts and context."""

    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        schema = data.get("schema")
        if schema != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"baseline {path} has schema {schema!r}, expected "
                f"{BASELINE_SCHEMA_VERSION}; regenerate with "
                f"`repro lint --write-baseline`")
        entries = data.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError(f"baseline {path}: 'entries' must be an object")
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts: Counter = Counter(f.fingerprint for f in findings)
        by_fp: Dict[str, Finding] = {}
        for f in findings:
            by_fp.setdefault(f.fingerprint, f)
        entries = {
            fp: {
                "count": counts[fp],
                "rule": by_fp[fp].rule,
                "path": by_fp[fp].path,
                "message": by_fp[fp].message,
            }
            for fp in sorted(counts)
        }
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA_VERSION,
            "tool": "repro-lint",
            "entries": {fp: self.entries[fp] for fp in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   allow_nan=False) + "\n",
                        encoding="utf-8")

    def grandfathered(self, fingerprint: str) -> int:
        entry = self.entries.get(fingerprint)
        if entry is None:
            return 0
        try:
            return int(entry.get("count", 1))  # type: ignore[union-attr]
        except (TypeError, ValueError):
            return 1


@dataclass
class BaselineOutcome:
    """Findings partitioned against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: fingerprints whose current occurrence count dropped below the
    #: grandfathered count (debt shrank: regenerate the baseline)
    stale: List[Dict[str, object]] = field(default_factory=list)

    @property
    def fatal(self) -> bool:
        return bool(self.new or self.stale)


def apply_baseline(findings: List[Finding],
                   baseline: Optional[Baseline]) -> BaselineOutcome:
    """Partition ``findings`` into new vs baselined, and detect staleness."""
    outcome = BaselineOutcome()
    if baseline is None:
        baseline = Baseline()
    seen: Counter = Counter()
    for finding in findings:
        fp = finding.fingerprint
        seen[fp] += 1
        if seen[fp] <= baseline.grandfathered(fp):
            outcome.baselined.append(finding)
        else:
            outcome.new.append(finding)
    for fp, entry in sorted(baseline.entries.items()):
        allowed = baseline.grandfathered(fp)
        if seen.get(fp, 0) < allowed:
            outcome.stale.append({
                "fingerprint": fp,
                "grandfathered": allowed,
                "matched": seen.get(fp, 0),
                "rule": entry.get("rule", ""),
                "path": entry.get("path", ""),
            })
    return outcome
