"""Lint output shapes: human text and the schema-versioned JSON artifact.

``repro lint --format json`` emits one self-describing document (no
torn-tolerant framing needed — it is a single write to stdout), stable
enough for tooling to diff finding sets across commits:

* ``schema`` — :data:`LINT_REPORT_SCHEMA_VERSION`, bumped on incompatible
  shape changes; :func:`load_report` enforces it;
* ``findings`` / ``baselined`` — sorted by (path, line, col, rule), each
  carrying the content-based ``fingerprint`` (the cross-commit identity:
  two documents can be joined on fingerprints to compute
  introduced/fixed sets without line-number noise);
* ``stale_baseline`` — grandfathered entries the tree no longer produces
  (fatal until the baseline is regenerated);
* ``summary`` — counters plus the exit code the run produced.

The dump passes ``allow_nan=False`` like every other JSON writer in the
repo (finding records are strings and ints, so this is a pure backstop).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.baseline import BaselineOutcome
from repro.lint.framework import Finding, LintResult

__all__ = ["LINT_REPORT_SCHEMA_VERSION", "to_json_doc", "render_json",
           "render_text", "load_report", "diff_reports"]

LINT_REPORT_SCHEMA_VERSION = 1


def _sorted_dicts(findings: List[Finding]) -> List[Dict[str, Any]]:
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    return [f.to_dict() for f in ordered]


def to_json_doc(result: LintResult, outcome: BaselineOutcome,
                exit_code: int) -> Dict[str, Any]:
    """The machine-readable report document (see module docstring)."""
    return {
        "schema": LINT_REPORT_SCHEMA_VERSION,
        "tool": "repro-lint",
        "findings": _sorted_dicts(outcome.new + result.parse_errors),
        "baselined": _sorted_dicts(outcome.baselined),
        "suppressed": _sorted_dicts(result.suppressed),
        "stale_baseline": outcome.stale,
        "summary": {
            "files_scanned": result.files_scanned,
            "new": len(outcome.new) + len(result.parse_errors),
            "baselined": len(outcome.baselined),
            "suppressed": len(result.suppressed),
            "stale_baseline": len(outcome.stale),
            "exit_code": exit_code,
        },
    }


def render_json(result: LintResult, outcome: BaselineOutcome,
                exit_code: int) -> str:
    return json.dumps(to_json_doc(result, outcome, exit_code), indent=2,
                      sort_keys=True, allow_nan=False)


def render_text(result: LintResult, outcome: BaselineOutcome,
                exit_code: int) -> str:
    lines: List[str] = []
    for finding in sorted(outcome.new + result.parse_errors,
                          key=lambda f: (f.path, f.line, f.col, f.rule)):
        lines.append(finding.format())
    for entry in outcome.stale:
        lines.append(
            f"stale-baseline: {entry['fingerprint']} ({entry['rule']} in "
            f"{entry['path']}): grandfathered {entry['grandfathered']} but "
            f"matched {entry['matched']} — debt shrank; regenerate with "
            f"`repro lint --write-baseline`")
    lines.append(
        f"repro lint: {result.files_scanned} file(s), "
        f"{len(outcome.new) + len(result.parse_errors)} new finding(s), "
        f"{len(outcome.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed, "
        f"{len(outcome.stale)} stale baseline entr"
        f"{'y' if len(outcome.stale) == 1 else 'ies'}")
    return "\n".join(lines)


def load_report(text: str) -> Dict[str, Any]:
    """Parse + schema-check a document produced by :func:`render_json`."""
    doc = json.loads(text)
    if not isinstance(doc, dict) or doc.get("tool") != "repro-lint":
        raise ValueError("not a repro-lint report document")
    if doc.get("schema") != LINT_REPORT_SCHEMA_VERSION:
        raise ValueError(
            f"report schema {doc.get('schema')!r} unsupported "
            f"(expected {LINT_REPORT_SCHEMA_VERSION})")
    for field in ("findings", "baselined", "suppressed", "stale_baseline"):
        if not isinstance(doc.get(field), list):
            raise ValueError(f"report field {field!r} must be a list")
    return doc


def diff_reports(old: Dict[str, Any], new: Dict[str, Any]) -> Dict[str, Any]:
    """Introduced/fixed finding sets between two reports, by fingerprint."""
    old_fps = {f["fingerprint"] for f in old["findings"] + old["baselined"]}
    new_fps = {f["fingerprint"] for f in new["findings"] + new["baselined"]}
    by_fp = {f["fingerprint"]: f for f in new["findings"] + new["baselined"]}
    old_by_fp = {f["fingerprint"]: f
                 for f in old["findings"] + old["baselined"]}
    return {
        "introduced": [by_fp[fp] for fp in sorted(new_fps - old_fps)],
        "fixed": [old_by_fp[fp] for fp in sorted(old_fps - new_fps)],
    }
