"""Pluggable execution backends for store-routed sweeps.

:class:`~repro.store.runner.CachedSweepRunner` partitions a sweep into cache
hits and misses; *how* the misses execute is delegated to an
:class:`ExecutionBackend`:

``serial`` (:class:`SerialBackend`)
    In-process :func:`~repro.experiments.runner.run_cell`, one cell at a
    time.  Deterministic and test-friendly; each cell is persisted the
    moment it completes.

``pool`` (:class:`PoolBackend`)
    The :mod:`repro.engine.parallel` process pool: misses become picklable
    WorkItems, results are consumed (and persisted) in completion order.

``shard`` (:class:`~repro.store.shard.ShardBackend`)
    Multi-worker *sharded* execution: independent worker processes lease
    pending cells straight from the store (atomic lease files keyed by the
    canonical cell hash), so concurrent workers — even ones launched from
    different terminals with overlapping sweeps — compute every cell exactly
    once and any worker can die and be replaced mid-sweep.  See
    :mod:`repro.store.shard`.

``http`` (:class:`~repro.store.coordinator.HttpBackend`)
    The shard protocol served over the wire: workers on *disjoint
    filesystems* lease cells from (and push results back to) a
    :class:`~repro.store.coordinator.CoordinatorServer` holding the one
    real store.  Requires a coordinator URL, so the CLI/runner construct
    the backend instance directly (``HttpBackend(url, workers)``) rather
    than going through the by-name table.  See
    :mod:`repro.store.coordinator`.

Every backend has the same contract: execute the missing cells of a sweep,
persist each one through the runner as it completes, and return the fresh
results by sweep position.  A cell that raises is returned as the canonical
:func:`~repro.experiments.runner.failed_cell_result` (and is *not*
persisted), so a poisoned cell surfaces per-cell in the report instead of
aborting the sweep or silently vanishing — identically on every backend.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Union

from repro.engine.parallel import format_cell_error, iter_work_item_results
from repro.experiments.config import SweepConfig
from repro.experiments.results import CellResult
from repro.experiments.runner import (
    failed_cell_result,
    run_cell,
    work_item_for_cell,
    cell_result_from_pool_summary,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.robustness.retry import (
    DEFAULT_RETRY_POLICY,
    RetryExhausted,
    SweepDeadlineError,
    call_with_retry,
)

if TYPE_CHECKING:   # pragma: no cover — typing only, avoids an import cycle
    from repro.store.runner import CachedSweepRunner

__all__ = ["ExecutionBackend", "SerialBackend", "PoolBackend",
           "resolve_backend", "BACKEND_NAMES"]


class ExecutionBackend(Protocol):
    """The contract every miss-execution strategy implements.

    ``execute`` runs the cells of ``sweep`` at positions ``misses``,
    persists each successful cell through ``runner.persist_fresh`` as it
    completes (so interrupted sweeps resume), and returns ``{position:
    CellResult}`` covering every miss — failed cells as
    :func:`~repro.experiments.runner.failed_cell_result`, never persisted.
    """

    name: str

    def execute(self, sweep: SweepConfig, misses: List[int],
                runner: "CachedSweepRunner") -> Dict[int, CellResult]: ...


class SerialBackend:
    """Execute misses in-process, one cell at a time.

    Each cell (compute *and* persist) runs under the runner's
    :class:`~repro.robustness.RetryPolicy`: transient errors are retried
    with jittered backoff until the attempt budget or the sweep deadline
    runs out, permanent errors fail on the first attempt — identically to
    the other backends.
    """

    name = "serial"

    def execute(self, sweep: SweepConfig, misses: List[int],
                runner: "CachedSweepRunner") -> Dict[int, CellResult]:
        retry = getattr(runner, "retry", DEFAULT_RETRY_POLICY)
        deadline = getattr(runner, "_deadline", None)
        fresh: Dict[int, CellResult] = {}
        for i in misses:
            cell = sweep.cells[i]
            key = runner.store.key_for(cell)

            def compute_and_persist(cell=cell):
                t0 = time.perf_counter()
                result = run_cell(cell)
                # persisting inside the retried step means a failed write
                # (beyond the unwritable-store degradation persist_fresh
                # already absorbs) re-runs the whole cell, exactly like the
                # shard protocol's payload-exists-means-done recovery
                runner.persist_fresh(cell, result,
                                     elapsed=time.perf_counter() - t0)
                return result

            t_cell = time.perf_counter()
            # span identity is the canonical cell hash, so a rerun of the
            # same cell — any process, any backend — shares its span id
            with obs_trace.span("cell.compute", key=key, cell=key,
                                cell_label=cell.name,
                                backend=self.name) as cell_span:
                try:
                    fresh[i] = call_with_retry(compute_and_persist, retry,
                                               label=cell.name,
                                               deadline=deadline, key=key)
                    cell_span.set(outcome="computed")
                    obs_metrics.count("cells.computed")
                    obs_metrics.observe("cell.elapsed_s",
                                        time.perf_counter() - t_cell)
                except RetryExhausted as exc:
                    fresh[i] = failed_cell_result(cell, exc.error,
                                                  attempts=exc.attempts,
                                                  kind="transient-exhausted")
                    cell_span.set(outcome="failed", attempts=exc.attempts)
                    obs_metrics.count("cells.failed")
                except SweepDeadlineError as exc:
                    fresh[i] = failed_cell_result(
                        cell, f"SweepDeadlineError: {exc}", attempts=0,
                        kind="transient-exhausted")
                    cell_span.set(outcome="deadline")
                    obs_metrics.count("cells.failed")
                except Exception as exc:   # noqa: BLE001 — per-cell isolation
                    fresh[i] = failed_cell_result(cell, format_cell_error(exc))
                    cell_span.set(outcome="failed")
                    obs_metrics.count("cells.failed")
        return fresh


class PoolBackend:
    """Execute misses on the :mod:`repro.engine.parallel` process pool.

    Results are consumed in completion order, so each cell is persisted the
    moment its worker finishes — the interrupt-resume property — and a cell
    that raises in its worker comes back as an error summary, not an abort.
    """

    name = "pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def execute(self, sweep: SweepConfig, misses: List[int],
                runner: "CachedSweepRunner") -> Dict[int, CellResult]:
        retry = getattr(runner, "retry", DEFAULT_RETRY_POLICY)
        deadline = getattr(runner, "_deadline", None)
        fresh: Dict[int, CellResult] = {}
        items = [work_item_for_cell(sweep.cells[i]) for i in misses]
        for idx, summary in iter_work_item_results(
                items, max_workers=self.max_workers):
            i = misses[idx]
            cell = sweep.cells[i]
            key = runner.store.key_for(cell)
            result = cell_result_from_pool_summary(cell, summary)
            if (result.extra.get("failed")
                    and result.extra.get("kind") != "permanent"
                    and retry.max_attempts > 1):
                # transient pool failure with budget left: attempts 2..N run
                # serially in this process (the pool already charged one)
                result = self._retry_in_process(cell, result, runner, retry,
                                                deadline, key=key)
            # the coordinating process does the counting for the pool: its
            # workers only traced the compute span (they have no store key,
            # and counting there too would double-book every cell)
            if not result.extra.get("failed"):
                runner.persist_fresh(cell, result, elapsed=None)
                obs_metrics.count("cells.computed")
            else:
                obs_metrics.count("cells.failed")
            fresh[i] = result
        return fresh

    @staticmethod
    def _retry_in_process(cell, failed: CellResult, runner, retry,
                          deadline, key=None) -> CellResult:
        def compute(cell=cell):
            return run_cell(cell)

        try:
            return call_with_retry(compute, retry, label=cell.name,
                                   deadline=deadline, prior_attempts=1,
                                   key=key)
        except RetryExhausted as exc:
            return failed_cell_result(cell, exc.error, attempts=exc.attempts,
                                      kind="transient-exhausted")
        except SweepDeadlineError:
            return failed   # out of time: the pool attempt's record stands
        except Exception as exc:   # noqa: BLE001 — per-cell isolation
            return failed_cell_result(cell, format_cell_error(exc))


#: CLI-facing backend names (see :func:`resolve_backend`).
BACKEND_NAMES = ("serial", "pool", "shard", "http")


def resolve_backend(backend: Union[str, ExecutionBackend, None],
                    max_workers: Optional[int] = 0,
                    coordinator: Optional[str] = None) -> ExecutionBackend:
    """Turn a backend spec (name, instance or ``None``) into a backend.

    ``None`` keeps the historical ``max_workers`` convention of
    :func:`~repro.experiments.runner.run_sweep`: ``0``/``1`` → serial,
    ``None``/>1 → pool.  For ``"shard"``, ``max_workers`` is the number of
    worker processes (``None`` → :func:`~repro.engine.parallel.recommended_workers`,
    ``0`` → run the worker loop in the calling process — the ``--worker``
    attach mode).  ``"http"`` additionally needs ``coordinator`` (the
    coordinator URL); ``max_workers`` follows the shard convention.
    """
    if backend is None:
        return SerialBackend() if max_workers in (0, 1) \
            else PoolBackend(max_workers)
    if not isinstance(backend, str):
        return backend
    if backend == "serial":
        return SerialBackend()
    if backend == "pool":
        return PoolBackend(max_workers)
    if backend == "shard":
        from repro.store.shard import ShardBackend

        return ShardBackend(workers=max_workers)
    if backend == "http":
        if coordinator is None:
            raise ValueError(
                "backend 'http' needs a coordinator URL: pass "
                "coordinator=... (CLI: --coordinator URL) or construct "
                "repro.store.coordinator.HttpBackend directly")
        from repro.store.coordinator import HttpBackend

        return HttpBackend(coordinator, workers=max_workers)
    raise ValueError(f"unknown execution backend {backend!r}; "
                     f"available: {BACKEND_NAMES}")
