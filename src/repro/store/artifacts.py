"""Artifact provenance: register derived outputs against their inputs.

Benchmarks (``BENCH_*.json``), figure tables and saved sweep reports are
*derived* artifacts: their numbers are a function of (a) the experiment cells
they were computed from and (b) the code revision that computed them.  This
module makes that function explicit:

* :func:`build_provenance` returns the standard provenance block — git SHA
  (+ a ``dirty`` flag), package version, timestamp, and the store keys of the
  cells the artifact was derived from — which producers embed in the artifact
  itself (``benchmarks/bench_batch_fused.py`` stamps its JSON with it).
* :class:`ArtifactRegistry` is an append-mostly JSON ledger
  (``artifacts.json``, by default inside a :class:`~repro.store.store.ResultStore`
  directory) mapping each registered artifact file to its provenance and a
  content hash, so a perf trajectory can always be traced back to the exact
  configs and revision that produced each point.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from datetime import datetime, timezone
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.io.serialization import from_jsonable, to_jsonable
from repro.robustness.faults import maybe_torn

__all__ = ["git_sha", "git_dirty", "build_provenance", "ArtifactRegistry"]


@lru_cache(maxsize=None)
def _git(cwd: str, *args: str) -> Optional[str]:
    try:
        out = subprocess.run(["git", *args], cwd=cwd or None,
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_sha(cwd: str | Path | None = None) -> Optional[str]:
    """HEAD commit SHA of the repo containing ``cwd``, or ``None``."""
    return _git(str(cwd or os.getcwd()), "rev-parse", "HEAD")


def git_dirty(cwd: str | Path | None = None) -> Optional[bool]:
    """Whether the working tree has uncommitted changes (``None``: no repo)."""
    status = _git(str(cwd or os.getcwd()), "status", "--porcelain")
    return None if status is None else bool(status)


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def build_provenance(cell_keys: Union[Mapping[str, str], Iterable[str], None] = None,
                     extra: Optional[Dict[str, Any]] = None,
                     cwd: str | Path | None = None) -> Dict[str, Any]:
    """The standard provenance block embedded in derived artifacts.

    ``cell_keys`` may be a mapping (display label → store key) or a flat
    iterable of keys; both land under ``"cell_keys"`` unchanged in shape.
    """
    from repro import __version__

    if cell_keys is None:
        keys: Any = {}
    elif isinstance(cell_keys, Mapping):
        keys = dict(cell_keys)
    else:
        keys = list(cell_keys)
    provenance: Dict[str, Any] = {
        "git_sha": git_sha(cwd),
        "git_dirty": git_dirty(cwd),
        "package_version": __version__,
        "created_at": _utcnow(),
        "cell_keys": keys,
    }
    if extra:
        provenance.update(extra)
    return provenance


class ArtifactRegistry:
    """A JSON ledger of derived artifacts and the store keys behind them."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def records(self) -> List[Dict[str, Any]]:
        if not self.path.exists():
            return []
        try:
            data = from_jsonable(json.loads(self.path.read_text()))
            return list(data.get("artifacts", []))
        except (json.JSONDecodeError, AttributeError, TypeError, ValueError):
            return []

    def register(self, artifact_path: str | Path, kind: str,
                 cell_keys: Union[Mapping[str, str], Iterable[str], None] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Append (or refresh) the ledger entry for one artifact file.

        Re-registering the same path replaces its previous entry, so the
        ledger tracks the latest generation of each artifact.
        """
        artifact_path = Path(artifact_path)
        try:   # ledger-relative paths keep the ledger portable/committable
            display = artifact_path.resolve().relative_to(
                self.path.resolve().parent)
        except ValueError:
            display = artifact_path
        record = {
            "path": str(display),
            "kind": kind,
            "sha256": (hashlib.sha256(artifact_path.read_bytes()).hexdigest()
                       if artifact_path.exists() else None),
            "provenance": build_provenance(cell_keys, extra=extra),
        }
        records = [r for r in self.records() if r.get("path") != record["path"]]
        records.append(record)
        self._write(records)
        return record

    def _write(self, records: List[Dict[str, Any]]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": 1, "artifacts": records}
        text = json.dumps(to_jsonable(payload), indent=2, allow_nan=False) + "\n"
        # fault seam: a torn ledger write must be tolerated by records()
        text = maybe_torn("store.artifact_write", text, path=str(self.path))
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, self.path)

    @staticmethod
    def _record_cell_keys(record: Mapping[str, Any]) -> List[str]:
        keys = record.get("provenance", {}).get("cell_keys", {})
        return list(keys.values()) if isinstance(keys, Mapping) else list(keys)

    def flag_dangling(self, valid_keys: Iterable[str]) -> int:
        """Flag records whose input cells are gone; return how many dangle.

        ``repro-consensus store gc`` calls this after validating payloads: an
        artifact derived from cells that were since dropped or quarantined
        can no longer be traced back to live data, so its ledger entry gains
        a ``dangling_cell_keys`` list (the missing keys).  The flag is
        recomputed on every pass — an entry whose cells come back (e.g. the
        sweep was re-run) is unflagged again.  Flagging is deliberately
        non-destructive: the record itself still documents what the artifact
        *was* derived from.
        """
        valid = set(valid_keys)
        records = self.records()
        flagged = 0
        changed = False
        for record in records:
            dangling = sorted(k for k in self._record_cell_keys(record)
                              if k not in valid)
            if dangling:
                flagged += 1
                if record.get("dangling_cell_keys") != dangling:
                    record["dangling_cell_keys"] = dangling
                    changed = True
            elif "dangling_cell_keys" in record:
                del record["dangling_cell_keys"]
                changed = True
        if changed:
            self._write(records)
        return flagged
