"""HTTP lease coordinator: the shard protocol served over the wire.

The shard backend (:mod:`repro.store.shard`) gives exactly-once cells,
stale-lease reclaim and crash-safe workers — but only over a *shared
filesystem*, which caps the fleet at one host.  This module serves the same
protocol over plain HTTP so workers on **disjoint filesystems** coordinate
through canonical cell hashes:

* :class:`CoordinatorServer` — a stdlib ``http.server`` front end over one
  real :class:`~repro.store.store.ResultStore` plus one real server-side
  :class:`~repro.store.shard.LeaseManager`.  Every lease rule (atomic
  ``O_CREAT | O_EXCL`` create, failure markers, stale reclaim, the
  append-only ``shard/executions.jsonl`` ledger) stays **one
  implementation**: the server simply acts on behalf of remote callers,
  writing their full identity (worker, pid, host, nonce) into the lease
  files.  Staleness of a remote worker's lease falls to the mtime-age TTL
  (its host differs from the server's), with the future-mtime clamp of
  :meth:`LeaseManager._age_stale` guarding against skewed client clocks.
* :class:`CoordinatorClient` — a thin ``urllib`` JSON transport with a
  budgeted retry loop.  Connection-level failures raise
  :class:`CoordinatorError`, a ``ConnectionError`` subclass, so the retry
  policy's name-based classifier files them as *transient* and the shard
  worker loop leaves the affected cell pending instead of dying — a
  coordinator outage stalls the fleet, it does not kill it.
* :class:`CoordinatorStore` — duck-types the ``ResultStore`` surface the
  runner and workers touch (``key_for`` / ``get`` / ``put`` / ``contains``),
  so :class:`~repro.store.runner.CachedSweepRunner` and
  :class:`~repro.store.shard.ShardWorker` run unchanged against a URL.
  ``put`` uploads the full ``CellResult`` (rounds inline on the wire); the
  *server's* sidecar policy decides whether rounds land as NPZ sidecars on
  its disk, and ``get`` returns sidecar rounds re-inlined — payload *and*
  sidecar round-trip without the worker ever seeing the store directory.
* :class:`HttpLeaseClient` — the :class:`LeaseManager` method surface
  (acquire / release / mark-failed / clear-failure / peek / is-stale /
  reclaim / log-execution) forwarded over the wire, carrying the worker's
  full identity so ownership comparisons behave exactly as on a shared
  filesystem.
* :class:`HttpBackend` — ``backend="http"``: the
  :class:`~repro.store.backends.ExecutionBackend` that spawns K local
  worker processes talking to a coordinator URL (plus the usual in-process
  mop-up pass), mirroring :class:`~repro.store.shard.ShardBackend`.

Exactly-once across retried requests: the lease acquire is decided by the
server's ``O_EXCL`` create, so a *retried* acquire whose first attempt won
(but whose acknowledgement was lost) simply loses the re-try — the worker
then finds its own abandoned lease and releases it (ownership-checked)
before re-acquiring.  Ledger appends are deduplicated server-side by
``(key, worker)``, so a lost acknowledgement cannot double-book a compute;
a genuine same-worker recompute (quarantined payload) is *under*-counted,
the ledger's documented safe direction.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.engine.parallel import recommended_workers
from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.results import CellResult
from repro.io.serialization import from_jsonable, to_jsonable
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.robustness import DegradedExecutionWarning
from repro.robustness.faults import InjectedFault, fault_point, \
    mark_worker_process
from repro.robustness.retry import (
    DEFAULT_RETRY_POLICY,
    Deadline,
    RetryPolicy,
)
from repro.store.hashing import cell_key
from repro.store.shard import (
    DEFAULT_POLL_INTERVAL,
    DEFAULT_STALE_AFTER,
    LeaseManager,
    ShardWorker,
    process_nonce,
    read_execution_log,
    worker_identity,
)
from repro.store.store import STORE_SCHEMA_VERSION, ResultStore, StoreRecord

__all__ = ["CoordinatorServer", "CoordinatorClient", "CoordinatorError",
           "CoordinatorStore", "HttpLeaseClient", "HttpBackend",
           "DEFAULT_COORDINATOR_ADDR", "DEFAULT_TRANSPORT_RETRY"]

#: Default serve address for ``sweep --serve`` (loopback, fixed port so the
#: quickstart's attach commands can be typed without reading the serve log).
DEFAULT_COORDINATOR_ADDR = "127.0.0.1:8765"

#: Transport-level retry budget for one coordinator request.  Deliberately
#: small: the shard worker loop above it already re-polls pending cells, so
#: the transport only needs to ride out sub-second blips — longer outages
#: surface as a pending cell the loop retries on its own schedule.
DEFAULT_TRANSPORT_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.05,
                                      max_delay_s=0.5)

_API = "/api/v1"


class CoordinatorError(ConnectionError):
    """A coordinator request failed at the transport level.

    Subclasses ``ConnectionError`` (hence ``OSError``) on purpose: the
    name-based :func:`~repro.robustness.retry.classify_error` files it as
    transient, and the shard worker loop's ``except (InjectedFault,
    OSError)`` keeps the affected cell *pending* instead of crashing the
    worker — budgeted client retries plus the poll loop ride out a
    coordinator outage.
    """


# ---------------------------------------------------------------------- #
# server
# ---------------------------------------------------------------------- #
class _CoordinatorHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a reference to its coordinator."""

    daemon_threads = True
    # lets a restarted coordinator bind the same address while a dying
    # predecessor's last connections drain (no-op before Python 3.11)
    allow_reuse_port = True
    coordinator: "CoordinatorServer"


class _Handler(BaseHTTPRequestHandler):
    """JSON route handler; all state lives on ``server.coordinator``.

    Deliberately one request per connection (the HTTP/1.0 default): a
    keep-alive handler thread parked on a drained connection would hold
    its socket — and therefore the port — long after ``stop()``, making a
    same-address coordinator restart fail with ``EADDRINUSE``.
    """

    # -- plumbing ------------------------------------------------------- #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass   # quiet: telemetry goes through repro.obs, not stderr

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        body = self.rfile.read(length)
        try:
            parsed = from_jsonable(json.loads(body))
        except (json.JSONDecodeError, ValueError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(parsed, dict):
            raise ValueError("request body must be a JSON object")
        return parsed

    def _send_json(self, code: int, payload: Any) -> None:
        body = json.dumps(to_jsonable(payload), allow_nan=False).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        try:
            code, payload = self.server.coordinator.handle(
                method, self.path, self._read_json() if method != "GET"
                else {})
        except (KeyError, ValueError, TypeError) as exc:
            code, payload = 400, {"error": f"{type(exc).__name__}: {exc}"}
        except (InjectedFault, OSError) as exc:
            # transient server-side trouble (injected fault, disk hiccup):
            # 503 tells the budgeted client transport to retry
            code, payload = 503, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:   # noqa: BLE001 — the server must survive
            code, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            self._send_json(code, payload)
        except OSError:
            pass   # client went away mid-response; its transport retries

    def do_GET(self) -> None:      # noqa: N802 — BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:     # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:      # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:   # noqa: N802
        self._dispatch("DELETE")


class CoordinatorServer:
    """Serve one :class:`ResultStore` + lease protocol over HTTP.

    The store and the :class:`LeaseManager` are the *real* single-host
    implementations — the server is a transport, not a re-implementation,
    so lease semantics cannot drift between local and fleet execution.
    ``ThreadingHTTPServer`` handles each request on its own thread; every
    lease operation is already atomic at the filesystem level (``O_EXCL``
    create, ``flock`` reclaim mutex, ``O_APPEND`` ledger writes), so
    concurrent requests serialize exactly like concurrent local workers.

    Usable as a context manager::

        with CoordinatorServer(store_dir) as server:
            ...  # server.url is live

    or started/stopped explicitly (``start()`` runs ``serve_forever`` on a
    daemon thread; ``serve_forever()`` blocks for CLI use).
    """

    def __init__(self, store: "ResultStore | str | Path",
                 host: str = "127.0.0.1", port: int = 0,
                 stale_after: float = DEFAULT_STALE_AFTER,
                 bind_grace_s: float = 5.0) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.leases = LeaseManager(store.root, stale_after=stale_after)
        # a coordinator restarted on its predecessor's fixed address may
        # race the predecessor's draining connections: retry the bind for
        # a short grace window instead of failing the whole fleet
        deadline = time.monotonic() + (bind_grace_s if port else 0.0)
        while True:
            try:
                self._httpd = _CoordinatorHTTPServer((host, int(port)),
                                                     _Handler)
                break
            except OSError as exc:
                if exc.errno != errno.EADDRINUSE \
                        or time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)
        self._httpd.coordinator = self
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------ #
    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CoordinatorServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-coordinator", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- routing -------------------------------------------------------- #
    def handle(self, method: str, path: str,
               body: Dict[str, Any]) -> "tuple[int, Any]":
        """Dispatch one request; returns ``(status, jsonable payload)``."""
        obs_metrics.count("coordinator.requests")
        if not path.startswith(_API + "/"):
            return 404, {"error": f"unknown path {path!r}"}
        parts = path[len(_API) + 1:].rstrip("/").split("/")
        if parts == ["ping"] and method == "GET":
            return 200, {"ok": True, "store": str(self.store.root),
                         "worker": self.leases.worker}
        if parts[0] == "cells" and len(parts) == 2:
            return self._handle_cell(method, parts[1], body)
        if parts[0] == "lease" and len(parts) == 2:
            return self._handle_lease(method, parts[1], body)
        if parts == ["executions"]:
            if method == "POST":
                return 200, self._log_execution(body)
            if method == "GET":
                return 200, {"records": read_execution_log(self.store.root)}
        return 404, {"error": f"no route for {method} {path}"}

    def _handle_cell(self, method: str, key: str,
                     body: Dict[str, Any]) -> "tuple[int, Any]":
        if method == "GET":
            record = self.store.get(key)
            if record is None:
                return 404, {"error": f"no record for {key}"}
            return 200, {
                "key": record.key,
                "schema": record.schema,
                "config": record.config,
                # sidecar rounds were re-inlined by store.get: the wire
                # payload is always the complete result
                "result": record.result.to_dict(),
                "provenance": record.provenance,
            }
        if method in ("PUT", "POST"):
            config = ExperimentConfig.from_dict(dict(body["config"]))
            if self.store.key_for(config) != key:
                raise ValueError(f"config hashes to "
                                 f"{self.store.key_for(config)}, "
                                 f"not the addressed key {key}")
            result = CellResult.from_dict(dict(body["result"]))
            stored = self.store.put(config, result,
                                    dict(body.get("provenance") or {}))
            return 200, {"key": stored}
        if method == "DELETE":
            path = self.store._payload_path(key)
            removed = path.exists()
            if removed:
                path.unlink()
            return 200, {"removed": removed}
        return 405, {"error": f"cells: unsupported method {method}"}

    def _handle_lease(self, method: str, op: str,
                      body: Dict[str, Any]) -> "tuple[int, Any]":
        if method == "GET":
            # GET /lease/<key> — peek (op is the key here)
            return 200, {"lease": self.leases.peek(op)}
        if method != "POST":
            return 405, {"error": f"lease: unsupported method {method}"}
        key = str(body["key"])
        if op == "acquire":
            won = self.leases.acquire(key, identity=dict(body["identity"]))
            return 200, {"acquired": won}
        if op == "release":
            self.leases.release(key, worker=str(body["worker"]))
            return 200, {"released": True}
        if op == "mark-failed":
            self.leases.mark_failed(
                key, str(body.get("cell", "")), str(body.get("error", "")),
                attempts=int(body.get("attempts", 1)),
                kind=body.get("kind"), identity=dict(body["identity"]))
            return 200, {"marked": True}
        if op == "clear-failure":
            return 200, {"cleared": self.leases.clear_failure(key)}
        if op == "stale":
            stale = self.leases.is_stale(key, dict(body["lease"]))
            return 200, {"stale": stale}
        if op == "reclaim":
            taken = self.leases.reclaim(key, dict(body["observed"]))
            return 200, {"reclaimed": taken}
        return 404, {"error": f"lease: unknown operation {op!r}"}

    def _log_execution(self, body: Dict[str, Any]) -> Dict[str, Any]:
        key = str(body["key"])
        worker = str(body.get("worker", ""))
        # idempotent by (key, worker): a client that retried a lost
        # acknowledgement must not double-book the compute.  (A genuine
        # same-worker recompute — quarantined payload — is under-counted:
        # the ledger's documented safe direction.)
        for record in read_execution_log(self.store.root):
            if record.get("key") == key and record.get("worker") == worker:
                return {"logged": False, "duplicate": True}
        self.leases.log_execution(key, str(body.get("cell", "")),
                                  attempts=int(body.get("attempts", 1)),
                                  worker=worker, pid=body.get("pid"))
        return {"logged": True, "duplicate": False}


# ---------------------------------------------------------------------- #
# client transport
# ---------------------------------------------------------------------- #
class CoordinatorClient:
    """Budgeted JSON-over-HTTP transport to one coordinator.

    ``request`` retries transport failures (connection refused/reset,
    timeouts, 5xx) under ``retry`` with the policy's deterministic jittered
    backoff, then raises :class:`CoordinatorError` — transient by
    classification, so callers above (the worker loop) keep the cell
    pending.  A 404 returns ``None`` (the miss encoding); a 4xx raises
    ``ValueError`` (permanent: a protocol bug, not weather).
    """

    def __init__(self, base_url: str, timeout: float = 10.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retry = retry or DEFAULT_TRANSPORT_RETRY

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None) -> Optional[Any]:
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._once(method, path, payload)
            except CoordinatorError:
                if attempts >= self.retry.max_attempts:
                    obs_metrics.count("coordinator.errors")
                    raise
                obs_metrics.count("coordinator.retries")
                time.sleep(self.retry.backoff_s(attempts, token=path))

    def _once(self, method: str, path: str,
              payload: Optional[Dict[str, Any]]) -> Optional[Any]:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(to_jsonable(payload), allow_nan=False).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base_url + path, data=data,
                                     method=method, headers=headers)
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                body = resp.read()
        except urllib.error.HTTPError as exc:
            detail = self._error_detail(exc)
            if exc.code == 404:
                return None
            if 400 <= exc.code < 500:
                raise ValueError(f"coordinator rejected {method} {path}: "
                                 f"{detail}") from exc
            raise CoordinatorError(f"coordinator {method} {path} -> "
                                   f"{exc.code}: {detail}") from exc
        except (urllib.error.URLError, ConnectionError, TimeoutError,
                socket.timeout, OSError) as exc:
            raise CoordinatorError(f"coordinator unreachable "
                                   f"({method} {self.base_url}{path}): "
                                   f"{exc}") from exc
        finally:
            obs_metrics.observe("coordinator.request_s",
                                time.perf_counter() - t0)
        return from_jsonable(json.loads(body)) if body else {}

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            parsed = json.loads(exc.read())
            return str(parsed.get("error", parsed))
        except Exception:   # noqa: BLE001 — detail is best-effort
            return str(exc)


# ---------------------------------------------------------------------- #
# store + lease surfaces over the transport
# ---------------------------------------------------------------------- #
class CoordinatorStore:
    """The ``ResultStore`` surface the runner/workers touch, over HTTP.

    Misses come back as 404 → ``None``; ``put`` uploads config + result +
    provenance and lets the *server's* sidecar policy place the rounds.
    ``root`` is the coordinator URL so runner messages and artifact
    registration read sensibly.  Sidecar placement is server-side, hence
    ``rounds_sidecar_at`` is pinned ``None`` here.
    """

    rounds_sidecar_at: Optional[int] = None

    def __init__(self, client: "CoordinatorClient | str") -> None:
        if isinstance(client, str):
            client = CoordinatorClient(client)
        self.client = client

    @property
    def root(self) -> str:
        return self.client.base_url

    @staticmethod
    def key_for(config: ExperimentConfig) -> str:
        return cell_key(config)

    def _key(self, config_or_key: "ExperimentConfig | str") -> str:
        return (config_or_key if isinstance(config_or_key, str)
                else self.key_for(config_or_key))

    def get(self, config_or_key: "ExperimentConfig | str"
            ) -> Optional[StoreRecord]:
        key = self._key(config_or_key)
        raw = self.client.request("GET", f"{_API}/cells/{key}")
        if raw is None:
            return None
        return StoreRecord(
            key=str(raw["key"]),
            config=dict(raw["config"]),
            result=CellResult.from_dict(dict(raw["result"])),
            provenance=dict(raw.get("provenance") or {}),
            schema=int(raw.get("schema", STORE_SCHEMA_VERSION)),
        )

    def put(self, config: ExperimentConfig, result: CellResult,
            provenance: Optional[Dict[str, Any]] = None) -> str:
        key = self.key_for(config)
        self.client.request("PUT", f"{_API}/cells/{key}", {
            "config": config.to_dict(),
            "result": result.to_dict(),
            "provenance": dict(provenance or {}),
        })
        return key

    def contains(self, config_or_key: "ExperimentConfig | str") -> bool:
        return self.get(config_or_key) is not None

    def delete(self, key: str) -> bool:
        """Drop a payload server-side (the ``--rerun`` escape hatch)."""
        out = self.client.request("DELETE", f"{_API}/cells/{key}")
        return bool(out and out.get("removed"))


class HttpLeaseClient:
    """The :class:`LeaseManager` method surface, forwarded to a coordinator.

    Carries this worker's *full* identity (worker, pid, host, nonce) into
    acquire / mark-failed so the server-side lease files record the true
    remote owner; release and the execution ledger compare/record by the
    same identity.  Staleness and reclaim are evaluated server-side, where
    the lease files (and the reclaim ``flock`` mutex) live.
    """

    def __init__(self, client: "CoordinatorClient | str",
                 worker: Optional[str] = None) -> None:
        if isinstance(client, str):
            client = CoordinatorClient(client)
        self.client = client
        self.worker = worker or worker_identity()

    def identity(self) -> Dict[str, Any]:
        return {"worker": self.worker, "pid": os.getpid(),
                "host": socket.gethostname(), "nonce": process_nonce()}

    def acquire(self, key: str) -> bool:
        out = self.client.request("POST", f"{_API}/lease/acquire",
                                  {"key": key, "identity": self.identity()})
        return bool(out["acquired"])

    def release(self, key: str) -> None:
        self.client.request("POST", f"{_API}/lease/release",
                            {"key": key, "worker": self.worker})

    def mark_failed(self, key: str, cell_name: str, error: str,
                    attempts: int = 1, kind: Optional[str] = None) -> None:
        self.client.request("POST", f"{_API}/lease/mark-failed", {
            "key": key, "cell": cell_name, "error": error,
            "attempts": int(attempts), "kind": kind,
            "identity": self.identity()})

    def clear_failure(self, key: str) -> bool:
        out = self.client.request("POST", f"{_API}/lease/clear-failure",
                                  {"key": key})
        return bool(out["cleared"])

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        out = self.client.request("GET", f"{_API}/lease/{key}")
        return None if out is None else out.get("lease")

    def is_stale(self, key: str, lease: Dict[str, Any]) -> bool:
        out = self.client.request("POST", f"{_API}/lease/stale",
                                  {"key": key, "lease": lease})
        return bool(out["stale"])

    def reclaim(self, key: str, observed: Dict[str, Any]) -> bool:
        out = self.client.request("POST", f"{_API}/lease/reclaim",
                                  {"key": key, "observed": observed})
        return bool(out["reclaimed"])

    def log_execution(self, key: str, cell_name: str,
                      attempts: int = 1) -> None:
        self.client.request("POST", f"{_API}/executions", {
            "key": key, "cell": cell_name, "worker": self.worker,
            "pid": os.getpid(), "attempts": int(attempts)})


# ---------------------------------------------------------------------- #
# the http execution backend
# ---------------------------------------------------------------------- #
def _http_worker(url: str, worker: str, poll_interval: float,
                 timeout: float, retry: Optional[RetryPolicy],
                 deadline: Optional[Deadline],
                 backend_label: str = "http") -> ShardWorker:
    """One coordinator-attached worker (store + leases over one client)."""
    client = CoordinatorClient(url, timeout=timeout)
    return ShardWorker(CoordinatorStore(client),
                       poll_interval=poll_interval, retry=retry,
                       deadline=deadline,
                       leases=HttpLeaseClient(client, worker=worker),
                       backend_label=backend_label)


def _http_worker_main(url: str, sweep_dict: Dict[str, Any], worker: str,
                      poll_interval: float, timeout: float,
                      retry_dict: Optional[Dict[str, Any]] = None,
                      deadline_s: Optional[float] = None) -> None:
    """Child-process entry point (top-level so it pickles under spawn)."""
    mark_worker_process()   # worker_only faults (kill-worker) may fire here
    retry = (RetryPolicy.from_dict(retry_dict) if retry_dict
             else DEFAULT_RETRY_POLICY)
    deadline = Deadline(deadline_s) if deadline_s is not None else None
    _http_worker(url, worker, poll_interval, timeout, retry,
                 deadline).run(SweepConfig.from_dict(sweep_dict))


class HttpBackend:
    """The ``http`` execution backend: a worker fleet over a coordinator.

    Mirrors :class:`~repro.store.shard.ShardBackend` — ``workers=None`` →
    :func:`~repro.engine.parallel.recommended_workers` child processes,
    ``0`` → the calling process runs the worker loop itself (the CLI
    ``--worker --coordinator URL`` attach mode), K ≥ 1 → K children plus an
    in-process mop-up pass — except every store and lease operation travels
    through the coordinator, so the children need no access to the store
    directory at all.  An unreachable coordinator at startup degrades to
    pool execution (results are computed but not persisted — the
    store-unwritable rung of the ladder absorbs the failed puts).
    """

    name = "http"

    def __init__(self, coordinator: str, workers: Optional[int] = None,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 timeout: float = 10.0) -> None:
        self.coordinator = coordinator.rstrip("/")
        self.workers = workers
        self.poll_interval = float(poll_interval)
        self.timeout = float(timeout)

    def execute(self, sweep: SweepConfig, misses: List[int],
                runner) -> Dict[int, CellResult]:
        store = runner.store
        keys = [store.key_for(cell) for cell in sweep.cells]
        retry: RetryPolicy = getattr(runner, "retry", DEFAULT_RETRY_POLICY)
        deadline: Optional[Deadline] = getattr(runner, "_deadline", None)
        client = CoordinatorClient(self.coordinator, timeout=self.timeout)
        leases = HttpLeaseClient(client)
        try:
            client.request("GET", f"{_API}/ping")
        except CoordinatorError as exc:
            # degradation ladder: with no coordinator there is no lease
            # authority and no remote store — the pool backend still
            # computes everything in-process-tree (persist_fresh's
            # store-unwritable rung absorbs the failed uploads)
            import warnings

            message = (f"http backend: coordinator {self.coordinator} "
                       f"unreachable ({exc}); degrading to pool execution")
            warnings.warn(message, DegradedExecutionWarning, stacklevel=2)
            obs_trace.warning_event("DegradedExecutionWarning", message,
                                    rung="http-to-pool")
            obs_metrics.count("degraded", rung="http-to-pool")
            from repro.store.backends import PoolBackend

            return PoolBackend(self.workers).execute(sweep, misses, runner)
        for i in misses:
            # a fresh coordinated run retries cells that failed previously
            leases.clear_failure(keys[i])
            if runner.rerun and isinstance(store, CoordinatorStore):
                # --rerun promises recomputation: drop the stale payload
                store.delete(keys[i])

        workers = recommended_workers() if self.workers is None \
            else int(self.workers)
        procs = []
        if workers >= 1 and misses:
            try:
                fault_point("subprocess.spawn", backend="http")
                import multiprocessing

                # spawn, not fork: forked children would inherit the
                # coordinator's listening socket fd, keeping a zombie
                # listener alive after a server restart (SO_REUSEPORT then
                # load-balances connects onto it and they hang).  spawn
                # also matches the semantics being modelled — workers on
                # disjoint machines share no process state.
                ctx = multiprocessing.get_context("spawn")
                for w in range(workers):
                    proc = ctx.Process(
                        target=_http_worker_main,
                        args=(self.coordinator, sweep.to_dict(),
                              f"{worker_identity()}#w{w}",
                              self.poll_interval, self.timeout,
                              retry.to_dict(),
                              None if deadline is None
                              else deadline.remaining()),
                        daemon=True,
                    )
                    proc.start()
                    procs.append(proc)
            except (ImportError, OSError, ValueError, RuntimeError):
                procs = []   # sandboxed: the mop-up pass runs everything
        for proc in procs:
            proc.join()

        # Mop-up + assembly: resolves anything the children left behind and
        # reads every resolved cell back through the coordinator.
        mop_up = _http_worker(self.coordinator, worker_identity(),
                              self.poll_interval, self.timeout, retry,
                              deadline)
        resolved = mop_up.run(sweep)
        runner.last_stats.executed.extend(
            keys[i] for i in misses if store.contains(keys[i]))
        return {i: resolved[i] for i in misses}
