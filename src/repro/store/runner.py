"""Cache-aware, resumable sweep execution on top of a :class:`ResultStore`.

:class:`CachedSweepRunner` wraps :func:`repro.experiments.runner.run_sweep`
semantics with a hit/miss partition:

1. every cell of the sweep is hashed (:func:`repro.store.hashing.cell_key` —
   engine- and label-independent);
2. cells whose key already has a valid store record are *hits* and are not
   executed;
3. the remaining *misses* run through a pluggable
   :class:`~repro.store.backends.ExecutionBackend` — in-process ``serial``,
   the ``pool`` of :mod:`repro.engine.parallel` WorkItems, or the multi-
   process ``shard`` backend of :mod:`repro.store.shard` where independent
   workers lease cells straight from the store.  Every backend persists each
   finished cell the moment it completes, so a sweep killed halfway resumes
   from the already-completed cells instead of restarting;
4. the final :class:`~repro.experiments.results.ExperimentReport` is
   assembled in sweep order from cached + fresh results.  A cell that raised
   is included as the canonical failure record and listed in
   ``report.meta["failures"]`` — identically on every backend.

Cache-assembled cells reuse the *requesting* sweep's config, so re-running an
identical sweep yields a report equal (``==``) to the cold run's; the config
the record was originally written under stays available in the store record's
provenance.  Volatile execution facts (hit/miss counts, elapsed times) are
deliberately kept out of ``report.meta`` for the same reason — read them from
:attr:`CachedSweepRunner.last_stats`.

``offline=True`` turns the runner into a zero-recompute replayer: a miss
raises :class:`StoreMissError` instead of executing, which is how warm
figure/table regeneration proves it simulated nothing (see
``repro-consensus sweep --from-store``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.results import CellResult, ExperimentReport
from repro.experiments.runner import attach_failures
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.robustness import DegradedExecutionWarning
from repro.robustness.retry import DEFAULT_RETRY_POLICY, Deadline, RetryPolicy
from repro.store.artifacts import build_provenance
from repro.store.backends import ExecutionBackend, resolve_backend
from repro.store.store import ResultStore, StoreRecord

__all__ = ["CacheStats", "CachedSweepRunner", "StoreMissError",
           "run_sweep_cached"]

#: Sentinel distinguishing "argument omitted" from an explicit ``None``
#: (which, per the run_sweep convention, requests the default-size pool).
_UNSET: object = object()


def _kernel_id() -> str:
    """Resolved multinomial-kernel id for provenance; never raises."""
    try:
        from repro.engine.rng import multinomial_kernel_id
        return multinomial_kernel_id()
    except Exception:
        return "unknown"


class StoreMissError(LookupError):
    """An offline (zero-recompute) run hit a cell the store does not hold."""

    def __init__(self, missing: List[str]) -> None:
        self.missing = list(missing)
        preview = ", ".join(self.missing[:5])
        more = f" (+{len(self.missing) - 5} more)" if len(self.missing) > 5 else ""
        super().__init__(
            f"offline run: {len(self.missing)} cell(s) not in the store: "
            f"{preview}{more}; run the sweep with --store first")


@dataclass
class CacheStats:
    """Hit/miss accounting of one cached sweep execution."""

    hits: int = 0
    misses: int = 0
    failures: int = 0
    executed: List[str] = field(default_factory=list)   # keys actually run

    @property
    def total(self) -> int:
        return self.hits + self.misses

    def summary(self) -> str:
        base = f"hits={self.hits} misses={self.misses}"
        if self.failures:
            base += f" failures={self.failures}"
        return base


class CachedSweepRunner:
    """Execute sweeps through a :class:`ResultStore`, skipping cached cells.

    Parameters
    ----------
    store:
        The backing result store (created on first write if the directory is
        empty).
    rerun:
        ``True`` forces every cell to execute even on a hit, overwriting the
        stored records — the ``--rerun`` escape hatch for invalidating
        results after a semantics-changing code edit.
    max_workers:
        Default worker count for :meth:`run` (same convention as
        :func:`~repro.experiments.runner.run_sweep`: ``0``/``1`` serial,
        ``None``/>1 a process pool over the missing cells).  For the shard
        backend this is the number of worker processes.
    backend:
        Miss-execution strategy: a name (``"serial"``, ``"pool"``,
        ``"shard"``), an :class:`~repro.store.backends.ExecutionBackend`
        instance, or ``None`` for the historical ``max_workers`` convention.
    offline:
        ``True`` forbids execution entirely: any miss raises
        :class:`StoreMissError`.  The zero-recompute mode behind
        ``sweep --from-store`` figure/table regeneration.
    retry:
        The :class:`~repro.robustness.RetryPolicy` every backend executes
        misses under (attempt budget, jittered backoff, per-sweep
        deadline).  The default — ``max_attempts=1``, no deadline — is
        exactly the historical no-retry behavior.  Exhausted transient
        cells and permanent errors both surface as canonical failures,
        distinguished by ``kind`` in ``report.meta["failures"]``.
    """

    def __init__(self, store: ResultStore, rerun: bool = False,
                 max_workers: Optional[int] = 0,
                 backend: Union[str, ExecutionBackend, None] = None,
                 offline: bool = False,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.store = store
        self.rerun = rerun
        self.max_workers = max_workers
        self.backend = backend
        self.offline = offline
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.last_stats = CacheStats()
        self._deadline: Optional[Deadline] = None
        self._persist_degraded = False

    # ------------------------------------------------------------------ #
    def partition(self, sweep: SweepConfig
                  ) -> Tuple[Dict[int, StoreRecord], List[int]]:
        """Split sweep cells (by position) into cache hits and misses.

        Returns ``(hits, misses)`` where ``hits`` maps cell index → loaded
        :class:`StoreRecord` and ``misses`` lists the indices to execute.
        Duplicate cells (same key appearing twice in one sweep) are all
        treated as misses on a cold store; the last execution wins the slot.

        Degradation ladder: a store that cannot be *read* (unreadable
        directory, unreachable coordinator) turns every cell into a miss
        with one :class:`DegradedExecutionWarning` — the sweep computes
        everything instead of dying, the mirror image of
        :meth:`persist_fresh`'s unwritable-store rung.
        """
        hits: Dict[int, StoreRecord] = {}
        misses: List[int] = []
        unreadable = False
        for i, cell in enumerate(sweep):
            record = None
            if not self.rerun and not unreadable:
                try:
                    record = self.store.get(cell)
                except OSError as exc:
                    # one failed read degrades the whole partition: probing
                    # the remaining cells would just replay the same error
                    unreadable = True
                    message = (f"store {self.store.root} is not readable "
                               f"({exc}); treating every cell as a miss")
                    warnings.warn(message, DegradedExecutionWarning,
                                  stacklevel=2)
                    obs_trace.warning_event(
                        "DegradedExecutionWarning", message,
                        rung="store-unreadable",
                        cell=self.store.key_for(cell))
                    obs_metrics.count("degraded", rung="store-unreadable")
            if record is None:
                misses.append(i)
            else:
                hits[i] = record
        return hits, misses

    # ------------------------------------------------------------------ #
    def run(self, sweep: SweepConfig,
            max_workers: object = _UNSET) -> ExperimentReport:
        """Execute a sweep, serving cached cells from the store.

        ``max_workers`` follows the :func:`~repro.experiments.runner.run_sweep`
        convention (``0``/``1`` serial, ``None`` default-size pool, >1 pool of
        that size); when omitted, the runner's constructor default applies.
        The execution backend is resolved from the constructor's ``backend``
        (see :func:`repro.store.backends.resolve_backend`).
        """
        if max_workers is _UNSET:
            max_workers = self.max_workers
        # the sweep span is the root of the whole fleet's trace: worker
        # processes spawned while it is open parent their spans under it
        with obs_trace.span("sweep", key=sweep.name, sweep=sweep.name,
                            cells=len(sweep.cells), offline=self.offline,
                            kernel=_kernel_id()) as sweep_span:
            hits, misses = self.partition(sweep)
            self.last_stats = CacheStats(hits=len(hits), misses=len(misses))
            if obs_trace.enabled():
                if hits:
                    obs_metrics.count("cache.hits", len(hits))
                if misses:
                    obs_metrics.count("cache.misses", len(misses))

            fresh: Dict[int, CellResult] = {}
            if misses and self.offline:
                raise StoreMissError([sweep.cells[i].name for i in misses])
            if misses:
                # one wall-clock deadline for the whole sweep; every
                # backend's retry loop (and the shard workers, via their
                # spawn args) checks it so an unlucky fleet cannot hang
                # past its budget
                self._deadline = Deadline(self.retry.deadline_s)
                backend = resolve_backend(self.backend, max_workers)
                sweep_span.set(backend=backend.name)
                try:
                    fresh = backend.execute(sweep, misses, self)
                finally:
                    self._deadline = None

            report = ExperimentReport(name=sweep.name,
                                      description=sweep.description)
            keys: Dict[str, str] = {}
            for i, cell in enumerate(sweep):
                if i in fresh:
                    result = fresh[i]
                else:
                    # serve cached metrics under the requesting cell's config
                    result = replace(hits[i].result, config=cell)
                report.add(result)
                keys[cell.name] = self.store.key_for(cell)
            report.meta["store"] = {"keys": keys, "schema": 1}
            self.last_stats.failures = len(attach_failures(report))
            if self.last_stats.failures:
                obs_metrics.count("cache.failures", self.last_stats.failures)
            sweep_span.set(hits=self.last_stats.hits,
                           misses=self.last_stats.misses,
                           failures=self.last_stats.failures)
        return report

    # ------------------------------------------------------------------ #
    def persist_fresh(self, cell: ExperimentConfig, result: CellResult,
                      elapsed: Optional[float]) -> str:
        """Persist one freshly executed cell (backends call this per cell).

        Degradation ladder, last rung: when the store directory is not
        writable the computed result is still returned to the report — it
        just is not cached.  One :class:`DegradedExecutionWarning` is
        emitted per runner, and the key is *not* counted as executed-and-
        stored in :attr:`last_stats.executed`.
        """
        try:
            key = self._persist(cell, result, elapsed)
        except OSError as exc:
            if not self._persist_degraded:
                self._persist_degraded = True
                message = (f"store {self.store.root} is not writable "
                           f"({exc}); results are returned but not persisted")
                warnings.warn(message, DegradedExecutionWarning, stacklevel=2)
                obs_trace.warning_event(
                    "DegradedExecutionWarning", message,
                    rung="store-unwritable", cell=self.store.key_for(cell))
                obs_metrics.count("degraded", rung="store-unwritable")
            return self.store.key_for(cell)
        self.last_stats.executed.append(key)
        return key

    def _persist(self, cell: ExperimentConfig, result: CellResult,
                 elapsed: Optional[float]) -> str:
        provenance = build_provenance(extra={
            "seed": cell.seed,
            "engine": result.extra.get("engine", cell.engine),
            "elapsed_s": None if elapsed is None else round(elapsed, 6),
            # which exact-multinomial kernel drew this cell: cached results
            # stay attributable across the backend-scoped bit streams
            "multinomial_kernel": _kernel_id(),
        })
        provenance.pop("cell_keys", None)   # a cell is not derived from cells
        return self.store.put(cell, result, provenance)


def run_sweep_cached(sweep: SweepConfig, store: ResultStore | str,
                     rerun: bool = False,
                     max_workers: Optional[int] = 0,
                     backend: Union[str, ExecutionBackend, None] = None,
                     ) -> ExperimentReport:
    """One-shot convenience wrapper around :class:`CachedSweepRunner`.

    ``max_workers`` uses the :func:`~repro.experiments.runner.run_sweep`
    convention, including ``None`` for a default-size process pool;
    ``backend`` picks the execution backend by name or instance.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    return CachedSweepRunner(store, rerun=rerun, backend=backend).run(
        sweep, max_workers=max_workers)
