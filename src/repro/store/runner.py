"""Cache-aware, resumable sweep execution on top of a :class:`ResultStore`.

:class:`CachedSweepRunner` wraps :func:`repro.experiments.runner.run_sweep`
semantics with a hit/miss partition:

1. every cell of the sweep is hashed (:func:`repro.store.hashing.cell_key` —
   engine- and label-independent);
2. cells whose key already has a valid store record are *hits* and are not
   executed;
3. the remaining *misses* run through the existing execution paths — serial
   :func:`~repro.experiments.runner.run_cell` by default, or the process-pool
   :class:`~repro.engine.parallel.WorkItem` path for ``max_workers > 1`` —
   and each finished cell is persisted the moment it completes (the pooled
   path consumes results in completion order via
   :func:`~repro.engine.parallel.iter_work_item_results`), so a sweep killed
   halfway resumes from the already-completed cells instead of restarting;
4. the final :class:`~repro.experiments.results.ExperimentReport` is
   assembled in sweep order from cached + fresh results.

Cache-assembled cells reuse the *requesting* sweep's config, so re-running an
identical sweep yields a report equal (``==``) to the cold run's; the config
the record was originally written under stays available in the store record's
provenance.  Volatile execution facts (hit/miss counts, elapsed times) are
deliberately kept out of ``report.meta`` for the same reason — read them from
:attr:`CachedSweepRunner.last_stats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.engine.parallel import iter_work_item_results
from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.results import CellResult, ExperimentReport
from repro.experiments.runner import (
    cell_result_from_pool_summary,
    run_cell,
    work_item_for_cell,
)
from repro.store.artifacts import build_provenance
from repro.store.store import ResultStore, StoreRecord

__all__ = ["CacheStats", "CachedSweepRunner", "run_sweep_cached"]

#: Sentinel distinguishing "argument omitted" from an explicit ``None``
#: (which, per the run_sweep convention, requests the default-size pool).
_UNSET: object = object()


@dataclass
class CacheStats:
    """Hit/miss accounting of one cached sweep execution."""

    hits: int = 0
    misses: int = 0
    executed: List[str] = field(default_factory=list)   # keys actually run

    @property
    def total(self) -> int:
        return self.hits + self.misses

    def summary(self) -> str:
        return f"hits={self.hits} misses={self.misses}"


class CachedSweepRunner:
    """Execute sweeps through a :class:`ResultStore`, skipping cached cells.

    Parameters
    ----------
    store:
        The backing result store (created on first write if the directory is
        empty).
    rerun:
        ``True`` forces every cell to execute even on a hit, overwriting the
        stored records — the ``--rerun`` escape hatch for invalidating
        results after a semantics-changing code edit.
    max_workers:
        Default worker count for :meth:`run` (same convention as
        :func:`~repro.experiments.runner.run_sweep`: ``0``/``1`` serial,
        ``None``/>1 a process pool over the missing cells).
    """

    def __init__(self, store: ResultStore, rerun: bool = False,
                 max_workers: Optional[int] = 0) -> None:
        self.store = store
        self.rerun = rerun
        self.max_workers = max_workers
        self.last_stats = CacheStats()

    # ------------------------------------------------------------------ #
    def partition(self, sweep: SweepConfig
                  ) -> Tuple[Dict[int, StoreRecord], List[int]]:
        """Split sweep cells (by position) into cache hits and misses.

        Returns ``(hits, misses)`` where ``hits`` maps cell index → loaded
        :class:`StoreRecord` and ``misses`` lists the indices to execute.
        Duplicate cells (same key appearing twice in one sweep) are all
        treated as misses on a cold store; the last execution wins the slot.
        """
        hits: Dict[int, StoreRecord] = {}
        misses: List[int] = []
        for i, cell in enumerate(sweep):
            record = None if self.rerun else self.store.get(cell)
            if record is None:
                misses.append(i)
            else:
                hits[i] = record
        return hits, misses

    # ------------------------------------------------------------------ #
    def run(self, sweep: SweepConfig,
            max_workers: object = _UNSET) -> ExperimentReport:
        """Execute a sweep, serving cached cells from the store.

        ``max_workers`` follows the :func:`~repro.experiments.runner.run_sweep`
        convention (``0``/``1`` serial, ``None`` default-size pool, >1 pool of
        that size); when omitted, the runner's constructor default applies.
        """
        if max_workers is _UNSET:
            max_workers = self.max_workers
        hits, misses = self.partition(sweep)
        self.last_stats = CacheStats(hits=len(hits), misses=len(misses))

        fresh: Dict[int, CellResult] = {}
        if misses and max_workers in (0, 1):
            for i in misses:
                cell = sweep.cells[i]
                t0 = time.perf_counter()
                result = run_cell(cell)
                elapsed = time.perf_counter() - t0
                key = self._persist(cell, result, elapsed)
                self.last_stats.executed.append(key)
                fresh[i] = result
        elif misses:
            # completion-order consumption: each cell is persisted as soon as
            # its worker finishes, preserving interrupt-resume under a pool
            items = [work_item_for_cell(sweep.cells[i]) for i in misses]
            for idx, summary in iter_work_item_results(items,
                                                       max_workers=max_workers):
                i = misses[idx]
                cell = sweep.cells[i]
                result = cell_result_from_pool_summary(cell, summary)
                key = self._persist(cell, result, elapsed=None)
                self.last_stats.executed.append(key)
                fresh[i] = result

        report = ExperimentReport(name=sweep.name, description=sweep.description)
        keys: Dict[str, str] = {}
        for i, cell in enumerate(sweep):
            if i in fresh:
                result = fresh[i]
            else:
                # serve the cached metrics under the requesting cell's config
                result = replace(hits[i].result, config=cell)
            report.add(result)
            keys[cell.name] = self.store.key_for(cell)
        report.meta["store"] = {"keys": keys, "schema": 1}
        return report

    # ------------------------------------------------------------------ #
    def _persist(self, cell: ExperimentConfig, result: CellResult,
                 elapsed: Optional[float]) -> str:
        provenance = build_provenance(extra={
            "seed": cell.seed,
            "engine": result.extra.get("engine", cell.engine),
            "elapsed_s": None if elapsed is None else round(elapsed, 6),
        })
        provenance.pop("cell_keys", None)   # a cell is not derived from cells
        return self.store.put(cell, result, provenance)


def run_sweep_cached(sweep: SweepConfig, store: ResultStore | str,
                     rerun: bool = False,
                     max_workers: Optional[int] = 0) -> ExperimentReport:
    """One-shot convenience wrapper around :class:`CachedSweepRunner`.

    ``max_workers`` uses the :func:`~repro.experiments.runner.run_sweep`
    convention, including ``None`` for a default-size process pool.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    return CachedSweepRunner(store, rerun=rerun).run(sweep,
                                                     max_workers=max_workers)
