"""Sharded sweep execution: independent workers leasing cells from a store.

The content-addressed cell key (:mod:`repro.store.hashing`) is the dedup
point for distributed execution: any process that can see the store directory
can pick up pending cells, and two workers can never compute the same cell
concurrently because computing requires holding the cell's *lease*.

Disk layout (inside a :class:`~repro.store.store.ResultStore` directory)::

    <store_dir>/shard/
        leases/<key>.json     # at most one per cell; see states below
        executions.jsonl      # append-only log: one line per completed compute

A lease file is created atomically (``O_CREAT | O_EXCL`` — exactly one
winner per path) and carries::

    {"key", "worker", "pid", "host", "acquired_at", "state": "running"}

Lease lifecycle:

* **acquire** → compute → persist payload → append execution log → **release**
  (unlink).  Once the payload exists, the payload itself marks the cell done;
  the lease only guards the in-flight window.
* a cell that **raises** rewrites its lease to ``state: "failed"`` (with the
  cell label, the canonical error string, the attempt count consumed so far
  and the permanent/transient classification) instead of persisting a
  payload.  Under the default :class:`~repro.robustness.RetryPolicy`
  (``max_attempts=1``) other workers treat a failed lease as "done
  (failed)" — the cell is not retried within the run, and every worker
  reports the same failure.  With a larger budget, transient failures are
  retried: in place by the leasing worker (jittered backoff, lease held),
  and — when a worker died between attempts — by any later worker, which
  *claims* the marker (atomic unlink) and inherits its spent attempts, so
  the budget holds across worker restarts.  A new coordinated run
  (:class:`ShardBackend`) clears failed leases for its cells first, so
  failures are retryable across runs.
* a worker that **dies** leaves a ``running`` lease behind.  Stale-lease
  reclaim rules: a lease whose recorded host equals the local host is stale
  iff its owner process is gone — the pid must be alive (``kill(pid, 0)``)
  *and* belong to the same incarnation that acquired the lease (our own pid
  is verified against the process nonce the lease carries; a foreign live
  pid is verified via its ``/proc`` start time, which must predate the
  lease's ``acquired_at`` — a recycled pid necessarily started later).
  Same-host leases whose liveness cannot be verified, and leases from other
  hosts, are stale once their file mtime is older than ``stale_after``
  seconds (so for cross-host stores, ``stale_after`` must exceed the
  longest cell); an mtime implausibly far in the *future* (broken foreign
  clock) is treated as stale outright instead of carrying a negative age
  that never crosses the TTL.  Reclaimers serialize on a
  ``flock`` mutex (``shard/reclaim.lock``) and re-verify under it that the
  on-disk lease is still the exact stale lease they observed before
  unlinking it, so a concurrent reclaim + re-acquire can never be clobbered;
  the cell then goes back to pending and the normal ``O_CREAT | O_EXCL``
  acquire decides the new owner.

Cells are executed by :func:`~repro.experiments.runner.run_cell` (full
per-run rounds) and persisted with the same provenance as serial cached
execution plus the worker identity, so a report assembled from a sharded run
equals a cold serial run of the same sweep.

``executions.jsonl`` is the store-level compute counter: exactly one line is
appended per completed cell computation (after its payload is persisted), so
"every cell computed exactly once" is directly checkable after any number of
workers, crashes and restarts.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import time
import uuid
import warnings
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.parallel import format_cell_error, recommended_workers
from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.results import CellResult
from repro.experiments.runner import failed_cell_result, run_cell
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.robustness import DegradedExecutionWarning, TornLogWarning
from repro.robustness.faults import (
    InjectedFault,
    fault_point,
    mark_worker_process,
    maybe_torn,
)
from repro.robustness.retry import (
    DEFAULT_RETRY_POLICY,
    Deadline,
    RetryPolicy,
    classify_error,
    emit_retry_telemetry,
)
from repro.store.artifacts import build_provenance
from repro.store.runner import _kernel_id
from repro.store.store import ResultStore

__all__ = ["LeaseManager", "ShardWorker", "ShardBackend",
           "read_execution_log", "failed_markers", "run_sweep_sharded",
           "worker_identity", "process_nonce"]

#: Default staleness horizon for leases whose owner liveness cannot be
#: verified directly (foreign hosts, unreadable /proc), in seconds.
DEFAULT_STALE_AFTER = 300.0

#: Default sleep between passes while waiting on other workers' leases.
DEFAULT_POLL_INTERVAL = 0.05

#: Same-host pid-liveness slack: a live pid whose /proc start time is later
#: than the lease's ``acquired_at`` by more than this is a *recycled* pid
#: (the dead owner's number reassigned), not the owner come back to life.
PID_START_SLACK = 2.0

#: Plausibility horizon for lease mtimes.  Anything further in the future
#: than this is a broken clock (or an adversarial skew) and the lease is
#: treated as stale — the alternative is a negative age that never crosses
#: ``stale_after``, leaving the lease unreclaimable forever.
FUTURE_MTIME_SLACK = 30.0

_IDENTITY: Optional[Tuple[int, str]] = None


def worker_identity() -> str:
    """A unique worker id ``host:pid:nonce``, memoized per process.

    The nonce distinguishes process *incarnations* sharing a (recycled)
    pid.  It is minted once and cached against the pid — every call site in
    one process (and in a fork, which re-mints under the child's pid)
    therefore agrees on one identity, as the lease protocol's ownership
    comparisons require.
    """
    global _IDENTITY
    pid = os.getpid()
    if _IDENTITY is None or _IDENTITY[0] != pid:
        _IDENTITY = (pid,
                     f"{socket.gethostname()}:{pid}:{uuid.uuid4().hex[:8]}")
    return _IDENTITY[1]


def process_nonce() -> str:
    """The per-process nonce component of :func:`worker_identity`."""
    return worker_identity().rsplit(":", 1)[1]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True   # exists but owned by someone else / unknown: assume live
    return True


_BOOT_TIME: Optional[float] = None


def _proc_start_time(pid: int) -> Optional[float]:
    """Epoch start time of a live process via ``/proc``, ``None`` off-Linux."""
    global _BOOT_TIME
    try:
        stat = Path(f"/proc/{pid}/stat").read_text()
        # field 22 (starttime, clock ticks since boot); fields 3+ follow the
        # last ')' so a comm with embedded spaces cannot shift the split
        ticks = float(stat.rsplit(")", 1)[1].split()[19])
        if _BOOT_TIME is None:
            for line in Path("/proc/stat").read_text().splitlines():
                if line.startswith("btime "):
                    _BOOT_TIME = float(line.split()[1])
                    break
        if _BOOT_TIME is None:
            return None
        return _BOOT_TIME + ticks / float(os.sysconf("SC_CLK_TCK"))
    except (OSError, ValueError, IndexError, AttributeError):
        return None


class LeaseManager:
    """Atomic per-cell lease files under ``<store>/shard/leases/``."""

    def __init__(self, store_root: str | Path, worker: Optional[str] = None,
                 stale_after: float = DEFAULT_STALE_AFTER) -> None:
        self.root = Path(store_root) / "shard"
        self.leases_dir = self.root / "leases"
        self.log_path = self.root / "executions.jsonl"
        self.worker = worker or worker_identity()
        self.stale_after = float(stale_after)
        self.leases_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.leases_dir / f"{key}.json"

    def identity(self) -> Dict[str, Any]:
        """This manager's full lease identity: worker, pid, host, nonce.

        The coordinator transport (:mod:`repro.store.coordinator`) passes a
        *remote* worker's identity into :meth:`acquire` / :meth:`mark_failed`
        so the one server-side :class:`LeaseManager` writes leases on the
        remote caller's behalf.
        """
        return {"worker": self.worker, "pid": os.getpid(),
                "host": socket.gethostname(), "nonce": process_nonce()}

    # ------------------------------------------------------------------ #
    # lease lifecycle
    # ------------------------------------------------------------------ #
    def acquire(self, key: str,
                identity: Optional[Dict[str, Any]] = None) -> bool:
        """Try to take the lease for ``key``; exactly one caller wins.

        The ``lease.acquire`` fault seam fires *before* the file is created:
        an injected raise therefore never leaves an orphan lease owned by a
        live pid (which same-host reclaim would be blind to).  The
        cooperative ``stale-clock`` shape backdates the freshly won lease
        and records a foreign host, making this live owner look reclaimable
        — the adversarial input to the stale-lease protocol.  ``identity``
        overrides the owner recorded in the lease (the coordinator acquiring
        on behalf of a remote worker).
        """
        who = identity or self.identity()
        spec = fault_point("lease.acquire", key=key,
                           worker=who.get("worker", self.worker))
        payload = json.dumps({
            "key": key,
            "worker": who.get("worker", self.worker),
            "pid": who.get("pid"),
            "host": who.get("host"),
            "acquired_at": time.time(),
            "state": "running",
            "nonce": who.get("nonce"),
        }, allow_nan=False)
        try:
            fd = os.open(self._path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            obs_metrics.count("lease.acquire_lost")
            return False
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        obs_metrics.count("lease.acquired")
        if spec is not None and spec.shape == "stale-clock":
            self._apply_stale_clock(key, spec.skew_s)
        return True

    def _apply_stale_clock(self, key: str, skew_s: float) -> None:
        """Make this worker's live lease look stale (fault cooperation).

        Rewrites the lease with a foreign hostname (so pid liveness does not
        apply) and backdates its mtime past ``stale_after``, then relies on
        the production reclaim protocol to steal it mid-compute.
        """
        path = self._path(key)
        try:
            lease = json.loads(path.read_text())
            lease["host"] = f"fault-injected-{lease.get('host', '')}"
            lease["acquired_at"] = time.time() - skew_s
            # deliberately non-atomic: this is the stale-clock fault's
            # *cooperation* path, rewriting a live lease in place to model
            # a skewed peer
            path.write_text(json.dumps(
                lease, allow_nan=False))  # repro-lint: disable=atomic-write-discipline
            back = time.time() - skew_s
            os.utime(path, (back, back))
        except (OSError, json.JSONDecodeError):
            pass   # cooperation is best-effort; the run must stay correct

    def release(self, key: str, worker: Optional[str] = None) -> None:
        """Drop a lease ``worker`` holds (after persisting, or on skip).

        A failed release is retried a few times before giving up: an
        unreleased lease owned by a *live* process is invisible to same-host
        reclaim, so release is the one lifecycle step where retrying in
        place is the only self-healing option (if the process dies instead,
        pid-liveness reclaim takes over).

        The unlink is ownership-checked against the *full* worker identity:
        a lease that was reclaimed and re-acquired by someone else in the
        meantime is never clobbered by the old owner's late release.
        """
        worker = worker or self.worker
        for attempt in range(3):
            try:
                fault_point("lease.release", key=key, worker=worker)
                break
            except InjectedFault:
                if attempt == 2:
                    raise
                time.sleep(0.01)
        current = self.peek(key)
        if current is None:
            return   # reclaimed from under us; the payload still marks us done
        if current.get("worker") != worker:
            return   # re-acquired by a new owner: not ours to unlink anymore
        try:
            self._path(key).unlink()
            obs_metrics.count("lease.released")
        except FileNotFoundError:
            pass   # reclaimed between peek and unlink: same story as above

    def mark_failed(self, key: str, cell_name: str, error: str,
                    attempts: int = 1, kind: Optional[str] = None,
                    identity: Optional[Dict[str, Any]] = None) -> None:
        """Replace this worker's lease with a run-scoped failure marker.

        The marker records how many attempts the cell has consumed and the
        permanent / transient-exhausted classification, so a worker started
        later in the same run can tell whether the retry budget allows it to
        pick the cell back up (see :meth:`ShardWorker._resolve_one`).
        ``identity`` overrides the recorded owner (coordinator on behalf of
        a remote worker).
        """
        if kind is None:
            kind = ("permanent" if classify_error(error) == "permanent"
                    else "transient-exhausted")
        who = identity or self.identity()
        path = self._path(key)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps({
            "key": key,
            "worker": who.get("worker", self.worker),
            "pid": who.get("pid"),
            "host": who.get("host"),
            "nonce": who.get("nonce"),
            "acquired_at": time.time(),
            "state": "failed",
            "cell": cell_name,
            "error": error,
            "attempts": int(attempts),
            "kind": kind,
        }, allow_nan=False))
        os.replace(tmp, path)

    def clear_failure(self, key: str) -> bool:
        """Remove a failed marker; ``True`` iff this caller removed it.

        Coordinators call this to allow retries on a fresh run; workers call
        it to *claim* an in-run retry when the marker's attempt count is
        still under budget — the unlink is the atomic claim point (exactly
        one of several racing workers gets ``True``), after which the normal
        ``O_CREAT | O_EXCL`` acquire decides ownership.
        """
        lease = self.peek(key)
        if lease is None or lease.get("state") != "failed":
            return False
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            return False
        return True

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """The current lease record for ``key``, or ``None``."""
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, ValueError):
            # half-written by a crashed acquire: treat as a stale running
            # lease with no liveness info so age-based reclaim applies
            return {"key": key, "state": "running", "pid": None, "host": None}

    def is_stale(self, key: str, lease: Dict[str, Any]) -> bool:
        """Whether a ``running`` lease's owner is gone (see module rules)."""
        if lease.get("state") != "running":
            return False
        pid = lease.get("pid")
        if lease.get("host") == socket.gethostname() and isinstance(pid, int):
            if not _pid_alive(pid):
                return True
            same = self._same_incarnation(pid, lease)
            if same is not None:
                return not same
            # liveness unverifiable (no /proc, legacy lease): age decides
        return self._age_stale(key)

    def _same_incarnation(self, pid: int,
                          lease: Dict[str, Any]) -> Optional[bool]:
        """Whether live ``pid`` is the same process that wrote ``lease``.

        ``kill(pid, 0)`` proves only that *some* process holds the pid
        today — after pid recycling, an unrelated process would keep a dead
        worker's lease immortal.  Our own pid is checked against the
        per-process nonce the lease carries; any other live pid is checked
        via its ``/proc`` start time, which must predate the lease's
        ``acquired_at`` (a recycled pid's process necessarily started after
        the dead owner acquired).  ``None`` = unverifiable (non-Linux,
        parse failure, no usable fields): the caller falls back to the
        mtime-age TTL.
        """
        if pid == os.getpid():
            nonce = lease.get("nonce")
            if nonce is None:
                return True   # legacy lease without a nonce, held by our pid
            return nonce == process_nonce()
        started = _proc_start_time(pid)
        acquired = lease.get("acquired_at")
        if started is None or not isinstance(acquired, (int, float)):
            return None
        return started <= float(acquired) + PID_START_SLACK

    def _age_stale(self, key: str) -> bool:
        """Mtime-age staleness with a clamp against future-dated leases.

        A lease whose mtime sits implausibly far in the future (foreign
        fast clock, ``stale-clock`` fault with negative skew) would
        otherwise carry a *negative* age forever and never cross the TTL —
        unreclaimable.  Such leases are stale outright; skews inside
        :data:`FUTURE_MTIME_SLACK` still count as fresh.
        """
        try:
            mtime = self._path(key).stat().st_mtime
        except FileNotFoundError:
            return False   # already gone — nothing to reclaim
        now = time.time()
        if mtime > now + FUTURE_MTIME_SLACK:
            return True
        return (now - mtime) > self.stale_after

    @contextlib.contextmanager
    def _reclaim_mutex(self):
        """Serialize reclaimers via ``flock`` on ``shard/reclaim.lock``.

        The critical section is tiny (re-read + unlink).  Where ``fcntl`` is
        unavailable the reclaim degrades to best-effort (the re-verification
        below still runs, just without mutual exclusion).
        """
        try:
            import fcntl
        except ImportError:   # pragma: no cover — non-POSIX fallback
            yield
            return
        # the flock mutex file is content-free: truncating it is harmless
        with open(self.root / "reclaim.lock",
                  "w") as fh:  # repro-lint: disable=atomic-write-discipline
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def reclaim(self, key: str, observed: Dict[str, Any]) -> bool:
        """Remove a lease observed stale; at most one reclaimer succeeds.

        Reclaimers serialize on a host-wide ``flock`` mutex and re-verify —
        under the mutex — that the lease on disk is still the same stale
        lease this worker observed (same owner, still ``running``, still
        stale) before unlinking it.  A lease that was already reclaimed and
        re-acquired by someone else therefore can never be deleted or
        clobbered; the unlinked cell simply returns to pending, where the
        normal ``O_CREAT | O_EXCL`` acquire decides the new owner.  (The
        mutex is per filesystem-view; for cross-host stores on NFS-like
        mounts the re-verification still guards correctness best-effort.)
        """
        fault_point("lease.reclaim", key=key, worker=self.worker)
        path = self._path(key)
        with self._reclaim_mutex():
            current = self.peek(key)
            if current is None or current.get("state") != "running":
                return False   # already reclaimed, released, or failed
            if current.get("worker") != observed.get("worker"):
                return False   # a fresh lease took the path: not ours to touch
            if not self.is_stale(key, current):
                return False   # owner came back to life (or clock skew)
            try:
                path.unlink()
            except FileNotFoundError:
                return False
            obs_metrics.count("lease.reclaimed")
            obs_trace.event("lease.reclaimed", cell=key,
                            from_worker=str(observed.get("worker", "")))
            return True

    # ------------------------------------------------------------------ #
    # execution log (store-level compute counter)
    # ------------------------------------------------------------------ #
    def log_execution(self, key: str, cell_name: str, attempts: int = 1,
                      worker: Optional[str] = None,
                      pid: Optional[int] = None) -> None:
        line = json.dumps({"key": key, "cell": cell_name,
                           "worker": worker or self.worker,
                           "pid": os.getpid() if pid is None else int(pid),
                           "attempts": int(attempts),
                           "at": time.time()}, allow_nan=False) + "\n"
        # fault seam: ``torn-write`` appends half a line (no newline), the
        # torn half and the next append glue into one undecodable line —
        # exactly what a worker killed mid-append leaves behind
        line = maybe_torn("shard.log_append", line, key=key)
        # O_APPEND single small write: atomic on POSIX, no interleaving
        with open(self.log_path, "a") as fh:
            fh.write(line)


def read_execution_log(store_root: str | Path) -> List[Dict[str, Any]]:
    """All completed-compute records (one per executed cell, append order).

    A worker killed mid-append leaves a truncated trailing line (which the
    next append then glues onto).  Undecodable lines are *skipped* with one
    :class:`TornLogWarning` — the ledger under-counts those computes rather
    than refusing to read at all, which is the safe direction for its
    "no cell computed more than its budget" invariant.
    """
    path = Path(store_root) / "shard" / "executions.jsonl"
    if not path.exists():
        return []
    records = []
    damaged = 0
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            damaged += 1
    if damaged:
        warnings.warn(
            f"execution log {path} contained {damaged} undecodable line(s) "
            f"(torn append); skipped", TornLogWarning, stacklevel=2)
    return records


def failed_markers(store_root: str | Path) -> List[Dict[str, Any]]:
    """All ``state:"failed"`` lease markers currently on disk.

    Each marker carries ``cell``, ``error``, ``attempts`` and ``kind`` (see
    :meth:`LeaseManager.mark_failed`); ``repro store info`` surfaces them as
    per-cell attempt counts.  Undecodable marker files are skipped.
    """
    leases_dir = Path(store_root) / "shard" / "leases"
    if not leases_dir.exists():
        return []
    markers = []
    for path in sorted(leases_dir.glob("*.json")):
        try:
            lease = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            continue
        if isinstance(lease, dict) and lease.get("state") == "failed":
            markers.append(lease)
    return markers


class ShardWorker:
    """One worker loop: lease pending cells of a sweep, compute, persist.

    Any number of workers — in any mix of processes, launched at any time,
    with identical or merely overlapping sweeps — can run against the same
    store; the lease protocol guarantees each cell is computed once.  ``run``
    returns only when every cell of *this worker's* sweep is resolved
    (payload present or failure marker present), waiting on other workers'
    in-flight leases when necessary, so its result set is always complete.
    """

    def __init__(self, store: ResultStore, worker: Optional[str] = None,
                 stale_after: float = DEFAULT_STALE_AFTER,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[Deadline] = None,
                 leases: Optional[LeaseManager] = None,
                 backend_label: str = "shard") -> None:
        self.store = store
        # ``leases`` lets a transport swap the lease implementation (the
        # coordinator's HttpLeaseClient speaks the same surface over HTTP);
        # the default is the shared-filesystem LeaseManager
        self.leases = leases if leases is not None else LeaseManager(
            store.root, worker=worker, stale_after=stale_after)
        self.backend_label = backend_label
        self.poll_interval = float(poll_interval)
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.deadline = deadline
        self.computed: List[str] = []

    # ------------------------------------------------------------------ #
    def run(self, sweep: SweepConfig) -> Dict[int, CellResult]:
        """Resolve every cell of ``sweep``; returns results by position.

        Lease-layer hiccups (an injected fault or a transient ``OSError``
        from acquire/reclaim/release plumbing) leave the affected cell
        *pending* for the next pass instead of killing the worker — the
        store protocol is already built so that any interrupted step is
        recoverable, so the loop simply goes around again.  When the
        sweep's wall-clock deadline expires, cells still pending surface as
        canonical failures instead of hanging the fleet.
        """
        cells = list(sweep.cells)
        keys = [self.store.key_for(cell) for cell in cells]
        resolved: Dict[int, CellResult] = {}
        pending = list(range(len(cells)))
        while pending:
            if self.deadline is not None and self.deadline.expired():
                for i in pending:
                    resolved[i] = failed_cell_result(
                        cells[i],
                        f"SweepDeadlineError: sweep deadline of "
                        f"{self.deadline.seconds}s expired",
                        attempts=0, kind="transient-exhausted")
                break
            progressed = False
            still_pending: List[int] = []
            for i in pending:
                try:
                    result = self._resolve_one(cells[i], keys[i])
                except (InjectedFault, OSError):
                    result = None   # lease-layer hiccup: retry next pass
                if result is None:
                    still_pending.append(i)
                else:
                    resolved[i] = result
                    progressed = True
            pending = still_pending
            if pending and not progressed:
                obs_metrics.observe("lease.wait_s", self.poll_interval)
                time.sleep(self.poll_interval)
        return resolved

    def _resolve_one(self, cell: ExperimentConfig,
                     key: str) -> Optional[CellResult]:
        """One attempt at one cell: ``None`` means blocked on another worker."""
        record = self.store.get(key)
        if record is not None:
            # served under the requesting sweep's config (an overlapping
            # sweep may have persisted it under a different label)
            return replace(record.result, config=cell)
        prior_attempts = 0
        lease = self.leases.peek(key)
        if lease is not None:
            if lease.get("state") == "failed":
                attempts = int(lease.get("attempts", 1) or 1)
                kind = str(lease.get("kind", "")) or (
                    "permanent"
                    if classify_error(str(lease.get("error", ""))) == "permanent"
                    else "transient-exhausted")
                if kind == "permanent" or attempts >= self.retry.max_attempts:
                    # budget exhausted (or deterministic error): done (failed)
                    return failed_cell_result(cell, str(lease.get("error", "")),
                                              attempts=attempts, kind=kind)
                # budget remains: claim the in-run retry.  The marker unlink
                # is the atomic claim (one winner among racing workers); the
                # spent attempts carry over into this worker's budget.
                if not self.leases.clear_failure(key):
                    return None   # another worker claimed it; poll again
                prior_attempts = attempts
            elif lease.get("worker") == self.leases.worker:
                # our own abandoned running lease — e.g. an acquire whose
                # acknowledgement was lost over the coordinator transport.
                # Liveness says "live" (we are), so staleness would wait the
                # full TTL; the ownership-checked release drops it and the
                # normal acquire below takes a fresh lease.
                self.leases.release(key)
            elif self.leases.is_stale(key, lease):
                self.leases.reclaim(key, lease)
            else:
                return None   # live worker owns it; poll again later
        if not self.leases.acquire(key):
            return None       # lost the acquire race; poll again later
        failed = False
        try:
            # the winner double-checks: the previous holder may have
            # persisted the payload and released between our get and acquire
            record = self.store.get(key)
            if record is not None:
                return replace(record.result, config=cell)
            result = self._compute(cell, key, prior_attempts=prior_attempts)
            failed = bool(result.extra.get("failed"))
            return result
        finally:
            # a failed compute rewrote the lease into the run-scoped failure
            # marker — releasing would delete it and let every other worker
            # re-execute the poisoned cell
            if not failed:
                self.leases.release(key)

    def _compute(self, cell: ExperimentConfig, key: str,
                 prior_attempts: int = 0) -> CellResult:
        """Compute one leased cell under the worker's retry policy.

        Transient errors are retried in place (jittered backoff, the lease
        held throughout) until the per-cell attempt budget — including
        ``prior_attempts`` inherited from an earlier worker's failure
        marker — or the sweep deadline runs out; permanent errors and
        exhausted budgets write the failure marker with the total attempt
        count.  Successful computes record their attempt count in the
        execution ledger.
        """
        t0 = time.perf_counter()
        attempts = prior_attempts
        # keyed by the canonical cell hash: if this worker dies and another
        # recomputes the cell, both instances share one deterministic span id
        with obs_trace.span("cell.compute", key=key, cell=key,
                            cell_label=cell.name, backend=self.backend_label,
                            worker=self.leases.worker) as cell_span:
            while True:
                attempts += 1
                try:
                    result = run_cell(cell)
                    break
                except Exception as exc:   # noqa: BLE001 — per-cell isolation
                    error = format_cell_error(exc)
                    kind = classify_error(exc)
                    out_of_time = (self.deadline is not None
                                   and self.deadline.expired())
                    if kind == "permanent" \
                            or attempts >= self.retry.max_attempts \
                            or out_of_time:
                        final = ("permanent" if kind == "permanent"
                                 else "transient-exhausted")
                        self.leases.mark_failed(key, cell.name, error,
                                                attempts=attempts, kind=final)
                        cell_span.set(outcome="failed", attempts=attempts,
                                      kind=final)
                        # counted at the one site that records the failure,
                        # so markers read back by other workers don't double-
                        # book the same failed cell
                        obs_metrics.count("cells.failed")
                        return failed_cell_result(cell, error,
                                                  attempts=attempts,
                                                  kind=final)
                    delay = self.retry.backoff_s(attempts, token=key)
                    emit_retry_telemetry(cell.name, key, attempts, delay,
                                         error)
                    time.sleep(delay)
            cell_span.set(outcome="computed", attempts=attempts)
        provenance = build_provenance(extra={
            "seed": cell.seed,
            "engine": result.extra.get("engine", cell.engine),
            "elapsed_s": round(time.perf_counter() - t0, 6),
            "worker": self.leases.worker,
            "backend": self.backend_label,
            "multinomial_kernel": _kernel_id(),
        })
        provenance.pop("cell_keys", None)
        self.store.put(cell, result, provenance)
        self.leases.log_execution(key, cell.name, attempts=attempts)
        # adjacent to log_execution on purpose: the merged trace's
        # ``cells.computed`` must reconcile 1:1 with executions.jsonl lines
        obs_metrics.count("cells.computed")
        obs_metrics.observe("cell.elapsed_s", time.perf_counter() - t0)
        self.computed.append(key)
        return result


def _shard_worker_main(store_root: str, sweep_dict: Dict[str, Any],
                       worker: str, stale_after: float, poll_interval: float,
                       rounds_sidecar_at: Optional[int],
                       retry_dict: Optional[Dict[str, Any]] = None,
                       deadline_s: Optional[float] = None) -> None:
    """Child-process entry point (top-level so it pickles under spawn)."""
    mark_worker_process()   # worker_only faults (kill-worker) may fire here
    store = ResultStore(store_root, rounds_sidecar_at=rounds_sidecar_at)
    sweep = SweepConfig.from_dict(sweep_dict)
    retry = (RetryPolicy.from_dict(retry_dict) if retry_dict
             else DEFAULT_RETRY_POLICY)
    deadline = Deadline(deadline_s) if deadline_s is not None else None
    ShardWorker(store, worker=worker, stale_after=stale_after,
                poll_interval=poll_interval, retry=retry,
                deadline=deadline).run(sweep)


class ShardBackend:
    """The ``shard`` execution backend: coordinate K worker processes.

    ``workers`` follows :func:`repro.store.backends.resolve_backend`:
    ``None`` → :func:`~repro.engine.parallel.recommended_workers`, ``0`` →
    no child processes (the calling process runs the worker loop itself —
    the CLI ``--worker`` attach mode), K ≥ 1 → K children plus a final
    in-process mop-up pass that also assembles the results (and transparently
    degrades to serial sharded execution where processes cannot be spawned).
    """

    name = "shard"

    def __init__(self, workers: Optional[int] = None,
                 stale_after: float = DEFAULT_STALE_AFTER,
                 poll_interval: float = DEFAULT_POLL_INTERVAL) -> None:
        self.workers = workers
        self.stale_after = float(stale_after)
        self.poll_interval = float(poll_interval)

    def execute(self, sweep: SweepConfig, misses: List[int],
                runner) -> Dict[int, CellResult]:
        store: ResultStore = runner.store
        keys = [store.key_for(cell) for cell in sweep.cells]
        retry: RetryPolicy = getattr(runner, "retry", DEFAULT_RETRY_POLICY)
        deadline: Optional[Deadline] = getattr(runner, "_deadline", None)
        try:
            manager = LeaseManager(store.root, stale_after=self.stale_after)
            # probe: leases must be creatable, or no worker can make progress
            probe = manager.leases_dir / f".probe.{os.getpid()}"
            # content-free writability probe, deleted immediately
            probe.write_text("")  # repro-lint: disable=atomic-write-discipline
            probe.unlink()
        except OSError as exc:
            # degradation ladder, rung 1: without writable lease
            # infrastructure (read-only store dir, dead shared mount) shard
            # coordination is impossible — the pool backend still computes
            # everything in-process-tree and the runner persists what it can
            message = (f"shard backend: lease infrastructure unavailable "
                       f"under {store.root} ({exc}); degrading to pool "
                       f"execution")
            warnings.warn(message, DegradedExecutionWarning, stacklevel=2)
            obs_trace.warning_event("DegradedExecutionWarning", message,
                                    rung="shard-to-pool")
            obs_metrics.count("degraded", rung="shard-to-pool")
            from repro.store.backends import PoolBackend

            return PoolBackend(self.workers).execute(sweep, misses, runner)
        for i in misses:
            # a fresh coordinated run retries cells that failed previously
            manager.clear_failure(keys[i])
            if runner.rerun:
                # --rerun promises recomputation: drop the stale payload so
                # the payload-exists-means-done protocol recomputes it
                path = store._payload_path(keys[i])
                if path.exists():
                    path.unlink()

        workers = recommended_workers() if self.workers is None \
            else int(self.workers)
        procs = []
        if workers >= 1 and misses:
            try:
                fault_point("subprocess.spawn", backend="shard")
                import multiprocessing

                for w in range(workers):
                    proc = multiprocessing.Process(
                        target=_shard_worker_main,
                        args=(str(store.root), sweep.to_dict(),
                              f"{worker_identity()}#w{w}", self.stale_after,
                              self.poll_interval, store.rounds_sidecar_at,
                              retry.to_dict(),
                              None if deadline is None
                              else deadline.remaining()),
                        daemon=True,
                    )
                    proc.start()
                    procs.append(proc)
            except (ImportError, OSError, ValueError, RuntimeError):
                procs = []   # sandboxed: the mop-up pass runs everything
        for proc in procs:
            proc.join()

        # Mop-up + assembly: resolves anything the children left behind
        # (crashes, sandboxes) and reads every resolved cell back from the
        # store, waiting on still-live foreign workers when sweeps overlap.
        mop_up = ShardWorker(store, stale_after=self.stale_after,
                             poll_interval=self.poll_interval,
                             retry=retry, deadline=deadline)
        resolved = mop_up.run(sweep)
        runner.last_stats.executed.extend(
            keys[i] for i in misses if store.contains(keys[i]))
        return {i: resolved[i] for i in misses}


def run_sweep_sharded(sweep: SweepConfig, store: ResultStore | str,
                      workers: Optional[int] = None,
                      stale_after: float = DEFAULT_STALE_AFTER,
                      poll_interval: float = DEFAULT_POLL_INTERVAL):
    """One-shot sharded execution of a sweep (see :class:`ShardBackend`)."""
    from repro.store.runner import CachedSweepRunner

    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    backend = ShardBackend(workers=workers, stale_after=stale_after,
                           poll_interval=poll_interval)
    return CachedSweepRunner(store, backend=backend).run(sweep)
