"""repro.store — content-addressed result store and cache-aware sweeps.

The persistence substrate for sweep traffic: cells are keyed by a canonical,
engine-independent hash of their :class:`~repro.experiments.config.ExperimentConfig`
(:mod:`repro.store.hashing`), executed results live in a directory-backed
:class:`ResultStore` (:mod:`repro.store.store`, with optional NPZ rounds
sidecars for large R), sweeps run through the resumable
:class:`CachedSweepRunner` (:mod:`repro.store.runner`) on a pluggable
execution backend (:mod:`repro.store.backends`: ``serial``, ``pool``, the
lease-based multi-worker ``shard`` backend of :mod:`repro.store.shard`, or
the coordinator-backed ``http`` backend of :mod:`repro.store.coordinator`
for workers on disjoint filesystems), and
derived outputs (benchmarks, figures, saved reports) record their input keys
and git revision via :mod:`repro.store.artifacts`.

Execution robustness (payload/sidecar integrity verification on read with
auto-quarantine, per-cell retry budgets with backoff, shard→pool→serial
degradation, deterministic fault injection) is built on
:mod:`repro.robustness` — see the README "Robustness" section.

CLI surface: ``repro-consensus sweep --store DIR [--no-cache|--rerun]
[--backend {serial,pool,shard,http}] [--workers K] [--worker] [--from-store]
[--retries N] [--deadline S] [--fault-plan PLAN] [--serve [ADDR]]
[--coordinator URL]``
and ``repro-consensus store {ls,info,gc}``.
"""

from repro.store.artifacts import ArtifactRegistry, build_provenance, git_sha
from repro.store.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.store.coordinator import (
    CoordinatorClient,
    CoordinatorError,
    CoordinatorServer,
    CoordinatorStore,
    HttpBackend,
    HttpLeaseClient,
)
from repro.store.hashing import canonical_cell_dict, cell_key, short_key
from repro.store.runner import (
    CachedSweepRunner,
    CacheStats,
    StoreMissError,
    run_sweep_cached,
)
from repro.store.shard import (
    LeaseManager,
    ShardBackend,
    ShardWorker,
    failed_markers,
    read_execution_log,
    run_sweep_sharded,
)
from repro.store.store import STORE_SCHEMA_VERSION, ResultStore, StoreRecord

__all__ = [
    "cell_key",
    "short_key",
    "canonical_cell_dict",
    "ResultStore",
    "StoreRecord",
    "STORE_SCHEMA_VERSION",
    "CachedSweepRunner",
    "CacheStats",
    "StoreMissError",
    "run_sweep_cached",
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "ShardBackend",
    "ShardWorker",
    "LeaseManager",
    "failed_markers",
    "read_execution_log",
    "run_sweep_sharded",
    "CoordinatorServer",
    "CoordinatorClient",
    "CoordinatorError",
    "CoordinatorStore",
    "HttpLeaseClient",
    "HttpBackend",
    "resolve_backend",
    "BACKEND_NAMES",
    "ArtifactRegistry",
    "build_provenance",
    "git_sha",
]
