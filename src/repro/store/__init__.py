"""repro.store — content-addressed result store and cache-aware sweeps.

The persistence substrate for sweep traffic: cells are keyed by a canonical,
engine-independent hash of their :class:`~repro.experiments.config.ExperimentConfig`
(:mod:`repro.store.hashing`), executed results live in a directory-backed
:class:`ResultStore` (:mod:`repro.store.store`), sweeps run through the
resumable :class:`CachedSweepRunner` (:mod:`repro.store.runner`), and derived
outputs (benchmarks, figures, saved reports) record their input keys and git
revision via :mod:`repro.store.artifacts`.

CLI surface: ``repro-consensus sweep --store DIR [--no-cache|--rerun]`` and
``repro-consensus store {ls,info,gc}``.
"""

from repro.store.artifacts import ArtifactRegistry, build_provenance, git_sha
from repro.store.hashing import canonical_cell_dict, cell_key, short_key
from repro.store.runner import CachedSweepRunner, CacheStats, run_sweep_cached
from repro.store.store import STORE_SCHEMA_VERSION, ResultStore, StoreRecord

__all__ = [
    "cell_key",
    "short_key",
    "canonical_cell_dict",
    "ResultStore",
    "StoreRecord",
    "STORE_SCHEMA_VERSION",
    "CachedSweepRunner",
    "CacheStats",
    "run_sweep_cached",
    "ArtifactRegistry",
    "build_provenance",
    "git_sha",
]
