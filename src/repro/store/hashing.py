"""Canonical, stable content hashes for experiment cells.

The cache key of an :class:`~repro.experiments.config.ExperimentConfig` must
identify the *distribution* the cell samples from, not the way it was labelled
or executed.  Two configs therefore hash identically when they agree on
workload, rule, adversary, parameters, run count, horizon and seed — and may
differ in:

``name``
    A display label; renaming a cell must not invalidate its cache entry.
``engine``
    ``"vectorized"``, ``"occupancy"`` and ``"occupancy-fused"`` are equal in
    distribution (pinned by ``tests/test_engine_differential.py`` and
    ``tests/test_batch_fused_occupancy.py``), so the engine is *provenance*
    of a stored result, never key material.  A sweep retargeted with
    ``SweepConfig.with_engine`` keeps hitting the entries its previous engine
    wrote.
inactive adversaries
    A zero-budget adversary never acts (``run_cell`` only instantiates the
    strategy when ``adversary_budget > 0``), so ``adversary="balancing",
    adversary_budget=0`` is normalized to the null adversary before hashing.

Dictionary key order never matters: the canonical form is serialized with
sorted keys, and non-finite floats use the explicit encoding convention from
:mod:`repro.io.serialization` so the canonical payload is strict JSON.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from repro.experiments.config import ExperimentConfig
from repro.io.serialization import to_jsonable

__all__ = ["canonical_cell_dict", "canonical_cell_json", "cell_key", "short_key"]

#: Config fields that are provenance, not key material (see module docstring).
NON_KEY_FIELDS = ("name", "engine")

#: Length of the hex digest used for payload filenames and lookups.  64 hex
#: chars of SHA-256; collisions are not a practical concern at any sweep size.
KEY_LENGTH = 64


def canonical_cell_dict(config: ExperimentConfig) -> Dict[str, Any]:
    """The engine- and label-independent dict a cell is hashed from."""
    data: Dict[str, Any] = to_jsonable(config.to_dict())
    for field in NON_KEY_FIELDS:
        data.pop(field, None)
    if not data.get("adversary_budget"):
        # a zero-budget adversary never acts: normalize to the null strategy
        data["adversary"] = "null"
        data["adversary_budget"] = 0
        data["adversary_params"] = {}
    return data


def canonical_cell_json(config: ExperimentConfig) -> str:
    """Canonical JSON serialization (sorted keys, minimal separators)."""
    return json.dumps(canonical_cell_dict(config), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def cell_key(config: ExperimentConfig) -> str:
    """The content-addressed store key of one experiment cell (SHA-256 hex)."""
    payload = canonical_cell_json(config)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:KEY_LENGTH]


def short_key(key: str, length: int = 12) -> str:
    """A display-friendly prefix of a cell key (``repro-consensus store ls``)."""
    return key[:length]
