"""Directory-backed, content-addressed store of executed experiment cells.

Layout
------
::

    <store_dir>/
        index.json            # key -> display metadata (rebuildable cache)
        cells/<key>.json      # one schema-versioned record per executed cell
        cells/<key>.npz       # optional rounds sidecar (see below)
        quarantine/           # corrupted payloads, moved aside by get()/gc()
        artifacts.json        # provenance ledger (see repro.store.artifacts)
        shard/                # lease files + execution log (repro.store.shard)

Each payload record carries::

    {
      "schema": 1,
      "key": "<sha256 of the canonical cell dict>",
      "config": {...},        # the config as submitted (incl. name/engine)
      "result": {...},        # CellResult.to_dict()
      "provenance": {seed, engine (resolved), elapsed_s, package_version,
                     git_sha, created_at},
      "integrity": {"algo": "sha256", "sha256": "<hash of the record body>"}
    }

The payload files are the source of truth: ``contains``/``get`` go straight
to ``cells/<key>.json`` and ``index.json`` is a regenerable convenience for
``repro-consensus store ls``.  All writes are atomic (temp file +
``os.replace``), so a sweep killed mid-write never leaves a half-record — at
worst the interrupted cell is re-executed on resume.  A payload that fails to
parse (or lacks its required fields) is *quarantined*: moved into
``quarantine/`` and treated as a cache miss, never deleted silently.

Integrity verification happens on **read**, not just during ``gc``:
``put`` stamps every record with a sha256 over its canonical body, and
``get`` recomputes it (after the schema check — an intact record from
another version is a *miss*, never corruption).  A mismatch — bit rot, a
torn write that still parses, a hand-edited payload — quarantines the
payload (and its sidecar) with one :class:`StoreIntegrityWarning`, and the
cell is recomputed transparently by the next coordinated run.  Records
written before the integrity field existed verify by parse/shape alone.

NPZ rounds sidecars
-------------------
JSON lists of per-run rounds are fine at R ≤ a few thousand, but at large R
they dominate payload size and parse time.  A store constructed with
``rounds_sidecar_at=R0`` moves the ``rounds`` array of any result with
``len(rounds) >= R0`` into a compressed sidecar ``cells/<key>.npz`` (array
name ``"rounds"``, float64 — the dtype the engines emit, so the round trip
is bit-exact).  The JSON payload stays the canonical record: its ``result``
keeps an empty ``rounds`` list plus a ``rounds_ref`` block
``{"format": "npz", "file": "<key>.npz", "sha256": ..., "count": R}``, and
the content-addressed *key* is a hash of the cell config alone, so sidecars
never affect addressing.  Readers always honor ``rounds_ref`` regardless of
their own threshold; a payload whose sidecar is missing or corrupt is
quarantined together with whatever is left of the sidecar, and ``gc``
additionally sweeps *orphaned* sidecars (no payload references them) into
quarantine.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import CellResult
from repro.io.serialization import from_jsonable, to_jsonable
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.robustness import StoreIntegrityWarning
from repro.robustness.faults import fault_point
from repro.store.hashing import cell_key, short_key

__all__ = ["STORE_SCHEMA_VERSION", "StoreRecord", "ResultStore"]

#: Version of the on-disk payload record format.  Bump on incompatible
#: changes; ``get`` treats records with a different version as misses and
#: ``gc(drop_schema_mismatch=True)`` clears them out.
STORE_SCHEMA_VERSION = 1


@dataclass
class StoreRecord:
    """One stored cell: its key, config, result and execution provenance."""

    key: str
    config: Dict[str, Any]
    result: CellResult
    provenance: Dict[str, Any] = field(default_factory=dict)
    schema: int = STORE_SCHEMA_VERSION


def _atomic_write_json(path: Path, payload: Any,
                       seam: Optional[str] = None) -> None:
    text = json.dumps(to_jsonable(payload), indent=2, allow_nan=False)
    if seam is not None:
        # fault seam: ``raise``/``delay`` apply here; ``torn-write`` models a
        # non-atomic writer (crash between write and fsync) by letting the
        # truncated text reach the canonical file — read-time verification
        # must catch it
        spec = fault_point(seam, path=str(path))
        if spec is not None and spec.shape == "torn-write":
            text = text[:max(1, len(text) // 2)]
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _integrity_digest(jsonable_record: Dict[str, Any]) -> str:
    """sha256 over the canonical dump of a record body (sans ``integrity``)."""
    return hashlib.sha256(
        json.dumps(jsonable_record, sort_keys=True, separators=(",", ":"),
                   allow_nan=False).encode()).hexdigest()


class ResultStore:
    """Content-addressed persistence of :class:`CellResult` records.

    Parameters
    ----------
    root:
        Store directory (created on first use).
    rounds_sidecar_at:
        When set, results with at least this many per-run rounds are written
        with an NPZ rounds sidecar instead of an inline JSON list (see the
        module docstring).  Reading honors sidecars regardless of this value.
    """

    def __init__(self, root: str | Path,
                 rounds_sidecar_at: Optional[int] = None) -> None:
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        self.quarantine_dir = self.root / "quarantine"
        self.index_path = self.root / "index.json"
        self.rounds_sidecar_at = rounds_sidecar_at
        self.cells_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # key plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(config: ExperimentConfig) -> str:
        """The store key of a cell (see :mod:`repro.store.hashing`)."""
        return cell_key(config)

    def _payload_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    def _sidecar_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.npz"

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #
    def contains(self, config_or_key: ExperimentConfig | str) -> bool:
        """Whether a *loadable* record exists for the given cell/key.

        Equivalent to ``get(...) is not None`` (including the quarantining of
        corrupted payloads), so skip-if-exists orchestration built on
        ``contains`` never skips a cell it cannot actually read back.
        """
        return self.get(config_or_key) is not None

    def put(self, config: ExperimentConfig, result: CellResult,
            provenance: Optional[Dict[str, Any]] = None) -> str:
        """Persist one executed cell; returns its key.

        An existing record under the same key is overwritten (the content
        hash guarantees it described the same cell).
        """
        key = self.key_for(config)
        result_dict = result.to_dict()
        sidecar = self._sidecar_path(key)
        use_sidecar = (self.rounds_sidecar_at is not None
                       and len(result.rounds) >= self.rounds_sidecar_at)
        if use_sidecar:
            # sidecar first, payload second: a crash in between leaves an
            # orphaned .npz (gc sweeps those), never a dangling reference
            tmp = sidecar.with_name(sidecar.name + ".tmp")
            with open(tmp, "wb") as fh:
                np.savez_compressed(
                    fh, rounds=np.asarray(result.rounds, dtype=np.float64))
            data = tmp.read_bytes()
            digest = hashlib.sha256(data).hexdigest()
            # fault seam: a torn sidecar keeps the payload's reference hash
            # of the *intended* bytes, so the mismatch is detectable on read
            spec = fault_point("store.sidecar_write", key=key)
            if spec is not None and spec.shape == "torn-write":
                tmp.write_bytes(data[:max(1, len(data) // 2)])
            os.replace(tmp, sidecar)
            result_dict["rounds"] = []
            result_dict["rounds_ref"] = {
                "format": "npz",
                "file": sidecar.name,
                "sha256": digest,
                "count": len(result.rounds),
            }
        record = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "config": config.to_dict(),
            "result": result_dict,
            "provenance": dict(provenance or {}),
        }
        record["integrity"] = {"algo": "sha256",
                               "sha256": _integrity_digest(to_jsonable(record))}
        # the payload is the source of truth; the display index is refreshed
        # lazily by ls_rows()/gc(), keeping this per-cell hot path O(1)
        _atomic_write_json(self._payload_path(key), record,
                           seam="store.payload_write")
        if not use_sidecar and sidecar.exists():
            sidecar.unlink()   # overwrite dropped the reference: no orphan
        obs_metrics.count("store.put")
        return key

    def get(self, config_or_key: ExperimentConfig | str) -> Optional[StoreRecord]:
        """Load a record, or ``None`` on miss / schema mismatch / corruption.

        Every read verifies the record: JSON parse, the ``integrity`` sha256
        stamped by :meth:`put` (checked *after* the schema gate, so intact
        records from other versions stay plain misses), and the sidecar hash
        when a ``rounds_ref`` is present.  A payload that fails any check is
        moved to ``quarantine/`` (preserved for inspection) with one
        :class:`StoreIntegrityWarning` and reported as a miss — the cell is
        recomputed transparently by the next coordinated run.
        """
        key = (config_or_key if isinstance(config_or_key, str)
               else self.key_for(config_or_key))
        path = self._payload_path(key)
        if not path.exists():
            obs_metrics.count("store.get.miss")
            return None
        try:
            raw = self._load_verified(path)
            if raw is None:
                obs_metrics.count("store.get.miss")
                return None   # written by another version: a miss, not damage
            self._attach_sidecar_rounds(raw, key)
            obs_metrics.count("store.get.hit")
            return StoreRecord(
                key=raw["key"],
                config=dict(raw["config"]),
                result=CellResult.from_dict(raw["result"]),
                provenance=dict(raw.get("provenance", {})),
                schema=int(raw["schema"]),
            )
        except (json.JSONDecodeError, AttributeError, KeyError, TypeError,
                ValueError) as exc:
            self._quarantine(path)
            sidecar = self._sidecar_path(key)
            if sidecar.exists():
                self._quarantine(sidecar)   # keep the pair inspectable together
            message = (f"store entry {short_key(key)} failed verification and "
                       f"was quarantined ({exc}); the cell will be recomputed")
            warnings.warn(message, StoreIntegrityWarning, stacklevel=2)
            obs_trace.warning_event("StoreIntegrityWarning", message, cell=key)
            obs_metrics.count("store.quarantine")
            obs_metrics.count("store.get.miss")
            return None

    def _load_verified(self, path: Path) -> Optional[Dict[str, Any]]:
        """Parse + verify one payload; ``None`` = stale miss, raise = damage.

        The order matters: the schema gate runs on the parsed body *before*
        the integrity hash is checked, so records written under another
        schema version — intact data this process simply cannot serve — are
        misses, while a body that no longer matches its own stamp (bit rot,
        torn write, hand edit) raises ``ValueError`` into the quarantine
        path.  Pre-integrity records (no ``integrity`` field) verify by
        parse/shape alone.
        """
        parsed = json.loads(path.read_text())
        integrity = parsed.pop("integrity", None)
        if not self._schema_compatible(parsed):
            return None
        if integrity is not None:
            recorded = (integrity.get("sha256")
                        if isinstance(integrity, dict) else None)
            if _integrity_digest(parsed) != recorded:
                raise ValueError("payload body does not match its integrity "
                                 "sha256")
        return from_jsonable(parsed)

    def _attach_sidecar_rounds(self, raw: Dict[str, Any], key: str) -> None:
        """Inline a payload's sidecar rounds; raise ``ValueError`` on damage.

        A payload without a ``rounds_ref`` is returned untouched.  A missing,
        unreadable or hash-mismatched sidecar raises, which the callers treat
        exactly like payload corruption (quarantine both files, report a
        miss).
        """
        result = raw.get("result")
        ref = result.get("rounds_ref") if isinstance(result, dict) else None
        if ref is None:
            return
        sidecar = self._sidecar_path(key)
        if not sidecar.exists():
            raise ValueError(f"rounds sidecar {sidecar.name} is missing")
        data = sidecar.read_bytes()
        expected = ref.get("sha256")
        if expected and hashlib.sha256(data).hexdigest() != expected:
            raise ValueError(f"rounds sidecar {sidecar.name} hash mismatch")
        try:
            import io as _io

            with np.load(_io.BytesIO(data)) as npz:
                rounds = np.asarray(npz["rounds"], dtype=np.float64)
        except Exception as exc:   # zipfile/format errors: damaged sidecar
            raise ValueError(f"rounds sidecar {sidecar.name} unreadable: "
                             f"{exc}") from exc
        if "count" in ref and int(ref["count"]) != rounds.shape[0]:
            raise ValueError(f"rounds sidecar {sidecar.name} has "
                             f"{rounds.shape[0]} rounds, payload says "
                             f"{ref['count']}")
        result["rounds"] = [float(r) for r in rounds]

    @staticmethod
    def _schema_compatible(raw: Any) -> bool:
        """Whether a parsed payload was written under schemas we can read.

        Covers both the record envelope (:data:`STORE_SCHEMA_VERSION`) and
        the embedded result dict (:data:`RESULT_SCHEMA_VERSION`): a record
        from a newer package version is intact data, so it must be treated
        as a plain miss — never quarantined as corruption.

        Also rejects (as stale, not corrupt) pre-backend-unification pooled
        records — marked ``extra: {"parallel": true}`` — which carried
        aggregate metrics only (no per-run rounds).  Serving them as hits
        would make a warm report differ from a cold serial run depending on
        which backend happened to populate the store; recomputing them once
        upgrades the store in place.  ``gc --drop-schema-mismatch`` clears
        them out.
        """
        from repro.experiments.results import RESULT_SCHEMA_VERSION

        if raw.get("schema") != STORE_SCHEMA_VERSION:
            return False
        result = raw.get("result")
        if not isinstance(result, dict):
            raise ValueError("payload has no result dict")
        if int(result.get("schema", 1)) > RESULT_SCHEMA_VERSION:
            return False
        extra = result.get("extra")
        return not (isinstance(extra, dict) and extra.get("parallel"))

    def keys(self) -> List[str]:
        """Keys of every payload currently on disk (valid or not)."""
        return sorted(p.stem for p in self.cells_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    # ------------------------------------------------------------------ #
    # quarantine & garbage collection
    # ------------------------------------------------------------------ #
    def _quarantine(self, path: Path) -> Path:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        counter = 0
        while dest.exists():
            counter += 1
            dest = self.quarantine_dir / f"{path.name}.{counter}"
        os.replace(path, dest)
        return dest

    def gc(self, drop_schema_mismatch: bool = False,
           drop_quarantine: bool = False) -> Dict[str, int]:
        """Validate every payload (and sidecar) and rebuild the index.

        Corrupted payloads are quarantined (together with their sidecars);
        sidecars no valid payload references are *orphans* and are swept into
        quarantine too; artifact-ledger records whose input cells no longer
        load are flagged (see
        :meth:`repro.store.artifacts.ArtifactRegistry.flag_dangling`).
        ``drop_schema_mismatch`` deletes records written under a different
        :data:`STORE_SCHEMA_VERSION`; ``drop_quarantine`` empties the
        quarantine directory.  Returns counts of what was kept / quarantined /
        dropped / orphaned / dangling.
        """
        kept = quarantined = dropped = orphan_sidecars = 0
        valid_keys: set = set()
        referenced_sidecars: set = set()
        for path in sorted(self.cells_dir.glob("*.json")):
            key = path.stem
            try:
                raw = self._load_verified(path)
                if raw is None:
                    # intact record from another version: stale, not corrupt
                    stale = from_jsonable(json.loads(path.read_text()))
                    if drop_schema_mismatch:
                        path.unlink()
                        dropped += 1
                    elif isinstance(stale.get("result"), dict) and \
                            stale["result"].get("rounds_ref"):
                        referenced_sidecars.add(key)   # keep its sidecar too
                    continue
                self._attach_sidecar_rounds(raw, key)
                CellResult.from_dict(raw["result"])   # validates the payload
                kept += 1
                valid_keys.add(key)
                if raw["result"].get("rounds_ref"):
                    referenced_sidecars.add(key)
            except (json.JSONDecodeError, AttributeError, KeyError, TypeError,
                    ValueError):
                self._quarantine(path)
                sidecar = self._sidecar_path(key)
                if sidecar.exists():
                    self._quarantine(sidecar)
                quarantined += 1
        for sidecar in sorted(self.cells_dir.glob("*.npz")):
            if sidecar.stem not in referenced_sidecars:
                self._quarantine(sidecar)
                orphan_sidecars += 1
        if drop_quarantine and self.quarantine_dir.exists():
            for path in self.quarantine_dir.iterdir():
                path.unlink()
                dropped += 1
        dangling_artifacts = self._flag_dangling_artifacts(valid_keys)
        self.rebuild_index()
        return {"kept": kept, "quarantined": quarantined, "dropped": dropped,
                "orphan_sidecars": orphan_sidecars,
                "dangling_artifacts": dangling_artifacts}

    def _flag_dangling_artifacts(self, valid_keys: set) -> int:
        """Flag ledger entries whose input cells no longer load (see gc)."""
        from repro.store.artifacts import ArtifactRegistry

        ledger = self.root / "artifacts.json"
        if not ledger.exists():
            return 0
        return ArtifactRegistry(ledger).flag_dangling(valid_keys)

    # ------------------------------------------------------------------ #
    # index (display metadata; rebuildable from the payloads)
    # ------------------------------------------------------------------ #
    def _load_index(self) -> Dict[str, Any]:
        if not self.index_path.exists():
            return {"schema": STORE_SCHEMA_VERSION, "entries": {}}
        try:
            index = json.loads(self.index_path.read_text())
            if not isinstance(index.get("entries"), dict):
                raise ValueError("malformed index")
            return index
        except (json.JSONDecodeError, ValueError):
            return self.rebuild_index()

    @staticmethod
    def _index_entry(config: Dict[str, Any],
                     provenance: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "name": config.get("name", ""),
            "workload": config.get("workload", ""),
            "n": int(config.get("workload_params", {}).get("n", 0)),
            "rule": config.get("rule", ""),
            "adversary": config.get("adversary", ""),
            "T": config.get("adversary_budget", 0),
            "runs": config.get("num_runs", 0),
            "engine": provenance.get("engine", config.get("engine", "")),
            "kernel": provenance.get("multinomial_kernel", ""),
            "created_at": provenance.get("created_at", ""),
        }

    def rebuild_index(self) -> Dict[str, Any]:
        """Regenerate ``index.json`` by scanning the payload directory."""
        fault_point("store.index_rebuild", root=str(self.root))
        entries: Dict[str, Any] = {}
        for path in sorted(self.cells_dir.glob("*.json")):
            try:
                raw = from_jsonable(json.loads(path.read_text()))
                entries[path.stem] = self._index_entry(
                    dict(raw.get("config", {})), dict(raw.get("provenance", {})))
            except (json.JSONDecodeError, AttributeError, TypeError, ValueError):
                continue   # gc() handles quarantining; the index just skips it
        index = {"schema": STORE_SCHEMA_VERSION, "entries": entries}
        _atomic_write_json(self.index_path, index)
        return index

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def ls_rows(self) -> List[Dict[str, Any]]:
        """Index entries as display rows for ``repro-consensus store ls``.

        The index is refreshed here when it lags the payload directory
        (``put`` deliberately does not touch it — see :meth:`put`).
        """
        index = self._load_index()
        on_disk = set(self.keys())
        if not on_disk <= set(index["entries"]):
            index = self.rebuild_index()
        rows = []
        for key, entry in sorted(index["entries"].items()):
            if key not in on_disk:
                continue
            rows.append({"key": short_key(key), **entry})
        return rows

    def info(self) -> Dict[str, Any]:
        """Aggregate store facts for ``repro-consensus store info``."""
        keys = self.keys()
        size = sum(p.stat().st_size for p in self.cells_dir.glob("*.json"))
        sidecars = list(self.cells_dir.glob("*.npz"))
        n_quarantined = (len(list(self.quarantine_dir.iterdir()))
                         if self.quarantine_dir.exists() else 0)
        # which multinomial kernels produced the cached cells (cell *keys*
        # are kernel-independent; the bit streams are not, so attribution
        # lives in provenance and is surfaced here)
        kernels: Dict[str, int] = {}
        for row in self.ls_rows():
            label = row.get("kernel") or "unrecorded"
            kernels[label] = kernels.get(label, 0) + 1
        info = {
            "root": str(self.root),
            "schema": STORE_SCHEMA_VERSION,
            "entries": len(keys),
            "payload_bytes": size,
            "sidecars": len(sidecars),
            "sidecar_bytes": sum(p.stat().st_size for p in sidecars),
            "quarantined": n_quarantined,
            "multinomial_kernels": ", ".join(
                f"{k}={v}" for k, v in sorted(kernels.items())) or "none",
        }
        info.update(self._trace_info())
        return info

    def _trace_info(self) -> Dict[str, Any]:
        """Aggregate telemetry facts when the store carries a trace directory.

        ``sweep --trace`` defaults its trace directory to ``<store>/obs``,
        so ``store info`` is the natural place to surface the merged
        counters of the last traced run(s).  Empty dict when no trace
        exists — the historical ``info()`` shape is unchanged for untraced
        stores.
        """
        trace_dir = self.root / "obs"
        if not trace_dir.is_dir():
            return {}
        from repro.obs.export import merge_trace

        merged = merge_trace(trace_dir)
        summary = merged.summary()
        return {
            "trace_files": summary["files"],
            "trace_lines": summary["lines"],
            "trace_torn_lines": summary["torn_lines"],
            "trace_processes": summary["processes"],
            "trace_warnings": summary["warnings"],
            "trace_counters": ", ".join(
                f"{name}={value:g}"
                for name, value in sorted(merged.counters.items())) or "none",
        }
