"""Command-line interface: ``repro-consensus`` / ``python -m repro``.

Subcommands
-----------

``simulate``
    Run a single simulation and print its summary.

``sweep``
    Run one of the named experiment sweeps (theorem1, theorem3, figure1, ...)
    and print its table; optionally save JSON/CSV.  With ``--store DIR`` the
    sweep runs through :class:`repro.store.CachedSweepRunner`: each cell is
    keyed by a canonical hash of its config (workload/rule/adversary/params/
    runs/seed — *not* its label or engine, which are equal in distribution),
    already-stored cells are served from the cache, and every freshly
    executed cell is persisted as it completes, so an interrupted sweep
    resumes from the last finished cell.  Escape hatches: ``--no-cache``
    ignores the store for this invocation; ``--rerun`` recomputes every cell
    and overwrites its store entry (use after semantics-changing code edits).

    Execution backends (``--backend {serial,pool,shard,http}``, with
    ``--workers K``): ``serial`` runs misses in-process, ``pool`` uses the
    process pool, and ``shard`` launches K worker processes that *lease*
    pending cells from the store (atomic lease files, stale-lease reclaim),
    so several invocations — even from different terminals, even with
    overlapping sweeps — cooperate on one store and compute every cell
    exactly once.  ``http`` is the same lease protocol served over the
    wire: ``--serve [ADDR]`` hosts the local ``--store`` behind a
    coordinator (stdlib HTTP) while running the sweep through it, and
    ``--coordinator URL`` points a store-less invocation at a running
    coordinator, so workers on *disjoint filesystems* cooperate through
    canonical cell hashes and push results back over HTTP.
    ``--worker`` attaches this process as one extra worker to a live store
    (or, with ``--coordinator``, to a remote coordinator) instead of
    coordinating its own fleet; ``--from-store`` replays the
    sweep offline (zero recomputation — a missing cell is an error, exit 1).
    A cell that fails is reported per-cell (label + error, exit code 3)
    instead of aborting the sweep.  ``--sidecar-at R`` stores per-run rounds
    of large cells (≥ R runs) as NPZ sidecars next to the JSON payloads.

    ``--trace [DIR]`` records structured telemetry (spans, events, metric
    increments — one JSONL shard per process, workers included) into DIR,
    defaulting to ``STORE/obs``; see the ``obs`` subcommand.

``store``
    Inspect and maintain a result store: ``ls`` (table of cached cells),
    ``info`` (aggregate facts or one full record; ``--json`` for
    machine-readable output), ``gc`` (validate payloads, quarantine
    corrupted ones, rebuild the index).

``obs``
    Inspect recorded traces: ``summarize`` merges the per-process shards
    into one span tree plus aggregate counters/histograms (``--json`` for
    machine-readable output); ``validate`` checks every line against the
    trace schema (the CI traced-sweep leg).

``figure1``
    Regenerate the paper's Figure 1 summary table.

``rules``
    List the registered update rules and adversary strategies.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.adversary.strategies import ADVERSARY_REGISTRY, make_adversary
from repro.core.rules import available_rules, get_rule
from repro.engine.batch import BATCH_ENGINES, ENGINES
from repro.store.backends import BACKEND_NAMES
from repro.experiments import figures
from repro.experiments.reporting import format_report
from repro.experiments.workloads import WORKLOAD_REGISTRY, make_workload_for_engine
from repro.io.tables import render_kv

__all__ = ["main", "build_parser"]

#: Named sweeps, shared with :func:`repro.experiments.figures.regenerate_from_store`.
_SWEEPS = figures.FIGURE_REGISTRY


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-consensus",
        description="Stabilizing consensus with the power of two choices "
                    "(Doerr et al., SPAA 2011) — reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command")

    sim = sub.add_parser("simulate", help="run a single simulation")
    sim.add_argument("--n", type=int, default=1024, help="number of processes")
    sim.add_argument("--workload", default="all-distinct", choices=sorted(WORKLOAD_REGISTRY))
    sim.add_argument("--m", type=int, default=None, help="number of initial values "
                                                         "(workloads that take m)")
    sim.add_argument("--rule", default="median", help="update rule name")
    sim.add_argument("--adversary", default="null", choices=sorted(ADVERSARY_REGISTRY))
    sim.add_argument("--budget", type=int, default=0, help="adversary budget T")
    sim.add_argument("--max-rounds", type=int, default=None)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--engine", default="vectorized", choices=sorted(ENGINES),
                     help="simulation substrate: 'vectorized' is O(n) per round, "
                          "'occupancy' is O(m^2) per round independent of n")

    swp = sub.add_parser("sweep", help="run a named experiment sweep")
    swp.add_argument("name", choices=sorted(_SWEEPS))
    swp.add_argument("--scale", type=float, default=1.0,
                     help="problem-size scale factor (use <1 for quick runs)")
    swp.add_argument("--runs", type=int, default=None, help="runs per cell")
    swp.add_argument("--engine", default=None, choices=sorted(BATCH_ENGINES),
                     help="simulation substrate for every cell of the sweep: "
                          "'vectorized' (O(n)/round), 'occupancy' (O(m^2)/round, "
                          "n-independent), or 'occupancy-fused' (all runs of a "
                          "cell as one count tensor; cells without count-space "
                          "kernels fall back to vectorized). Default: the "
                          "sweep's own preference (the paper sweeps use "
                          "occupancy-fused)")
    swp.add_argument("--json", type=Path, default=None, help="save report as JSON")
    swp.add_argument("--csv", type=Path, default=None, help="save report as CSV")
    swp.add_argument("--store", type=Path, default=None,
                     help="result-store directory: serve cached cells from it "
                          "and persist fresh cells as they complete "
                          "(resumable; prints hits/misses)")
    swp.add_argument("--no-cache", action="store_true",
                     help="ignore --store for this invocation (recompute "
                          "everything, write nothing)")
    swp.add_argument("--rerun", action="store_true",
                     help="recompute every cell and overwrite its store entry")
    swp.add_argument("--backend", default=None,
                     choices=sorted(BACKEND_NAMES),
                     help="how missing cells execute (requires --store or "
                          "--coordinator): 'serial' in-process, 'pool' "
                          "process pool, 'shard' lease-based multi-worker "
                          "processes that dedup through the store (safe to "
                          "launch concurrently), 'http' the same lease "
                          "protocol against a coordinator URL")
    swp.add_argument("--workers", type=int, default=None,
                     help="worker count for --backend pool/shard/http "
                          "(default: cpu_count - 1)")
    swp.add_argument("--worker", action="store_true",
                     help="attach this process as one extra shard worker to "
                          "a live store (or, with --coordinator, to a "
                          "remote coordinator) — no fleet of its own")
    swp.add_argument("--coordinator", default=None, metavar="URL",
                     help="coordinate through a running lease coordinator "
                          "instead of a local --store: cells are leased "
                          "from (and results pushed to) the coordinator's "
                          "store over HTTP (implies --backend http)")
    swp.add_argument("--serve", nargs="?", const="127.0.0.1:8765",
                     default=None, metavar="ADDR",
                     help="host the local --store behind an HTTP lease "
                          "coordinator on ADDR (default 127.0.0.1:8765, "
                          "port 0 picks a free port) while running this "
                          "sweep through it; other hosts attach with "
                          "--worker --coordinator URL")
    swp.add_argument("--from-store", action="store_true",
                     help="offline replay: assemble the report purely from "
                          "cached cells, never simulating (a missing cell "
                          "is an error; requires --store)")
    swp.add_argument("--sidecar-at", type=int, default=None, metavar="R",
                     help="store per-run rounds as a compressed NPZ sidecar "
                          "for cells with at least R runs (JSON payload "
                          "stays canonical and references the sidecar)")
    swp.add_argument("--retries", type=int, default=None, metavar="N",
                     help="per-cell attempt budget for transient failures "
                          "(requires --store; default 1 = no retry); "
                          "permanent errors never retry, exhausted cells "
                          "surface as kind=transient-exhausted failures")
    swp.add_argument("--deadline", type=float, default=None, metavar="S",
                     help="wall-clock budget for the whole sweep in seconds "
                          "(requires --store): expired retries surface as "
                          "failures instead of hanging the fleet")
    swp.add_argument("--fault-plan", default=None, metavar="PLAN",
                     help="arm a deterministic fault-injection plan (inline "
                          "JSON or a path to a JSON file; see "
                          "repro.robustness.FaultPlan) — chaos testing the "
                          "execution stack; workers inherit the plan")
    swp.add_argument("--trace", nargs="?", const="auto", default=None,
                     metavar="DIR",
                     help="record structured telemetry (spans/events/metrics, "
                          "one JSONL shard per process; workers inherit via "
                          "REPRO_TRACE): with no DIR traces into "
                          "STORE/obs (requires --store); inspect with "
                          "'obs summarize'")

    fig = sub.add_parser("figure1", help="regenerate the paper's Figure 1 table")
    fig.add_argument("--scale", type=float, default=1.0)
    fig.add_argument("--runs", type=int, default=10)

    sub.add_parser("rules", help="list registered rules, adversaries and workloads")

    sto = sub.add_parser("store", help="inspect / maintain a result store")
    sto_sub = sto.add_subparsers(dest="store_command")
    sto_ls = sto_sub.add_parser("ls", help="list cached cells")
    sto_ls.add_argument("--store", type=Path, required=True)
    sto_info = sto_sub.add_parser("info", help="store summary, or one record")
    sto_info.add_argument("--store", type=Path, required=True)
    sto_info.add_argument("key", nargs="?", default=None,
                          help="full or unambiguous-prefix cell key")
    sto_info.add_argument("--json", action="store_true",
                          help="machine-readable output (non-finite floats "
                               "use the tagged encoding of repro.io."
                               "serialization)")
    sto_gc = sto_sub.add_parser("gc", help="validate payloads, rebuild index")
    sto_gc.add_argument("--store", type=Path, required=True)
    sto_gc.add_argument("--drop-schema-mismatch", action="store_true",
                        help="delete records written under another schema "
                             "version")
    sto_gc.add_argument("--drop-quarantine", action="store_true",
                        help="delete previously quarantined payloads")

    obs = sub.add_parser("obs", help="inspect structured telemetry traces")
    obs_sub = obs.add_subparsers(dest="obs_command")
    obs_sum = obs_sub.add_parser(
        "summarize", help="merged span tree + aggregate metrics of a trace")
    obs_sum.add_argument("--trace", type=Path, required=True, metavar="DIR",
                         help="trace directory (e.g. STORE/obs)")
    obs_sum.add_argument("--json", action="store_true",
                         help="machine-readable summary")
    obs_val = obs_sub.add_parser(
        "validate", help="check every trace line against the trace schema")
    obs_val.add_argument("--trace", type=Path, required=True, metavar="DIR")

    lnt = sub.add_parser(
        "lint", help="run the AST-based invariant checker over the package")
    lnt.add_argument("--format", choices=("text", "json"), default="text",
                     help="output shape: human text (default) or the "
                          "schema-versioned JSON report document")
    lnt.add_argument("--root", type=Path, default=None,
                     help="package directory to scan (default: the "
                          "installed repro package)")
    lnt.add_argument("--baseline", type=Path, default=None,
                     help="baseline file (default: lint-baseline.json at "
                          "the repository root); a missing file is an "
                          "empty baseline")
    lnt.add_argument("--write-baseline", action="store_true",
                     help="grandfather the current findings into the "
                          "baseline file and exit clean — the only "
                          "sanctioned way to regenerate after ratcheting "
                          "debt down")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = {"n": args.n}
    if args.m is not None:
        params["m"] = args.m
    workload = make_workload_for_engine(args.workload, args.engine, **params)
    rng = np.random.default_rng(args.seed)
    initial = workload(rng) if callable(workload) else workload
    rule = get_rule(args.rule)
    adversary = make_adversary(args.adversary, budget=args.budget)
    simulate_fn = ENGINES[args.engine]
    result = simulate_fn(initial, rule=rule, adversary=adversary, seed=args.seed,
                         max_rounds=args.max_rounds)
    print(render_kv(result.summary(), title="simulation result"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    kwargs = {"scale": args.scale}
    if args.engine is not None:
        kwargs["engine"] = args.engine
    if args.runs is not None:
        kwargs["num_runs"] = args.runs

    if args.serve is not None and args.coordinator is not None:
        print("error: --serve hosts its own coordinator; it cannot also "
              "attach to --coordinator", file=sys.stderr)
        return 2
    if args.backend == "http" and args.coordinator is None \
            and args.serve is None:
        print("error: --backend http requires --coordinator URL (or "
              "--serve to host one on the local --store)", file=sys.stderr)
        return 2
    if (args.coordinator is not None or args.serve is not None) \
            and args.backend not in (None, "http"):
        print(f"error: --coordinator/--serve imply --backend http, not "
              f"{args.backend!r}", file=sys.stderr)
        return 2

    has_store = args.store is not None and not args.no_cache
    # these only need *a* result store — local directory or coordinator URL
    store_features = [flag for flag, on in
                      (("--backend", args.backend is not None),
                       ("--worker", args.worker),
                       ("--from-store", args.from_store),
                       ("--retries", args.retries is not None),
                       ("--deadline", args.deadline is not None)) if on]
    if store_features and not has_store and args.coordinator is None:
        print(f"error: {', '.join(store_features)} require(s) --store "
              f"without --no-cache (or --coordinator URL)", file=sys.stderr)
        return 2
    # these touch the store *directory*, so a URL cannot satisfy them
    local_features = [flag for flag, on in
                      (("--sidecar-at", args.sidecar_at is not None),
                       ("--serve", args.serve is not None)) if on]
    if local_features and not has_store:
        print(f"error: {', '.join(local_features)} require(s) --store "
              f"without --no-cache", file=sys.stderr)
        return 2

    trace_dir: Optional[Path] = None
    if args.trace is not None:
        if args.trace == "auto":
            if args.store is None or args.no_cache:
                print("error: --trace without a directory requires --store "
                      "without --no-cache (traces into STORE/obs)",
                      file=sys.stderr)
                return 2
            trace_dir = Path(args.store) / "obs"
        else:
            trace_dir = Path(args.trace)

    if args.fault_plan is not None:
        from repro.robustness import FaultPlan, activate
        try:
            activate(FaultPlan.load(args.fault_plan))
        except (OSError, ValueError, TypeError, KeyError) as exc:
            print(f"error: unusable --fault-plan: {exc}", file=sys.stderr)
            return 2

    if trace_dir is None:
        return _sweep_body(args, kwargs)
    from repro.obs import trace as obs_trace
    obs_trace.activate(trace_dir)
    try:
        return _sweep_body(args, kwargs, trace_dir=trace_dir)
    finally:
        obs_trace.deactivate()


def _sweep_body(args: argparse.Namespace, kwargs: dict,
                trace_dir: Optional[Path] = None) -> int:
    from repro.store import (
        ArtifactRegistry,
        CachedSweepRunner,
        ResultStore,
        ShardBackend,
        StoreMissError,
    )

    func = _SWEEPS[args.name]
    runner = None
    store = None
    server = None
    store_label = args.store
    retry = None
    if args.retries is not None or args.deadline is not None:
        from repro.robustness import RetryPolicy
        retry = RetryPolicy(
            max_attempts=args.retries if args.retries is not None else 1,
            deadline_s=args.deadline)
    if args.coordinator is not None:
        # fleet attach over HTTP: the coordinator's store is the store —
        # this process needs no local filesystem store at all
        from repro.store.coordinator import CoordinatorStore, HttpBackend

        remote = CoordinatorStore(args.coordinator)
        store_label = args.coordinator
        backend = HttpBackend(args.coordinator,
                              workers=0 if args.worker else args.workers)
        runner = CachedSweepRunner(remote, rerun=args.rerun, backend=backend,
                                   offline=args.from_store, retry=retry)
        kwargs["runner"] = runner
    elif args.store is not None and not args.no_cache:
        store = ResultStore(args.store, rounds_sidecar_at=args.sidecar_at)
        backend = args.backend
        if args.worker:
            # attach mode: this process becomes one extra shard worker on
            # the live store — no child fleet of its own
            backend = ShardBackend(workers=0)
        if args.serve is not None:
            # host the local store behind a coordinator and run this very
            # sweep through it, so remote --worker --coordinator attachers
            # cooperate with the fleet we spawn here
            from repro.store.coordinator import CoordinatorServer, HttpBackend

            host, _, port = args.serve.partition(":")
            server = CoordinatorServer(store, host=host or "127.0.0.1",
                                       port=int(port or 0)).start()
            print(f"coordinator: {server.url} (serving {args.store}; attach "
                  f"with: --worker --coordinator {server.url})")
            backend = HttpBackend(server.url, workers=args.workers)
        runner = CachedSweepRunner(
            store, rerun=args.rerun, backend=backend,
            max_workers=args.workers if args.workers is not None
            else (0 if backend is None else None),
            offline=args.from_store, retry=retry)
        kwargs["runner"] = runner

    try:
        figure = func(**kwargs)
    except StoreMissError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if server is not None:
            server.stop()
    print(figure.table)
    if figure.fits:
        print("\nScaling fits (best first):")
        for fit in figure.fits:
            print(f"  {fit.predictor_name}: slope={fit.slope:.3f}, "
                  f"intercept={fit.intercept:.3f}, R^2={fit.r_squared:.4f}")
    if runner is not None:
        print(f"\ncache: {runner.last_stats.summary()} "
              f"(store: {store_label})")
    if trace_dir is not None:
        print(f"trace: {trace_dir} (inspect with: repro-consensus obs "
              f"summarize --trace {trace_dir})")

    cell_keys = figure.report.meta.get("store", {}).get("keys", {})
    if args.json is not None:
        figure.report.save_json(args.json)
        print(f"\nsaved JSON report to {args.json}")
        if store is not None:
            ArtifactRegistry(store.root / "artifacts.json").register(
                args.json, kind="sweep-report-json", cell_keys=cell_keys,
                extra={"sweep": args.name})
    if args.csv is not None:
        figure.report.save_csv(args.csv)
        print(f"saved CSV report to {args.csv}")
        if store is not None:
            ArtifactRegistry(store.root / "artifacts.json").register(
                args.csv, kind="sweep-report-csv", cell_keys=cell_keys,
                extra={"sweep": args.name})
    failures = figure.report.meta.get("failures", [])
    if failures:
        print(f"\n{len(failures)} cell(s) failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure['cell']}: {failure['error']}", file=sys.stderr)
        return 3
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.io.tables import render_table
    from repro.store import ResultStore

    if args.store_command is None:
        print("usage: repro-consensus store {ls,info,gc} --store DIR")
        return 1
    store = ResultStore(args.store)
    if args.store_command == "ls":
        rows = store.ls_rows()
        print(render_table(rows) if rows else "(empty store)")
        return 0
    if args.store_command == "info":
        if args.key is None:
            from repro.engine.rng import multinomial_kernel_id
            from repro.store.shard import failed_markers
            info = {
                **store.info(),
                "kernel_this_process": multinomial_kernel_id(),
            }
            markers = failed_markers(store.root)
            if args.json:
                info["failed_cells"] = markers
                _print_json(info)
                return 0
            if markers:
                # per-cell attempt counts from the shard failure markers, so
                # a fleet operator can see which cells are burning budget
                info["failed_cells"] = "; ".join(
                    f"{m.get('cell', '?')}: {m.get('attempts', 1)} attempt(s)"
                    f" [{m.get('kind', 'unclassified')}] {m.get('error', '')}"
                    for m in markers)
            print(render_kv(info, title=f"store {store.root}"))
            return 0
        matches = [k for k in store.keys() if k.startswith(args.key)]
        if len(matches) != 1:
            print(f"key {args.key!r}: "
                  f"{'no match' if not matches else f'{len(matches)} matches'}",
                  file=sys.stderr if args.json else sys.stdout)
            return 1
        record = store.get(matches[0])
        if record is None:
            print(f"key {matches[0]} is unreadable (quarantined)",
                  file=sys.stderr if args.json else sys.stdout)
            return 1
        if args.json:
            _print_json({
                "key": record.key,
                "cell": record.config.get("name", ""),
                "schema": record.schema,
                "config": record.config,
                "provenance": record.provenance,
                "mean_rounds": record.result.mean_rounds,
                "convergence_fraction": record.result.convergence_fraction,
            })
            return 0
        print(render_kv({
            "key": record.key,
            "cell": record.config.get("name", ""),
            "schema": record.schema,
            **{f"config.{k}": v for k, v in sorted(record.config.items())},
            **{f"provenance.{k}": v for k, v in sorted(record.provenance.items())},
            "mean_rounds": record.result.mean_rounds,
            "convergence_fraction": record.result.convergence_fraction,
        }, title="store record"))
        return 0
    if args.store_command == "gc":
        counts = store.gc(drop_schema_mismatch=args.drop_schema_mismatch,
                          drop_quarantine=args.drop_quarantine)
        print(f"gc: kept={counts['kept']} quarantined={counts['quarantined']} "
              f"dropped={counts['dropped']} "
              f"orphan_sidecars={counts['orphan_sidecars']} "
              f"dangling_artifacts={counts['dangling_artifacts']}")
        return 0
    return 1


def _print_json(payload) -> None:
    """Machine-readable CLI output (repro.io.serialization conventions)."""
    import json

    from repro.io.serialization import to_jsonable

    print(json.dumps(to_jsonable(payload), indent=2, sort_keys=True,
                     allow_nan=False))


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.export import merge_trace, validate_trace

    if args.obs_command is None:
        print("usage: repro-consensus obs {summarize,validate} --trace DIR")
        return 1
    if args.obs_command == "validate":
        try:
            stats = validate_trace(args.trace)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not stats.get("lines"):
            print(f"error: no trace lines under {args.trace}", file=sys.stderr)
            return 1
        print(render_kv(stats, title=f"trace {args.trace}"))
        return 0
    merged = merge_trace(args.trace)
    if args.json:
        _print_json(merged.summary())
        return 0 if merged.records else 1
    if not merged.records:
        print(f"(no trace records under {args.trace})")
        return 1
    print(f"trace {args.trace} — {len(merged.processes)} process(es), "
          f"{merged.stats['lines']} line(s), {merged.stats['torn']} torn\n")
    for line in merged.tree_lines():
        print(line)
    summary = merged.summary()
    flat = {}
    for name, agg in sorted(summary["spans"].items()):
        flat[f"span.{name}"] = (f"count={agg['count']} "
                                f"total={agg['total_s']:.3f}s")
    flat["events"] = summary["events"]
    flat["warnings"] = summary["warnings"]
    for name, value in summary["counters"].items():
        flat[f"counter.{name}"] = value
    for name, h in sorted(summary["histograms"].items()):
        flat[f"hist.{name}"] = (f"count={h['count']} mean={h['mean']:.4g} "
                                f"p50={h['p50']:.4g} p90={h['p90']:.4g} "
                                f"max={h['max']:.4g}")
    print()
    print(render_kv(flat, title="aggregate telemetry"))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import render_json, render_text, run_lint

    try:
        run = run_lint(root=args.root, baseline_path=args.baseline,
                       write_baseline=args.write_baseline)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if run.wrote_baseline:
        count = len(run.result.findings)
        print(f"wrote baseline with {count} grandfathered finding(s) to "
              f"{run.baseline_path}")
    try:
        if args.format == "json":
            print(render_json(run.result, run.outcome, run.exit_code))
        else:
            print(render_text(run.result, run.outcome, run.exit_code))
    except BrokenPipeError:
        pass  # downstream pager/head closed the pipe; exit code still stands
    return run.exit_code


def _cmd_figure1(args: argparse.Namespace) -> int:
    figure = figures.reproduce_figure1(scale=args.scale, num_runs=args.runs)
    print("Figure 1 (empirical mean convergence rounds):\n")
    print(figure.table)
    return 0


def _cmd_rules(_: argparse.Namespace) -> int:
    print("Update rules:")
    for name in sorted(available_rules()):
        print(f"  - {name}")
    print("\nAdversary strategies:")
    for name in sorted(ADVERSARY_REGISTRY):
        print(f"  - {name}")
    print("\nWorkloads:")
    for name in sorted(WORKLOAD_REGISTRY):
        print(f"  - {name}")
    print("\nEngines (single-run):")
    for name in sorted(ENGINES):
        print(f"  - {name}")
    print("\nEngines (batch/sweep):")
    for name in sorted(BATCH_ENGINES):
        print(f"  - {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "figure1":
        return _cmd_figure1(args)
    if args.command == "rules":
        return _cmd_rules(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "lint":
        return _cmd_lint(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
