"""Reproducible randomness management.

All simulation randomness flows through ``numpy.random.Generator`` objects
derived from a single ``SeedSequence``.  Child streams for independent runs
(or independent worker processes in a sweep) are created with
``SeedSequence.spawn``, which guarantees statistical independence between
streams — the recommended practice for parallel Monte-Carlo work.

This module is also the home of the *multinomial kernel selection plumbing*
(re-exported from :mod:`repro.engine._multinomial`): which backend draws the
occupancy engines' exact multinomial flows — ``numpy``
(``Generator.multinomial``, the historical bit stream) or ``compiled`` (the
numba/cc conditional-binomial cascade).  Select with
:func:`set_multinomial_backend` or the ``REPRO_MULTINOMIAL_KERNEL``
environment variable; inspect with :func:`multinomial_backend_info` /
:func:`multinomial_kernel_id`.  Reproducibility is backend-scoped: a fixed
seed pins results bit-for-bit *within* a backend, while the backends agree
only in distribution (compiled draws bridge the NumPy stream through one
64-bit seed per kernel call).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.engine._multinomial import (
    BACKEND_CHOICES as MULTINOMIAL_BACKEND_CHOICES,
    ENV_VAR as MULTINOMIAL_KERNEL_ENV,
    KernelInfo,
    MultinomialKernelWarning,
    multinomial_backend_info,
    multinomial_kernel_id,
    resolve_multinomial_backend,
    set_multinomial_backend,
)

__all__ = ["make_rng", "spawn_rngs", "spawn_seeds", "RngPool",
           "MULTINOMIAL_BACKEND_CHOICES", "MULTINOMIAL_KERNEL_ENV",
           "KernelInfo", "MultinomialKernelWarning",
           "multinomial_backend_info", "multinomial_kernel_id",
           "resolve_multinomial_backend", "set_multinomial_backend"]


def make_rng(seed: Optional[int | np.random.SeedSequence | np.random.Generator] = None
             ) -> np.random.Generator:
    """Create a ``Generator`` from a seed, a ``SeedSequence`` or pass through a ``Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: Optional[int], count: int) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent child ``SeedSequence`` objects from ``seed``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    root = np.random.SeedSequence(seed)
    return root.spawn(count)


def spawn_rngs(seed: Optional[int], count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed."""
    return [np.random.default_rng(ss) for ss in spawn_seeds(seed, count)]


class RngPool:
    """A lazily-expanding pool of independent generators.

    Useful when the number of runs is not known upfront (e.g. adaptive
    experiments): each call to :meth:`next` spawns a fresh independent child
    stream from the same root seed sequence, so results remain reproducible
    for a fixed request order.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self._issued = 0

    def next(self) -> np.random.Generator:
        """Return the next independent generator from the pool."""
        child = self._root.spawn(1)[0]
        self._issued += 1
        return np.random.default_rng(child)

    def take(self, count: int) -> List[np.random.Generator]:
        """Return ``count`` further independent generators."""
        children = self._root.spawn(count)
        self._issued += count
        return [np.random.default_rng(c) for c in children]

    @property
    def issued(self) -> int:
        """How many generators have been handed out so far."""
        return self._issued
